//! Property-based tests of the Serena algebra's laws.
//!
//! Randomized relations, formulas and plans check the algebraic identities
//! the rewrite rules rely on, and the optimizer's core guarantee: every
//! optimized plan is Definition 9-equivalent (same result X-Relation, same
//! action set) to its input, across random environments and instants.

mod common;

use std::sync::Arc;

use common::Rng;
use serena::core::env::Environment;
use serena::core::equiv::check_at;
use serena::core::formula::{CmpOp, Formula};
use serena::core::ops;
use serena::core::prelude::*;
use serena::core::rewrite::optimize;
use serena::core::schema::XSchema;
use serena::core::service::{FnService, StaticRegistry};
use serena::core::tuple;

fn int_schema() -> SchemaRef {
    XSchema::builder()
        .real("x", DataType::Int)
        .real("y", DataType::Int)
        .build()
        .unwrap()
}

fn int_relation(pairs: &[(i64, i64)]) -> XRelation {
    XRelation::from_tuples(int_schema(), pairs.iter().map(|&(x, y)| tuple![x, y]))
}

fn gen_int_relation(rng: &mut Rng) -> XRelation {
    let pairs = rng.vec_of(0, 24, |r| (r.i64_in(0, 6), r.i64_in(0, 6)));
    int_relation(&pairs)
}

fn gen_formula(rng: &mut Rng, depth: usize) -> Formula {
    if depth > 0 && rng.below(2) == 0 {
        match rng.below(3) {
            0 => gen_formula(rng, depth - 1).and(gen_formula(rng, depth - 1)),
            1 => gen_formula(rng, depth - 1).or(gen_formula(rng, depth - 1)),
            _ => gen_formula(rng, depth - 1).not(),
        }
    } else {
        match rng.below(7) {
            0 => Formula::True,
            1 => Formula::False,
            2 => Formula::eq_const("x", rng.i64_in(0, 6)),
            3 => Formula::ne_const("y", rng.i64_in(0, 6)),
            4 => Formula::gt_const("x", rng.i64_in(0, 6)),
            5 => Formula::le_const("y", rng.i64_in(0, 6)),
            _ => Formula::cmp_attrs("x", CmpOp::Lt, "y"),
        }
    }
}

#[test]
fn set_operator_laws() {
    for case in 0..64u64 {
        let mut rng = Rng::new(0x5E70 + case);
        let a = gen_int_relation(&mut rng);
        let b = gen_int_relation(&mut rng);
        let c = gen_int_relation(&mut rng);
        // commutativity
        assert_eq!(ops::union(&a, &b).unwrap(), ops::union(&b, &a).unwrap());
        assert_eq!(
            ops::intersect(&a, &b).unwrap(),
            ops::intersect(&b, &a).unwrap()
        );
        // associativity of ∪
        assert_eq!(
            ops::union(&ops::union(&a, &b).unwrap(), &c).unwrap(),
            ops::union(&a, &ops::union(&b, &c).unwrap()).unwrap()
        );
        // idempotence
        assert_eq!(ops::union(&a, &a).unwrap(), a.clone());
        assert_eq!(ops::intersect(&a, &a).unwrap(), a.clone());
        assert!(ops::difference(&a, &a).unwrap().is_empty());
        // partition: (a − b) ∪ (a ∩ b) = a
        let partitioned = ops::union(
            &ops::difference(&a, &b).unwrap(),
            &ops::intersect(&a, &b).unwrap(),
        )
        .unwrap();
        assert_eq!(partitioned, a);
    }
}

#[test]
fn selection_laws() {
    for case in 0..64u64 {
        let mut rng = Rng::new(0x5E1E + case);
        let r = gen_int_relation(&mut rng);
        let f = gen_formula(&mut rng, 3);
        let g = gen_formula(&mut rng, 3);
        let sf = ops::select(&r, &f).unwrap();
        // σ_F(r) ⊆ r
        assert!(sf.iter().all(|t| r.contains(t)));
        // idempotence
        assert_eq!(ops::select(&sf, &f).unwrap(), sf.clone());
        // σ_{F∧G} = σ_F ∘ σ_G
        let both = ops::select(&r, &f.clone().and(g.clone())).unwrap();
        let cascade = ops::select(&ops::select(&r, &g).unwrap(), &f).unwrap();
        assert_eq!(both, cascade);
        // σ_{F∨G} = σ_F ∪ σ_G
        let either = ops::select(&r, &f.clone().or(g.clone())).unwrap();
        let unioned = ops::union(&sf, &ops::select(&r, &g).unwrap()).unwrap();
        assert_eq!(either, unioned);
        // σ_{¬F} = r − σ_F
        let negated = ops::select(&r, &f.clone().not()).unwrap();
        assert_eq!(negated, ops::difference(&r, &sf).unwrap());
    }
}

#[test]
fn projection_and_join_laws() {
    for case in 0..64u64 {
        let mut rng = Rng::new(0x7010 + case);
        let a = gen_int_relation(&mut rng);
        let b = gen_int_relation(&mut rng);
        let attrs = [serena::core::attr::attr("x")];
        // projection absorbs itself
        let p = ops::project(&a, &attrs).unwrap();
        assert_eq!(ops::project(&p, &attrs).unwrap(), p.clone());
        assert!(p.len() <= a.len());
        // join: commutative (as sets), self-join is identity, bounded size
        let ab = ops::join(&a, &b).unwrap();
        assert_eq!(ab.clone(), ops::join(&b, &a).unwrap());
        assert!(ab.len() <= a.len() * b.len());
        assert_eq!(ops::join(&a, &a).unwrap(), a.clone());
        // join over identical schemas = intersection
        assert_eq!(ab, ops::intersect(&a, &b).unwrap());
    }
}

#[test]
fn rename_round_trip() {
    for case in 0..64u64 {
        let mut rng = Rng::new(0xE4AE + case);
        let r = gen_int_relation(&mut rng);
        let from = serena::core::attr::attr("x");
        let to = serena::core::attr::attr("z");
        let there = ops::rename(&r, &from, &to).unwrap();
        let back = ops::rename(&there, &to, &from).unwrap();
        assert_eq!(back, r);
    }
}

// ---------------------------------------------------------------------
// optimizer soundness over a service-enabled environment
// ---------------------------------------------------------------------

fn sensor_env(rows: &[(u64, &str)]) -> (Environment, StaticRegistry) {
    let mut env = Environment::new();
    let schema = serena::core::schema::examples::sensors_schema();
    let rel = XRelation::from_tuples(
        schema,
        rows.iter()
            .map(|(id, loc)| tuple![Value::service(format!("s{id}")), *loc]),
    );
    env.define_relation("sensors", rel).unwrap();
    env.define_relation("contacts", serena::core::xrelation::examples::contacts())
        .unwrap();

    let reg = StaticRegistry::new();
    for (id, _) in rows {
        let seed = *id;
        reg.register(
            format!("s{seed}"),
            Arc::new(FnService::new(
                vec![serena::core::prototype::examples::get_temperature()],
                move |_, _, at| {
                    let v = 10.0 + ((seed * 31 + at.ticks() * 7) % 25) as f64;
                    Ok(vec![Tuple::new(vec![Value::Real(v)])])
                },
            )),
        );
    }
    (env, reg)
}

const LOCATIONS: [&str; 3] = ["office", "corridor", "roof"];

fn gen_sensor_rows(rng: &mut Rng) -> Vec<(u64, &'static str)> {
    rng.vec_of(0, 10, |r| (r.u64_in(0, 12), *r.pick(&LOCATIONS)))
}

/// Random service-oriented plans: selections before/after a passive
/// invocation, projections, joins with contacts.
fn gen_sensor_plan(rng: &mut Rng) -> Plan {
    let pre = match rng.below(3) {
        0 => None,
        1 => Some(Formula::eq_const("location", *rng.pick(&LOCATIONS))),
        _ => Some(Formula::ne_const("location", *rng.pick(&LOCATIONS))),
    };
    let post = match rng.below(2) {
        0 => None,
        _ => Some(Formula::gt_const("temperature", rng.i64_in(15, 30) as f64)),
    };
    let shape = rng.below(4);
    let mut plan = Plan::relation("sensors");
    if shape == 2 {
        plan = plan.join(Plan::relation("contacts").project(["name", "address"]));
    }
    plan = plan.invoke("getTemperature", "sensor");
    // selections stacked *above* the invocation: pushdown fodder
    if let Some(f) = pre {
        plan = plan.select(f);
    }
    if let Some(f) = post {
        plan = plan.select(f);
    }
    if shape == 3 {
        plan = plan.project(["sensor", "location", "temperature"]);
    }
    plan
}

#[test]
fn optimizer_is_sound_on_random_plans() {
    for case in 0..48u64 {
        let mut rng = Rng::new(0x0971 + case);
        let rows = gen_sensor_rows(&mut rng);
        let plan = gen_sensor_plan(&mut rng);
        let t = rng.u64_in(0, 6);
        let (env, reg) = sensor_env(&rows);
        if plan.schema(&env).is_err() {
            continue;
        }
        let optimized = optimize(&plan, &env).plan;
        let report = check_at(&plan, &optimized, &env, &reg, Instant(t)).unwrap();
        assert!(
            report.equivalent(),
            "{plan} vs {optimized} at τ={t}: {report:?}"
        );
    }
}

#[test]
fn optimizer_never_increases_invocations() {
    for case in 0..48u64 {
        let mut rng = Rng::new(0x13B0 + case);
        let rows = gen_sensor_rows(&mut rng);
        let plan = gen_sensor_plan(&mut rng);
        let (env, reg) = sensor_env(&rows);
        if plan.schema(&env).is_err() {
            continue;
        }
        let optimized = optimize(&plan, &env).plan;
        let c_orig = serena::core::eval::CountingInvoker::new(&reg);
        ExecContext::new(&env, &c_orig, Instant::ZERO)
            .execute(&plan)
            .unwrap();
        let c_opt = serena::core::eval::CountingInvoker::new(&reg);
        ExecContext::new(&env, &c_opt, Instant::ZERO)
            .execute(&optimized)
            .unwrap();
        assert!(
            c_opt.total() <= c_orig.total(),
            "optimization increased invocations: {} → {} for {plan}",
            c_orig.total(),
            c_opt.total()
        );
    }
}

#[test]
fn every_rewrite_rule_is_individually_sound() {
    for case in 0..48u64 {
        let mut rng = Rng::new(0xA77E + case);
        let rows = gen_sensor_rows(&mut rng);
        let plan = gen_sensor_plan(&mut rng);
        let t = rng.u64_in(0, 4);
        let (env, reg) = sensor_env(&rows);
        if plan.schema(&env).is_err() {
            continue;
        }
        for rule in serena::core::rewrite::all_rules() {
            let (rewritten, n) =
                serena::core::rewrite::apply_everywhere(&plan, rule.as_ref(), &env);
            if n == 0 {
                continue;
            }
            let report = check_at(&plan, &rewritten, &env, &reg, Instant(t)).unwrap();
            assert!(
                report.equivalent(),
                "rule {} broke equivalence: {plan} vs {rewritten}",
                rule.name()
            );
        }
    }
}
