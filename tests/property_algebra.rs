//! Property-based tests of the Serena algebra's laws.
//!
//! Randomized relations, formulas and plans check the algebraic identities
//! the rewrite rules rely on, and the optimizer's core guarantee: every
//! optimized plan is Definition 9-equivalent (same result X-Relation, same
//! action set) to its input, across random environments and instants.

use std::sync::Arc;

use proptest::prelude::*;

use serena::core::env::Environment;
use serena::core::equiv::check_at;
use serena::core::formula::{CmpOp, Formula};
use serena::core::ops;
use serena::core::prelude::*;
use serena::core::rewrite::optimize;
use serena::core::schema::XSchema;
use serena::core::service::{FnService, StaticRegistry};
use serena::core::tuple;

fn int_schema() -> SchemaRef {
    XSchema::builder()
        .real("x", DataType::Int)
        .real("y", DataType::Int)
        .build()
        .unwrap()
}

fn int_relation(pairs: &[(i64, i64)]) -> XRelation {
    XRelation::from_tuples(int_schema(), pairs.iter().map(|&(x, y)| tuple![x, y]))
}

prop_compose! {
    fn arb_int_relation()(pairs in prop::collection::vec((0i64..6, 0i64..6), 0..24)) -> XRelation {
        int_relation(&pairs)
    }
}

fn arb_formula() -> impl Strategy<Value = Formula> {
    let leaf = prop_oneof![
        Just(Formula::True),
        Just(Formula::False),
        (0i64..6).prop_map(|c| Formula::eq_const("x", c)),
        (0i64..6).prop_map(|c| Formula::ne_const("y", c)),
        (0i64..6).prop_map(|c| Formula::gt_const("x", c)),
        (0i64..6).prop_map(|c| Formula::le_const("y", c)),
        Just(Formula::cmp_attrs("x", CmpOp::Lt, "y")),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            inner.prop_map(|a| a.not()),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn set_operator_laws(a in arb_int_relation(), b in arb_int_relation(), c in arb_int_relation()) {
        // commutativity
        prop_assert_eq!(ops::union(&a, &b).unwrap(), ops::union(&b, &a).unwrap());
        prop_assert_eq!(ops::intersect(&a, &b).unwrap(), ops::intersect(&b, &a).unwrap());
        // associativity of ∪
        prop_assert_eq!(
            ops::union(&ops::union(&a, &b).unwrap(), &c).unwrap(),
            ops::union(&a, &ops::union(&b, &c).unwrap()).unwrap()
        );
        // idempotence
        prop_assert_eq!(ops::union(&a, &a).unwrap(), a.clone());
        prop_assert_eq!(ops::intersect(&a, &a).unwrap(), a.clone());
        prop_assert!(ops::difference(&a, &a).unwrap().is_empty());
        // partition: (a − b) ∪ (a ∩ b) = a
        let partitioned = ops::union(
            &ops::difference(&a, &b).unwrap(),
            &ops::intersect(&a, &b).unwrap(),
        ).unwrap();
        prop_assert_eq!(partitioned, a.clone());
    }

    #[test]
    fn selection_laws(r in arb_int_relation(), f in arb_formula(), g in arb_formula()) {
        let sf = ops::select(&r, &f).unwrap();
        // σ_F(r) ⊆ r
        prop_assert!(sf.iter().all(|t| r.contains(t)));
        // idempotence
        prop_assert_eq!(ops::select(&sf, &f).unwrap(), sf.clone());
        // σ_{F∧G} = σ_F ∘ σ_G
        let both = ops::select(&r, &f.clone().and(g.clone())).unwrap();
        let cascade = ops::select(&ops::select(&r, &g).unwrap(), &f).unwrap();
        prop_assert_eq!(both, cascade);
        // σ_{F∨G} = σ_F ∪ σ_G
        let either = ops::select(&r, &f.clone().or(g.clone())).unwrap();
        let unioned = ops::union(&sf, &ops::select(&r, &g).unwrap()).unwrap();
        prop_assert_eq!(either, unioned);
        // σ_{¬F} = r − σ_F
        let negated = ops::select(&r, &f.clone().not()).unwrap();
        prop_assert_eq!(negated, ops::difference(&r, &sf).unwrap());
    }

    #[test]
    fn projection_and_join_laws(a in arb_int_relation(), b in arb_int_relation()) {
        let attrs = [serena::core::attr::attr("x")];
        // projection absorbs itself
        let p = ops::project(&a, &attrs).unwrap();
        prop_assert_eq!(ops::project(&p, &attrs).unwrap(), p.clone());
        prop_assert!(p.len() <= a.len());
        // join: commutative (as sets), self-join is identity, bounded size
        let ab = ops::join(&a, &b).unwrap();
        prop_assert_eq!(ab.clone(), ops::join(&b, &a).unwrap());
        prop_assert!(ab.len() <= a.len() * b.len());
        prop_assert_eq!(ops::join(&a, &a).unwrap(), a.clone());
        // join over identical schemas = intersection
        prop_assert_eq!(ab, ops::intersect(&a, &b).unwrap());
    }

    #[test]
    fn rename_round_trip(r in arb_int_relation()) {
        let from = serena::core::attr::attr("x");
        let to = serena::core::attr::attr("z");
        let there = ops::rename(&r, &from, &to).unwrap();
        let back = ops::rename(&there, &to, &from).unwrap();
        prop_assert_eq!(back, r);
    }
}

// ---------------------------------------------------------------------
// optimizer soundness over a service-enabled environment
// ---------------------------------------------------------------------

fn sensor_env(rows: &[(u64, &str)]) -> (Environment, StaticRegistry) {
    let mut env = Environment::new();
    let schema = serena::core::schema::examples::sensors_schema();
    let rel = XRelation::from_tuples(
        schema,
        rows.iter()
            .map(|(id, loc)| tuple![Value::service(format!("s{id}")), *loc]),
    );
    env.define_relation("sensors", rel).unwrap();
    env.define_relation("contacts", serena::core::xrelation::examples::contacts())
        .unwrap();

    let reg = StaticRegistry::new();
    for (id, _) in rows {
        let seed = *id;
        reg.register(
            format!("s{seed}"),
            Arc::new(FnService::new(
                vec![serena::core::prototype::examples::get_temperature()],
                move |_, _, at| {
                    let v = 10.0 + ((seed * 31 + at.ticks() * 7) % 25) as f64;
                    Ok(vec![Tuple::new(vec![Value::Real(v)])])
                },
            )),
        );
    }
    (env, reg)
}

fn arb_location() -> impl Strategy<Value = &'static str> {
    prop_oneof![Just("office"), Just("corridor"), Just("roof")]
}

prop_compose! {
    fn arb_sensor_rows()(rows in prop::collection::vec((0u64..12, arb_location()), 0..10)) -> Vec<(u64, &'static str)> {
        rows
    }
}

/// Random service-oriented plans: selections before/after a passive
/// invocation, projections, joins with contacts.
fn arb_sensor_plan() -> impl Strategy<Value = Plan> {
    let pre = prop_oneof![
        Just(None),
        arb_location().prop_map(|l| Some(Formula::eq_const("location", l))),
        arb_location().prop_map(|l| Some(Formula::ne_const("location", l))),
    ];
    let post = prop_oneof![
        Just(None),
        (15i64..30).prop_map(|c| Some(Formula::gt_const("temperature", c as f64))),
    ];
    let shape = 0..4u8;
    (pre, post, shape).prop_map(|(pre, post, shape)| {
        let mut plan = Plan::relation("sensors");
        if shape == 2 {
            plan = plan.join(Plan::relation("contacts").project(["name", "address"]));
        }
        plan = plan.invoke("getTemperature", "sensor");
        // selections stacked *above* the invocation: pushdown fodder
        if let Some(f) = pre {
            plan = plan.select(f);
        }
        if let Some(f) = post {
            plan = plan.select(f);
        }
        if shape == 3 {
            plan = plan.project(["sensor", "location", "temperature"]);
        }
        plan
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn optimizer_is_sound_on_random_plans(
        rows in arb_sensor_rows(),
        plan in arb_sensor_plan(),
        t in 0u64..6,
    ) {
        let (env, reg) = sensor_env(&rows);
        prop_assume!(plan.schema(&env).is_ok());
        let optimized = optimize(&plan, &env).plan;
        let report = check_at(&plan, &optimized, &env, &reg, Instant(t)).unwrap();
        prop_assert!(
            report.equivalent(),
            "{} vs {} at τ={t}: {:?}", plan, optimized, report
        );
    }

    #[test]
    fn optimizer_never_increases_invocations(
        rows in arb_sensor_rows(),
        plan in arb_sensor_plan(),
    ) {
        let (env, reg) = sensor_env(&rows);
        prop_assume!(plan.schema(&env).is_ok());
        let optimized = optimize(&plan, &env).plan;
        let c_orig = serena::core::eval::CountingInvoker::new(&reg);
        evaluate(&plan, &env, &c_orig, Instant::ZERO).unwrap();
        let c_opt = serena::core::eval::CountingInvoker::new(&reg);
        evaluate(&optimized, &env, &c_opt, Instant::ZERO).unwrap();
        prop_assert!(c_opt.total() <= c_orig.total(),
            "optimization increased invocations: {} → {} for {}",
            c_orig.total(), c_opt.total(), plan);
    }

    #[test]
    fn every_rewrite_rule_is_individually_sound(
        rows in arb_sensor_rows(),
        plan in arb_sensor_plan(),
        t in 0u64..4,
    ) {
        let (env, reg) = sensor_env(&rows);
        prop_assume!(plan.schema(&env).is_ok());
        for rule in serena::core::rewrite::all_rules() {
            let (rewritten, n) = serena::core::rewrite::apply_everywhere(&plan, rule.as_ref(), &env);
            if n == 0 { continue; }
            let report = check_at(&plan, &rewritten, &env, &reg, Instant(t)).unwrap();
            prop_assert!(
                report.equivalent(),
                "rule {} broke equivalence: {} vs {}", rule.name(), plan, rewritten
            );
        }
    }
}
