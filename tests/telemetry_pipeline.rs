//! Cross-crate telemetry integration: a PEMS scenario with injected faults
//! drives the whole observability pipeline — per-service health, the metric
//! registry's Prometheus export, and structured JSONL traces (PR 3).

use std::io::Write;
use std::sync::{Arc, Mutex};

use serena::core::telemetry::{JsonlTrace, MemoryTrace, TraceEvent};
use serena::pems::Pems;
use serena::services::bus::BusConfig;
use serena::services::faults::{FaultPolicy, FaultyService};
use serena::services::health::HealthStatus;

/// Registers a healthy and an always-failing temperature sensor, an
/// extended `sensors` relation bound to `getTemperature`, and a continuous
/// query invoking it.
fn deploy(pems: &mut Pems) -> Arc<FaultyService> {
    use serena::core::service::fixtures;
    let reg = pems.registry();
    reg.register("steady", fixtures::temperature_sensor(1));
    let flaky = FaultyService::new(
        fixtures::temperature_sensor(2),
        // period 1, zero successes → every call fails
        FaultPolicy::Intermittent { fail: 1, ok: 0 },
    );
    reg.register("flaky", flaky.clone());
    pems.run_program(
        "PROTOTYPE getTemperature( ) : ( temperature REAL );
         EXTENDED RELATION sensors (
           sensor SERVICE, location STRING, temperature REAL VIRTUAL
         ) USING BINDING PATTERNS ( getTemperature[sensor] );
         INSERT INTO sensors VALUES ('steady', 'office'), ('flaky', 'roof');
         REGISTER QUERY temps AS INVOKE[getTemperature[sensor]](sensors);",
    )
    .unwrap();
    flaky
}

#[test]
fn faulty_service_health_and_prometheus_through_ticks() {
    let trace = Arc::new(MemoryTrace::new());
    let mut pems = Pems::builder()
        .bus(BusConfig::instant())
        .trace(trace.clone())
        .build();
    let flaky = deploy(&mut pems);

    let ticks = 4u64;
    for _ in 0..ticks {
        pems.tick();
    }

    // -- health reflects the injected fault policy exactly --
    let health = pems.service_health();
    assert_eq!(health.len(), 2);
    let by_name = |n: &str| health.iter().find(|h| h.reference.as_str() == n).unwrap();
    let steady = by_name("steady");
    assert_eq!(steady.status(), HealthStatus::Healthy);
    assert_eq!(steady.failures, 0);
    let bad = by_name("flaky");
    assert_eq!(bad.attempts, flaky.attempts(), "tracker sees every attempt");
    assert!(bad.failures > 0);
    assert_eq!(bad.failure_rate, 1.0);
    if bad.consecutive_errors >= 3 {
        assert_eq!(bad.status(), HealthStatus::Down);
    } else {
        assert_eq!(bad.status(), HealthStatus::Degraded);
    }

    // -- the trace saw the whole lifecycle --
    let events = trace.events();
    let count = |k: &str| events.iter().filter(|e| e.kind() == k).count();
    assert_eq!(count("query_registered"), 1);
    assert_eq!(count("tick_start"), ticks as usize);
    assert_eq!(count("tick_end"), ticks as usize);
    assert!(count("invocation") >= 2, "β invocations traced");
    assert!(count("failure") > 0, "injected faults traced");
    assert!(events
        .iter()
        .any(|e| matches!(e, TraceEvent::Invocation { ok: false, .. })));

    // -- Prometheus export is well-formed and carries the query series --
    let text = pems.render_metrics();
    assert_prometheus_well_formed(&text);
    assert!(text.contains(&format!(
        "serena_query_ticks_total{{query=\"temps\"}} {ticks}"
    )));
    assert!(text.contains("serena_query_tick_duration_ns_bucket{query=\"temps\""));
    assert!(text.contains("serena_query_lag_ns_count{query=\"temps\"}"));
    assert!(text.contains("serena_service_failures_total{service=\"flaky\"}"));
    assert!(text.contains("serena_queries_registered 1"));
}

/// Minimal Prometheus text-format validator: every line is a comment or
/// `name{labels} value`; histogram buckets are cumulative, end at `+Inf`,
/// and agree with their `_count` series.
fn assert_prometheus_well_formed(text: &str) {
    use std::collections::HashMap;
    let mut last_bucket: HashMap<String, u64> = HashMap::new();
    let mut inf_bucket: HashMap<String, u64> = HashMap::new();
    for line in text.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (series, value) = line.rsplit_once(' ').unwrap_or_else(|| {
            panic!("not `series value`: {line}");
        });
        let value: f64 = value.parse().unwrap_or_else(|_| {
            panic!("non-numeric sample value in: {line}");
        });
        assert!(value >= 0.0, "negative sample in: {line}");
        if let Some((name, rest)) = series.split_once('{') {
            assert!(rest.ends_with('}'), "unterminated labels: {line}");
            if let Some(stripped) = name.strip_suffix("_bucket") {
                // key the bucket run by series-without-le
                let labels: Vec<&str> = rest[..rest.len() - 1]
                    .split(',')
                    .filter(|l| !l.starts_with("le="))
                    .collect();
                let key = format!("{stripped}{{{}}}", labels.join(","));
                let cum = value as u64;
                let prev = last_bucket.insert(key.clone(), cum).unwrap_or(0);
                assert!(cum >= prev, "non-cumulative bucket in: {line}");
                if rest.contains("le=\"+Inf\"") {
                    inf_bucket.insert(key, cum);
                }
            }
        }
    }
    assert!(!inf_bucket.is_empty(), "no histogram rendered");
    for (key, cum) in &inf_bucket {
        let (name, labels) = key.split_once('{').unwrap();
        let count_line = format!("{name}_count{{{labels} {cum}");
        assert!(
            text.contains(&count_line),
            "`+Inf` bucket disagrees with _count for {key}"
        );
    }
}

/// A `Write` handle tests can keep a second reference to, so the bytes a
/// [`JsonlTrace`] produced stay readable after the PEMS is dropped.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn jsonl_trace_writes_one_parseable_line_per_event() {
    let buf = SharedBuf::default();
    let mut pems = Pems::builder()
        .bus(BusConfig::instant())
        .trace(Arc::new(JsonlTrace::new(buf.clone())))
        .build();
    deploy(&mut pems);
    pems.tick();
    pems.tick();
    drop(pems);

    let bytes = buf.0.lock().unwrap().clone();
    let text = String::from_utf8(bytes).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert!(lines.len() >= 5, "registered + 2×(start,end) at minimum");
    for line in &lines {
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        assert!(line.contains("\"ts_us\":"), "{line}");
        assert!(line.contains("\"event\":\""), "{line}");
    }
    assert_eq!(
        lines
            .iter()
            .filter(|l| l.contains("\"event\":\"tick_end\""))
            .count(),
        2
    );
    assert!(lines.iter().any(|l| l.contains("\"event\":\"failure\"")));
}
