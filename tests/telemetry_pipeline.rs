//! Cross-crate telemetry integration: a PEMS scenario with injected faults
//! drives the whole observability pipeline — per-service health, the metric
//! registry's Prometheus export, and structured JSONL traces (PR 3).

use std::io::Write;
use std::sync::{Arc, Mutex};

use serena::core::telemetry::{JsonlTrace, MemoryTrace, TraceEvent};
use serena::pems::Pems;
use serena::services::bus::BusConfig;
use serena::services::faults::{FaultPolicy, FaultyService};
use serena::services::health::HealthStatus;

/// Registers a healthy and an always-failing temperature sensor, an
/// extended `sensors` relation bound to `getTemperature`, and a continuous
/// query invoking it.
fn deploy(pems: &mut Pems) -> Arc<FaultyService> {
    use serena::core::service::fixtures;
    let reg = pems.directory();
    reg.register("steady", fixtures::temperature_sensor(1));
    let flaky = FaultyService::new(
        fixtures::temperature_sensor(2),
        // period 1, zero successes → every call fails
        FaultPolicy::Intermittent { fail: 1, ok: 0 },
    );
    reg.register("flaky", flaky.clone());
    pems.run_program(
        "PROTOTYPE getTemperature( ) : ( temperature REAL );
         EXTENDED RELATION sensors (
           sensor SERVICE, location STRING, temperature REAL VIRTUAL
         ) USING BINDING PATTERNS ( getTemperature[sensor] );
         INSERT INTO sensors VALUES ('steady', 'office'), ('flaky', 'roof');
         REGISTER QUERY temps AS INVOKE[getTemperature[sensor]](sensors);",
    )
    .unwrap();
    flaky
}

#[test]
fn faulty_service_health_and_prometheus_through_ticks() {
    let trace = Arc::new(MemoryTrace::new());
    let mut pems = Pems::builder()
        .bus(BusConfig::instant())
        .trace(trace.clone())
        .build();
    let flaky = deploy(&mut pems);

    let ticks = 4u64;
    for _ in 0..ticks {
        pems.tick();
    }

    // -- health reflects the injected fault policy exactly --
    let health = pems.service_health();
    assert_eq!(health.len(), 2);
    let by_name = |n: &str| health.iter().find(|h| h.reference.as_str() == n).unwrap();
    let steady = by_name("steady");
    assert_eq!(steady.status(), HealthStatus::Healthy);
    assert_eq!(steady.failures, 0);
    let bad = by_name("flaky");
    assert_eq!(bad.attempts, flaky.attempts(), "tracker sees every attempt");
    assert!(bad.failures > 0);
    assert_eq!(bad.failure_rate, 1.0);
    if bad.consecutive_errors >= 3 {
        assert_eq!(bad.status(), HealthStatus::Down);
    } else {
        assert_eq!(bad.status(), HealthStatus::Degraded);
    }

    // -- the trace saw the whole lifecycle --
    let events = trace.events();
    let count = |k: &str| events.iter().filter(|e| e.kind() == k).count();
    assert_eq!(count("query_registered"), 1);
    assert_eq!(count("tick_start"), ticks as usize);
    assert_eq!(count("tick_end"), ticks as usize);
    assert!(count("invocation") >= 2, "β invocations traced");
    assert!(count("failure") > 0, "injected faults traced");
    assert!(events
        .iter()
        .any(|e| matches!(e, TraceEvent::Invocation { ok: false, .. })));

    // -- Prometheus export is well-formed and carries the query series --
    let text = pems.render_metrics();
    assert_prometheus_well_formed(&text);
    assert!(text.contains(&format!(
        "serena_query_ticks_total{{query=\"temps\"}} {ticks}"
    )));
    assert!(text.contains("serena_query_tick_duration_ns_bucket{query=\"temps\""));
    assert!(text.contains("serena_query_lag_ns_count{query=\"temps\"}"));
    assert!(text.contains("serena_service_failures_total{service=\"flaky\"}"));
    assert!(text.contains("serena_queries_registered 1"));
}

/// Parse a Prometheus label block (the text between `{` and `}`) into
/// `(name, escaped-value)` pairs, validating the escaping as it goes.
/// Unlike a naive `split(',')`, this respects quoting: label *values* may
/// contain commas, spaces, braces and `le="…"` look-alikes, and use the
/// exposition escapes `\\`, `\"`, `\n` (plus this codebase's `\r`).
fn parse_labels(block: &str, line: &str) -> Vec<(String, String)> {
    let bytes = block.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let key_start = i;
        while i < bytes.len() && bytes[i] != b'=' {
            i += 1;
        }
        let key = &block[key_start..i];
        assert!(
            !key.is_empty()
                && key
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '+'),
            "invalid label name `{key}` in: {line}"
        );
        i += 1; // '='
        assert_eq!(bytes.get(i), Some(&b'"'), "unquoted label value in: {line}");
        i += 1;
        let val_start = i;
        loop {
            match bytes.get(i) {
                Some(b'"') => break,
                Some(b'\\') => match bytes.get(i + 1) {
                    Some(b'\\' | b'"' | b'n' | b'r') => i += 2,
                    other => panic!("invalid escape \\{other:?} in: {line}"),
                },
                Some(b'\n' | b'\r') => panic!("raw control char in label value: {line}"),
                Some(_) => i += 1,
                None => panic!("unterminated label value in: {line}"),
            }
        }
        out.push((key.to_string(), block[val_start..i].to_string()));
        i += 1; // closing '"'
        match bytes.get(i) {
            Some(b',') => i += 1,
            None => break,
            Some(other) => panic!("junk `{}` after label value in: {line}", *other as char),
        }
    }
    out
}

/// Undo [`parse_labels`]' escaped value — the round-trip check for hostile
/// label values.
fn unescape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    let mut chars = v.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('"') => out.push('"'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            other => panic!("invalid escape \\{other:?}"),
        }
    }
    out
}

/// Minimal Prometheus text-format validator: every line is a comment or
/// `name{labels} value` with properly quoted/escaped label values;
/// histogram buckets are cumulative, end at `+Inf`, and agree with their
/// `_count` series.
fn assert_prometheus_well_formed(text: &str) {
    use std::collections::HashMap;
    let mut last_bucket: HashMap<String, u64> = HashMap::new();
    let mut inf_bucket: HashMap<String, u64> = HashMap::new();
    for line in text.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (series, value) = line.rsplit_once(' ').unwrap_or_else(|| {
            panic!("not `series value`: {line}");
        });
        let value: f64 = value.parse().unwrap_or_else(|_| {
            panic!("non-numeric sample value in: {line}");
        });
        assert!(value >= 0.0, "negative sample in: {line}");
        if let Some((name, rest)) = series.split_once('{') {
            assert!(rest.ends_with('}'), "unterminated labels: {line}");
            let labels = parse_labels(&rest[..rest.len() - 1], line);
            if let Some(stripped) = name.strip_suffix("_bucket") {
                // key the bucket run by series-without-le
                let others: Vec<String> = labels
                    .iter()
                    .filter(|(k, _)| k != "le")
                    .map(|(k, v)| format!("{k}=\"{v}\""))
                    .collect();
                let key = format!("{stripped}{{{}}}", others.join(","));
                let cum = value as u64;
                let prev = last_bucket.insert(key.clone(), cum).unwrap_or(0);
                assert!(cum >= prev, "non-cumulative bucket in: {line}");
                if labels.iter().any(|(k, v)| k == "le" && v == "+Inf") {
                    inf_bucket.insert(key, cum);
                }
            }
        }
    }
    assert!(!inf_bucket.is_empty(), "no histogram rendered");
    for (key, cum) in &inf_bucket {
        let (name, labels) = key.split_once('{').unwrap();
        let count_line = format!("{name}_count{{{labels} {cum}");
        assert!(
            text.contains(&count_line),
            "`+Inf` bucket disagrees with _count for {key}"
        );
    }
}

/// Regression (ISSUE 8 satellite): a service whose *name* contains every
/// character the exposition format is sensitive to — quotes, backslashes,
/// newlines, carriage returns, commas, spaces, braces, even an `le="+Inf"`
/// decoy — must render as escaped label values the validator parses, and
/// the escaped value must round-trip back to the original name.
#[test]
fn hostile_service_names_render_escaped_and_round_trip() {
    use serena::core::service::fixtures;
    use serena::core::value::Value;

    let hostile = "sensor \"A\"\\roof\n{office},le=\"+Inf\" \r v2";
    let mut pems = Pems::builder().bus(BusConfig::instant()).build();
    pems.directory()
        .register(hostile, fixtures::temperature_sensor(3));
    pems.run_program(
        "PROTOTYPE getTemperature( ) : ( temperature REAL );
         EXTENDED RELATION sensors (
           sensor SERVICE, location STRING, temperature REAL VIRTUAL
         ) USING BINDING PATTERNS ( getTemperature[sensor] );
         REGISTER QUERY temps AS INVOKE[getTemperature[sensor]](sensors);",
    )
    .unwrap();
    pems.tables()
        .insert(
            "sensors",
            serena::core::tuple![Value::service(hostile), Value::str("roof")],
        )
        .unwrap();
    pems.tick();

    let text = pems.render_metrics();
    assert_prometheus_well_formed(&text);
    assert!(
        !text.contains('\r'),
        "raw carriage return leaked into the exposition"
    );
    // find the per-service series and round-trip its escaped label value
    let mut seen = false;
    for line in text.lines().filter(|l| !l.starts_with('#')) {
        let Some((series, _)) = line.rsplit_once(' ') else {
            continue;
        };
        let Some((name, rest)) = series.split_once('{') else {
            continue;
        };
        if !name.starts_with("serena_service_") {
            continue;
        }
        for (k, v) in parse_labels(&rest[..rest.len() - 1], line) {
            if k == "service" {
                assert_eq!(unescape_label(&v), hostile, "escaping did not round-trip");
                seen = true;
            }
        }
    }
    assert!(seen, "no per-service series rendered for the hostile name");
}

/// A `Write` handle tests can keep a second reference to, so the bytes a
/// [`JsonlTrace`] produced stay readable after the PEMS is dropped.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn jsonl_trace_writes_one_parseable_line_per_event() {
    let buf = SharedBuf::default();
    let mut pems = Pems::builder()
        .bus(BusConfig::instant())
        .trace(Arc::new(JsonlTrace::new(buf.clone())))
        .build();
    deploy(&mut pems);
    pems.tick();
    pems.tick();
    drop(pems);

    let bytes = buf.0.lock().unwrap().clone();
    let text = String::from_utf8(bytes).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert!(lines.len() >= 5, "registered + 2×(start,end) at minimum");
    for line in &lines {
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        assert!(line.contains("\"ts_us\":"), "{line}");
        assert!(line.contains("\"event\":\""), "{line}");
    }
    assert_eq!(
        lines
            .iter()
            .filter(|l| l.contains("\"event\":\"tick_end\""))
            .count(),
        2
    );
    assert!(lines.iter().any(|l| l.contains("\"event\":\"failure\"")));
}
