//! Two-node lifecycle tests for the distributed PEMS (ISSUE 9): an edge
//! runtime joins a fleet-hosting node over a real loopback socket, serves
//! β invocations through proxied services, is killed mid-run, and a
//! standby resumes **byte-identically** from the replicated checkpoint.
//! Plus: peer death evicts proxies fail-fast and recovery re-syncs them,
//! and a served endpoint survives hostile bytes on the wire.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use serena::core::physical::ExecOptions;
use serena::core::snapshot::Writer;
use serena::core::time::Instant;
use serena::pems::envspec::{ArrivalTrace, EnvSpec, QueryTemplate, WorkloadSpec};
use serena::pems::Pems;
use serena::services::directory::NodeDirectory;
use serena::services::fleet::FailureProfile;
use serena::services::node::{NodeHandle, ServiceNode};
use serena::services::transport::{InProcTransport, SocketTransport, Transport};
use serena::services::ServiceDirectory;
use serena::stream::exec::TickReport;

const TICKS: u64 = 8;
const KILL: u64 = 4;

/// A small deterministic environment: enough fleet for discovery and
/// faults to matter, small enough to keep the socket matrix fast.
fn spec() -> EnvSpec {
    EnvSpec::new(77)
        .sensors(16)
        .cameras(4)
        .failures(FailureProfile::new(0.25, 1.0))
        .arrivals(ArrivalTrace::new(77).mean_per_tick(8))
}

fn workload() -> WorkloadSpec {
    WorkloadSpec::new()
        .queries(
            QueryTemplate::HotAreas {
                window: 3,
                threshold: 30.0,
            },
            2,
        )
        .queries(QueryTemplate::RecentReadings { window: 4 }, 1)
        .queries(QueryTemplate::SensorInventory, 1)
        .queries(QueryTemplate::SampledTemperatures { every: 1 }, 2)
}

/// A fleet-hosting node served on `addr`: owns every generated service,
/// runs no queries.
fn host_on(transport: &Arc<dyn Transport>, addr: &str) -> (Pems, NodeHandle) {
    let s = spec();
    let mut host = Pems::builder().node_id("host").build();
    s.install_catalog(&mut host).expect("host catalog installs");
    s.deploy_into(&host);
    let handle = host
        .serve(Arc::clone(transport), addr)
        .expect("host serves");
    (host, handle)
}

/// An edge node linked to the host at `host_addr`: catalog + workload,
/// zero locally hosted services — every β call relays over the wire.
fn edge_on(transport: &Arc<dyn Transport>, host_addr: &str) -> (Pems, Vec<String>) {
    let s = spec();
    let mut edge = Pems::builder()
        .node_id("edge")
        .exec_options(ExecOptions::parallel(4))
        .build();
    s.install_catalog(&mut edge).expect("edge catalog installs");
    let names = workload()
        .register_into(&mut edge, &s)
        .expect("workload registers");
    edge.connect_peer(Arc::clone(transport), host_addr)
        .expect("edge links host");
    (edge, names)
}

/// Everything observable about one query's tick, in comparable form
/// (errors as a sorted multiset — surfacing order follows β order).
#[derive(Debug, PartialEq)]
struct Obs {
    query: String,
    at: Instant,
    delta_bytes: Vec<u8>,
    batch: Vec<serena::core::tuple::Tuple>,
    actions: String,
    errors: Vec<String>,
    invocations: u64,
}

fn observe(reports: Vec<(String, TickReport)>) -> Vec<Obs> {
    reports
        .into_iter()
        .map(|(query, r)| {
            let mut w = Writer::new();
            r.delta.encode(&mut w);
            let mut errors: Vec<String> = r.errors.iter().map(|e| e.to_string()).collect();
            errors.sort();
            Obs {
                query,
                at: r.at,
                delta_bytes: w.into_bytes(),
                batch: r.batch.clone(),
                actions: r.actions.to_string(),
                errors,
                invocations: r.stats.total_invocations(),
            }
        })
        .collect()
}

/// A collision-free UDS address for this test binary.
fn fresh_uds_addr() -> String {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let path = std::env::temp_dir().join(format!(
        "serena-dist-{}-{}.sock",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    format!("uds:{}", path.display())
}

/// The full lifecycle over real loopback sockets: the edge joins, serves
/// β through proxies, replicates every tick to a standby endpoint, dies
/// after tick `KILL-1`, and a successor rehydrated from the standby's
/// replicated checkpoint replays ticks `KILL..TICKS` byte-identically
/// against an uninterrupted baseline.
#[test]
#[cfg(unix)]
fn standby_resumes_byte_identically_from_replicated_checkpoint() {
    let transport: Arc<dyn Transport> = Arc::new(SocketTransport::new());

    // Uninterrupted baseline pair.
    let (mut base_host, base_handle) = host_on(&transport, &fresh_uds_addr());
    let (mut base_edge, names) = edge_on(&transport, base_handle.addr());
    let mut expected = Vec::new();
    for _ in 0..TICKS {
        base_host.tick();
        expected.push(observe(base_edge.tick()));
    }
    assert!(
        expected
            .iter()
            .flatten()
            .map(|o| o.invocations)
            .sum::<u64>()
            > 0,
        "baseline workload must relay β invocations"
    );

    // Doomed pair + standby endpoint receiving per-tick checkpoints.
    let standby_dir = Arc::new(NodeDirectory::new("standby"));
    let standby = ServiceNode::serve(Arc::clone(&transport), &fresh_uds_addr(), standby_dir)
        .expect("standby serves");
    let (mut host, handle) = host_on(&transport, &fresh_uds_addr());
    let (mut edge, _) = edge_on(&transport, handle.addr());
    let peer = edge
        .replicate_to(Arc::clone(&transport), standby.addr())
        .expect("edge replicates to standby");
    assert_eq!(peer, "standby");

    for t in 0..KILL {
        host.tick();
        let got = observe(edge.tick());
        assert_eq!(
            got, expected[t as usize],
            "replication must be observationally neutral (tick {t})"
        );
    }
    drop(edge); // the primary dies mid-run

    let (tick, bytes) = standby
        .last_checkpoint()
        .expect("standby holds a replicated checkpoint");
    assert_eq!(tick, KILL - 1, "checkpoint streamed after every tick");

    // Successor: same static setup against the *still running* host,
    // dynamic state rehydrated from the replicated snapshot.
    let (mut successor, succ_names) = edge_on(&transport, handle.addr());
    successor
        .restore_bytes(&bytes)
        .expect("successor restores the replicated checkpoint");
    assert_eq!(successor.clock(), Instant(KILL));
    for t in KILL..TICKS {
        host.tick();
        let got = observe(successor.tick());
        assert_eq!(
            got, expected[t as usize],
            "tick {t} diverged after takeover"
        );
    }

    // Final aggregates agree with the uninterrupted run too.
    assert_eq!(names, succ_names);
    for name in &names {
        assert_eq!(
            successor.processor().stats(name),
            base_edge.processor().stats(name),
            "stats for `{name}` diverged after takeover"
        );
        assert_eq!(
            successor.processor().current_relation(name),
            base_edge.processor().current_relation(name),
            "result of `{name}` diverged after takeover"
        );
    }
}

/// Peer death marks the link down on the next poll and evicts every
/// proxied service, so discovery shrinks and β fails fast instead of
/// hanging; re-serving the same endpoint re-syncs the full listing.
#[test]
fn peer_death_evicts_proxies_and_reconnect_resyncs() {
    let transport: Arc<dyn Transport> = Arc::new(InProcTransport::new());
    let (mut host, handle) = host_on(&transport, "inproc:dist-host");
    let (mut edge, _) = edge_on(&transport, handle.addr());

    // Two ticks: bus announcements land on the host, proxies adopt.
    for _ in 0..2 {
        host.tick();
        edge.tick();
    }
    let adopted = edge.directory().len();
    assert!(adopted > 0, "edge must have adopted the host's fleet");
    let status = edge.peer_status();
    assert_eq!(status.len(), 1);
    assert!(status[0].alive);
    assert_eq!(status[0].services, adopted);

    // Kill the host endpoint (keep the host runtime alive).
    let mut handle = handle;
    handle.shutdown();
    host.tick();
    edge.tick();
    let status = edge.peer_status();
    assert!(!status[0].alive, "dead peer must be marked down");
    assert_eq!(status[0].services, 0, "proxies must be evicted");
    assert_eq!(edge.directory().len(), 0);

    // Re-serve the same address: the next poll re-syncs everything.
    let _handle2 = host
        .serve(Arc::clone(&transport), "inproc:dist-host")
        .expect("host re-serves");
    host.tick();
    edge.tick();
    let status = edge.peer_status();
    assert!(status[0].alive, "recovered peer must be live again");
    assert_eq!(status[0].services, adopted, "full listing must re-sync");
    assert_eq!(edge.directory().len(), adopted);
}

/// A node must refuse to link to itself, and a served endpoint must
/// refuse to *relay* a β invocation for a service it merely proxies —
/// either hole turns a misconfigured link into an infinite relay loop
/// (edge resolves a proxy, relays to the server, which resolves the
/// same proxy, relays back, …).
#[test]
fn self_links_and_proxy_relays_are_refused() {
    use serena::core::tuple::Tuple;
    use serena::services::transport::Frame;

    let transport: Arc<dyn Transport> = Arc::new(InProcTransport::new());
    let (mut host, handle) = host_on(&transport, "inproc:dist-loop-host");
    host.tick();

    // A node refuses to link to its own endpoint.
    let err = host
        .connect_peer(Arc::clone(&transport), handle.addr())
        .expect_err("self-link must be refused");
    assert!(
        err.to_string().contains("itself"),
        "unexpected self-link error: {err}"
    );

    // An edge that adopted the host's fleet and serves its own endpoint
    // refuses to relay an Invoke for a host-origin (proxied) service.
    let (mut edge, _) = edge_on(&transport, handle.addr());
    let edge_handle = edge
        .serve(Arc::clone(&transport), "inproc:dist-loop-edge")
        .expect("edge serves");
    host.tick();
    edge.tick();
    let proxied = edge
        .directory()
        .references()
        .into_iter()
        .next()
        .expect("edge adopted the host's fleet");

    let mut conn = transport
        .connect(edge_handle.addr())
        .expect("raw client connects");
    conn.send(&Frame::Hello {
        node: "prober".into(),
    })
    .expect("hello sent");
    match conn.recv().expect("hello answered") {
        Frame::Welcome { node } => assert_eq!(node, "edge"),
        other => panic!("unexpected handshake reply: {other:?}"),
    }
    conn.send(&Frame::Invoke {
        service: proxied.clone(),
        prototype: "getTemperature".into(),
        input: Tuple::new(Vec::new()),
        at: 1,
    })
    .expect("invoke sent");
    match conn.recv().expect("invoke answered") {
        Frame::InvokeErr { error } => {
            let rendered = error.to_string();
            assert!(
                rendered.contains(&proxied.to_string()),
                "relay refusal must name the proxied service: {rendered}"
            );
        }
        other => panic!("proxied invoke must error, got {other:?}"),
    }
}

/// A served endpoint must survive hostile bytes on a real socket: junk
/// that is not a frame gets the connection dropped with a typed error
/// server-side, and well-formed clients keep working afterwards.
#[test]
#[cfg(unix)]
fn served_endpoint_survives_hostile_bytes() {
    use std::io::{Read, Write};

    let transport: Arc<dyn Transport> = Arc::new(SocketTransport::new());
    let (mut host, handle) = host_on(&transport, &fresh_uds_addr());
    // two ticks: bus announcements carry one tick of latency, so the
    // served listing is only non-empty from instant 1 on
    host.tick();
    host.tick();

    let path = handle
        .addr()
        .strip_prefix("uds:")
        .expect("uds address")
        .to_string();

    // Not a frame at all.
    let mut s = std::os::unix::net::UnixStream::connect(&path).expect("connects");
    s.write_all(b"GET / HTTP/1.1\r\n\r\n").expect("writes junk");
    let mut buf = [0u8; 16];
    // server closes without a reply frame; a clean EOF (Ok(0)) or reset
    // both count as "rejected"
    let n = s.read(&mut buf).unwrap_or(0);
    assert_eq!(n, 0, "junk must not elicit a reply");
    drop(s);

    // A declared length far beyond MAX_FRAME_LEN.
    let mut s = std::os::unix::net::UnixStream::connect(&path).expect("connects");
    let mut evil = Vec::from(*b"SRNF");
    evil.extend_from_slice(&u32::MAX.to_le_bytes());
    s.write_all(&evil).expect("writes oversized header");
    let n = s.read(&mut buf).unwrap_or(0);
    assert_eq!(n, 0, "oversized frame must not elicit a reply");
    drop(s);

    // The endpoint still serves well-formed clients.
    let edge_dir = Arc::new(NodeDirectory::new("late-edge"));
    let node = edge_dir
        .connect_peer(Arc::clone(&transport), handle.addr())
        .expect("well-formed client still connects");
    assert_eq!(node, "host");
    edge_dir.poll_peers(Instant(1));
    assert!(
        !edge_dir.is_empty(),
        "listing still served after hostile bytes"
    );
}
