//! Determinism regression for the environment generator (ISSUE 6
//! acceptance): the same `EnvSpec` seed replays **byte-identically** —
//! across independent runs, across β invocation parallelism {1, 8},
//! across scheduler worker counts {1, 2, 8} and with cross-query β dedup
//! on or off (ISSUE 7).
//!
//! This is the property that lets future scheduler/operator PRs claim
//! "byte-identical output vs serial" on realistic massive-scale workloads:
//! every per-query delta (through its canonical snapshot encoding), every
//! batch, action set, error multiset and β-cache statistic must agree, and
//! so must the final per-query relations and service-health report.
//!
//! Raw `Pems::snapshot_bytes` output is deliberately *not* compared: the
//! checkpoint persists per-node wall-clock self-times (`ExecStats`), which
//! are real elapsed durations and therefore never replay identically.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use serena::core::physical::ExecOptions;
use serena::core::snapshot::Writer;
use serena::core::time::Instant;
use serena::pems::envspec::{ArrivalTrace, EnvSpec, QueryTemplate, WorkloadSpec};
use serena::pems::{Pems, SchedulerConfig};
use serena::services::fleet::FailureProfile;
use serena::services::transport::{InProcTransport, SocketTransport, Transport};
use serena::stream::exec::TickReport;

const TICKS: u64 = 8;

fn spec() -> EnvSpec {
    EnvSpec::new(1234)
        .sensors(64)
        .cameras(8)
        .failures(FailureProfile::new(0.3, 1.0))
        .heat_event(3, Instant(2), Instant(4), 40.0)
        .arrivals(ArrivalTrace::new(1234).mean_per_tick(24))
}

fn workload() -> WorkloadSpec {
    WorkloadSpec::new()
        .queries(
            QueryTemplate::HotAreas {
                window: 3,
                threshold: 30.0,
            },
            4,
        )
        .queries(QueryTemplate::AreaWatch { window: 2 }, 3)
        .queries(QueryTemplate::RecentReadings { window: 4 }, 2)
        .queries(QueryTemplate::SensorInventory, 1)
        // β-bearing: live invocations through the (possibly parallel)
        // invoker stack — the part parallelism could perturb.
        .queries(QueryTemplate::SampledTemperatures { every: 1 }, 2)
}

/// Everything observable about one query's tick, in comparable form. The
/// delta goes through its canonical snapshot encoding so equality is
/// byte-level, not just structural.
#[derive(Debug, PartialEq)]
struct Obs {
    query: String,
    at: Instant,
    delta_bytes: Vec<u8>,
    batch: Vec<serena::core::tuple::Tuple>,
    actions: String,
    errors: Vec<String>,
    invocations: u64,
    cache_hits: u64,
    cache_misses: u64,
}

fn observe(reports: Vec<(String, TickReport)>) -> Vec<Obs> {
    reports
        .into_iter()
        .map(|(query, r)| {
            let mut w = Writer::new();
            r.delta.encode(&mut w);
            // Errors are compared as a sorted multiset: *which* invocations
            // fail at an instant is part of the determinism contract, but
            // their surfacing order follows β invocation order, which is
            // unspecified (and changes under invoke parallelism anyway).
            let mut errors: Vec<String> = r.errors.iter().map(|e| e.to_string()).collect();
            errors.sort();
            Obs {
                query,
                at: r.at,
                delta_bytes: w.into_bytes(),
                batch: r.batch.clone(),
                actions: r.actions.to_string(),
                errors,
                invocations: r.stats.total_invocations(),
                cache_hits: r.stats.total_cache_hits(),
                cache_misses: r.stats.total_cache_misses(),
            }
        })
        .collect()
}

/// Deploy the spec'd environment on a runtime with the given β
/// parallelism, run `TICKS` instants, and return every observation plus
/// a canonical rendering of the final runtime state: each query's current
/// relation (sorted occurrences) and the full service-health report.
fn run(parallelism: usize) -> (Vec<Obs>, Vec<String>) {
    run_with(parallelism, 1, true)
}

/// [`run`] generalised over the multi-query scheduler axes: pool width
/// (`SERENA_SCHED_WORKERS`) and cross-query β dedup. The returned state
/// keeps the service-health report *last*, after one entry per query, so
/// callers can strip it when comparing dedup on/off (dedup changes how
/// many *physical* calls back the same logical result — health attempt
/// counts legitimately differ; everything a query observes must not).
fn run_with(parallelism: usize, workers: usize, dedup: bool) -> (Vec<Obs>, Vec<String>) {
    run_traced(parallelism, workers, dedup, false)
}

/// [`run_with`] with the span tracer's flight recorder explicitly armed or
/// disarmed (ISSUE 8): recording spans must be strictly observational.
fn run_traced(
    parallelism: usize,
    workers: usize,
    dedup: bool,
    tracing: bool,
) -> (Vec<Obs>, Vec<String>) {
    let s = spec();
    let mut pems = Pems::builder()
        .exec_options(ExecOptions::parallel(parallelism))
        .scheduler(SchedulerConfig::new(workers))
        .dedup(dedup)
        .tracing(tracing)
        .build();
    s.install_catalog(&mut pems).expect("catalog installs");
    s.deploy_into(&pems);
    let names = workload()
        .register_into(&mut pems, &s)
        .expect("workload registers");
    let mut obs = Vec::new();
    for _ in 0..TICKS {
        obs.extend(observe(pems.tick()));
    }
    (obs, collect_state(&pems, &names))
}

/// Canonical rendering of the final runtime state: one entry per query
/// (its current relation, sorted), then the full service-health report.
fn collect_state(pems: &Pems, names: &[String]) -> Vec<String> {
    let mut state = Vec::new();
    for name in names {
        // βˢ-rooted queries emit batches rather than maintaining a
        // relation, so `current_relation` can legitimately be absent.
        // Where present, sort: the backing Vec order follows delta
        // application order, which is not part of the contract — its
        // contents are.
        match pems.processor().current_relation(name) {
            Some(rel) => {
                let mut tuples = rel.tuples().to_vec();
                tuples.sort();
                state.push(format!("{name}: {tuples:?}"));
            }
            None => state.push(format!("{name}: <no relation>")),
        }
    }
    for h in pems.service_health() {
        state.push(format!(
            "{} attempts={} failures={} consecutive={} last_seen={:?} last_error={:?} window={}",
            h.reference,
            h.attempts,
            h.failures,
            h.consecutive_errors,
            h.last_seen,
            h.last_error,
            h.window_len
        ));
    }
    state
}

/// [`run`] split across two nodes (ISSUE 9 acceptance): a **host** PEMS
/// owns the generated fleet and serves its directory on `transport`,
/// while an **edge** PEMS registers the catalog and the workload but
/// deploys nothing — every sensor it discovers is a proxy, and every βˢ
/// invocation relays over the wire. The two runtimes tick in lockstep
/// (host first, so membership changes land with the same one-tick bus
/// latency a local deployment has), and the edge's observations must be
/// byte-identical to a single-node run — including the health report,
/// because relayed errors re-surface structurally.
fn run_distributed(
    parallelism: usize,
    transport: Arc<dyn Transport>,
    addr: &str,
) -> (Vec<Obs>, Vec<String>) {
    let s = spec();
    let mut host = Pems::builder().node_id("host").build();
    s.install_catalog(&mut host).expect("host catalog installs");
    s.deploy_into(&host);
    let handle = host
        .serve(Arc::clone(&transport), addr)
        .expect("host serves");

    let mut edge = Pems::builder()
        .node_id("edge")
        .exec_options(ExecOptions::parallel(parallelism))
        .scheduler(SchedulerConfig::new(1))
        .dedup(true)
        .build();
    s.install_catalog(&mut edge).expect("edge catalog installs");
    let names = workload()
        .register_into(&mut edge, &s)
        .expect("workload registers");
    let peer = edge
        .connect_peer(Arc::clone(&transport), handle.addr())
        .expect("edge links host");
    assert_eq!(peer, "host");

    let mut obs = Vec::new();
    for _ in 0..TICKS {
        host.tick();
        obs.extend(observe(edge.tick()));
    }
    (obs, collect_state(&edge, &names))
}

/// A collision-free UDS path for this test binary.
fn fresh_uds_addr() -> String {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let path = std::env::temp_dir().join(format!(
        "serena-envgen-{}-{}.sock",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    format!("uds:{}", path.display())
}

#[test]
fn same_seed_replays_byte_identically() {
    let (a_obs, a_state) = run(1);
    let (b_obs, b_state) = run(1);
    assert!(!a_obs.is_empty());
    assert_eq!(a_obs, b_obs, "two runs of the same spec diverged");
    assert_eq!(a_state, b_state, "final runtime state diverged");
    // the workload actually did something worth protecting
    assert!(a_obs.iter().any(|o| !o.delta_bytes.is_empty()));
    assert!(a_obs.iter().map(|o| o.invocations).sum::<u64>() > 0);
    assert!(
        a_obs.iter().map(|o| o.errors.len()).sum::<usize>() > 0,
        "the failure profile must surface some injected faults"
    );
}

#[test]
fn parallel_replay_is_byte_identical_to_serial() {
    let (serial_obs, serial_state) = run(1);
    let (par_obs, par_state) = run(8);
    assert_eq!(
        serial_obs, par_obs,
        "invoke_parallelism=8 diverged from serial"
    );
    assert_eq!(
        serial_state, par_state,
        "parallel final runtime state diverged from serial"
    );
}

#[test]
fn worker_counts_replay_byte_identically() {
    // ISSUE 7 acceptance: per-query deltas, actions and final relations
    // are byte-identical whether the tick round runs on one worker or
    // on a stealing pool — and so is the health report, because with the
    // dedup memo armed the *physical* call set is deterministic too.
    let (base_obs, base_state) = run_with(4, 1, true);
    for workers in [2, 8] {
        let (obs, state) = run_with(4, workers, true);
        assert_eq!(
            base_obs, obs,
            "workers={workers} diverged from the single-worker run"
        );
        assert_eq!(
            base_state, state,
            "workers={workers} final state diverged from the single-worker run"
        );
    }
}

#[test]
fn dedup_toggle_changes_no_query_observable() {
    let queries = workload().total();
    let (on_obs, on_state) = run_with(4, 4, true);
    let (off_obs, off_state) = run_with(4, 4, false);
    assert_eq!(on_obs, off_obs, "β dedup changed a query's tick output");
    // Final relations must agree entry for entry; the trailing health
    // report is excluded — coalescing shrinks physical attempt counts.
    assert_eq!(
        on_state[..queries],
        off_state[..queries],
        "β dedup changed a final relation"
    );
    assert!(on_state.len() > queries, "health report missing from state");
}

#[test]
fn flight_recorder_changes_no_query_observable() {
    // ISSUE 8 acceptance: the span tracer is a pure observer. Every
    // per-query delta, batch, action set, error multiset, β statistic,
    // final relation *and the health report* must be byte-identical with
    // the flight recorder armed vs disarmed — on a stealing pool with
    // parallel β invocation, where spans actually record on every layer.
    let (armed_obs, armed_state) = run_traced(4, 4, true, true);
    let (off_obs, off_state) = run_traced(4, 4, true, false);
    assert_eq!(
        armed_obs, off_obs,
        "an armed flight recorder changed a query's tick output"
    );
    assert_eq!(
        armed_state, off_state,
        "an armed flight recorder changed the final runtime state"
    );
}

#[test]
fn two_node_inproc_replay_is_byte_identical_to_local() {
    // ISSUE 9 acceptance: splitting the environment across a host node
    // (fleet) and an edge node (queries) linked by the in-proc transport
    // changes *nothing* a query observes — deltas, batches, actions,
    // error multisets, β statistics, final relations and the health
    // report all replay byte-identically, at serial and parallel β.
    for parallelism in [1, 8] {
        let (local_obs, local_state) = run(parallelism);
        let transport: Arc<dyn Transport> = Arc::new(InProcTransport::new());
        let (dist_obs, dist_state) = run_distributed(parallelism, transport, "inproc:envgen-host");
        assert_eq!(
            local_obs, dist_obs,
            "two-node in-proc run (parallelism={parallelism}) diverged from local"
        );
        assert_eq!(
            local_state, dist_state,
            "two-node in-proc final state (parallelism={parallelism}) diverged from local"
        );
        // the workload really crossed the wire: β invocations happened
        assert!(dist_obs.iter().map(|o| o.invocations).sum::<u64>() > 0);
    }
}

#[test]
#[cfg(unix)]
fn two_node_uds_replay_is_byte_identical_to_local() {
    // Same property over a real socket: length-prefixed frames on a
    // Unix-domain socket must relay β calls and directory events without
    // perturbing a single byte of query output.
    for parallelism in [1, 8] {
        let (local_obs, local_state) = run(parallelism);
        let transport: Arc<dyn Transport> = Arc::new(SocketTransport::new());
        let (dist_obs, dist_state) = run_distributed(parallelism, transport, &fresh_uds_addr());
        assert_eq!(
            local_obs, dist_obs,
            "two-node UDS run (parallelism={parallelism}) diverged from local"
        );
        assert_eq!(
            local_state, dist_state,
            "two-node UDS final state (parallelism={parallelism}) diverged from local"
        );
    }
}

#[test]
fn generated_environment_and_trace_are_pure_functions_of_the_seed() {
    let a = spec();
    let b = spec();
    // fleet naming and metadata
    assert_eq!(
        (0..64).map(|i| a.sensor_name(i)).collect::<Vec<_>>(),
        (0..64).map(|i| b.sensor_name(i)).collect::<Vec<_>>()
    );
    // the tuple trace, instant by instant
    let (ta, tb) = (
        a.arrival_trace().expect("trace set"),
        b.arrival_trace().expect("trace set"),
    );
    let areas: Vec<String> = a.area_names().to_vec();
    for t in 0..TICKS {
        assert_eq!(
            ta.tuples_at(Instant(t), &areas),
            tb.tuples_at(Instant(t), &areas)
        );
    }
    // a different seed really generates a different trace
    let other = ArrivalTrace::new(77).mean_per_tick(24).devices(64);
    assert!(
        (0..TICKS).any(|t| other.tuples_at(Instant(t), &areas) != ta.tuples_at(Instant(t), &areas)),
        "distinct seeds should not collide on the whole trace"
    );
}
