//! Acceptance tests for adaptive re-optimization (E20): the telemetry-fed
//! replan loop swaps a degraded query onto a cheaper plan at a tick
//! boundary, decisions are replay-deterministic (two runs with the same
//! fault schedule replan at the same instants and emit byte-identical
//! output), and a node killed and restored across a replan boundary
//! resumes with the adapted plan and replays identically.

use serena::core::formula::Formula;
use serena::core::service::fixtures;
use serena::core::time::Instant;
use serena::prelude::*;
use serena::services::bus::BusConfig;
use serena::services::faults::{FaultPolicy, FaultyService};
use serena::stream::plan::StreamPlan;

const SENSOR_DDL: &str = "
    PROTOTYPE getTemperature( ) : ( temperature REAL );
    EXTENDED RELATION sensors (
      sensor SERVICE, location STRING, temperature REAL VIRTUAL
    ) USING BINDING PATTERNS ( getTemperature[sensor] );
    INSERT INTO sensors VALUES
      ('sensor01', 'corridor'), ('sensor06', 'office'),
      ('sensor07', 'roof'), ('sensor22', 'kitchen');
";

/// The E20 query, deliberately registered in its naive shape: sample
/// every sensor each instant, window, then filter to one location. The
/// optimizer's candidate list contains the pushed-down form that samples
/// only the corridor sensor.
fn naive_plan() -> StreamPlan {
    StreamPlan::source("sensors")
        .sample_invoke("getTemperature", "sensor", 1)
        .window(1)
        .select(Formula::eq_const("location", "corridor"))
}

/// A PEMS over four sensors, all failing during the outage interval, with
/// a breaker so degradation shows up as logically-timed transitions.
fn outage_pems(adaptive: Option<ReplanPolicy>, outage: Option<(u64, u64)>) -> Pems {
    let mut builder = Pems::builder()
        .bus(BusConfig::instant())
        .resilience(ResiliencePolicy::disabled().with_breaker(3, 8))
        .exec_options(ExecOptions::default().with_degrade(DegradePolicy::DropTuple));
    if let Some(policy) = adaptive {
        builder = builder.adaptive(policy);
    }
    let mut pems = builder.build();
    let reg = pems.directory();
    for (name, seed) in [
        ("sensor01", 1u64),
        ("sensor06", 6),
        ("sensor07", 7),
        ("sensor22", 22),
    ] {
        let svc = fixtures::temperature_sensor(seed);
        match outage {
            Some((from, to)) => reg.register(
                name,
                FaultyService::new(
                    svc,
                    FaultPolicy::Outage {
                        from: Instant(from),
                        to: Instant(to),
                    },
                ),
            ),
            None => reg.register(name, svc),
        }
    }
    pems.run_program(SENSOR_DDL).unwrap();
    pems
}

/// One tick's observable output, in a directly comparable form.
fn tick_digest(reports: &[(String, TickReport)]) -> Vec<(String, Vec<String>, Vec<String>, usize)> {
    reports
        .iter()
        .map(|(name, r)| {
            (
                name.clone(),
                r.delta
                    .inserts
                    .sorted_occurrences()
                    .iter()
                    .map(|t| format!("{t:?}"))
                    .collect(),
                r.batch.iter().map(|t| format!("{t:?}")).collect(),
                r.errors.len(),
            )
        })
        .collect()
}

#[test]
fn adaptivity_is_off_by_default() {
    let mut pems = outage_pems(None, Some((2, 10)));
    pems.register_query("watch", &naive_plan()).unwrap();
    for _ in 0..20 {
        pems.tick();
    }
    assert!(!pems.adaptive_enabled());
    assert!(pems.replan_history().is_empty());
    assert!(
        pems.plan_report("watch").is_err(),
        "plan report needs adaptivity"
    );
    assert!(pems.force_replan("watch").is_err());
}

#[test]
fn degradation_triggers_a_breaker_replan_that_cuts_invocations() {
    let run = |adaptive: bool| {
        let policy = ReplanPolicy {
            cooldown_ticks: 2,
            ..ReplanPolicy::default()
        };
        let mut pems = outage_pems(adaptive.then_some(policy), Some((5, 60)));
        pems.register_query("watch", &naive_plan()).unwrap();
        for _ in 0..40 {
            pems.tick();
        }
        let invocations = pems.processor().stats("watch").unwrap().invocations;
        (pems.replan_history().to_vec(), invocations)
    };
    let (static_history, static_invocations) = run(false);
    assert!(static_history.is_empty());
    let (adaptive_history, adaptive_invocations) = run(true);
    assert!(
        !adaptive_history.is_empty(),
        "the outage must trigger at least one replan"
    );
    assert_eq!(adaptive_history[0].reason, ReplanReason::BreakerTransition);
    assert_ne!(adaptive_history[0].candidate, 0, "swapped off the original");
    // E20's point: the pushed-down plan samples one sensor instead of
    // four, so the adaptive run performs strictly fewer live invocations
    assert!(
        adaptive_invocations < static_invocations,
        "adaptive ({adaptive_invocations}) should invoke less than static ({static_invocations})"
    );
}

#[test]
fn same_fault_schedule_replans_at_same_instants_with_identical_output() {
    let run = || {
        let mut pems = outage_pems(Some(ReplanPolicy::default()), Some((5, 25)));
        pems.register_query("watch", &naive_plan()).unwrap();
        let mut digests = Vec::new();
        for _ in 0..40 {
            digests.push(tick_digest(&pems.tick()));
        }
        (digests, pems.replan_history().to_vec())
    };
    let (digests_a, history_a) = run();
    let (digests_b, history_b) = run();
    assert!(!history_a.is_empty(), "the outage must trigger a replan");
    assert_eq!(history_a, history_b, "replan instants/choices must agree");
    assert_eq!(digests_a, digests_b, "tick output must be byte-identical");
}

#[test]
fn kill_and_restore_across_a_replan_boundary_replays_identically() {
    let build = || {
        let mut pems = outage_pems(Some(ReplanPolicy::default()), Some((5, 25)));
        pems.register_query("watch", &naive_plan()).unwrap();
        pems
    };
    // drive the primary until at least one replan happened, then a few
    // ticks more so the checkpoint lands *after* the swap
    let mut primary = build();
    let mut before = Vec::new();
    while primary.replan_history().is_empty() {
        before.push(tick_digest(&primary.tick()));
        assert!(
            primary.clock() < Instant(35),
            "no replan triggered within the outage"
        );
    }
    before.push(tick_digest(&primary.tick()));
    let bytes = primary.snapshot_bytes();

    // a fresh node re-runs the static setup and restores the snapshot:
    // it must resume with the adapted plan already applied
    let mut restored = build();
    restored.restore_bytes(&bytes).expect("restore");
    assert_eq!(restored.clock(), primary.clock());
    assert_eq!(restored.replan_history(), primary.replan_history());

    // both continue through the rest of the outage and past recovery:
    // byte-identical replay, no new replan from re-detecting the same
    // (already-adapted) degradation
    let history_len = primary.replan_history().len();
    for _ in 0..25 {
        let a = tick_digest(&primary.tick());
        let b = tick_digest(&restored.tick());
        assert_eq!(a, b);
    }
    assert_eq!(primary.replan_history().len(), history_len);
    assert_eq!(restored.replan_history(), primary.replan_history());
}

#[test]
fn snapshot_from_adaptive_runtime_refuses_a_non_adaptive_restore() {
    let mut pems = outage_pems(Some(ReplanPolicy::default()), Some((5, 25)));
    pems.register_query("watch", &naive_plan()).unwrap();
    while pems.replan_history().is_empty() {
        pems.tick();
        assert!(pems.clock() < Instant(35));
    }
    let bytes = pems.snapshot_bytes();
    let mut plain = outage_pems(None, Some((5, 25)));
    plain.register_query("watch", &naive_plan()).unwrap();
    let err = plain.restore_bytes(&bytes).unwrap_err();
    assert!(
        err.to_string().contains("adaptive"),
        "mismatch should name the adaptive section: {err}"
    );
}

#[test]
fn forced_replan_swaps_healthy_queries_to_the_cheaper_candidate() {
    let mut pems = outage_pems(Some(ReplanPolicy::default()), None);
    pems.register_query("watch", &naive_plan()).unwrap();
    pems.tick();
    // healthy system: no trigger ever fired, still on the original
    assert!(pems.replan_history().is_empty());
    let report = pems.plan_report("watch").unwrap();
    assert!(
        report.contains("* [0]"),
        "original marked current:\n{report}"
    );

    // the pushed-down candidate is cheaper even when healthy (4 sampled
    // sensors vs 1), so a forced evaluation swaps
    assert!(pems.force_replan("watch").unwrap());
    assert_eq!(pems.replan_history().len(), 1);
    assert_eq!(pems.replan_history()[0].reason, ReplanReason::Forced);
    let report = pems.plan_report("watch").unwrap();
    assert!(
        !report.contains("* [0]"),
        "no longer on the original:\n{report}"
    );

    // idempotent: the best candidate is already running
    assert!(!pems.force_replan("watch").unwrap());
    assert_eq!(pems.replan_history().len(), 1);

    // and the swapped query keeps producing the same rows as before
    let reports = pems.tick();
    assert_eq!(reports.len(), 1);
    assert!(reports[0].1.errors.is_empty());
}
