//! Deterministic pseudo-random generators shared by the property suites.
//!
//! The workspace builds without registry access, so the property tests
//! cannot pull in `proptest`. Each suite instead drives its invariants from
//! this xorshift64*-based [`Rng`]: the same seeds generate the same cases
//! on every run, which keeps failures reproducible (re-run the named test)
//! while still exploring a few hundred random inputs per property.

#![allow(dead_code)]

/// A deterministic xorshift64* generator.
pub struct Rng(u64);

impl Rng {
    /// Seeded generator; distinct seeds give independent-looking streams.
    pub fn new(seed: u64) -> Self {
        // Splash the seed so small consecutive seeds diverge immediately.
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `0..bound` (`bound > 0`).
    pub fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }

    /// Uniform `u64` in `lo..hi`.
    pub fn u64_in(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next_u64() % (hi - lo)
    }

    /// Uniform `i64` in `lo..hi`.
    pub fn i64_in(&mut self, lo: i64, hi: i64) -> i64 {
        lo + (self.next_u64() % (hi - lo) as u64) as i64
    }

    /// A fair coin.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Uniform choice from a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len())]
    }

    /// A vector of `len ∈ lo..hi` elements drawn from `f`.
    pub fn vec_of<T>(&mut self, lo: usize, hi: usize, mut f: impl FnMut(&mut Rng) -> T) -> Vec<T> {
        let n = lo + self.below(hi - lo);
        (0..n).map(|_| f(self)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::Rng;

    #[test]
    fn rng_is_deterministic_and_in_range() {
        let a: Vec<u64> = {
            let mut r = Rng::new(42);
            (0..16).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng::new(42);
            (0..16).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let mut r = Rng::new(7);
        for _ in 0..1000 {
            assert!(r.below(5) < 5);
            let v = r.i64_in(-3, 9);
            assert!((-3..9).contains(&v));
        }
    }
}
