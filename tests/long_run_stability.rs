//! Long-run stability: the continuous engine must hold bounded state over
//! thousands of ticks (windows expire, invocation caches retract, outboxes
//! only grow with real deliveries) — the "robustness" assessment §5.2
//! leaves open.

use serena::core::prelude::*;
use serena::pems::scenario::{deploy_rss, deploy_surveillance, RssConfig, SurveillanceConfig};

#[test]
fn rss_window_state_is_bounded_over_5000_ticks() {
    let config = RssConfig {
        window: 10,
        ..RssConfig::default()
    };
    let mut pems = deploy_rss(&config).unwrap();
    let mut max_held = 0usize;
    let mut total_inserted = 0u64;
    for _ in 0..5_000u64 {
        let reports = pems.tick();
        total_inserted += reports[0].1.delta.inserts.len() as u64;
        let held = pems
            .processor()
            .current_relation("keyword_watch")
            .map(|r| r.len())
            .unwrap_or(0);
        max_held = max_held.max(held);
    }
    // 3 feeds × ≤2 items/tick × 10-tick window = hard bound 60
    assert!(max_held <= 60, "window state leaked: {max_held} items held");
    assert!(total_inserted > 500, "the stream must stay live");
    let stats = pems.processor().stats("keyword_watch").unwrap();
    assert_eq!(stats.ticks, 5_000);
    // every insertion that left the window was retracted
    assert!(stats.deleted >= stats.inserted - 60);
}

#[test]
fn surveillance_runs_1000_ticks_without_errors() {
    let config = SurveillanceConfig {
        sensors: 12,
        cameras: 6,
        contacts: 6,
        threshold: 22.9, // intermittent alerts: plenty of churn
        ..SurveillanceConfig::default()
    };
    let mut s = deploy_surveillance(&config).unwrap();
    let mut errors = 0u64;
    let mut actions = 0u64;
    for _ in 0..1_000u64 {
        for (_, r) in s.pems.tick() {
            errors += r.errors.len() as u64;
            actions += r.actions.len() as u64;
        }
    }
    assert_eq!(errors, 0, "healthy deployment must not surface errors");
    assert!(actions > 0, "the band-edge threshold must fire sometimes");
    // every action corresponds to a delivered message
    let delivered: usize = s.outboxes.values().map(|o| o.lock().len()).sum();
    assert_eq!(delivered as u64, actions);
    assert_eq!(s.pems.clock(), Instant(1_000));
}

#[test]
fn invocation_cache_retracts_under_sensor_churn() {
    // register/unregister a sensor repeatedly; the discovery table and the
    // β cache must not accumulate stale rows.
    use serena::pems::Pems;
    use serena::services::bus::BusConfig;

    let mut pems = Pems::builder().bus(BusConfig::instant()).build();
    pems.run_program(
        "PROTOTYPE getTemperature( ) : ( temperature REAL );
         EXTENDED RELATION sensors (
           sensor SERVICE, location STRING, temperature REAL VIRTUAL
         ) USING BINDING PATTERNS ( getTemperature[sensor] );
         REGISTER QUERY temps AS INVOKE[getTemperature[sensor]](sensors);",
    )
    .unwrap();
    pems.register_discovery("sensors", "getTemperature", "sensor")
        .unwrap();
    let lerm = pems.local_erm("wing");
    pems.directory().set("s0", "location", Value::str("office"));

    for round in 0..200u64 {
        if round % 2 == 0 {
            lerm.register_service(
                "s0",
                serena::core::service::fixtures::temperature_sensor(round),
                pems.clock(),
            );
        } else {
            lerm.unregister_service("s0", pems.clock());
        }
        pems.tick();
        let held = pems
            .processor()
            .current_relation("temps")
            .map(|r| r.len())
            .unwrap_or(0);
        assert!(held <= 1, "stale rows accumulated: {held} at round {round}");
    }
}
