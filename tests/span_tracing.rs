//! ISSUE 8 acceptance — hierarchical span tracing: on a realistic
//! generated workload, the flight recorder's span tree is well formed
//! under every scheduler shape (workers {1, 4} × cross-query β dedup
//! on/off):
//!
//! * every retained span is **closed** (`end_ns ≥ start_ns > 0`) — the
//!   ring only ever holds completed spans;
//! * every child whose parent is still in the snapshot nests **within**
//!   its parent's interval (the RAII guards bracket inner work, including
//!   across the scheduler's thread hop);
//! * per query, the `query.tick` spans' logical instants are monotone;
//! * the Chrome/Perfetto export is syntactically valid JSON with the
//!   expected event structure and attributes.

use serena::core::physical::ExecOptions;
use serena::core::telemetry::{chrome_trace, SpanRecord};
use serena::core::time::Instant;
use serena::pems::envspec::{ArrivalTrace, EnvSpec, QueryTemplate, WorkloadSpec};
use serena::pems::{Pems, SchedulerConfig};
use serena::services::fleet::FailureProfile;
use serena::services::resilience::ResiliencePolicy;

const TICKS: u64 = 6;

/// The E16-small environment (the determinism suite's spec): 64 flaky
/// sensors, 8 cameras, a heat event and trace-driven arrivals.
fn spec() -> EnvSpec {
    EnvSpec::new(1234)
        .sensors(64)
        .cameras(8)
        .failures(FailureProfile::new(0.3, 1.0))
        .heat_event(3, Instant(2), Instant(4), 40.0)
        .arrivals(ArrivalTrace::new(1234).mean_per_tick(24))
}

fn workload() -> WorkloadSpec {
    WorkloadSpec::new()
        .queries(
            QueryTemplate::HotAreas {
                window: 3,
                threshold: 30.0,
            },
            4,
        )
        .queries(QueryTemplate::AreaWatch { window: 2 }, 3)
        .queries(QueryTemplate::RecentReadings { window: 4 }, 2)
        .queries(QueryTemplate::SensorInventory, 1)
        // β-bearing: real invocations → beta/beta.attempt spans
        .queries(QueryTemplate::SampledTemperatures { every: 1 }, 2)
}

fn run(workers: usize, dedup: bool, resilience: bool) -> (Pems, Vec<SpanRecord>) {
    let s = spec();
    let mut builder = Pems::builder()
        .exec_options(ExecOptions::parallel(4))
        .scheduler(SchedulerConfig::new(workers))
        .dedup(dedup)
        .tracing(true);
    if resilience {
        builder = builder.resilience(ResiliencePolicy::standard());
    }
    let mut pems = builder.build();
    s.install_catalog(&mut pems).expect("catalog installs");
    s.deploy_into(&pems);
    workload()
        .register_into(&mut pems, &s)
        .expect("workload registers");
    for _ in 0..TICKS {
        pems.tick();
    }
    let spans = pems.flight_recorder().snapshot();
    (pems, spans)
}

fn assert_span_tree_invariants(spans: &[SpanRecord], label: &str) {
    use std::collections::HashMap;
    assert!(!spans.is_empty(), "{label}: no spans retained");
    let by_id: HashMap<u64, &SpanRecord> = spans.iter().map(|s| (s.id, s)).collect();
    assert_eq!(by_id.len(), spans.len(), "{label}: duplicate span ids");
    for s in spans {
        assert_ne!(s.id, 0, "{label}: span id 0 is reserved for 'no parent'");
        assert!(
            s.end_ns >= s.start_ns && s.end_ns > 0,
            "{label}: span {} ({}) retained unclosed",
            s.id,
            s.name
        );
        if s.parent != 0 {
            if let Some(p) = by_id.get(&s.parent) {
                assert!(
                    s.start_ns >= p.start_ns && s.end_ns <= p.end_ns,
                    "{label}: span {} ({}) [{}, {}] escapes parent {} ({}) [{}, {}]",
                    s.id,
                    s.name,
                    s.start_ns,
                    s.end_ns,
                    p.id,
                    p.name,
                    p.start_ns,
                    p.end_ns
                );
            }
        }
    }
    // per query, tick instants are monotone in recording order (the
    // snapshot is sorted by start time)
    let mut per_query: HashMap<&str, Vec<&SpanRecord>> = HashMap::new();
    for s in spans.iter().filter(|s| s.name == "query.tick") {
        let q = s.attr_str("query").expect("query.tick has a query attr");
        per_query.entry(q).or_default().push(s);
    }
    assert!(!per_query.is_empty(), "{label}: no query.tick spans");
    for (q, ticks) in per_query {
        for w in ticks.windows(2) {
            assert!(
                w[0].at.ticks() <= w[1].at.ticks(),
                "{label}: query {q} tick instants regressed: {:?} then {:?}",
                w[0].at,
                w[1].at
            );
        }
    }
}

#[test]
fn span_tree_invariants_hold_across_workers_and_dedup() {
    for workers in [1usize, 4] {
        for dedup in [true, false] {
            let label = format!("workers={workers} dedup={dedup}");
            let (_pems, spans) = run(workers, dedup, false);
            assert_span_tree_invariants(&spans, &label);

            let names: std::collections::HashSet<&str> = spans.iter().map(|s| s.name).collect();
            assert!(names.contains("sched.round"), "{label}: no round spans");
            assert!(names.contains("query.tick"), "{label}: no tick spans");
            assert!(
                names.iter().any(|n| n.starts_with("op.")),
                "{label}: no operator spans"
            );
            assert!(
                names.contains("beta.attempt"),
                "{label}: no β attempt spans"
            );
            // the dedup layer only exists (and only spans) when armed
            assert_eq!(
                names.contains("beta"),
                dedup,
                "{label}: dedup span mismatch"
            );
            // the worker pool only runs — and only emits job spans — when
            // the round is actually concurrent
            assert_eq!(
                names.contains("sched.job"),
                workers > 1,
                "{label}: job span mismatch"
            );
            if workers > 1 {
                let jobs: Vec<&SpanRecord> =
                    spans.iter().filter(|s| s.name == "sched.job").collect();
                assert!(jobs.iter().all(|j| j.attr_u64("worker").is_some()
                    && j.attr_u64("stolen").is_some()
                    && j.attr_u64("queue_wait_ns").is_some()));
                // job spans bridge the submit→worker thread hop: each one
                // still hangs off its round span
                assert!(jobs.iter().any(|j| j.parent != 0));
            }
        }
    }
}

#[test]
fn retries_and_dedup_attributes_surface_in_spans() {
    let (_pems, spans) = run(4, true, true);
    assert_span_tree_invariants(&spans, "resilient run");
    // the resilient layer wraps every call: attempts/retries/breaker/ok
    let calls: Vec<&SpanRecord> = spans.iter().filter(|s| s.name == "beta.call").collect();
    assert!(!calls.is_empty(), "no beta.call spans under resilience");
    assert!(calls.iter().all(|c| {
        c.attr_u64("attempts").is_some()
            && c.attr_u64("retries").is_some()
            && c.attr_str("breaker").is_some()
            && c.attr_u64("ok").is_some()
    }));
    // the 30%-flaky fleet forces some retries within the retained window
    assert!(
        calls.iter().any(|c| c.attr_u64("retries") > Some(0)),
        "no retried call retained despite the failure profile"
    );
    // dedup spans classify every β entry as call/hit/wait
    let betas: Vec<&SpanRecord> = spans.iter().filter(|s| s.name == "beta").collect();
    assert!(!betas.is_empty());
    assert!(betas
        .iter()
        .all(|b| matches!(b.attr_str("dedup"), Some("call" | "hit" | "wait"))));
}

#[test]
fn chrome_trace_export_is_valid_json_with_nested_events() {
    let (pems, spans) = run(4, true, true);
    let text = chrome_trace(&spans);
    let mut p = Json::new(&text);
    p.value();
    p.skip_ws();
    assert!(p.ok, "chrome trace is not valid JSON near byte {}", p.pos);
    assert_eq!(p.pos, p.bytes.len(), "trailing garbage after JSON value");

    assert!(text.contains("\"traceEvents\""));
    for name in ["sched.round", "query.tick", "beta.call", "beta.attempt"] {
        assert!(
            text.contains(&format!("\"name\":\"{name}\"")),
            "{name} missing"
        );
    }
    for attr in ["\"retries\"", "\"dedup\"", "\"breaker\"", "\"parent\""] {
        assert!(text.contains(attr), "{attr} missing from event args");
    }

    // the shell's `.trace` path writes the same bytes
    let path = std::env::temp_dir().join(format!("serena-trace-{}.json", std::process::id()));
    let written = pems.export_trace(&path).expect("export writes");
    assert_eq!(written, spans.len());
    assert_eq!(std::fs::read_to_string(&path).unwrap(), text);
    let _ = std::fs::remove_file(&path);
}

/// CI smoke artifact: a scheduler+dedup+resilience run exported to
/// `target/trace_smoke.json`, validated structurally by the workflow's
/// python step (valid JSON, nested spans, steal/dedup/retry attributes).
#[test]
fn ci_smoke_trace_export() {
    let (pems, spans) = run(4, true, true);
    assert!(!spans.is_empty());
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("target");
    let _ = std::fs::create_dir_all(&dir);
    let n = pems
        .export_trace(dir.join("trace_smoke.json"))
        .expect("smoke export writes");
    assert_eq!(n, spans.len());
}

/// A minimal JSON syntax checker — just enough to assert the exported
/// trace *parses*, without pulling a serde dependency into the workspace.
struct Json<'a> {
    bytes: &'a [u8],
    pos: usize,
    ok: bool,
}

impl<'a> Json<'a> {
    fn new(text: &'a str) -> Self {
        Json {
            bytes: text.as_bytes(),
            pos: 0,
            ok: true,
        }
    }
    fn fail(&mut self) {
        self.ok = false;
    }
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }
    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }
    fn expect(&mut self, b: u8) {
        if self.peek() == Some(b) {
            self.pos += 1;
        } else {
            self.fail();
        }
    }
    fn value(&mut self) {
        if !self.ok {
            return;
        }
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal(b"true"),
            Some(b'f') => self.literal(b"false"),
            Some(b'n') => self.literal(b"null"),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => self.fail(),
        }
    }
    fn object(&mut self) {
        self.expect(b'{');
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return;
        }
        loop {
            self.skip_ws();
            self.string();
            self.skip_ws();
            self.expect(b':');
            self.value();
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return;
                }
                _ => return self.fail(),
            }
            if !self.ok {
                return;
            }
        }
    }
    fn array(&mut self) {
        self.expect(b'[');
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return;
        }
        loop {
            self.value();
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return;
                }
                _ => return self.fail(),
            }
            if !self.ok {
                return;
            }
        }
    }
    fn string(&mut self) {
        self.expect(b'"');
        while self.ok {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return;
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.pos += 1
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            for _ in 0..4 {
                                match self.peek() {
                                    Some(c) if c.is_ascii_hexdigit() => self.pos += 1,
                                    _ => return self.fail(),
                                }
                            }
                        }
                        _ => return self.fail(),
                    }
                }
                Some(c) if c >= 0x20 => self.pos += 1,
                _ => return self.fail(),
            }
        }
    }
    fn number(&mut self) {
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits = |p: &mut Self| {
            let start = p.pos;
            while matches!(p.peek(), Some(c) if c.is_ascii_digit()) {
                p.pos += 1;
            }
            p.pos > start
        };
        if !digits(self) {
            return self.fail();
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !digits(self) {
                return self.fail();
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !digits(self) {
                self.fail();
            }
        }
    }
    fn literal(&mut self, word: &[u8]) {
        if self.bytes[self.pos..].starts_with(word) {
            self.pos += word.len();
        } else {
            self.fail();
        }
    }
}
