//! Crash-injection differential tests for checkpoint/recovery, plus the
//! panic-containment acceptance test.
//!
//! The contract under test: a runtime killed after any tick and recovered
//! from its snapshot (static setup re-run, dynamic state rehydrated)
//! produces **byte-identical** output from that point on — same per-tick
//! deltas (compared through their canonical snapshot encoding), same
//! batches, same action sets, same β invocation/cache counters — at every
//! kill point and at β parallelism 1 and 8. And: a service whose body
//! panics never takes the process down; the panic surfaces as a contained
//! error visible in health, Prometheus and the tick report, honoring the
//! configured degradation policy.

use serena::core::snapshot::Writer;
use serena::core::tuple;
use serena::pems::SchedulerConfig;
use serena::prelude::*;
use serena::services::bus::BusConfig;

/// The number of ticks every differential run covers.
const TICKS: u64 = 6;

/// A deterministic PEMS: four simulated sensors, a finite `sensors` table
/// mutated by [`apply_script`], a `readings` stream that is a pure
/// function of the instant, and five continuous queries covering every
/// stateful executor node kind (table delta, β cache, window ring,
/// projection pipeline, βˢ sampling).
fn recovery_pems(parallelism: usize) -> Pems {
    recovery_pems_on(parallelism, None)
}

/// [`recovery_pems`] with an explicit multi-query scheduler width
/// (`None` keeps the runtime default).
fn recovery_pems_on(parallelism: usize, workers: Option<usize>) -> Pems {
    use serena::core::service::fixtures;
    let mut builder = Pems::builder()
        .bus(BusConfig::instant())
        .exec_options(ExecOptions::parallel(parallelism));
    if let Some(w) = workers {
        builder = builder.scheduler(SchedulerConfig::new(w));
    }
    let mut pems = builder.build();
    let reg = pems.directory();
    for (name, seed) in [
        ("sensor01", 1u64),
        ("sensor06", 6),
        ("sensor07", 7),
        ("sensor22", 22),
    ] {
        reg.register(name, fixtures::temperature_sensor(seed));
    }
    pems.run_program(
        "PROTOTYPE getTemperature( ) : ( temperature REAL );
         EXTENDED RELATION sensors (
           sensor SERVICE, location STRING, temperature REAL VIRTUAL
         ) USING BINDING PATTERNS ( getTemperature[sensor] );",
    )
    .unwrap();
    let schema = serena::core::schema::XSchema::builder()
        .real("location", serena::core::value::DataType::Str)
        .real("temperature", serena::core::value::DataType::Real)
        .build()
        .unwrap();
    pems.tables_mut()
        .define_stream_with("readings", schema, || {
            Box::new(serena::stream::FnStream(|at: Instant| {
                let t = at.ticks();
                vec![
                    tuple!["office", 15.0 + t as f64],
                    tuple!["roof", 5.0 + (t % 3) as f64],
                ]
            }))
        })
        .unwrap();
    pems.register_query("all", &StreamPlan::source("sensors"))
        .unwrap();
    pems.register_query(
        "temps",
        &StreamPlan::source("sensors").invoke("getTemperature", "sensor"),
    )
    .unwrap();
    pems.register_query(
        "hot",
        &StreamPlan::source("readings")
            .window(2)
            .select(Formula::gt_const("temperature", 16.0)),
    )
    .unwrap();
    pems.register_query(
        "recent",
        &StreamPlan::source("readings")
            .window(3)
            .project(["location"]),
    )
    .unwrap();
    pems.register_query(
        "sampled",
        &StreamPlan::source("sensors").sample_invoke("getTemperature", "sensor", 2),
    )
    .unwrap();
    pems
}

/// The scripted table mutations applied *before* tick `t` — the input the
/// driver keeps replaying after a recovery.
fn apply_script(pems: &mut Pems, t: u64) {
    let program = match t {
        0 => "INSERT INTO sensors VALUES ('sensor01', 'corridor'), ('sensor06', 'office');",
        2 => "INSERT INTO sensors VALUES ('sensor07', 'office');",
        // exercises exact retraction from a *restored* β cache
        3 => "DELETE FROM sensors VALUES ('sensor06', 'office');",
        4 => {
            "INSERT INTO sensors VALUES ('sensor22', 'roof');
              DELETE FROM sensors VALUES ('sensor01', 'corridor');"
        }
        _ => return,
    };
    pems.run_program(program).unwrap();
}

/// Everything observable about one query's tick, in comparable form. The
/// delta goes through its canonical snapshot encoding so equality is
/// byte-level, not just structural.
#[derive(Debug, PartialEq)]
struct Obs {
    query: String,
    at: Instant,
    delta_bytes: Vec<u8>,
    batch: Vec<serena::core::tuple::Tuple>,
    actions: String,
    errors: Vec<String>,
    invocations: u64,
    cache_hits: u64,
    cache_misses: u64,
    failures: u64,
}

fn observe(reports: Vec<(String, TickReport)>) -> Vec<Obs> {
    reports
        .into_iter()
        .map(|(query, r)| {
            let mut w = Writer::new();
            r.delta.encode(&mut w);
            Obs {
                query,
                at: r.at,
                delta_bytes: w.into_bytes(),
                batch: r.batch.clone(),
                actions: r.actions.to_string(),
                errors: r.errors.iter().map(|e| e.to_string()).collect(),
                invocations: r.stats.total_invocations(),
                cache_hits: r.stats.total_cache_hits(),
                cache_misses: r.stats.total_cache_misses(),
                failures: r.stats.total_failures(),
            }
        })
        .collect()
}

/// Tentpole acceptance: kill the runtime after every instant `0..TICKS`,
/// recover from the snapshot, and compare every remaining tick against the
/// uninterrupted baseline — at β parallelism 1 and 8.
#[test]
fn recovery_is_byte_identical_at_every_kill_point() {
    for parallelism in [1usize, 8] {
        // the uninterrupted run
        let mut baseline = recovery_pems(parallelism);
        let mut expected = Vec::new();
        for t in 0..TICKS {
            apply_script(&mut baseline, t);
            expected.push(observe(baseline.tick()));
        }

        for kill in 0..TICKS {
            // run a fresh instance up to the kill point, snapshot, "crash"
            let mut doomed = recovery_pems(parallelism);
            for t in 0..kill {
                apply_script(&mut doomed, t);
                doomed.tick();
            }
            let snapshot = doomed.snapshot_bytes();
            drop(doomed);

            // recover: re-run the static setup, rehydrate, resume
            let mut recovered = recovery_pems(parallelism);
            recovered.restore_bytes(&snapshot).unwrap_or_else(|e| {
                panic!("restore failed (kill={kill}, workers={parallelism}): {e}")
            });
            assert_eq!(recovered.clock(), Instant(kill));
            for t in kill..TICKS {
                apply_script(&mut recovered, t);
                let got = observe(recovered.tick());
                assert_eq!(
                    got, expected[t as usize],
                    "tick {t} diverged after kill={kill} workers={parallelism}"
                );
            }

            // final aggregates agree with the uninterrupted run too
            for query in ["all", "temps", "hot", "recent", "sampled"] {
                assert_eq!(
                    recovered.processor().stats(query),
                    baseline.processor().stats(query),
                    "stats for `{query}` diverged after kill={kill} workers={parallelism}"
                );
                assert_eq!(
                    recovered.processor().current_relation(query),
                    baseline.processor().current_relation(query),
                    "result of `{query}` diverged after kill={kill} workers={parallelism}"
                );
            }
        }
    }
}

/// ISSUE 7 satellite: a checkpoint cut while the multi-query scheduler is
/// running a 4-wide stealing pool restores byte-identically — whether the
/// recovered runtime resumes on 4 workers or on a single one. The
/// snapshot format is scheduler-agnostic, so the uninterrupted
/// single-worker run is the ground truth for both resume widths.
#[test]
fn multi_worker_kill_restore_matches_single_worker_baseline() {
    let mut baseline = recovery_pems_on(4, Some(1));
    let mut expected = Vec::new();
    for t in 0..TICKS {
        apply_script(&mut baseline, t);
        expected.push(observe(baseline.tick()));
    }

    for kill in [2u64, 4] {
        // crash a 4-worker runtime mid-run…
        let mut doomed = recovery_pems_on(4, Some(4));
        for t in 0..kill {
            apply_script(&mut doomed, t);
            doomed.tick();
        }
        let snapshot = doomed.snapshot_bytes();
        drop(doomed);

        // …and resume on both pool widths: same bytes, same future.
        for resume_workers in [1usize, 4] {
            let mut recovered = recovery_pems_on(4, Some(resume_workers));
            recovered.restore_bytes(&snapshot).unwrap_or_else(|e| {
                panic!("restore failed (kill={kill}, resume workers={resume_workers}): {e}")
            });
            assert_eq!(recovered.clock(), Instant(kill));
            for t in kill..TICKS {
                apply_script(&mut recovered, t);
                let got = observe(recovered.tick());
                assert_eq!(
                    got, expected[t as usize],
                    "tick {t} diverged (kill={kill}, resume workers={resume_workers})"
                );
            }
            for query in ["all", "temps", "hot", "recent", "sampled"] {
                assert_eq!(
                    recovered.processor().current_relation(query),
                    baseline.processor().current_relation(query),
                    "result of `{query}` diverged (kill={kill}, resume workers={resume_workers})"
                );
            }
        }
    }
}

/// The periodic checkpoint a running PEMS writes is itself a valid
/// recovery point: restore from the *file* (not in-memory bytes) and the
/// remaining ticks match the baseline.
#[test]
fn recovery_from_checkpoint_file_resumes_identically() {
    let dir = std::env::temp_dir().join(format!("serena-recovery-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let mut baseline = recovery_pems(4);
    let mut expected = Vec::new();
    for t in 0..TICKS {
        apply_script(&mut baseline, t);
        expected.push(observe(baseline.tick()));
    }

    // checkpoint every second tick; crash after 4 ticks — the file on
    // disk was last cut after tick 3 completed (clock = 4)
    let mut doomed = recovery_pems(4);
    for t in 0..4u64 {
        apply_script(&mut doomed, t);
        doomed.tick();
        if (t + 1) % 2 == 0 {
            doomed.checkpoint_to(&dir).unwrap();
        }
    }
    drop(doomed);

    let mut recovered = recovery_pems(4);
    recovered.restore_from(&dir).unwrap();
    let resume = recovered.clock().ticks();
    assert_eq!(resume, 4, "checkpoint cut after tick 3");
    for t in resume..TICKS {
        apply_script(&mut recovered, t);
        let got = observe(recovered.tick());
        assert_eq!(
            got, expected[t as usize],
            "tick {t} diverged after file recovery"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite acceptance: a panicking service never aborts the process.
/// The panic is contained into an error, counted in health and
/// `serena_beta_panic_total`, honors the degradation policy, and the β
/// pool stays usable for subsequent ticks.
#[test]
fn panicking_service_is_contained_through_the_full_stack() {
    use serena::core::service::fixtures;

    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {})); // keep the contained panics quiet

    let run = |degrade: DegradePolicy| {
        let mut pems = Pems::builder()
            .bus(BusConfig::instant())
            .exec_options(ExecOptions::parallel(8).with_degrade(degrade))
            .build();
        let reg = pems.directory();
        reg.register("sensor01", fixtures::temperature_sensor(1));
        reg.register("sensor06", fixtures::panicking_sensor());
        pems.run_program(
            "PROTOTYPE getTemperature( ) : ( temperature REAL );
             EXTENDED RELATION sensors (
               sensor SERVICE, location STRING, temperature REAL VIRTUAL
             ) USING BINDING PATTERNS ( getTemperature[sensor] );
             INSERT INTO sensors VALUES
               ('sensor01', 'corridor'), ('sensor06', 'office');
             REGISTER QUERY temps AS INVOKE[getTemperature[sensor]](sensors);",
        )
        .unwrap();
        pems
    };

    // DropTuple: the panicking sensor's tuple is dropped, the healthy
    // sensor's survives — across several ticks (the pool is not poisoned)
    let mut pems = run(DegradePolicy::DropTuple);
    let first = pems.tick();
    assert_eq!(first[0].1.delta.inserts.len(), 1, "healthy tuple survives");
    pems.run_program("INSERT INTO sensors VALUES ('sensor06', 'roof');")
        .unwrap();
    let second = pems.tick();
    assert_eq!(
        second[0].1.delta.inserts.len(),
        0,
        "panicking tuple dropped again"
    );

    // the panic is visible end to end: health, Prometheus, breakers intact
    let health = pems.service_health();
    let bad = health
        .iter()
        .find(|h| h.reference.as_str() == "sensor06")
        .expect("panicking service observed by health");
    assert!(bad.failures >= 2, "{bad:?}");
    assert!(
        bad.last_error.as_deref().unwrap_or("").contains("panicked"),
        "{:?}",
        bad.last_error
    );
    let metrics = pems.metrics_registry();
    let panics = metrics
        .counter_value("serena_beta_panic_total", &[("op", "Invoke")])
        .unwrap_or(0);
    assert!(panics >= 2, "serena_beta_panic_total = {panics}");
    let rendered = pems.render_metrics();
    assert!(rendered.contains("serena_beta_panic_total"));

    // FailQuery (the default): the tick survives, the error carries the
    // panic, and the process is — evidently — still alive
    let mut strict = run(DegradePolicy::FailQuery);
    let reports = strict.tick();
    assert_eq!(reports[0].1.errors.len(), 1);
    assert!(
        reports[0].1.errors[0].to_string().contains("panicked"),
        "{}",
        reports[0].1.errors[0]
    );

    std::panic::set_hook(prev);
}
