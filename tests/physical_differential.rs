//! Differential testing: compiled (physical) execution vs the reference
//! evaluator.
//!
//! For every example plan, every instant 0..5 and every β parallelism in
//! {1, 4, 16}, [`PhysicalPlan`] compiled once and executed must produce the
//! exact X-Relation and action set [`evaluate`] produces — the compiled
//! parallel path is an optimisation, never a semantic change.

use serena::core::env::examples::example_environment;
use serena::core::env::Environment;
use serena::core::eval::CountingInvoker;
use serena::core::ops::{AggFun, AggSpec};
use serena::core::plan::examples::{q1, q1_prime, q2, q2_prime};
use serena::core::prelude::*;
use serena::core::schema::examples::sensors_schema;
use serena::core::service::fixtures::{example_registry, temperature_sensor};
use serena::core::xrelation::XRelation;

/// Every example plan exercised below: the paper's four queries plus
/// aggregate, rename and join pipelines covering the remaining operators.
fn example_plans() -> Vec<(&'static str, Plan)> {
    vec![
        ("q1", q1()),
        ("q1_prime", q1_prime()),
        ("q2", q2()),
        ("q2_prime", q2_prime()),
        (
            "aggregate",
            Plan::relation("sensors")
                .invoke("getTemperature", "sensor")
                .project(["location", "temperature"])
                .aggregate(
                    ["location"],
                    vec![AggSpec::new(AggFun::Avg, "temperature").named("mean")],
                ),
        ),
        (
            "rename",
            Plan::relation("sensors")
                .select(Formula::ne_const("location", "roof"))
                .rename("location", "place")
                .project(["place"]),
        ),
        (
            "join",
            Plan::relation("sensors")
                .join(Plan::relation("sensors").project(["location"]))
                .invoke("getTemperature", "sensor"),
        ),
        (
            "set_ops",
            Plan::relation("contacts")
                .select(Formula::eq_const("messenger", "email"))
                .union(Plan::relation("contacts"))
                .difference(Plan::relation("contacts").select(Formula::eq_const("name", "Carla"))),
        ),
    ]
}

/// Compiled execution, at any parallelism, is indistinguishable from the
/// reference evaluator on every example plan and instant.
#[test]
fn compiled_parallel_matches_reference_evaluator() {
    let env = example_environment();
    let reg = example_registry();
    for (name, plan) in example_plans() {
        let physical = PhysicalPlan::compile(&plan, &env)
            .unwrap_or_else(|e| panic!("{name} failed to compile: {e}"));
        for t in 0..=5u64 {
            let reference = ExecContext::new(&env, &reg, Instant(t))
                .execute(&plan)
                .unwrap_or_else(|e| panic!("{name} reference failed at t={t}: {e}"));
            for parallelism in [1usize, 4, 16] {
                let ctx = ExecContext::new(&env, &reg, Instant(t))
                    .with_options(ExecOptions::parallel(parallelism));
                let compiled = physical.execute(&ctx).unwrap_or_else(|e| {
                    panic!("{name} compiled failed at t={t} workers={parallelism}: {e}")
                });
                assert_eq!(
                    compiled.relation, reference.relation,
                    "{name} relation diverged at t={t} workers={parallelism}"
                );
                assert_eq!(
                    compiled.actions, reference.actions,
                    "{name} actions diverged at t={t} workers={parallelism}"
                );
            }
        }
    }
}

/// Per-operator statistics agree between serial and parallel execution of
/// the same compiled plan: same node ids, same invocation totals.
#[test]
fn parallel_statistics_match_serial() {
    let env = example_environment();
    let reg = example_registry();
    for (name, plan) in example_plans() {
        let physical = PhysicalPlan::compile(&plan, &env).unwrap();
        let serial = ExecStats::new();
        PhysicalPlan::compile(&plan, &env)
            .unwrap()
            .execute(&ExecContext::with_metrics(&env, &reg, Instant(1), &serial))
            .unwrap();
        let parallel = ExecStats::new();
        physical
            .execute(
                &ExecContext::with_metrics(&env, &reg, Instant(1), &parallel)
                    .with_options(ExecOptions::parallel(8)),
            )
            .unwrap();
        assert_eq!(serial.nodes().len(), parallel.nodes().len(), "{name}");
        assert_eq!(
            serial.total_invocations(),
            parallel.total_invocations(),
            "{name}"
        );
        for (id, s) in serial.nodes() {
            let p = parallel
                .node(id)
                .unwrap_or_else(|| panic!("{name}: node {id:?} missing"));
            assert_eq!(s.tuples_out, p.tuples_out, "{name} node {id:?}");
            assert_eq!(s.invocations, p.invocations, "{name} node {id:?}");
            assert_eq!(s.failures, p.failures, "{name} node {id:?}");
        }
    }
}

/// `CountingInvoker` under a wide concurrent fan-out: 64 tuples through an
/// 16-worker β must count exactly 64 invocations — the mutex-guarded
/// counters lose nothing to races.
#[test]
fn counting_invoker_is_exact_under_concurrency() {
    const N: usize = 64;
    let mut env = Environment::new();
    env.declare_prototype(serena::core::prototype::examples::get_temperature())
        .unwrap();
    let rel = XRelation::from_tuples(
        sensors_schema(),
        (0..N).map(|i| {
            Tuple::new(vec![
                Value::service(format!("s{i}")),
                Value::str(format!("room{i}")),
            ])
        }),
    );
    env.define_relation("sensors", rel).unwrap();
    let reg = StaticRegistry::new();
    for i in 0..N {
        reg.register(format!("s{i}"), temperature_sensor(i as u64));
    }

    let plan = Plan::relation("sensors").invoke("getTemperature", "sensor");
    let physical = PhysicalPlan::compile(&plan, &env).unwrap();

    let counting = CountingInvoker::new(&reg);
    let out = physical
        .execute(
            &ExecContext::new(&env, &counting, Instant(1)).with_options(ExecOptions::parallel(16)),
        )
        .unwrap();
    assert_eq!(out.relation.len(), N);
    assert_eq!(counting.total(), N as u64);
    assert_eq!(counting.count_of("getTemperature"), N as u64);

    // and the parallel result is still the serial result
    let serial = ExecContext::new(&env, &reg, Instant(1))
        .execute(&plan)
        .unwrap();
    assert_eq!(out.relation, serial.relation);
}
