//! Property suite for Table 3's schema/binding-pattern propagation — the
//! paper's core technical content.
//!
//! Over randomized extended schemas (random real/virtual partitions,
//! random binding patterns drawn from a prototype pool) and random
//! operator applications, two invariants must hold:
//!
//! 1. **soundness** — every binding pattern in an operator's output schema
//!    satisfies Definition 2 against that schema (service attribute real,
//!    inputs present, outputs virtual);
//! 2. **completeness** — every binding pattern of the input schema that
//!    *would* satisfy Definition 2 against the output schema is still
//!    there (operators drop no valid pattern).

mod common;

use std::sync::Arc;

use common::Rng;
use serena::core::attr::AttrName;
use serena::core::binding::BindingPattern;
use serena::core::ops;
use serena::core::prelude::*;
use serena::core::prototype::Prototype;
use serena::core::schema::{Attribute, XSchema};

/// The prototype pool: three shapes over a small attribute universe.
fn prototype_pool() -> Vec<Arc<Prototype>> {
    vec![
        // no input, one output
        Prototype::declare("readA", &[], &[("va", DataType::Real)], false).unwrap(),
        // one real-able input, one output
        Prototype::declare(
            "deriveB",
            &[("x", DataType::Int)],
            &[("vb", DataType::Str)],
            false,
        )
        .unwrap(),
        // input may be virtual (va), two outputs
        Prototype::declare(
            "combineC",
            &[("x", DataType::Int), ("va", DataType::Real)],
            &[("vc", DataType::Bool), ("vd", DataType::Int)],
            true,
        )
        .unwrap(),
    ]
}

/// Definition 2, re-stated as a predicate: is `bp` valid against `schema`?
fn bp_valid(bp: &BindingPattern, schema: &XSchema) -> bool {
    schema.is_real(bp.service_attr().as_str())
        && schema
            .type_of(bp.service_attr().as_str())
            .is_some_and(|t| t.can_reference_service())
        && bp
            .prototype()
            .input()
            .attrs()
            .all(|(a, ty)| schema.type_of(a.as_str()) == Some(*ty))
        && bp
            .prototype()
            .output()
            .attrs()
            .all(|(a, ty)| schema.is_virtual(a.as_str()) && schema.type_of(a.as_str()) == Some(*ty))
}

/// Check both invariants for an operator's input → output schema step.
fn check_invariants(input: &XSchema, output: &XSchema) -> Result<(), String> {
    for bp in output.binding_patterns() {
        if !bp_valid(bp, output) {
            return Err(format!("unsound: {} survived invalidly", bp.key()));
        }
    }
    for bp in input.binding_patterns() {
        if bp_valid(bp, output) && !output.binding_patterns().contains(bp) {
            // renaming may have rewritten the service attr; accept a match
            // modulo service attribute identity
            let renamed = output
                .binding_patterns()
                .iter()
                .any(|other| other.prototype().name() == bp.prototype().name());
            if !renamed {
                return Err(format!("incomplete: valid {} was dropped", bp.key()));
            }
        }
    }
    Ok(())
}

/// Random extended schema over the fixed attribute universe
/// {s SERVICE, x INT, y STR, va REAL*, vb STR*, vc BOOL*, vd INT*}, where
/// the virtual ones may randomly be real instead, plus the binding
/// patterns from the pool that happen to be valid.
fn gen_schema(rng: &mut Rng) -> SchemaRef {
    let mut attrs = vec![Attribute::real("s", DataType::Service)];
    if rng.bool() {
        attrs.push(Attribute::real("x", DataType::Int));
    }
    if rng.bool() {
        attrs.push(Attribute::real("y", DataType::Str));
    }
    let vdefs = [
        ("va", DataType::Real),
        ("vb", DataType::Str),
        ("vc", DataType::Bool),
        ("vd", DataType::Int),
    ];
    for (name, ty) in vdefs {
        if rng.bool() {
            attrs.push(if rng.bool() {
                Attribute::virt(name, ty)
            } else {
                Attribute::real(name, ty)
            });
        }
    }
    // attach every pool pattern that is valid for this layout
    let probe = XSchema::from_attrs(attrs.clone(), vec![]).unwrap();
    let bps: Vec<BindingPattern> = prototype_pool()
        .into_iter()
        .map(|p| BindingPattern::new(p, "s"))
        .filter(|bp| bp_valid(bp, &probe))
        .collect();
    XSchema::from_attrs(attrs, bps).unwrap()
}

#[test]
fn projection_bp_invariants() {
    for case in 0..256u64 {
        let mut rng = Rng::new(0xB101 + case);
        let schema = gen_schema(&mut rng);
        let keep_mask: Vec<bool> = (0..8).map(|_| rng.bool()).collect();
        let kept: Vec<AttrName> = schema
            .names()
            .enumerate()
            .filter(|(i, _)| *keep_mask.get(*i).unwrap_or(&true))
            .map(|(_, a)| a.clone())
            .collect();
        if kept.is_empty() {
            continue;
        }
        let rel = XRelation::empty(schema.clone());
        let out = ops::project(&rel, &kept).unwrap();
        if let Err(e) = check_invariants(&schema, out.schema()) {
            panic!("{e}; π{kept:?} over {schema:?}");
        }
    }
}

#[test]
fn rename_bp_invariants() {
    for case in 0..256u64 {
        let mut rng = Rng::new(0xB102 + case);
        let schema = gen_schema(&mut rng);
        let names: Vec<AttrName> = schema.names().cloned().collect();
        let idx = rng.below(8);
        if idx >= names.len() {
            continue;
        }
        let from = names[idx].clone();
        let to = AttrName::new("zz");
        let rel = XRelation::empty(schema.clone());
        let out = ops::rename(&rel, &from, &to).unwrap();
        if let Err(e) = check_invariants(&schema, out.schema()) {
            panic!("{e}; ρ{from}→zz over {schema:?}");
        }
    }
}

#[test]
fn assign_bp_invariants() {
    for case in 0..256u64 {
        let mut rng = Rng::new(0xB103 + case);
        let schema = gen_schema(&mut rng);
        let virtuals: Vec<AttrName> = schema.virtual_names().cloned().collect();
        if virtuals.is_empty() {
            continue;
        }
        let target = virtuals[rng.below(8) % virtuals.len()].clone();
        let value: Value = match schema.type_of(target.as_str()).unwrap() {
            DataType::Real => Value::Real(1.5),
            DataType::Str => Value::str("v"),
            DataType::Bool => Value::Bool(true),
            DataType::Int => Value::Int(7),
            _ => unreachable!("universe has no other virtual types"),
        };
        let rel = XRelation::empty(schema.clone());
        let out = ops::assign(&rel, &target, &ops::AssignSource::Const(value)).unwrap();
        if let Err(e) = check_invariants(&schema, out.schema()) {
            panic!("{e}; α{target} over {schema:?}");
        }
    }
}

#[test]
fn join_bp_invariants() {
    for case in 0..256u64 {
        let mut rng = Rng::new(0xB104 + case);
        let a = gen_schema(&mut rng);
        let b = gen_schema(&mut rng);
        let ra = XRelation::empty(a.clone());
        let rb = XRelation::empty(b.clone());
        // URSA holds by construction (shared universe, fixed types)
        let out = ops::join(&ra, &rb).unwrap();
        let out_schema = out.schema();
        // soundness for the union of both inputs' patterns
        for bp in out_schema.binding_patterns() {
            assert!(bp_valid(bp, out_schema), "unsound after ⋈: {}", bp.key());
        }
        // completeness: valid patterns from either side survive
        for bp in a.binding_patterns().iter().chain(b.binding_patterns()) {
            if bp_valid(bp, out_schema) {
                assert!(
                    out_schema.binding_patterns().contains(bp),
                    "dropped after ⋈: {}",
                    bp.key()
                );
            }
        }
    }
}

#[test]
fn invoke_bp_invariants() {
    for case in 0..256u64 {
        let mut rng = Rng::new(0xB105 + case);
        let schema = gen_schema(&mut rng);
        let candidates: Vec<BindingPattern> = schema
            .binding_patterns()
            .iter()
            .filter(|bp| {
                bp.prototype()
                    .input()
                    .names()
                    .all(|a| schema.is_real(a.as_str()))
            })
            .cloned()
            .collect();
        if candidates.is_empty() {
            continue;
        }
        let bp = &candidates[rng.below(4) % candidates.len()];
        let (out_schema, _) =
            ops::invoke_schema(&schema, bp.prototype().name(), bp.service_attr().as_str()).unwrap();
        if let Err(e) = check_invariants(&schema, &out_schema) {
            panic!("{e}; β{} over {schema:?}", bp.key());
        }
        // the invoked pattern itself must be consumed (its outputs became real)
        assert!(
            !out_schema.binding_patterns().contains(bp),
            "β did not consume {}",
            bp.key()
        );
    }
}
