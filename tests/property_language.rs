//! Property-based tests of the textual front-ends: DDL round-trips and the
//! Serena SQL lowering semantics.

mod common;

use common::Rng;
use serena::core::prelude::*;
use serena::core::schema::{Attribute, XSchema};
use serena::ddl::sql::compile_select;
use serena::ddl::{parse_program, resolve_relation_schema, to_one_shot, Statement};

// ---------------------------------------------------------------------
// DDL round-trip: schema → to_ddl → parse → resolve → compatible schema
// ---------------------------------------------------------------------

const TYPES: [DataType; 6] = [
    DataType::Str,
    DataType::Int,
    DataType::Real,
    DataType::Bool,
    DataType::Blob,
    DataType::Service,
];

fn gen_plain_schema(rng: &mut Rng) -> SchemaRef {
    let specs = rng.vec_of(1, 8, |r| (r.below(12), *r.pick(&TYPES), r.bool()));
    let mut attrs: Vec<Attribute> = Vec::new();
    for (i, ty, virt) in specs {
        let name = format!("a{i}");
        if attrs.iter().any(|a| a.name.as_str() == name) {
            continue;
        }
        attrs.push(if virt {
            Attribute::virt(name.as_str(), ty)
        } else {
            Attribute::real(name.as_str(), ty)
        });
    }
    if attrs.is_empty() {
        attrs.push(Attribute::real("a0", DataType::Int));
    }
    XSchema::from_attrs(attrs, vec![]).expect("no BPs → always valid")
}

#[test]
fn ddl_round_trip_plain_schemas() {
    for case in 0..128u64 {
        let mut rng = Rng::new(0xDD10 + case);
        let schema = gen_plain_schema(&mut rng);
        let ddl = schema.to_ddl("r");
        let stmts = parse_program(&ddl).expect("rendered DDL parses");
        let Statement::ExtendedRelation {
            attrs, bindings, ..
        } = &stmts[0]
        else {
            panic!("unexpected statement for: {ddl}");
        };
        let catalog = serena::core::env::Environment::new();
        let parsed =
            resolve_relation_schema(attrs, bindings, &catalog).expect("rendered DDL resolves");
        assert!(parsed.compatible_with(&schema), "round trip changed: {ddl}");
    }
}

/// The running example's schemas (with binding patterns) round-trip too.
#[test]
fn ddl_round_trip_with_binding_patterns() {
    let env = serena::core::env::examples::example_environment();
    for schema in [
        serena::core::schema::examples::contacts_schema(),
        serena::core::schema::examples::cameras_schema(),
        serena::core::schema::examples::sensors_schema(),
    ] {
        let ddl = schema.to_ddl("r");
        let stmts = parse_program(&ddl).unwrap();
        let Statement::ExtendedRelation {
            attrs, bindings, ..
        } = &stmts[0]
        else {
            panic!()
        };
        let parsed = resolve_relation_schema(attrs, bindings, &env).unwrap();
        assert!(
            parsed.compatible_with(&schema),
            "round trip changed:\n{ddl}"
        );
    }
}

// ---------------------------------------------------------------------
// Serena SQL: the WHERE split never changes passive-query semantics
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Conj {
    Area(&'static str),
    Quality(i64),
    Delay(f64),
}

fn gen_conjs(rng: &mut Rng) -> Vec<Conj> {
    rng.vec_of(0, 4, |r| match r.below(3) {
        #[allow(clippy::explicit_auto_deref)]
        0 => Conj::Area(*r.pick(&["office", "corridor", "roof"])),
        1 => Conj::Quality(r.i64_in(0, 10)),
        _ => Conj::Delay(r.below(10) as f64 / 10.0),
    })
}

/// For passive USING chains, lowering with the WHERE split must be
/// equivalent (results + empty action sets) to the naive plan that
/// applies the whole WHERE after all invocations.
#[test]
fn sql_where_split_is_sound_for_passive_chains() {
    use serena::core::equiv::check_at;

    for case in 0..48u64 {
        let mut rng = Rng::new(0x5018 + case);
        let conjs = gen_conjs(&mut rng);
        let t = rng.u64_in(0, 4);

        let env = serena::core::env::examples::example_environment();
        let reg = serena::core::service::fixtures::example_registry();

        let mut where_parts = Vec::new();
        let mut naive_formula: Option<Formula> = None;
        for c in &conjs {
            let (text, f) = match c {
                Conj::Area(a) => (format!("area = '{a}'"), Formula::eq_const("area", *a)),
                Conj::Quality(q) => (format!("quality >= {q}"), Formula::ge_const("quality", *q)),
                Conj::Delay(d) => (format!("delay < {d:.1}"), Formula::lt_const("delay", *d)),
            };
            where_parts.push(text);
            naive_formula = Some(match naive_formula {
                None => f,
                Some(acc) => acc.and(f),
            });
        }
        let where_clause = if where_parts.is_empty() {
            String::new()
        } else {
            format!("WHERE {}", where_parts.join(" AND "))
        };
        let sql = format!(
            "SELECT photo FROM cameras USING checkPhoto[camera], takePhoto[camera] {where_clause}"
        );
        let split_plan = to_one_shot(&compile_select(&sql, &env).unwrap()).unwrap();

        // naive: every conjunct after the full invocation chain
        let mut naive = Plan::relation("cameras")
            .invoke("checkPhoto", "camera")
            .invoke("takePhoto", "camera");
        if let Some(f) = naive_formula {
            naive = naive.select(f);
        }
        let naive = naive.project(["photo"]);

        let report = check_at(&split_plan, &naive, &env, &reg, Instant(t)).unwrap();
        assert!(
            report.equivalent(),
            "{sql}\nsplit: {split_plan}\nnaive: {naive}"
        );
    }
}

// ---------------------------------------------------------------------
// Parser robustness: arbitrary input must error, never panic
// ---------------------------------------------------------------------

/// Characters drawn for fuzz inputs: printable ASCII plus a few multi-byte
/// code points to exercise UTF-8 boundaries.
fn gen_fuzz_string(rng: &mut Rng, max_len: usize) -> String {
    const EXTRA: [char; 6] = ['é', 'λ', '⋈', '𝒳', '\t', '"'];
    let len = rng.below(max_len + 1);
    (0..len)
        .map(|_| {
            if rng.below(8) == 0 {
                *rng.pick(&EXTRA)
            } else {
                (0x20u8 + rng.below(0x5F) as u8) as char
            }
        })
        .collect()
}

#[test]
fn parsers_never_panic_on_arbitrary_input() {
    for case in 0..256u64 {
        let mut rng = Rng::new(0xF022 + case);
        let input = gen_fuzz_string(&mut rng, 120);
        let _ = serena::ddl::parse_program(&input);
        let _ = serena::ddl::parse_query(&input);
        let _ = serena::ddl::sql::parse_select(&input);
    }
}

/// Near-miss DDL: statement shapes with random identifiers/punctuation
/// — the parser must return positioned errors, not panic.
#[test]
fn parsers_never_panic_on_near_ddl() {
    const KEYWORDS: [&str; 6] = [
        "PROTOTYPE",
        "SERVICE",
        "EXTENDED RELATION",
        "INSERT INTO",
        "REGISTER QUERY",
        "SELECT",
    ];
    const MIDDLE: &[u8] =
        b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_ ,:[]()<>='";
    for case in 0..256u64 {
        let mut rng = Rng::new(0xF023 + case);
        let kw = *rng.pick(&KEYWORDS);
        let len = rng.below(61);
        let middle: String = (0..len)
            .map(|_| MIDDLE[rng.below(MIDDLE.len())] as char)
            .collect();
        let input = format!("{kw} {middle};");
        let _ = serena::ddl::parse_program(&input);
        let _ = serena::ddl::sql::parse_select(&input);
    }
}

/// SQL aggregates match the algebra's γ.
#[test]
fn sql_aggregate_matches_algebra() {
    use serena::core::ops::{AggFun, AggSpec};
    let env = serena::core::env::examples::example_environment();
    let reg = serena::core::service::fixtures::example_registry();
    let sql = to_one_shot(
        &compile_select(
            "SELECT location, avg(temperature) AS mean FROM sensors
             USING getTemperature[sensor] GROUP BY location",
            &env,
        )
        .unwrap(),
    )
    .unwrap();
    let algebra = Plan::relation("sensors")
        .invoke("getTemperature", "sensor")
        .aggregate(
            ["location"],
            vec![AggSpec::new(AggFun::Avg, "temperature").named("mean")],
        );
    let a = ExecContext::new(&env, &reg, Instant(3))
        .execute(&sql)
        .unwrap();
    let b = ExecContext::new(&env, &reg, Instant(3))
        .execute(&algebra)
        .unwrap();
    assert_eq!(a.relation, b.relation);
}
