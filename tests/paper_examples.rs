//! The paper's numbered examples, verbatim.
//!
//! Each test reproduces one example or table from the paper and asserts
//! the exact artifacts it states: Example 3's prototype/service structure,
//! Example 4's δ-projections, Example 6's action sets, Example 7's
//! (non-)equivalence verdicts, Example 8's continuous behaviours.

use serena::core::env::examples::example_environment;
use serena::core::equiv::{check_at, check_over_instants};
use serena::core::plan::examples::{q1, q1_prime, q2, q2_prime};
use serena::core::prelude::*;
use serena::core::service::fixtures::example_registry;
use serena::core::tuple;

/// Table 1: the 4 prototypes and 9 services, via the DDL parser.
#[test]
fn table_1_catalog_parses_and_matches() {
    let program = "
        PROTOTYPE sendMessage( address STRING, text STRING ) : ( sent BOOLEAN ) ACTIVE;
        PROTOTYPE checkPhoto( area STRING ) : ( quality INTEGER, delay REAL );
        PROTOTYPE takePhoto( area STRING, quality INTEGER ) : ( photo BLOB );
        PROTOTYPE getTemperature( ) : ( temperature REAL );
        SERVICE email IMPLEMENTS sendMessage;
        SERVICE jabber IMPLEMENTS sendMessage;
        SERVICE camera01 IMPLEMENTS checkPhoto, takePhoto;
        SERVICE camera02 IMPLEMENTS checkPhoto, takePhoto;
        SERVICE webcam07 IMPLEMENTS checkPhoto, takePhoto;
        SERVICE sensor01 IMPLEMENTS getTemperature;
        SERVICE sensor06 IMPLEMENTS getTemperature;
        SERVICE sensor07 IMPLEMENTS getTemperature;
        SERVICE sensor22 IMPLEMENTS getTemperature;
    ";
    let stmts = serena::ddl::parse_program(program).expect("Table 1 parses");
    assert_eq!(stmts.len(), 13);
    let protos: Vec<_> = stmts
        .iter()
        .filter(|s| matches!(s, serena::ddl::Statement::Prototype { .. }))
        .collect();
    assert_eq!(protos.len(), 4);
    let services: Vec<_> = stmts
        .iter()
        .filter(|s| matches!(s, serena::ddl::Statement::Service { .. }))
        .collect();
    assert_eq!(services.len(), 9);
    // round-trip: resolved prototypes print Table 1's DDL back
    let serena::ddl::Statement::Prototype {
        name,
        input,
        output,
        active,
    } = &stmts[0]
    else {
        panic!()
    };
    let p = serena::ddl::resolve_prototype(name, input, output, *active).unwrap();
    assert_eq!(
        p.to_ddl(),
        "PROTOTYPE sendMessage( address STRING, text STRING ) : ( sent BOOLEAN ) ACTIVE;"
    );
}

/// Example 3: prototypes(ω1) = {sendMessage}, prototypes(ω3) = {checkPhoto, takePhoto}.
#[test]
fn example_3_service_prototype_sets() {
    let reg = example_registry();
    assert_eq!(
        reg.providers_of("sendMessage")
            .iter()
            .map(|r| r.to_string())
            .collect::<Vec<_>>(),
        vec!["email", "jabber"]
    );
    let cams: Vec<String> = reg
        .providers_of("takePhoto")
        .iter()
        .map(|r| r.to_string())
        .collect();
    assert_eq!(cams, vec!["camera01", "camera02", "webcam07"]);
}

/// Example 4: schema partition and tuple projections of `contacts`.
#[test]
fn example_4_projections() {
    let schema = serena::core::schema::examples::contacts_schema();
    let t = tuple!["Nicolas", "nicolas@elysee.fr", "email"];
    // t[messenger] = (email): attr 4 (1-based), δ(4) = 3 → coordinate 3 (1-based)
    assert_eq!(schema.coord_of("messenger"), Some(2)); // 0-based
    assert_eq!(
        schema.project_tuple_attr(&t, "messenger").unwrap(),
        Value::str("email")
    );
    // t[{address, messenger}] = (nicolas@elysee.fr, email)
    let coords = schema.coords_of(["address", "messenger"]).unwrap();
    assert_eq!(
        t.project_positions(&coords),
        tuple!["nicolas@elysee.fr", "email"]
    );
    // virtual attributes have no coordinate
    assert_eq!(schema.coord_of("text"), None);
    assert_eq!(schema.coord_of("sent"), None);
}

/// Example 5/6: Q1's and Q1''s action sets, literally as printed in the
/// paper.
#[test]
fn example_6_action_sets() {
    let env = example_environment();
    let reg = example_registry();

    let out = ExecContext::new(&env, &reg, Instant::ZERO)
        .execute(&q1())
        .unwrap();
    let rendered: Vec<String> = out.actions.iter().map(|a| a.to_string()).collect();
    assert_eq!(
        rendered,
        vec![
            "(sendMessage[messenger], email, (nicolas@elysee.fr, Bonjour!))",
            "(sendMessage[messenger], jabber, (francois@im.gouv.fr, Bonjour!))",
        ]
    );

    let out = ExecContext::new(&env, &reg, Instant::ZERO)
        .execute(&q1_prime())
        .unwrap();
    let rendered: Vec<String> = out.actions.iter().map(|a| a.to_string()).collect();
    assert_eq!(
        rendered,
        vec![
            "(sendMessage[messenger], email, (carla@elysee.fr, Bonjour!))",
            "(sendMessage[messenger], email, (nicolas@elysee.fr, Bonjour!))",
            "(sendMessage[messenger], jabber, (francois@im.gouv.fr, Bonjour!))",
        ]
    );
}

/// Example 7: Q1 ≢ Q1' (same result, different action sets) while
/// Q2 ≡ Q2' (passive prototypes → both action sets empty).
#[test]
fn example_7_equivalence_verdicts() {
    let env = example_environment();
    let reg = example_registry();

    let report = check_at(&q1(), &q1_prime(), &env, &reg, Instant::ZERO).unwrap();
    assert!(report.results_equal, "the resulting X-Relations coincide");
    assert!(!report.actions_equal, "the action sets differ");
    assert!(!report.equivalent());

    let report = check_over_instants(&q2(), &q2_prime(), &env, &reg, (0..8).map(Instant)).unwrap();
    assert!(report.equivalent());
}

/// §3.2: time dependence — the same query at different instants may give
/// different results; at the same instant it is deterministic.
#[test]
fn time_dependence_and_instant_determinism() {
    let env = example_environment();
    let reg = example_registry();
    let a = ExecContext::new(&env, &reg, Instant(2))
        .execute(&q2())
        .unwrap();
    let b = ExecContext::new(&env, &reg, Instant(2))
        .execute(&q2())
        .unwrap();
    assert_eq!(a.relation, b.relation);
    let differs = (0..6).any(|t| {
        let x = ExecContext::new(&env, &reg, Instant(t))
            .execute(&q2())
            .unwrap();
        let y = ExecContext::new(&env, &reg, Instant(t + 1))
            .execute(&q2())
            .unwrap();
        x.relation != y.relation
    });
    assert!(differs, "photo quality varies over time by construction");
}

/// Example 8 (continuous): Q3 alerts contacts on hot readings, Q4 emits a
/// photo stream on cold readings — via the stream executor.
#[test]
fn example_8_continuous_queries() {
    use serena::core::schema::XSchema;
    use serena::stream::plan::examples::{q3, q4};
    use serena::stream::{ContinuousQuery, FnStream, SourceSet, TableHandle};

    let temps_schema = XSchema::builder()
        .real("location", DataType::Str)
        .real("temperature", DataType::Real)
        .build()
        .unwrap();

    // Q3: hot at τ=2 → 3 contacts alerted once
    let mut sources = SourceSet::new();
    sources.add_stream(
        "temperatures",
        temps_schema.clone(),
        Box::new(FnStream(|at: Instant| {
            if at.ticks() == 2 {
                vec![tuple!["office", 36.0]]
            } else {
                vec![tuple!["office", 20.0]]
            }
        })),
    );
    sources.add_table(
        "contacts",
        TableHandle::with_tuples(
            serena::core::schema::examples::contacts_schema(),
            serena::core::xrelation::examples::contacts().into_tuples(),
        ),
    );
    let mut q3 = ContinuousQuery::compile(&q3(), &mut sources).unwrap();
    assert!(!q3.schema().infinite, "Q3's result is finite (ends in β)");
    let reg = example_registry();
    let actions: Vec<usize> = (0..4)
        .map(|_| q3.tick_with(&reg, &NoopMetrics).actions.len())
        .collect();
    assert_eq!(actions, vec![0, 0, 3, 0]);

    // Q4: cold at τ=1 → photos from the office cameras
    let mut sources = SourceSet::new();
    sources.add_stream(
        "temperatures",
        temps_schema,
        Box::new(FnStream(|at: Instant| {
            if at.ticks() == 1 {
                vec![tuple!["office", 5.0]]
            } else {
                vec![tuple!["office", 20.0]]
            }
        })),
    );
    sources.add_table(
        "cameras",
        TableHandle::with_tuples(
            serena::core::schema::examples::cameras_schema(),
            serena::core::xrelation::examples::cameras().into_tuples(),
        ),
    );
    let mut q4 = ContinuousQuery::compile(&q4(), &mut sources).unwrap();
    assert!(q4.schema().infinite, "Q4's result is a stream (ends in S)");
    let batches: Vec<usize> = (0..4)
        .map(|_| q4.tick_with(&reg, &NoopMetrics).batch.len())
        .collect();
    assert_eq!(batches, vec![0, 2, 0, 0]); // camera01 + webcam07 cover office
}

/// Table 2's DDL defines schemas identical to the programmatic ones.
#[test]
fn table_2_ddl_equals_programmatic_schemas() {
    let env = example_environment();
    let program = "
        EXTENDED RELATION cameras (
          camera SERVICE,
          area STRING,
          quality INTEGER VIRTUAL,
          delay REAL VIRTUAL,
          photo BLOB VIRTUAL
        )
        USING BINDING PATTERNS (
          checkPhoto[camera] ( area ) : ( quality, delay ),
          takePhoto[camera] ( area, quality ) : ( photo )
        );
    ";
    let stmts = serena::ddl::parse_program(program).unwrap();
    let serena::ddl::Statement::ExtendedRelation {
        attrs, bindings, ..
    } = &stmts[0]
    else {
        panic!()
    };
    let schema = serena::ddl::resolve_relation_schema(attrs, bindings, &env).unwrap();
    assert!(schema.compatible_with(&serena::core::schema::examples::cameras_schema()));
    // and the rendered DDL round-trips structurally
    let ddl = schema.to_ddl("cameras");
    assert!(ddl.contains("checkPhoto[camera] ( area ) : ( quality, delay )"));
    assert!(ddl.contains("takePhoto[camera] ( area, quality ) : ( photo )"));
}
