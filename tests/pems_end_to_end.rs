//! Cross-crate integration: DDL → PEMS → continuous queries → simulated
//! devices, including discovery churn and failure injection (§5.1–5.2).

use std::sync::Arc;

use serena::core::prelude::*;
use serena::core::tuple;
use serena::pems::scenario::{
    deploy_surveillance, rss_expected_matches, total_messages, RssConfig, SurveillanceConfig,
};
use serena::pems::Pems;
use serena::services::bus::BusConfig;
use serena::services::devices::messenger::{MessengerKind, SimMessenger};
use serena::services::devices::temperature::SimTemperatureSensor;
use serena::services::faults::{FaultPolicy, FaultyService};

#[test]
fn surveillance_scenario_full_lifecycle() {
    let config = SurveillanceConfig {
        sensors: 9,
        cameras: 6,
        contacts: 3,
        threshold: 30.0,
        heat_events: vec![
            (0, Instant(2), Instant(2), 42.0),
            (4, Instant(5), Instant(5), 38.0),
        ],
        ..SurveillanceConfig::default()
    };
    let mut s = deploy_surveillance(&config).unwrap();
    let mut actions_per_tick = Vec::new();
    for _ in 0..8 {
        let reports = s.pems.tick();
        let alerts = reports
            .iter()
            .find(|(n, _)| n == "alerts")
            .map(|(_, r)| r.actions.len())
            .unwrap();
        actions_per_tick.push(alerts);
    }
    // sensor0 (corridor, manager contact0) at τ2; sensor4 (office... areas
    // round robin: 0=corridor,1=office,2=roof,3=corridor,4=office) at τ5
    assert_eq!(actions_per_tick[2], 1);
    assert_eq!(actions_per_tick[5], 1);
    assert_eq!(actions_per_tick.iter().sum::<usize>(), 2);
    assert_eq!(total_messages(&s.outboxes), 2);
}

#[test]
fn discovery_latency_delays_stream_membership() {
    // announce latency 3: a sensor registered at τ0 only participates in
    // the temperature stream from τ3 on.
    let config = SurveillanceConfig {
        sensors: 0,
        cameras: 0,
        contacts: 1,
        bus: BusConfig {
            announce_latency: 3,
            leave_latency: 1,
            jitter: 0,
            seed: 7,
        },
        ..SurveillanceConfig::default()
    };
    let mut s = deploy_surveillance(&config).unwrap();
    let lerm = s.pems.local_erm("wing");
    let hot = SimTemperatureSensor::new(5, 50.0, 0.5);
    lerm.register_service("hot", hot.into_service(), Instant(0));
    s.pems
        .directory()
        .set("hot", "location", Value::str("corridor"));

    let mut first_alert_tick = None;
    for t in 0..8u64 {
        let reports = s.pems.tick();
        let alerts = reports
            .iter()
            .find(|(n, _)| n == "alerts")
            .map(|(_, r)| r.actions.len())
            .unwrap();
        if alerts > 0 && first_alert_tick.is_none() {
            first_alert_tick = Some(t);
        }
    }
    assert_eq!(first_alert_tick, Some(3), "bus latency gates discovery");
}

#[test]
fn failing_sensor_degrades_gracefully() {
    let mut pems = Pems::builder().bus(BusConfig::instant()).build();
    pems.run_program(
        "PROTOTYPE getTemperature( ) : ( temperature REAL );
         EXTENDED RELATION sensors (
           sensor SERVICE, location STRING, temperature REAL VIRTUAL
         ) USING BINDING PATTERNS ( getTemperature[sensor] );
         REGISTER QUERY temps AS INVOKE[getTemperature[sensor]](sensors);",
    )
    .unwrap();
    // one healthy, one permanently faulty
    pems.directory().register(
        "good",
        serena::core::service::fixtures::temperature_sensor(1),
    );
    pems.directory().register(
        "bad",
        FaultyService::new(
            serena::core::service::fixtures::temperature_sensor(2),
            FaultPolicy::EveryNth(1),
        ),
    );
    pems.tables_mut()
        .insert("sensors", tuple![Value::service("good"), "office"])
        .unwrap();
    pems.tables_mut()
        .insert("sensors", tuple![Value::service("bad"), "roof"])
        .unwrap();

    let reports = pems.tick();
    let (_, report) = &reports[0];
    assert_eq!(report.errors.len(), 1, "the faulty invocation is surfaced");
    assert_eq!(report.delta.inserts.len(), 1, "the healthy reading lands");
    let stats = pems.processor().stats("temps").unwrap();
    assert_eq!(stats.errors, 1);
}

#[test]
fn rss_scenario_against_generator_oracle() {
    let config = RssConfig {
        window: 4,
        ..RssConfig::default()
    };
    let mut pems = serena::pems::scenario::deploy_rss(&config).unwrap();
    let ticks = 30u64;
    let mut inserted = 0;
    for _ in 0..ticks {
        inserted += pems.tick()[0].1.delta.inserts.len();
    }
    let keyword = serena::services::devices::rss::SimRssFeed::tracked_keyword();
    let expected = rss_expected_matches(&config, keyword, Instant(0), Instant(ticks - 1));
    assert_eq!(inserted, expected);
}

#[test]
fn one_shot_queries_coexist_with_continuous_ones() {
    let mut pems = Pems::builder().bus(BusConfig::instant()).build();
    let (svc, outbox) = SimMessenger::new(MessengerKind::Email).into_service();
    pems.directory().register("email", svc);
    pems.run_program(
        "PROTOTYPE sendMessage( address STRING, text STRING ) : ( sent BOOLEAN ) ACTIVE;
         EXTENDED RELATION contacts (
           name STRING, address STRING, text STRING VIRTUAL,
           messenger SERVICE, sent BOOLEAN VIRTUAL
         ) USING BINDING PATTERNS ( sendMessage[messenger] ( address, text ) : ( sent ) );
         INSERT INTO contacts VALUES ('Ada', 'ada@lovelace.org', 'email');
         REGISTER QUERY watch AS contacts;",
    )
    .unwrap();
    pems.tick();

    // one-shot Q1-style query, mid-run, through the same registry
    let outcomes = pems
        .run_program("EXECUTE INVOKE[sendMessage[messenger]](ASSIGN[text := 'Hello'](contacts));")
        .unwrap();
    let serena::pems::ExecOutcome::OneShot(out) = &outcomes[0] else {
        panic!()
    };
    assert_eq!(out.actions.len(), 1);
    assert_eq!(outbox.lock().len(), 1);
    assert_eq!(outbox.lock()[0].text, "Hello");

    // the continuous query is unaffected
    let reports = pems.tick();
    assert!(reports[0].1.delta.is_empty());
}

#[test]
fn service_replacement_changes_behaviour_not_schema() {
    // swap a sensor implementation under the same reference mid-query: the
    // query keeps running, values change — services are bound late (§2.1).
    let mut pems = Pems::builder().bus(BusConfig::instant()).build();
    pems.run_program(
        "PROTOTYPE getTemperature( ) : ( temperature REAL );
         EXTENDED RELATION sensors (
           sensor SERVICE, location STRING, temperature REAL VIRTUAL
         ) USING BINDING PATTERNS ( getTemperature[sensor] );",
    )
    .unwrap();
    let fixed = |v: f64| {
        Arc::new(serena::core::service::FnService::new(
            vec![serena::core::prototype::examples::get_temperature()],
            move |_, _, _| Ok(vec![Tuple::new(vec![Value::Real(v)])]),
        )) as Arc<dyn serena::core::service::Service>
    };
    pems.directory().register("s1", fixed(20.0));
    pems.tables_mut()
        .insert("sensors", tuple![Value::service("s1"), "lab"])
        .unwrap();

    let plan = serena::core::plan::Plan::relation("sensors").invoke("getTemperature", "sensor");
    let before = pems.one_shot(&plan).unwrap();
    assert!(before
        .relation
        .contains(&tuple![Value::service("s1"), "lab", 20.0]));

    pems.directory().register("s1", fixed(99.0)); // hot-swap
    let after = pems.one_shot(&plan).unwrap();
    assert!(after
        .relation
        .contains(&tuple![Value::service("s1"), "lab", 99.0]));
}
