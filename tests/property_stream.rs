//! Property-based tests of the continuous layer (§4).
//!
//! The central invariant: **delta consistency** — for any random sequence
//! of table mutations and stream batches, replaying every per-tick delta
//! reconstructs exactly the operator's instantaneous state, and the
//! continuous result of a query equals the one-shot evaluation of the same
//! query over the final table contents.

mod common;

use common::Rng;
use serena::core::formula::Formula;
use serena::core::prelude::*;
use serena::core::schema::XSchema;
use serena::core::service::fixtures::example_registry;
use serena::core::tuple;
use serena::stream::{
    ContinuousQuery, Delta, Multiset, PushStream, SourceSet, StreamKind, StreamPlan, TableHandle,
};

fn int_schema() -> SchemaRef {
    XSchema::builder()
        .real("x", DataType::Int)
        .real("y", DataType::Int)
        .build()
        .unwrap()
}

/// One scripted mutation.
#[derive(Debug, Clone)]
enum Op {
    Insert(i64, i64),
    Delete(i64, i64),
    TickOnly,
}

fn gen_ops(rng: &mut Rng) -> Vec<Op> {
    rng.vec_of(1, 30, |r| match r.below(3) {
        0 => Op::Insert(r.i64_in(0, 5), r.i64_in(0, 5)),
        1 => Op::Delete(r.i64_in(0, 5), r.i64_in(0, 5)),
        _ => Op::TickOnly,
    })
}

fn gen_formula(rng: &mut Rng) -> Formula {
    match rng.below(4) {
        0 => Formula::True,
        1 => Formula::gt_const("x", rng.i64_in(0, 5)),
        2 => Formula::ne_const("y", rng.i64_in(0, 5)),
        _ => Formula::gt_const("x", rng.i64_in(0, 5)).and(Formula::le_const("y", rng.i64_in(0, 5))),
    }
}

/// Continuous σ/π over a mutating table: the accumulated deltas equal
/// the one-shot answer over the final state, at every prefix.
#[test]
fn continuous_select_equals_one_shot() {
    for case in 0..64u64 {
        let mut rng = Rng::new(0x5100 + case);
        let ops = gen_ops(&mut rng);
        let f = gen_formula(&mut rng);

        let table = TableHandle::new(int_schema());
        let mut sources = SourceSet::new();
        sources.add_table("t", table.clone());
        let plan = StreamPlan::source("t").select(f.clone());
        let mut q = ContinuousQuery::compile(&plan, &mut sources).unwrap();
        let reg = example_registry();

        let mut replayed = Multiset::new();
        for op in &ops {
            match op {
                Op::Insert(x, y) => table.insert(tuple![*x, *y]),
                Op::Delete(x, y) => table.delete(tuple![*x, *y]),
                Op::TickOnly => {}
            }
            let report = q.tick_with(&reg, &NoopMetrics);
            // replaying deltas reconstructs the instantaneous state…
            let missing = replayed.apply(&report.delta);
            assert_eq!(missing, 0, "delta deleted tuples that were absent");
            let current = q.current_relation().unwrap();
            assert_eq!(current.len(), replayed.distinct());

            // …and matches the one-shot evaluation over the table's state.
            let mut env = serena::core::env::Environment::new();
            let snapshot =
                XRelation::from_tuples(int_schema(), table.snapshot().iter_occurrences().cloned());
            env.define_relation("t", snapshot).unwrap();
            let one_shot = ExecContext::new(&env, &reg, Instant::ZERO)
                .execute(&serena::core::plan::Plan::relation("t").select(f.clone()))
                .unwrap();
            assert_eq!(current, one_shot.relation);
        }
    }
}

/// The window `W[p]` always contains exactly the batches of the last
/// `p` instants.
#[test]
fn window_contents_match_definition() {
    for case in 0..64u64 {
        let mut rng = Rng::new(0x5200 + case);
        let batches: Vec<Vec<(i64, i64)>> = rng.vec_of(1, 20, |r| {
            r.vec_of(0, 4, |r| (r.i64_in(0, 9), r.i64_in(0, 9)))
        });
        let period = rng.u64_in(1, 5);

        let push = PushStream::new();
        let mut sources = SourceSet::new();
        sources.add_stream("s", int_schema(), Box::new(push.clone()));
        let plan = StreamPlan::source("s").window(period);
        let mut q = ContinuousQuery::compile(&plan, &mut sources).unwrap();
        let reg = example_registry();

        for (i, batch) in batches.iter().enumerate() {
            for &(x, y) in batch {
                push.push(tuple![x, y]);
            }
            q.tick_with(&reg, &NoopMetrics);
            // expected: the union of the last `period` batches
            let lo = (i + 1).saturating_sub(period as usize);
            let expected: Multiset = batches[lo..=i]
                .iter()
                .flatten()
                .map(|&(x, y)| tuple![x, y])
                .collect();
            let current = q.current_relation().unwrap();
            assert_eq!(current.len(), expected.distinct());
            for (t, _) in expected.iter() {
                assert!(current.contains(t), "missing {t} at tick {i}");
            }
        }
    }
}

/// `S[insertion]` emits exactly the per-tick insert deltas;
/// `S[heartbeat]` repeats the full state.
#[test]
fn streaming_operators_echo_deltas() {
    for case in 0..64u64 {
        let mut rng = Rng::new(0x5300 + case);
        let ops = gen_ops(&mut rng);

        let table = TableHandle::new(int_schema());
        let mut s1 = SourceSet::new();
        s1.add_table("t", table.clone());
        let mut ins = ContinuousQuery::compile(
            &StreamPlan::source("t").stream(StreamKind::Insertion),
            &mut s1,
        )
        .unwrap();
        let mut s2 = SourceSet::new();
        s2.add_table("t", table.clone());
        let mut hb = ContinuousQuery::compile(
            &StreamPlan::source("t").stream(StreamKind::Heartbeat),
            &mut s2,
        )
        .unwrap();
        let mut s3 = SourceSet::new();
        s3.add_table("t", table.clone());
        let mut raw = ContinuousQuery::compile(&StreamPlan::source("t"), &mut s3).unwrap();

        let reg = example_registry();
        let mut state = Multiset::new();
        for op in &ops {
            match op {
                Op::Insert(x, y) => table.insert(tuple![*x, *y]),
                Op::Delete(x, y) => table.delete(tuple![*x, *y]),
                Op::TickOnly => {}
            }
            let r_raw = raw.tick_with(&reg, &NoopMetrics);
            let r_ins = ins.tick_with(&reg, &NoopMetrics);
            let r_hb = hb.tick_with(&reg, &NoopMetrics);
            state.apply(&r_raw.delta);
            // S[insertion] batch == the finite node's insert delta
            let expected: Vec<Tuple> = r_raw.delta.inserts.sorted_occurrences();
            assert_eq!(&r_ins.batch, &expected);
            // S[heartbeat] batch == the full current *multiset* state
            // (occurrences, not distinct tuples)
            assert_eq!(&r_hb.batch, &state.sorted_occurrences());
        }
    }
}

/// Join deltas are consistent: replaying them equals recomputing the
/// join of the final states.
#[test]
fn incremental_join_consistency() {
    for case in 0..64u64 {
        let mut rng = Rng::new(0x5400 + case);
        let left_ops = gen_ops(&mut rng);
        let right_ops = gen_ops(&mut rng);

        let l = TableHandle::new(int_schema());
        let r_schema = XSchema::builder()
            .real("x", DataType::Int)
            .real("z", DataType::Int)
            .build()
            .unwrap();
        let r = TableHandle::new(r_schema.clone());
        let mut sources = SourceSet::new();
        sources.add_table("l", l.clone());
        sources.add_table("r", r.clone());
        let plan = StreamPlan::source("l").join(StreamPlan::source("r"));
        let mut q = ContinuousQuery::compile(&plan, &mut sources).unwrap();
        let reg = example_registry();

        let steps = left_ops.len().max(right_ops.len());
        let mut replayed = Multiset::new();
        for i in 0..steps {
            if let Some(op) = left_ops.get(i) {
                match op {
                    Op::Insert(x, y) => l.insert(tuple![*x, *y]),
                    Op::Delete(x, y) => l.delete(tuple![*x, *y]),
                    Op::TickOnly => {}
                }
            }
            if let Some(op) = right_ops.get(i) {
                match op {
                    Op::Insert(x, z) => r.insert(tuple![*x, *z]),
                    Op::Delete(x, z) => r.delete(tuple![*x, *z]),
                    Op::TickOnly => {}
                }
            }
            let report = q.tick_with(&reg, &NoopMetrics);
            assert_eq!(replayed.apply(&report.delta), 0);
        }
        // recompute from scratch over the final snapshots
        let l_rel = XRelation::from_tuples(int_schema(), l.snapshot().iter_occurrences().cloned());
        let r_rel = XRelation::from_tuples(r_schema, r.snapshot().iter_occurrences().cloned());
        let expected = serena::core::ops::join(&l_rel, &r_rel).unwrap();
        assert_eq!(q.current_relation().unwrap(), expected);
        let _ = Delta::new();
    }
}
