//! Acceptance tests for the β resilience layer (invoker middleware stack):
//! retries recover transient faults bit-for-bit, the circuit breaker opens
//! and half-opens through real query execution, and degradation policies
//! produce partial results whose degraded counts surface in `NodeStats`
//! and the Prometheus rendering.

use std::time::Duration;

use serena::prelude::*;
use serena::services::bus::BusConfig;
use serena::services::faults::{FaultPolicy, FaultyService};

/// A PEMS over four temperature sensors (two optionally faulty), with the
/// given resilience policy, β parallelism and degradation policy.
fn sensor_pems(
    policy: ResiliencePolicy,
    parallelism: usize,
    degrade: DegradePolicy,
    faulty: Option<FaultPolicy>,
) -> Pems {
    use serena::core::service::fixtures;
    let mut pems = Pems::builder()
        .bus(BusConfig::instant())
        .resilience(policy)
        .exec_options(ExecOptions::parallel(parallelism).with_degrade(degrade))
        .build();
    let reg = pems.directory();
    for (name, seed) in [
        ("sensor01", 1u64),
        ("sensor06", 6),
        ("sensor07", 7),
        ("sensor22", 22),
    ] {
        let svc = fixtures::temperature_sensor(seed);
        // the two even-numbered sensors misbehave when a fault is injected
        if seed % 2 == 0 {
            if let Some(fault) = &faulty {
                reg.register(name, FaultyService::new(svc, fault.clone()));
                continue;
            }
        }
        reg.register(name, svc);
    }
    pems.run_program(
        "PROTOTYPE getTemperature( ) : ( temperature REAL );
         EXTENDED RELATION sensors (
           sensor SERVICE, location STRING, temperature REAL VIRTUAL
         ) USING BINDING PATTERNS ( getTemperature[sensor] );
         INSERT INTO sensors VALUES
           ('sensor01', 'corridor'), ('sensor06', 'office'),
           ('sensor07', 'roof'), ('sensor22', 'kitchen');",
    )
    .unwrap();
    pems
}

fn read_all() -> Plan {
    Plan::relation("sensors").invoke("getTemperature", "sensor")
}

/// Acceptance: with enough retry budget, a query over transiently-failing
/// services returns *exactly* the fault-free result — at β parallelism 1
/// and 8.
#[test]
fn retries_make_transient_faults_invisible() {
    // each faulty service fails its first call, then answers for a while
    let fault = FaultPolicy::Intermittent { fail: 1, ok: 99 };
    let policy = ResiliencePolicy::disabled()
        .with_retries(2)
        .with_backoff(Duration::from_micros(50), Duration::from_micros(400));

    for parallelism in [1usize, 8] {
        let reference = sensor_pems(
            ResiliencePolicy::disabled(),
            parallelism,
            DegradePolicy::FailQuery,
            None,
        );
        let expected = reference.one_shot(&read_all()).unwrap();

        let resilient = sensor_pems(
            policy,
            parallelism,
            DegradePolicy::FailQuery,
            Some(fault.clone()),
        );
        let observed = resilient.one_shot(&read_all()).unwrap();

        assert_eq!(
            observed.relation, expected.relation,
            "retried output diverged from fault-free run (parallelism={parallelism})"
        );
        assert_eq!(observed.actions, expected.actions);
        // the recovery really went through the retry path
        let c = resilient.resilience_counters();
        assert_eq!(c.retries, 2, "one retry per faulty sensor");
        assert_eq!(c.rejected, 0);

        // sanity: without retries the same faults fail the query outright
        let fragile = sensor_pems(
            ResiliencePolicy::disabled(),
            parallelism,
            DegradePolicy::FailQuery,
            Some(fault.clone()),
        );
        assert!(fragile.one_shot(&read_all()).is_err());
    }
}

/// Acceptance: the breaker opens after consecutive failures, rejects calls
/// while open, half-opens after the logical cooldown and closes on a
/// successful probe — all observed through `Pems` query execution.
#[test]
fn breaker_opens_half_opens_and_recovers() {
    // both faulty sensors are down for instants 0..=1, healthy from 2 on
    let fault = FaultPolicy::Outage {
        from: Instant(0),
        to: Instant(1),
    };
    let policy = ResiliencePolicy::disabled().with_breaker(2, 2);
    // DropTuple keeps the queries (and the probing) alive while services
    // are down
    let mut pems = sensor_pems(policy, 1, DegradePolicy::DropTuple, Some(fault));
    let flaky = ServiceRef::new("sensor06");

    // τ=0: two one-shots → two consecutive failures per faulty service →
    // breakers open until τ+2
    for _ in 0..2 {
        let out = pems.one_shot(&read_all()).unwrap();
        assert_eq!(out.relation.len(), 2, "healthy sensors still answer");
    }
    assert_eq!(
        pems.breakers()
            .iter()
            .find(|(s, _)| *s == flaky)
            .map(|(_, b)| *b),
        Some(BreakerState::Open { until: Instant(2) })
    );
    let opened = pems.resilience_counters().breaker_opened;
    assert_eq!(opened, 2, "one trip per faulty service");

    // still τ=0: open breakers reject without touching the services
    pems.one_shot(&read_all()).unwrap();
    assert_eq!(pems.resilience_counters().rejected, 2);

    // advance the logical clock past the cooldown; the outage is over too
    pems.run_ticks(2);
    assert_eq!(pems.clock(), Instant(2));

    // τ=2: the half-open probe succeeds and the breakers close
    let out = pems.one_shot(&read_all()).unwrap();
    assert_eq!(out.relation.len(), 4, "recovered sensors answer again");
    assert!(pems
        .breakers()
        .iter()
        .all(|(_, b)| *b == BreakerState::Closed));
    assert_eq!(pems.resilience_counters().breaker_opened, opened);
}

/// Acceptance: `NullFill` and `DropTuple` produce partial results, and the
/// degraded counts are visible both in the `EXPLAIN ANALYZE` node stats and
/// in the Prometheus rendering.
#[test]
fn degradation_surfaces_partial_results_and_counters() {
    let dead = FaultPolicy::EveryNth(1); // the faulty sensors never answer

    // DropTuple: the two dead sensors vanish from the result
    let pems = sensor_pems(
        ResiliencePolicy::disabled(),
        1,
        DegradePolicy::DropTuple,
        Some(dead.clone()),
    );
    let ea = pems.explain_analyze(&read_all()).unwrap();
    assert_eq!(ea.outcome.relation.len(), 2);
    assert_eq!(ea.stats.total_degraded(), 2);
    assert!(ea.rendered.contains("degraded=2"), "{}", ea.rendered);
    assert!(
        pems.render_metrics()
            .contains("serena_beta_degraded_total{op=\"Invoke\"} 2"),
        "{}",
        pems.render_metrics()
    );

    // NullFill: every sensor is present; dead ones carry the type default
    let pems = sensor_pems(
        ResiliencePolicy::disabled(),
        1,
        DegradePolicy::NullFill,
        Some(dead),
    );
    let out = pems.one_shot(&read_all()).unwrap();
    assert_eq!(out.relation.len(), 4);
    let filled: Vec<&Tuple> = out
        .relation
        .iter()
        .filter(|t| t[2] == Value::Real(0.0))
        .collect();
    assert_eq!(filled.len(), 2, "dead sensors answer with the default");
}
