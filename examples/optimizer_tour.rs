//! Query rewriting and optimization (§3.3, Table 5).
//!
//! Shows the optimizer turning the naive `Q2'` into the pushed-down `Q2`
//! shape, the measured invocation savings, the cost-model ranking, and —
//! the paper's central caveat — why `Q1'` must *not* be rewritten: its
//! selection sits above an *active* invocation, and moving it would change
//! the action set (Example 6).
//!
//! ```sh
//! cargo run --example optimizer_tour
//! ```

use std::collections::BTreeMap;

use serena::core::env::examples::example_environment;
use serena::core::eval::CountingInvoker;
use serena::core::plan::examples::{q1_prime, q2, q2_prime};
use serena::core::prelude::*;
use serena::core::rewrite::{estimate, optimize, CostParams};
use serena::core::service::fixtures::example_registry;

fn main() {
    let env = example_environment();
    let registry = example_registry();

    // --- optimizing the passive pipeline Q2' ---
    let naive = q2_prime();
    println!("naive      : {naive}");
    let report = optimize(&naive, &env);
    println!("optimized  : {}", report.plan);
    println!("rules applied:");
    for (rule, n) in &report.applied {
        println!("  {rule} ×{n}");
    }

    let count = |plan: &Plan| {
        let counter = CountingInvoker::new(&registry);
        ExecContext::new(&env, &counter, Instant::ZERO)
            .execute(plan)
            .expect("evaluates");
        counter.snapshot()
    };
    println!("\ninvocations (naive)     : {:?}", count(&naive));
    println!("invocations (optimized) : {:?}", count(&report.plan));
    println!("invocations (paper's Q2): {:?}", count(&q2()));

    // --- the cost model agrees ---
    let cards: BTreeMap<String, usize> =
        [("cameras".to_string(), 3usize), ("contacts".to_string(), 3)].into();
    let params = CostParams::default();
    let c_naive = estimate(&naive, &env, &cards, &params).expect("estimable");
    let c_opt = estimate(&report.plan, &env, &cards, &params).expect("estimable");
    println!(
        "\ncost model: naive {:.0} (≈{:.0} invocations) vs optimized {:.0} (≈{:.0} invocations)",
        c_naive.cost, c_naive.invocations, c_opt.cost, c_opt.invocations
    );

    // --- the active-invocation wall ---
    let q1p = q1_prime();
    println!("\nQ1' = {q1p}");
    let report = optimize(&q1p, &env);
    println!("optimized Q1' = {}", report.plan);
    let before = ExecContext::new(&env, &registry, Instant::ZERO)
        .execute(&q1p)
        .unwrap();
    let after = ExecContext::new(&env, &registry, Instant::ZERO)
        .execute(&report.plan)
        .unwrap();
    assert_eq!(before.actions, after.actions);
    println!(
        "action set unchanged ({} messages — Carla is still messaged, exactly as Q1' demands)",
        after.actions.len()
    );
}
