//! Two-node smoke: a host PEMS serves a generated sensor fleet over the
//! transport selected by `SERENA_TRANSPORT` (default: in-proc; `socket`
//! for a Unix-domain socket), an edge PEMS joins it and runs a full
//! continuous workload for 20 ticks with per-tick checkpoint replication
//! back to the host, and every runtime counter is checked for
//! well-formedness at the end. This is what CI runs as its distributed
//! smoke test.
//!
//! ```sh
//! cargo run --release --example two_node
//! SERENA_TRANSPORT=socket cargo run --release --example two_node
//! ```

use std::sync::Arc;

use serena::core::physical::ExecOptions;
use serena::pems::envspec::{ArrivalTrace, EnvSpec, QueryTemplate, WorkloadSpec};
use serena::pems::Pems;
use serena::services::fleet::FailureProfile;
use serena::services::transport::{self, Transport};

const TICKS: u64 = 20;

fn main() {
    let transport: Arc<dyn Transport> = transport::from_env();
    let addr = match transport.name() {
        "socket" => format!(
            "uds:{}",
            std::env::temp_dir()
                .join(format!("serena-two-node-{}.sock", std::process::id()))
                .display()
        ),
        _ => "inproc:two-node-host".to_string(),
    };

    let spec = EnvSpec::new(42)
        .sensors(32)
        .cameras(4)
        .failures(FailureProfile::new(0.2, 1.0))
        .arrivals(ArrivalTrace::new(42).mean_per_tick(12));
    let workload = WorkloadSpec::new()
        .queries(
            QueryTemplate::HotAreas {
                window: 3,
                threshold: 30.0,
            },
            2,
        )
        .queries(QueryTemplate::RecentReadings { window: 4 }, 1)
        .queries(QueryTemplate::SensorInventory, 1)
        .queries(QueryTemplate::SampledTemperatures { every: 1 }, 2);

    // The host owns the fleet and serves its directory.
    let mut host = Pems::builder().node_id("host").build();
    spec.install_catalog(&mut host).expect("host catalog");
    spec.deploy_into(&host);
    let handle = host
        .serve(Arc::clone(&transport), &addr)
        .expect("host serves");
    println!("host `{}` serving on {}", host.node_id(), handle.addr());

    // The edge runs the queries; every β call relays to the host, and
    // its state replicates back to the host after every tick.
    let mut edge = Pems::builder()
        .node_id("edge")
        .exec_options(ExecOptions::parallel(4))
        .dedup(true)
        .build();
    spec.install_catalog(&mut edge).expect("edge catalog");
    let names = workload
        .register_into(&mut edge, &spec)
        .expect("workload registers");
    let peer = edge
        .connect_peer(Arc::clone(&transport), handle.addr())
        .expect("edge links host");
    let standby = edge
        .replicate_to(Arc::clone(&transport), handle.addr())
        .expect("edge replicates");
    println!(
        "edge `{}` joined `{peer}` over {}, replicating to `{standby}`",
        edge.node_id(),
        transport.name()
    );

    let (mut reports, mut invocations, mut errors) = (0u64, 0u64, 0u64);
    for _ in 0..TICKS {
        host.tick();
        for (_, r) in edge.tick() {
            reports += 1;
            invocations += r.stats.total_invocations();
            errors += r.errors.len() as u64;
        }
    }

    // Liveness and membership are intact after 20 ticks.
    let peers = edge.peer_status();
    assert_eq!(peers.len(), 1, "one directory link to the host");
    assert!(peers.iter().any(|p| p.alive && p.services > 0));

    // The workload really ran, over the wire.
    assert_eq!(reports, TICKS * names.len() as u64);
    assert!(invocations > 0, "no β invocations relayed");
    assert!(errors > 0, "the 20% failure profile must surface faults");

    // The replicated checkpoint stream kept up: the host's latest copy
    // is the edge's final tick.
    let (tick, bytes) = handle.last_checkpoint().expect("replicated checkpoint");
    assert_eq!(tick, TICKS - 1);
    assert!(!bytes.is_empty());

    // Runtime counters are well-formed: replication matches ticks and
    // nothing failed; β health saw every attempt it reports.
    let metrics = edge.render_metrics();
    let counter = |name: &str| -> u64 {
        metrics
            .lines()
            .find(|l| l.starts_with(name) && !l.starts_with('#'))
            .and_then(|l| l.split_whitespace().last())
            .and_then(|v| v.parse().ok())
            .unwrap_or(0)
    };
    assert_eq!(counter("serena_replication_total"), TICKS);
    assert_eq!(counter("serena_replication_errors_total"), 0);
    let health: Vec<_> = edge.service_health();
    let attempts: u64 = health.iter().map(|h| h.attempts).sum();
    let failures: u64 = health.iter().map(|h| h.failures).sum();
    // with the dedup memo armed, physical attempts can undercut the
    // per-query logical invocation sum — but never vanish or invert
    assert!(attempts > 0, "health saw no β attempts");
    assert!(failures <= attempts, "failures exceed attempts");

    println!(
        "{TICKS} ticks over `{}`: {reports} reports, {invocations} β invocations, \
         {errors} surfaced faults, {attempts} attempts / {failures} failures in health, \
         checkpoint tick {tick} ({} bytes)",
        transport.name(),
        bytes.len()
    );
    println!("two-node smoke OK");
}
