//! Robustness under failing devices — the assessment §5.2 leaves open.
//!
//! A surveillance-style deployment where one sensor suffers a scripted
//! outage and another fails every other call: invocation errors surface in
//! the tick reports, healthy sensors keep flowing, and when the flaky
//! device recovers, its readings resume — the continuous query never
//! stops.
//!
//! ```sh
//! cargo run --example failure_injection
//! ```

use std::sync::Arc;

use serena::core::prelude::*;
use serena::core::tuple;
use serena::pems::Pems;
use serena::services::bus::BusConfig;
use serena::services::faults::{FaultPolicy, FaultyService};

fn main() {
    let mut pems = Pems::builder().bus(BusConfig::instant()).build();
    pems.run_program(
        "PROTOTYPE getTemperature( ) : ( temperature REAL );
         EXTENDED RELATION sensors (
           sensor SERVICE, location STRING, temperature REAL VIRTUAL
         ) USING BINDING PATTERNS ( getTemperature[sensor] );
         REGISTER QUERY temps AS INVOKE[getTemperature[sensor]](sensors);",
    )
    .expect("setup");

    let registry = pems.registry();
    registry.register(
        "steady",
        serena::core::service::fixtures::temperature_sensor(1),
    );
    registry.register(
        "outage",
        FaultyService::with_error(
            serena::core::service::fixtures::temperature_sensor(2),
            FaultPolicy::Outage {
                from: Instant(2),
                to: Instant(4),
            },
            "battery swap in progress",
        ),
    );
    let flaky = FaultyService::new(
        serena::core::service::fixtures::temperature_sensor(3),
        FaultPolicy::EveryNth(2),
    );
    registry.register(
        "flaky",
        Arc::clone(&flaky) as Arc<dyn serena::core::service::Service>,
    );

    for (sensor, loc) in [("steady", "office"), ("outage", "roof"), ("flaky", "lab")] {
        pems.tables_mut()
            .insert("sensors", tuple![Value::service(sensor), loc])
            .expect("insert");
    }

    println!("3 sensors: steady | outage (down τ2–τ4) | flaky (every 2nd call fails)\n");
    for t in 0..7u64 {
        // churn the table so the delta-driven β re-invokes each tick
        let reports = pems.tick();
        let (_, report) = &reports[0];
        println!(
            "τ={t}: +{} readings, {} error(s){}",
            report.delta.inserts.len(),
            report.errors.len(),
            if report.errors.is_empty() {
                String::new()
            } else {
                format!(" — e.g. {}", report.errors[0])
            }
        );
        // force re-sampling next tick by cycling one row
        let probe = tuple![Value::service("outage"), "roof"];
        pems.tables_mut().delete("sensors", probe.clone()).unwrap();
        pems.tables_mut().insert("sensors", probe).unwrap();
    }

    let stats = pems.processor().stats("temps").expect("registered");
    println!(
        "\nquery survived: {} ticks, {} readings, {} errors — and it is still registered.",
        stats.ticks, stats.inserted, stats.errors
    );
    println!("flaky device saw {} invocation attempts.", flaky.attempts());
}
