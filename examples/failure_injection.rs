//! Robustness under failing devices — the assessment §5.2 leaves open.
//!
//! A surveillance-style deployment built entirely from an [`EnvSpec`]:
//! three sensors, one suffering a scripted outage and one failing every
//! other call (per-device fault overrides on the spec). Invocation errors
//! surface in the tick reports, healthy sensors keep flowing, and when the
//! flaky device recovers, its readings resume — the continuous query never
//! stops.
//!
//! ```sh
//! cargo run --example failure_injection
//! ```

use serena::core::prelude::*;
use serena::pems::envspec::{EnvSpec, QueryTemplate, WorkloadSpec};
use serena::services::faults::FaultPolicy;

fn main() {
    let spec = EnvSpec::new(1)
        .sensors(3)
        .areas(["office", "roof", "lab"])
        .sensor_fault(
            1,
            FaultPolicy::Outage {
                from: Instant(2),
                to: Instant(4),
            },
        )
        .sensor_fault(2, FaultPolicy::EveryNth(2));
    let (mut pems, fleet) = spec.build().expect("setup");
    let names = WorkloadSpec::new()
        .queries(QueryTemplate::SampledTemperatures { every: 1 }, 1)
        .register_into(&mut pems, &spec)
        .expect("register");
    let query = &names[0];

    println!("3 sensors: sensor00 steady | sensor01 down τ2–τ4 | sensor02 every 2nd call fails\n");
    for (sensor, area) in &fleet.sensors {
        println!("  {sensor} covers {area}");
    }
    println!();
    for t in 0..7u64 {
        let reports = pems.tick();
        let (_, report) = &reports[0];
        println!(
            "τ={t}: +{} readings, {} error(s){}",
            report.batch.len() + report.delta.inserts.len(),
            report.errors.len(),
            if report.errors.is_empty() {
                String::new()
            } else {
                format!(" — e.g. {}", report.errors[0])
            }
        );
    }

    let stats = pems.processor().stats(query).expect("registered");
    println!(
        "\nquery survived: {} ticks, {} readings, {} errors — and it is still registered.",
        stats.ticks, stats.inserted, stats.errors
    );
    println!("\n== service health (β-observed failure rates) ==");
    for h in pems.service_health() {
        println!(
            "  {}: {}/{} calls failed",
            h.reference, h.failures, h.attempts
        );
    }
}
