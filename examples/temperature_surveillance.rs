//! The paper's first experiment (§5.2): temperature surveillance,
//! end-to-end.
//!
//! Deploys simulated sensors, cameras and messengers behind a Local
//! Environment Resource Manager (the scenario builds its fleet through
//! the [`serena::pems::envspec::EnvSpec`] builder — the one public
//! fleet-construction path); registers the continuous alert and photo
//! queries; scripts two heat events; and — while the query is running —
//! hot-plugs a new sensor, which is discovered and integrated into the
//! temperature stream "without the need to stop the continuous query".
//!
//! ```sh
//! cargo run --example temperature_surveillance
//! ```

use serena::core::prelude::*;
use serena::pems::scenario::{deploy_surveillance, total_messages, SurveillanceConfig};
use serena::services::devices::temperature::SimTemperatureSensor;

fn main() {
    let config = SurveillanceConfig {
        sensors: 6,
        cameras: 3,
        contacts: 3,
        threshold: 28.0,
        heat_events: vec![
            (1, Instant(4), Instant(4), 41.0), // office sensor
            (2, Instant(7), Instant(7), 39.5), // roof sensor
        ],
        ..SurveillanceConfig::default()
    };
    let mut s = deploy_surveillance(&config).expect("deployment is valid");

    println!(
        "deployed: {} sensors, {} cameras, {} contacts; threshold {} °C",
        config.sensors, config.cameras, config.contacts, config.threshold
    );
    for (sensor, area) in &s.sensor_areas {
        println!("  {sensor} covers {area}");
    }
    println!();

    for tick in 0..10u64 {
        let reports = s.pems.tick();
        for (name, report) in &reports {
            if !report.actions.is_empty() {
                println!("τ={tick} [{name}] actions: {}", report.actions);
            }
            if !report.batch.is_empty() {
                println!("τ={tick} [{name}] emitted {} photo(s)", report.batch.len());
            }
            for err in &report.errors {
                println!("τ={tick} [{name}] survived error: {err}");
            }
        }
        if tick == 5 {
            // Hot-plug a new, permanently hot sensor mid-run.
            let lerm = s.pems.local_erm("annex");
            let hot = SimTemperatureSensor::new(99, 45.0, 0.5);
            lerm.register_service("sensor99", hot.into_service(), s.pems.clock());
            s.pems
                .directory()
                .set("sensor99", "location", Value::str("office"));
            println!("τ={tick} >>> hot-plugged sensor99 (45 °C, office) via LERM 'annex'");
        }
    }

    println!("\n== delivered messages ==");
    for (service, outbox) in &s.outboxes {
        for msg in outbox.lock().iter() {
            println!(
                "  via {service} at {}: to {} — {:?}",
                msg.at, msg.address, msg.text
            );
        }
    }
    println!("total: {} message(s)", total_messages(&s.outboxes));

    let stats = s.pems.processor().stats("alerts").expect("registered");
    println!(
        "\nalert query stats: {} ticks, {} result insertions, {} actions, {} errors",
        stats.ticks, stats.inserted, stats.actions, stats.errors
    );
}
