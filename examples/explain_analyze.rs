//! Observability tour: a PEMS built through [`PemsBuilder`] with a shared
//! metrics sink, `EXPLAIN ANALYZE` over a one-shot query, and rolling
//! per-query statistics over continuous ticks.
//!
//! ```sh
//! cargo run --example explain_analyze
//! ```

use std::sync::Arc;

use serena::prelude::*;
use serena::services::bus::BusConfig;

fn main() {
    // A PEMS-wide sink: every one-shot evaluation and every tick of every
    // continuous query reports per-operator observations here.
    let sink = Arc::new(ExecStats::new());
    let mut pems = Pems::builder()
        .bus(BusConfig::instant())
        .metrics(sink.clone())
        .build();

    let (svc, _outbox) = serena::services::devices::messenger::SimMessenger::new(
        serena::services::devices::messenger::MessengerKind::Email,
    )
    .into_service();
    pems.directory().register("email", svc);

    pems.run_program(
        "
        PROTOTYPE sendMessage( address STRING, text STRING ) : ( sent BOOLEAN ) ACTIVE;
        SERVICE email IMPLEMENTS sendMessage;
        EXTENDED RELATION contacts (
          name STRING, address STRING, text STRING VIRTUAL,
          messenger SERVICE, sent BOOLEAN VIRTUAL
        ) USING BINDING PATTERNS ( sendMessage[messenger] ( address, text ) : ( sent ) );
        INSERT INTO contacts VALUES
          ('Nicolas', 'nicolas@elysee.fr', 'email'),
          ('Carla', 'carla@elysee.fr', 'email'),
          ('Fabien', 'fabien@inria.fr', 'email');
    ",
    )
    .expect("setup");

    // Q1 (Table 4): message every contact except Carla.
    let q1 = Plan::relation("contacts")
        .select(Formula::ne_const("name", "Carla"))
        .assign_const("text", "Bonjour!")
        .invoke("sendMessage", "messenger");

    println!("== EXPLAIN ANALYZE (one-shot) ==\n");
    let ea = pems.explain_analyze(&q1).expect("Q1 evaluates");
    println!("{ea}");
    println!(
        "\nresult: {} tuples, {} actions, {} live invocations\n",
        ea.outcome.relation.len(),
        ea.outcome.actions.len(),
        ea.stats.total_invocations()
    );

    // The same plan registered continuously: per-tick β-cache behaviour.
    pems.run_program(
        "REGISTER QUERY greet AS
           INVOKE[sendMessage[messenger]](
             ASSIGN[text := 'Bonjour!'](SELECT[name != 'Carla'](contacts)));",
    )
    .expect("register");

    println!("== Continuous ticks (β invokes only newly inserted tuples) ==\n");
    for _ in 0..2 {
        pems.tick();
    }
    pems.run_program("INSERT INTO contacts VALUES ('Marie', 'marie@ens.fr', 'email');")
        .expect("insert");
    pems.tick();

    let stats = pems.processor().stats("greet").expect("registered").clone();
    println!(
        "greet: ticks={} inserted={} invocations={} cache_hits={} cache_misses={}",
        stats.ticks, stats.inserted, stats.invocations, stats.cache_hits, stats.cache_misses
    );

    println!("\n== Rolling per-node view of `greet` ==\n");
    for (id, node) in pems
        .processor()
        .exec_stats("greet")
        .expect("registered")
        .nodes()
    {
        println!(
            "{id} {:<10} applications={} in={} out={} invocations={}",
            node.op.to_string(),
            node.applications,
            node.tuples_in,
            node.tuples_out,
            node.invocations
        );
    }

    println!(
        "\nPEMS-wide sink saw {} nodes, {} total invocations",
        sink.nodes().len(),
        sink.total_invocations()
    );
}
