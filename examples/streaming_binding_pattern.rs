//! The paper's §7 future work, implemented: **streaming binding patterns**
//! (`βˢ`) — "a new notion of streaming binding pattern to homogeneously
//! integrate in our framework streams provided by services".
//!
//! Instead of wiring a hand-written sampler between the service layer and
//! a stream source, the sampling becomes an *algebra operator*: every
//! `period` instants, `βˢ[period] getTemperature[sensor] (sensors)`
//! invokes the (passive) binding pattern over the whole finite `sensors`
//! relation and streams the extended tuples — composable with `W`, σ and
//! the rest of the algebra, and reacting to table churn like everything
//! else.
//!
//! ```sh
//! cargo run --example streaming_binding_pattern
//! ```

use serena::core::prelude::*;
use serena::core::service::fixtures::example_registry;
use serena::core::tuple;
use serena::stream::{ContinuousQuery, SourceSet, StreamPlan, TableHandle};

fn main() {
    // the sensors table of §1.2 — a plain finite XD-Relation
    let sensors = TableHandle::with_tuples(
        serena::core::schema::examples::sensors_schema(),
        vec![
            tuple![Value::service("sensor01"), "corridor"],
            tuple![Value::service("sensor06"), "office"],
        ],
    );
    let mut sources = SourceSet::new();
    sources.add_table("sensors", sensors.clone());

    // sensors →βˢ[2]→ readings stream →W[1]→ σ hot
    let plan = StreamPlan::source("sensors")
        .sample_invoke("getTemperature", "sensor", 2)
        .window(1)
        .select(Formula::gt_const("temperature", 20.0))
        .project(["location", "temperature"]);
    println!("plan: {plan}\n");

    let mut query = ContinuousQuery::compile(&plan, &mut sources).expect("plan is valid");
    let registry = example_registry();

    for t in 0..8u64 {
        if t == 5 {
            sensors.insert(tuple![Value::service("sensor22"), "roof"]);
            println!("τ=5 >>> sensor22 (roof) inserted into the sensors table");
        }
        let report = query.tick_with(&registry, &NoopMetrics);
        for tup in report.delta.inserts.sorted_occurrences() {
            println!("τ={t}  + hot reading {tup}");
        }
        for tup in report.delta.deletes.sorted_occurrences() {
            println!("τ={t}  - expired     {tup}");
        }
    }

    // an ACTIVE binding pattern cannot be sampled: the side effect would
    // repeat every period — rejected statically.
    let mut sources = SourceSet::new();
    sources.add_table(
        "contacts",
        TableHandle::with_tuples(
            serena::core::schema::examples::contacts_schema(),
            serena::core::xrelation::examples::contacts().into_tuples(),
        ),
    );
    let bad = StreamPlan::source("contacts")
        .assign_const("text", "spam?")
        .sample_invoke("sendMessage", "messenger", 1);
    match ContinuousQuery::compile(&bad, &mut sources) {
        Err(err) => println!("\nactive BP rejected statically:\n  {err}"),
        Ok(_) => unreachable!("active streaming BPs must be rejected"),
    }
}
