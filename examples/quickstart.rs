//! Quickstart: the paper's running example in twenty lines.
//!
//! Builds the relational pervasive environment of §1.2 (contacts, cameras,
//! temperature sensors backed by simulated services), runs the one-shot
//! queries `Q1` and `Q2` of Table 4, and prints results, action sets and
//! plans.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use serena::core::env::examples::example_environment;
use serena::core::plan::examples::{q1, q2};
use serena::core::prelude::*;
use serena::core::service::fixtures::example_registry;

fn main() {
    let env = example_environment();
    let registry = example_registry();

    println!("== The environment (X-Relations with virtual attributes as '*') ==\n");
    for (name, rel) in env.relations() {
        println!("{name}:\n{}", rel.to_table());
    }

    // Q1: send "Bonjour!" to every contact except Carla.
    let q1 = q1();
    println!("Q1  = {q1}");
    let out = ExecContext::new(&env, &registry, Instant::ZERO)
        .execute(&q1)
        .expect("Q1 evaluates");
    println!(
        "result ({} tuples):\n{}",
        out.relation.len(),
        out.relation.to_table()
    );
    println!("action set (Definition 8): {}\n", out.actions);

    // Q2: photograph the office with quality ≥ 5.
    let q2 = q2();
    println!("Q2  = {q2}");
    let out = ExecContext::new(&env, &registry, Instant(1))
        .execute(&q2)
        .expect("Q2 evaluates");
    println!(
        "result ({} tuples):\n{}",
        out.relation.len(),
        out.relation.to_table()
    );
    println!(
        "action set: {} (checkPhoto/takePhoto are passive)\n",
        out.actions
    );

    // Static plan validation catches misuse before execution.
    let bad = Plan::relation("contacts").invoke("sendMessage", "messenger");
    println!("invalid plan `{bad}` is rejected statically:");
    println!("  {}\n", bad.schema(&env).unwrap_err());

    println!("EXPLAIN Q2:\n{}", q2.explain(Some(&env)));
}
