//! The paper's second experiment (§5.2): RSS feeds as streams.
//!
//! Three simulated feeds ("Le Monde", "Le Figaro", "CNN Europe" stand-ins)
//! publish seeded headlines; a continuous query keeps the last-`window`
//! items whose title contains the tracked keyword ("Obama" in the paper).
//! The resulting table is "continuously updated, when news of interest
//! appear and when old news expire".
//!
//! ```sh
//! cargo run --example rss_monitor
//! ```

use serena::pems::scenario::{deploy_rss, RssConfig};
use serena::services::devices::rss::SimRssFeed;

fn main() {
    let config = RssConfig {
        window: 6,
        ..RssConfig::default()
    };
    let keyword = SimRssFeed::tracked_keyword();
    let mut pems = deploy_rss(&config).expect("deployment is valid");

    println!(
        "watching {} feeds for '{keyword}' over a {}-tick window\n",
        config.feeds.len(),
        config.window
    );

    for tick in 0..24u64 {
        let reports = pems.tick();
        let report = &reports[0].1;
        for t in report.delta.inserts.sorted_occurrences() {
            println!("τ={tick:>2}  + {}: {}", t[0], t[1]);
        }
        for t in report.delta.deletes.sorted_occurrences() {
            println!("τ={tick:>2}  - expired: {}: {}", t[0], t[1]);
        }
    }

    let current = pems
        .processor()
        .current_relation("keyword_watch")
        .expect("finite result");
    println!("\ncurrent window contents ({} items):", current.len());
    print!("{}", current.to_table());
}
