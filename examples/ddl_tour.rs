//! Driving the PEMS entirely through the textual front-ends: the Serena
//! DDL (Tables 1–2 of the paper) and the Serena Algebra Language (§5.1).
//!
//! ```sh
//! cargo run --example ddl_tour
//! ```

use serena::pems::{ExecOutcome, Pems};
use serena::services::bus::BusConfig;
use serena::services::devices::messenger::{MessengerKind, SimMessenger};

const PROGRAM: &str = "
    -- Table 1: prototypes and services
    PROTOTYPE sendMessage( address STRING, text STRING ) : ( sent BOOLEAN ) ACTIVE;
    PROTOTYPE getTemperature( ) : ( temperature REAL );
    SERVICE email IMPLEMENTS sendMessage;
    SERVICE jabber IMPLEMENTS sendMessage;

    -- Table 2: the contacts X-Relation
    EXTENDED RELATION contacts (
      name STRING,
      address STRING,
      text STRING VIRTUAL,
      messenger SERVICE,
      sent BOOLEAN VIRTUAL
    )
    USING BINDING PATTERNS (
      sendMessage[messenger] ( address, text ) : ( sent )
    );

    -- Example 4's tuples
    INSERT INTO contacts VALUES
      ('Nicolas', 'nicolas@elysee.fr', 'email'),
      ('Carla', 'carla@elysee.fr', 'email'),
      ('Francois', 'francois@im.gouv.fr', 'jabber');

    -- a stream declared in DDL, fed from outside
    EXTENDED RELATION temperatures ( location STRING, temperature REAL ) STREAM;

    -- a continuous query over it
    REGISTER QUERY hot AS SELECT[temperature > 35.5](WINDOW[1](temperatures));

    -- Q1, one-shot (Table 4)
    EXECUTE INVOKE[sendMessage[messenger]](
      ASSIGN[text := 'Bonjour!'](SELECT[name <> 'Carla'](contacts)));
";

fn main() {
    let mut pems = Pems::builder().bus(BusConfig::instant()).build();
    // bind the declared messenger services to simulated implementations
    for kind in [MessengerKind::Email, MessengerKind::Jabber] {
        let (svc, _outbox) = SimMessenger::new(kind).into_service();
        pems.directory().register(kind.label(), svc);
    }

    println!("executing the Serena DDL/algebra program…\n");
    let outcomes = pems.run_program(PROGRAM).expect("program is valid");
    for outcome in &outcomes {
        match outcome {
            ExecOutcome::Done => {}
            ExecOutcome::Registered(name) => println!("registered continuous query `{name}`"),
            ExecOutcome::OneShot(out) => {
                println!("one-shot result:\n{}", out.relation.to_table());
                println!("action set: {}", out.actions);
            }
        }
    }

    // feed the declared stream and watch the continuous query react
    println!("\nfeeding the `temperatures` stream…");
    use serena::core::tuple::Tuple;
    use serena::core::value::Value;
    for (tick, temp) in [20.0, 36.5, 22.0, 40.0].iter().enumerate() {
        pems.tables()
            .push_stream(
                "temperatures",
                Tuple::new(vec![Value::str("office"), Value::Real(*temp)]),
            )
            .then_some(())
            .expect("stream exists");
        let reports = pems.tick();
        let hot = &reports[0].1;
        println!(
            "τ={tick}: pushed {temp:>5} °C → hot window gained {} tuple(s), lost {}",
            hot.delta.inserts.len(),
            hot.delta.deletes.len()
        );
    }

    let stats = pems.processor().stats("hot").unwrap();
    println!(
        "\n`hot` stats: {} ticks, {} insertions, {} deletions",
        stats.ticks, stats.inserted, stats.deleted
    );
}
