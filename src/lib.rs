//! # serena
//!
//! A from-scratch Rust reproduction of
//! *A Simple (yet Powerful) Algebra for Pervasive Environments*
//! (Gripay, Laforest & Petit, EDBT 2010): the **Serena** service-enabled
//! relational algebra, its continuous extension over XD-Relations, and the
//! **PEMS** (Pervasive Environment Management System) prototype around it,
//! with deterministic simulations of every device the paper's experiments
//! used.
//!
//! This crate is the facade re-exporting the workspace:
//!
//! * [`core`] (`serena-core`) — the data model (§2.3: virtual attributes,
//!   binding patterns, X-Relations), the algebra of Table 3, action sets &
//!   query equivalence (Definitions 8–9), the rewrite rules of Table 5 and
//!   a heuristic optimizer;
//! * [`stream`] (`serena-stream`) — XD-Relations, `W[period]` /
//!   `S[insertion|deletion|heartbeat]`, and an incremental continuous
//!   executor (§4);
//! * [`services`] (`serena-services`) — dynamic registry, discovery bus
//!   with Local Environment Resource Managers, simulated sensors, cameras,
//!   messengers and RSS feeds (§5.1–5.2);
//! * [`ddl`] (`serena-ddl`) — the Serena DDL and Serena Algebra Language;
//! * [`pems`] (`serena-pems`) — the assembled PEMS runtime (Figure 1) and
//!   the paper's two experimental scenarios.
//!
//! ## Quick start
//!
//! ```
//! use serena::core::prelude::*;
//! use serena::core::env::examples::example_environment;
//! use serena::core::service::fixtures::example_registry;
//!
//! // Q1 from Table 4: message every contact except Carla.
//! let q1 = Plan::relation("contacts")
//!     .select(Formula::ne_const("name", "Carla"))
//!     .assign_const("text", "Bonjour!")
//!     .invoke("sendMessage", "messenger");
//!
//! let env = example_environment();
//! let registry = example_registry();
//! let out = ExecContext::new(&env, &registry, Instant::ZERO)
//!     .execute(&q1)
//!     .unwrap();
//! assert_eq!(out.actions.len(), 2); // the action set of Example 6
//! ```

#![warn(missing_docs)]

pub use serena_core as core;
pub use serena_ddl as ddl;
pub use serena_pems as pems;
pub use serena_services as services;
pub use serena_stream as stream;

/// Everything most programs need.
pub mod prelude {
    pub use serena_core::prelude::*;
    pub use serena_pems::{
        ExecOutcome, ExplainAnalyze, Pems, PemsBuilder, PemsError, QueryStats, ReplanEvent,
        ReplanPolicy, ReplanReason,
    };
    pub use serena_services::{
        BreakerState, HealthStatus, HealthTracker, ResilienceCounters, ResiliencePolicy,
        ResilienceState, ResilientInvoker, ResilientLayer, ServiceHealth,
    };
    pub use serena_stream::{
        ContinuousQuery, SourceSet, StreamKind, StreamPlan, TableHandle, TickReport,
    };
}
