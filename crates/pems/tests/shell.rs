//! Black-box tests of the `pems_shell` binary: scripted sessions over
//! stdin, asserting on stdout — the way a user (or a CI pipeline) drives
//! the PEMS without writing Rust.

use std::io::Write;
use std::process::{Command, Stdio};

fn run_shell(script: &str) -> String {
    run_shell_with_env(script, &[])
}

fn run_shell_with_env(script: &str, env: &[(&str, &str)]) -> String {
    let mut child = Command::new(env!("CARGO_BIN_EXE_pems_shell"))
        .envs(env.iter().copied())
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("shell binary spawns");
    child
        .stdin
        .as_mut()
        .expect("stdin piped")
        .write_all(script.as_bytes())
        .expect("script written");
    let out = child.wait_with_output().expect("shell exits");
    assert!(out.status.success(), "shell exited with {:?}", out.status);
    String::from_utf8(out.stdout).expect("utf-8 output")
}

#[test]
fn demo_one_shot_query_via_algebra_language() {
    let out = run_shell(
        ".demo\n\
         EXECUTE PROJECT[name](SELECT[messenger = 'email'](contacts));\n\
         .quit\n",
    );
    assert!(out.contains("loaded the paper's running example"));
    assert!(out.contains("Nicolas"));
    assert!(out.contains("Carla"));
    assert!(
        !out.contains("Francois"),
        "jabber contact must be filtered:\n{out}"
    );
}

#[test]
fn demo_sql_and_ticks() {
    let out = run_shell(
        ".demo\n\
         SELECT location, avg(temperature) AS mean FROM sensors USING getTemperature[sensor] GROUP BY location;\n\
         REGISTER QUERY watch AS sensors;\n\
         .tick 3\n\
         .queries\n\
         .quit\n",
    );
    assert!(out.contains("mean"));
    assert!(out.contains("office"));
    assert!(out.contains("registered continuous query `watch`"));
    assert!(out.contains("clock = τ=3"));
    assert!(out.contains("watch: 3 ticks"));
}

#[test]
fn errors_do_not_kill_the_session() {
    let out = run_shell(
        "EXECUTE PROJECT[name](ghost);\n\
         .nonsense\n\
         .demo\n\
         .show contacts\n\
         .quit\n",
    );
    assert!(out.contains("error:"));
    assert!(out.contains("unknown command"));
    // the session survived both errors and still loaded the demo
    assert!(out.contains("nicolas@elysee.fr"));
}

/// Acceptance (PR 3): `\metrics` renders valid Prometheus text (counters +
/// histogram buckets) for a scenario run, and `\health` reports every
/// service the run invoked. Backslash aliases exercise the psql-style
/// prefix; the query invokes β so service series exist.
#[test]
fn metrics_and_health_commands() {
    let out = run_shell(
        ".demo\n\
         REGISTER QUERY temps AS INVOKE[getTemperature[sensor]](sensors);\n\
         \\tick 2\n\
         \\metrics\n\
         \\health\n\
         .quit\n",
    );
    // Prometheus text: TYPE headers, counters, histogram buckets
    assert!(out.contains("# TYPE serena_op_applications_total counter"));
    assert!(out.contains("# TYPE serena_service_latency_ns histogram"));
    assert!(out.contains("serena_service_latency_ns_bucket"));
    assert!(out.contains("le=\"+Inf\""));
    assert!(out.contains("serena_query_ticks_total{query=\"temps\"} 2"));
    assert!(out.contains("serena_queries_registered 1"));
    // health table: every sensor invoked, all healthy
    assert!(out.contains("service"));
    for sensor in ["sensor01", "sensor06", "sensor07", "sensor22"] {
        assert!(out.contains(sensor), "missing {sensor} in:\n{out}");
    }
    assert!(out.contains("healthy"));
    assert!(!out.contains("unknown command"), "alias failed:\n{out}");
}

/// Acceptance (PR 10): `.plan` renders the candidate list with the running
/// plan marked, `.replan` forces a swap to the cheapest candidate, and both
/// explain themselves when adaptivity is off.
#[test]
fn plan_and_replan_commands() {
    let script = ".demo\n\
         REGISTER QUERY watch AS SELECT[location = 'corridor'](WINDOW[1](SAMPLE[getTemperature[sensor], 1](sensors)));\n\
         .tick 1\n\
         .plan watch\n\
         .replan watch\n\
         .replan watch\n\
         .quit\n";
    let out = run_shell_with_env(script, &[("SERENA_ADAPTIVE", "1")]);
    assert!(out.contains("* [0]"), "original marked current:\n{out}");
    assert!(out.contains("replanned `watch`"), "forced swap:\n{out}");
    assert!(
        out.contains("already runs the cheapest candidate"),
        "second .replan is a no-op:\n{out}"
    );

    // without SERENA_ADAPTIVE both commands fail with a pointer to the knob
    let off = run_shell(
        ".demo\n\
         REGISTER QUERY watch AS sensors;\n\
         .plan watch\n\
         .replan nosuch\n\
         .quit\n",
    );
    assert!(off.contains("error:"), "off-mode errors:\n{off}");
    assert!(
        off.contains("SERENA_ADAPTIVE"),
        "error names the knob:\n{off}"
    );
}

#[test]
fn tables_and_result_commands() {
    let out = run_shell(
        ".demo\n\
         REGISTER QUERY emails AS SELECT[messenger = 'email'](contacts);\n\
         .tick 1\n\
         .result emails\n\
         .tables\n\
         .quit\n",
    );
    assert!(out.contains("carla@elysee.fr"));
    assert!(out.contains("contacts (3 tuples)"));
    assert!(out.contains("sensors (4 tuples)"));
}
