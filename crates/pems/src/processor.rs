//! The Query Processor (§5.1).
//!
//! "The Query Processor allows to register queries using the Serena
//! Algebra Language and to execute them in a real-time fashion." Here:
//! registered [`ContinuousQuery`]s advance in lock-step on a shared logical
//! clock; each global tick evaluates every query at the same instant
//! (§3.2's simultaneous-evaluation model). When several queries are
//! registered, their ticks run as stealable tasks on the persistent
//! [`WorkerPool`] (sized by [`SchedulerConfig`], shared across ticks) —
//! the reproduction of the prototype's *asynchronous invocation handling*:
//! slow service calls in one query do not serialize behind another
//! query's, and 120 queries no longer mean 120 OS threads. Each query's
//! intra-β parallelism budget is divided by the number of concurrently
//! ticking queries ([`ContinuousQuery::tick_with_budget`]) so the pool's
//! width bounds total concurrency instead of multiplying it.
//!
//! A panicking query tick is contained: the query fails *that tick* (an
//! [`EvalError::Panicked`] in its report, counted in
//! `serena_query_panics_total` and traced as a failure) while every other
//! query — and the pool — keeps running.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use serena_core::action::ActionSet;
use serena_core::error::{EvalError, PlanError};
use serena_core::metrics::{ExecStats, MetricsSink, Tee};
use serena_core::physical::ExecOptions;
use serena_core::service::Invoker;
use serena_core::snapshot::{Reader, SnapshotError, Writer};
use serena_core::telemetry::{
    Counter, FlightRecorder, Histogram, MetricsRegistry, TraceEvent, TraceSink,
};
use serena_core::time::Instant;
use serena_stream::exec::{ContinuousQuery, SourceSet, TickReport};
use serena_stream::plan::StreamPlan;
use serena_stream::Delta;

use crate::scheduler::{SchedulerConfig, WorkerPool};

/// Aggregated statistics for one registered query.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Ticks evaluated.
    pub ticks: u64,
    /// Total tuples inserted into the result (or emitted, for streams).
    pub inserted: u64,
    /// Total tuples deleted from the result.
    pub deleted: u64,
    /// Total actions (active invocations) triggered.
    pub actions: u64,
    /// Total invocation errors survived.
    pub errors: u64,
    /// Total live service invocations (β/βˢ) performed.
    pub invocations: u64,
    /// Total β-cache hits (re-inserted tuples served from cache).
    pub cache_hits: u64,
    /// Total β-cache misses (new tuples requiring a live invocation).
    pub cache_misses: u64,
}

/// Pre-resolved per-query telemetry series, all labelled `query=<name>`.
struct QuerySeries {
    ticks: Arc<Counter>,
    tuples: Arc<Counter>,
    errors: Arc<Counter>,
    tick_ns: Arc<Histogram>,
    lag_ns: Arc<Histogram>,
    miss_batch: Arc<Histogram>,
}

impl QuerySeries {
    fn new(registry: &MetricsRegistry, query: &str) -> Self {
        let labels: [(&str, &str); 1] = [("query", query)];
        QuerySeries {
            ticks: registry.counter("serena_query_ticks_total", &labels),
            tuples: registry.counter("serena_query_tuples_total", &labels),
            errors: registry.counter("serena_query_errors_total", &labels),
            tick_ns: registry.histogram("serena_query_tick_duration_ns", &labels),
            lag_ns: registry.histogram("serena_query_lag_ns", &labels),
            miss_batch: registry.histogram("serena_query_cache_miss_batch_size", &labels),
        }
    }
}

struct Telemetry {
    registry: Arc<MetricsRegistry>,
    trace: Arc<dyn TraceSink>,
}

struct Registered {
    query: ContinuousQuery,
    stats: QueryStats,
    /// Rolling per-node statistics across all of the query's ticks.
    exec: ExecStats,
    /// Registry series for this query, when telemetry is attached.
    series: Option<QuerySeries>,
}

/// The continuous-query scheduler.
#[derive(Default)]
pub struct QueryProcessor {
    queries: BTreeMap<String, Registered>,
    clock: Instant,
    telemetry: Option<Telemetry>,
    scheduler: SchedulerConfig,
    /// Lazily started on the first multi-query tick; survives across
    /// ticks (no per-tick thread churn) and across panicking tasks.
    pool: Option<WorkerPool>,
    /// Pool-cumulative steal count already published to telemetry.
    steals_seen: u64,
    /// Flight recorder for `sched.round`/`sched.job`/`query.tick` spans,
    /// propagated into every registered query and the worker pool.
    tracer: Option<Arc<FlightRecorder>>,
}

impl QueryProcessor {
    /// Empty processor with the clock at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// The instant the next global tick evaluates.
    pub fn clock(&self) -> Instant {
        self.clock
    }

    /// Replace the tick scheduler configuration. A running worker pool of
    /// a different width is shut down; the next multi-query tick starts a
    /// fresh one.
    pub fn set_scheduler(&mut self, config: SchedulerConfig) {
        if self.scheduler != config {
            self.scheduler = config;
            self.pool = None;
            self.steals_seen = 0;
        }
    }

    /// The current scheduler configuration.
    pub fn scheduler(&self) -> SchedulerConfig {
        self.scheduler
    }

    /// Attach a flight recorder: tick rounds, per-worker jobs, query
    /// ticks and (through each query's executor) per-operator work all
    /// record hierarchical spans into it. Applies to already-registered
    /// queries and everything registered afterwards; a running worker
    /// pool is restarted so its jobs are traced too.
    pub fn set_tracer(&mut self, tracer: Arc<FlightRecorder>) {
        for reg in self.queries.values_mut() {
            reg.query.set_tracer(Some(Arc::clone(&tracer)));
        }
        self.tracer = Some(tracer);
        self.pool = None;
        self.steals_seen = 0;
    }

    /// Register a continuous query under `name`, compiling `plan` against
    /// `sources`. The query joins the global cadence: its first tick is the
    /// next global tick.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        plan: &StreamPlan,
        sources: &mut SourceSet,
    ) -> Result<(), PlanError> {
        self.register_with_options(name, plan, sources, ExecOptions::default())
    }

    /// [`Self::register`] with explicit execution options: every tick of
    /// this query fans its β invocations across
    /// `options.invoke_parallelism` workers.
    pub fn register_with_options(
        &mut self,
        name: impl Into<String>,
        plan: &StreamPlan,
        sources: &mut SourceSet,
        options: ExecOptions,
    ) -> Result<(), PlanError> {
        let name = name.into();
        if self.queries.contains_key(&name) {
            return Err(PlanError::UnknownRelation(format!(
                "query `{name}` already registered"
            )));
        }
        let mut query = ContinuousQuery::compile_with_options(plan, sources, options)?;
        query.seek(self.clock);
        query.set_tracer(self.tracer.clone());
        let series = self.telemetry.as_ref().map(|t| {
            t.trace.emit(&TraceEvent::QueryRegistered {
                query: name.clone(),
            });
            QuerySeries::new(&t.registry, &name)
        });
        self.queries.insert(
            name,
            Registered {
                query,
                stats: QueryStats::default(),
                exec: ExecStats::new(),
                series,
            },
        );
        self.update_registered_gauge();
        Ok(())
    }

    /// Replace a registered query's plan at a tick boundary, carrying
    /// portable operator state across (adaptive re-optimization's hot
    /// swap). The replacement compiles against `sources` with the *same*
    /// execution options as the outgoing query, joins the global cadence
    /// at the current clock, and adopts window rings / β caches according
    /// to `migration` (pairs from [`serena_stream::migration_pairs`]).
    ///
    /// Aggregated [`QueryStats`] and telemetry series survive the swap —
    /// the query is still the same query to observers — but the rolling
    /// per-node [`ExecStats`] reset: node ids are positions in the plan,
    /// and the new plan's positions mean different operators.
    ///
    /// Errors with [`PlanError::UnknownRelation`] when `name` is not
    /// registered, or propagates the compile error for a bad plan (the
    /// running query is untouched in both cases).
    pub fn swap_query(
        &mut self,
        name: &str,
        plan: &StreamPlan,
        sources: &mut SourceSet,
        migration: &serena_stream::MigrationMap,
    ) -> Result<(), PlanError> {
        let reg = self
            .queries
            .get_mut(name)
            .ok_or_else(|| PlanError::UnknownRelation(format!("query `{name}` not registered")))?;
        let mut query = ContinuousQuery::compile_with_options(plan, sources, reg.query.options())?;
        query.seek(self.clock);
        query.set_tracer(self.tracer.clone());
        query.adopt_state_from(&reg.query, &migration.windows, &migration.invokes);
        reg.query = query;
        reg.exec = ExecStats::new();
        Ok(())
    }

    /// Attach continuous-query telemetry: per-query tick-duration,
    /// freshness-lag and cache-miss-batch histograms plus tick/tuple/error
    /// counters in `registry` (labelled `query=<name>`), and span-style
    /// [`TraceEvent`]s to `trace`. Applies to already-registered queries
    /// and everything registered afterwards.
    pub fn set_telemetry(&mut self, registry: Arc<MetricsRegistry>, trace: Arc<dyn TraceSink>) {
        for (name, reg) in &mut self.queries {
            reg.series = Some(QuerySeries::new(&registry, name));
        }
        self.telemetry = Some(Telemetry { registry, trace });
        self.update_registered_gauge();
    }

    fn update_registered_gauge(&self) {
        if let Some(t) = &self.telemetry {
            t.registry
                .gauge("serena_queries_registered", &[])
                .set(self.queries.len() as i64);
        }
    }

    /// Deregister a query. Returns whether it existed.
    ///
    /// All of the query's `query=<name>` telemetry series (counters,
    /// gauges, histograms — including `serena_query_panics_total`) are
    /// removed from the registry: a deregistered query must not leave
    /// series frozen at their last values in every future scrape.
    pub fn deregister(&mut self, name: &str) -> bool {
        let removed = self.queries.remove(name).is_some();
        if removed {
            if let Some(t) = &self.telemetry {
                t.registry.remove_matching("query", name);
            }
            self.update_registered_gauge();
        }
        removed
    }

    /// Registered query names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.queries.keys().map(|s| s.as_str()).collect()
    }

    /// Per-query statistics.
    pub fn stats(&self, name: &str) -> Option<&QueryStats> {
        self.queries.get(name).map(|r| &r.stats)
    }

    /// Rolling per-node statistics of a query (accumulated across all its
    /// ticks), keyed by the stream plan's pre-order node ids.
    pub fn exec_stats(&self, name: &str) -> Option<&ExecStats> {
        self.queries.get(name).map(|r| &r.exec)
    }

    /// Snapshot of a query's current finite result.
    pub fn current_relation(&self, name: &str) -> Option<serena_core::xrelation::XRelation> {
        self.queries.get(name)?.query.current_relation()
    }

    /// Align the global clock so the next tick evaluates `at` (and re-seek
    /// every registered query to match) — used by the PEMS builder to start
    /// a runtime at a nonzero instant.
    pub fn seek(&mut self, at: Instant) {
        self.clock = at;
        for reg in self.queries.values_mut() {
            reg.query.seek(at);
        }
    }

    /// Serialize the processor's dynamic state — the global clock plus,
    /// per registered query (in name order): executor state, aggregated
    /// [`QueryStats`] and rolling per-node [`ExecStats`]. Telemetry series
    /// are intentionally *not* captured: a restored processor keeps (or
    /// re-creates) its own registry series.
    pub fn write_snapshot(&self, w: &mut Writer) {
        w.u64(self.clock.ticks());
        w.usize(self.queries.len());
        for (name, reg) in &self.queries {
            w.str(name);
            reg.query.write_snapshot(w);
            let s = &reg.stats;
            w.u64(s.ticks)
                .u64(s.inserted)
                .u64(s.deleted)
                .u64(s.actions)
                .u64(s.errors)
                .u64(s.invocations)
                .u64(s.cache_hits)
                .u64(s.cache_misses);
            reg.exec.encode(w);
        }
    }

    /// Restore state written by [`Self::write_snapshot`]. The same queries
    /// (by name, with structurally identical plans) must already be
    /// registered — recovery re-runs the static setup, then rehydrates the
    /// dynamic state. Errors with [`SnapshotError::Mismatch`] when the
    /// registered query set disagrees with the snapshot.
    pub fn read_snapshot(&mut self, r: &mut Reader<'_>) -> Result<(), SnapshotError> {
        let clock = r.u64()?;
        let n = r.usize()?;
        if n != self.queries.len() {
            return Err(SnapshotError::Mismatch(format!(
                "snapshot holds {n} queries, {} registered",
                self.queries.len()
            )));
        }
        for (name, reg) in &mut self.queries {
            let stored = r.str()?;
            if stored != *name {
                return Err(SnapshotError::Mismatch(format!(
                    "snapshot query `{stored}` does not match registered `{name}`"
                )));
            }
            reg.query.read_snapshot(r)?;
            reg.stats = QueryStats {
                ticks: r.u64()?,
                inserted: r.u64()?,
                deleted: r.u64()?,
                actions: r.u64()?,
                errors: r.u64()?,
                invocations: r.u64()?,
                cache_hits: r.u64()?,
                cache_misses: r.u64()?,
            };
            reg.exec = ExecStats::decode(r)?;
        }
        self.clock = Instant(clock);
        Ok(())
    }

    /// Advance the global clock by one instant, ticking every registered
    /// query at that instant (as stealable tasks on the persistent worker
    /// pool when there are several), duplicating every query's per-node
    /// observations into a shared `sink` as well (the PEMS-wide sink
    /// configured through the builder). Each query's rolling stats
    /// accumulate regardless.
    ///
    /// Reports come back in registration (name) order whatever order the
    /// pool finished the tasks in, and a panicking query tick fails only
    /// that query (its report carries an [`EvalError::Panicked`]); the
    /// round, the pool and the clock all survive.
    pub fn tick_all_with(
        &mut self,
        invoker: &dyn Invoker,
        sink: &dyn MetricsSink,
    ) -> Vec<(String, TickReport)> {
        // Freshness lag: every query in this round is *scheduled* now; a
        // query's lag is the wall-clock from here to its tick completing.
        let scheduled = std::time::Instant::now();
        let at = self.clock;
        let trace: Option<&dyn TraceSink> = self.telemetry.as_ref().map(|t| &*t.trace);
        // Disjoint field borrow (`self.queries` is borrowed mutably
        // below); `Option<&FlightRecorder>` is `Copy`, so the tick
        // closures capture it by value.
        let tracer: Option<&FlightRecorder> = self.tracer.as_deref().filter(|r| r.armed());
        let n = self.queries.len();
        // Concurrency this round: never more workers than queries, and the
        // per-query β budget divides by it so the configured β width is a
        // round-wide bound, not a per-query multiplier.
        let concurrent = self.scheduler.workers.min(n).max(1);
        if let Some(t) = &self.telemetry {
            t.registry
                .gauge("serena_sched_queue_depth", &[])
                .set(n as i64);
        }
        let mut round_span = tracer.and_then(|r| r.start("sched.round", at));
        if let Some(s) = round_span.as_mut() {
            s.attr_u64("queries", n as u64);
            s.attr_u64("workers", concurrent as u64);
        }
        // One query tick with its span bracket: span → contained tick →
        // outcome attributes. Returns the span id for the tick-duration
        // histogram's exemplar (0 = no span).
        let ticked = |name: &str,
                      reg: &mut Registered,
                      budget: usize|
         -> (Result<TickReport, String>, u64) {
            if let Some(trace) = trace {
                trace.emit(&TraceEvent::TickStart {
                    query: name.to_string(),
                    at,
                });
            }
            let mut tick_span = tracer.and_then(|r| r.start("query.tick", at));
            if let Some(s) = tick_span.as_mut() {
                s.attr_str("query", name);
            }
            let Registered { query, exec, .. } = reg;
            let result = {
                let _in_span = tick_span.as_ref().map(|s| s.enter());
                contain(|| query.tick_with_budget(invoker, &Tee(&*exec, sink), budget))
            };
            if let Some(s) = tick_span.as_mut() {
                match &result {
                    Ok(r) => {
                        s.attr_u64("inserted", (r.delta.inserts.len() + r.batch.len()) as u64);
                        s.attr_u64("deleted", r.delta.deletes.len() as u64);
                        s.attr_u64("errors", r.errors.len() as u64);
                    }
                    Err(_) => s.attr_u64("panicked", 1),
                }
            }
            let sid = tick_span.as_ref().map_or(0, |s| s.id());
            (result, sid)
        };
        type Outcome = (String, Result<TickReport, String>, Duration, u64);
        let outcomes: Vec<Outcome> = if concurrent <= 1 {
            let _in_round = round_span.as_ref().map(|s| s.enter());
            self.queries
                .iter_mut()
                .map(|(name, reg)| {
                    let budget = reg.query.invoke_parallelism();
                    let (result, sid) = ticked(name, reg, budget);
                    (name.clone(), result, scheduled.elapsed(), sid)
                })
                .collect()
        } else {
            if self.pool.as_ref().map(WorkerPool::workers) != Some(self.scheduler.workers) {
                self.pool = Some(WorkerPool::with_tracer(self.scheduler, self.tracer.clone()));
                self.steals_seen = 0;
            }
            let pool = self.pool.as_ref().expect("pool just ensured");
            let queries = &mut self.queries;
            let mut slots: Vec<Option<Outcome>> = (0..n).map(|_| None).collect();
            // Entered during submission so each job captures the round
            // span as its parent (`sched.job` spans bridge the thread
            // hop); the guard outlives the scope barrier, so job and tick
            // spans all close inside the round's interval.
            let _in_round = round_span.as_ref().map(|s| s.enter());
            pool.scope(|scope| {
                for (slot, (name, reg)) in slots.iter_mut().zip(queries.iter_mut()) {
                    let name = name.clone();
                    let budget = (reg.query.invoke_parallelism() / concurrent).max(1);
                    let ticked = &ticked;
                    scope.submit(move || {
                        let (result, sid) = ticked(&name, reg, budget);
                        *slot = Some((name, result, scheduled.elapsed(), sid));
                    });
                }
            });
            // scope() returned ⇒ every task ran (even panicking ones are
            // contained inside the task), so every slot is filled.
            slots.into_iter().flatten().collect()
        };
        let steal_delta = self.pool.as_ref().map(|pool| {
            let total = pool.steals();
            let delta = total.saturating_sub(self.steals_seen);
            self.steals_seen = total;
            delta
        });
        if let Some(delta) = steal_delta {
            if let Some(s) = round_span.as_mut() {
                s.attr_u64("steals", delta);
            }
            if let Some(t) = &self.telemetry {
                if delta > 0 {
                    t.registry
                        .counter("serena_sched_steals_total", &[])
                        .add(delta);
                }
            }
        }
        drop(round_span);
        let reports: Vec<(String, TickReport, Duration, u64)> = outcomes
            .into_iter()
            .map(|(name, result, lag, sid)| match result {
                Ok(report) => (name, report, lag, sid),
                Err(reason) => {
                    // The query's tick panicked (e.g. inside a stream
                    // closure, outside the β containment layer): fail this
                    // query for this instant with an empty delta and a
                    // Panicked error; its clock already advanced, so it
                    // stays in lock-step for the next round.
                    if let Some(t) = &self.telemetry {
                        t.registry
                            .counter("serena_query_panics_total", &[("query", &name)])
                            .inc();
                    }
                    let report = TickReport {
                        at,
                        delta: Delta::new(),
                        batch: Vec::new(),
                        actions: ActionSet::new(),
                        errors: vec![EvalError::Panicked {
                            service: format!("query:{name}"),
                            prototype: "tick".to_string(),
                            reason,
                        }],
                        stats: ExecStats::new(),
                        elapsed: lag,
                    };
                    (name, report, lag, sid)
                }
            })
            .collect();
        for (name, report, lag, sid) in &reports {
            let reg = self.queries.get_mut(name).expect("registered");
            let inserted = (report.delta.inserts.len() + report.batch.len()) as u64;
            let deleted = report.delta.deletes.len() as u64;
            reg.stats.ticks += 1;
            reg.stats.inserted += inserted;
            reg.stats.deleted += deleted;
            reg.stats.actions += report.actions.len() as u64;
            reg.stats.errors += report.errors.len() as u64;
            reg.stats.invocations += report.stats.total_invocations();
            reg.stats.cache_hits += report.stats.total_cache_hits();
            reg.stats.cache_misses += report.stats.total_cache_misses();
            if let Some(series) = &reg.series {
                series.ticks.inc();
                series.tuples.add(inserted);
                series.errors.add(report.errors.len() as u64);
                // exemplar: the p99 tick links straight to its span tree
                series.tick_ns.record_with_exemplar(
                    u128::min(report.elapsed.as_nanos(), u64::MAX as u128) as u64,
                    *sid,
                );
                series.lag_ns.record_duration(*lag);
                // only live β batches are meaningful batch-size samples
                let misses = report.stats.total_cache_misses();
                if misses > 0 {
                    series.miss_batch.record(misses);
                }
            }
            if let Some(t) = &self.telemetry {
                t.trace.emit(&TraceEvent::TickEnd {
                    query: name.clone(),
                    at: report.at,
                    duration_ns: u128::min(report.elapsed.as_nanos(), u64::MAX as u128) as u64,
                    inserted,
                    deleted,
                    errors: report.errors.len() as u64,
                });
                for e in &report.errors {
                    t.trace.emit(&TraceEvent::Failure {
                        scope: name.clone(),
                        at: report.at,
                        message: e.to_string(),
                    });
                }
            }
        }
        self.clock = self.clock.next();
        reports
            .into_iter()
            .map(|(name, report, _, _)| (name, report))
            .collect()
    }
}

/// Run one query tick with panic containment: a panic unwinding out of
/// the executor becomes an `Err(reason)` instead of killing the worker
/// (pool path) or the engine (serial path). The query's operator state
/// after a panicked tick is whatever the unwind left behind — same
/// contract as a contained β panic — but its clock advanced first, so
/// lock-step is preserved.
fn contain<R>(f: impl FnOnce() -> R) -> Result<R, String> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)).map_err(|payload| {
        if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else {
            "<non-string panic>".to_string()
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use serena_core::formula::Formula;
    use serena_core::metrics::NoopMetrics;
    use serena_core::schema::XSchema;
    use serena_core::service::fixtures::example_registry;
    use serena_core::tuple;
    use serena_core::value::DataType;
    use serena_stream::source::TableHandle;

    fn int_table() -> (TableHandle, SourceSet) {
        let schema = XSchema::builder().real("x", DataType::Int).build().unwrap();
        let table = TableHandle::new(schema);
        let mut sources = SourceSet::new();
        sources.add_table("t", table.clone());
        (table, sources)
    }

    #[test]
    fn lockstep_ticking_and_stats() {
        let mut qp = QueryProcessor::new();
        let (table, mut s1) = int_table();
        qp.register("all", &StreamPlan::source("t"), &mut s1)
            .unwrap();
        let mut s2 = SourceSet::new();
        s2.add_table("t", table.clone());
        qp.register(
            "big",
            &StreamPlan::source("t").select(Formula::gt_const("x", 10)),
            &mut s2,
        )
        .unwrap();

        let reg = example_registry();
        table.insert(tuple![5]);
        table.insert(tuple![20]);
        let reports = qp.tick_all_with(&reg, &NoopMetrics);
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].0, "all");
        assert_eq!(reports[0].1.delta.inserts.len(), 2);
        assert_eq!(reports[1].1.delta.inserts.len(), 1);
        assert_eq!(qp.stats("all").unwrap().inserted, 2);
        assert_eq!(qp.stats("big").unwrap().inserted, 1);
        assert_eq!(qp.clock(), Instant(1));
    }

    #[test]
    fn late_registration_bootstraps_from_current_state() {
        let mut qp = QueryProcessor::new();
        let (table, mut s1) = int_table();
        qp.register("first", &StreamPlan::source("t"), &mut s1)
            .unwrap();
        let reg = example_registry();
        table.insert(tuple![1]);
        qp.tick_all_with(&reg, &NoopMetrics);
        qp.tick_all_with(&reg, &NoopMetrics);
        // register a second query mid-run: it must see the existing tuple
        let mut s2 = SourceSet::new();
        s2.add_table("t", table.clone());
        qp.register("late", &StreamPlan::source("t"), &mut s2)
            .unwrap();
        let reports = qp.tick_all_with(&reg, &NoopMetrics);
        let late = reports.iter().find(|(n, _)| n == "late").unwrap();
        assert_eq!(late.1.delta.inserts.len(), 1);
        assert_eq!(
            qp.current_relation("late").unwrap().len(),
            qp.current_relation("first").unwrap().len()
        );
    }

    #[test]
    fn duplicate_names_rejected_and_deregister() {
        let mut qp = QueryProcessor::new();
        let (_, mut s1) = int_table();
        qp.register("q", &StreamPlan::source("t"), &mut s1).unwrap();
        let (_, mut s2) = int_table();
        assert!(qp.register("q", &StreamPlan::source("t"), &mut s2).is_err());
        assert!(qp.deregister("q"));
        assert!(!qp.deregister("q"));
        assert!(qp.names().is_empty());
    }

    #[test]
    fn rolling_stats_accumulate_beta_counters() {
        use serena_core::value::Value;
        let mut qp = QueryProcessor::new();
        let table = TableHandle::new(serena_core::schema::examples::sensors_schema());
        let mut sources = SourceSet::new();
        sources.add_table("sensors", table.clone());
        qp.register(
            "temps",
            &StreamPlan::source("sensors").invoke("getTemperature", "sensor"),
            &mut sources,
        )
        .unwrap();
        let reg = example_registry();

        table.insert(tuple![Value::service("sensor01"), "corridor"]);
        qp.tick_all_with(&reg, &NoopMetrics); // miss
        qp.tick_all_with(&reg, &NoopMetrics); // quiet
        table.insert(tuple![Value::service("sensor01"), "corridor"]);
        qp.tick_all_with(&reg, &NoopMetrics); // hit (still cached)
        table.insert(tuple![Value::service("sensor06"), "office"]);
        qp.tick_all_with(&reg, &NoopMetrics); // miss

        let stats = qp.stats("temps").unwrap();
        assert_eq!(stats.ticks, 4);
        assert_eq!(stats.invocations, 2);
        assert_eq!(stats.cache_misses, 2);
        assert_eq!(stats.cache_hits, 1);

        // the rolling per-node view agrees: node 0 is the β root
        let exec = qp.exec_stats("temps").unwrap();
        let beta = exec.node(serena_core::metrics::NodeId(0)).unwrap();
        assert_eq!(beta.applications, 4);
        assert_eq!(beta.invocations, 2);
        assert_eq!(beta.cache_hits, 1);
    }

    #[test]
    fn telemetry_series_and_trace_events() {
        use serena_core::telemetry::MemoryTrace;
        let mut qp = QueryProcessor::new();
        let registry = Arc::new(MetricsRegistry::new());
        let trace = Arc::new(MemoryTrace::new());
        // one query registered before telemetry attaches, one after — both
        // must get series
        let (table, mut s1) = int_table();
        qp.register("early", &StreamPlan::source("t"), &mut s1)
            .unwrap();
        qp.set_telemetry(registry.clone(), trace.clone());
        let mut s2 = SourceSet::new();
        s2.add_table("t", table.clone());
        qp.register("late", &StreamPlan::source("t"), &mut s2)
            .unwrap();

        let reg = example_registry();
        table.insert(tuple![1]);
        qp.tick_all_with(&reg, &NoopMetrics);
        qp.tick_all_with(&reg, &NoopMetrics);

        for query in ["early", "late"] {
            let q = [("query", query)];
            assert_eq!(
                registry.counter_value("serena_query_ticks_total", &q),
                Some(2),
                "{query}"
            );
            assert_eq!(
                registry.counter_value("serena_query_tuples_total", &q),
                Some(1),
                "{query}"
            );
            assert_eq!(
                registry
                    .histogram("serena_query_tick_duration_ns", &q)
                    .count(),
                2
            );
            assert_eq!(registry.histogram("serena_query_lag_ns", &q).count(), 2);
        }
        assert_eq!(registry.gauge("serena_queries_registered", &[]).get(), 2);

        let events = trace.events();
        assert!(
            matches!(&events[0], TraceEvent::QueryRegistered { query } if query == "late"),
            "{events:?}"
        );
        let starts = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::TickStart { .. }))
            .count();
        let ends = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::TickEnd { .. }))
            .count();
        assert_eq!((starts, ends), (4, 4));

        qp.deregister("late");
        assert_eq!(registry.gauge("serena_queries_registered", &[]).get(), 1);
        // ISSUE 8 satellite: deregistration retires the query's series —
        // no stale `query="late"` gauges/counters/histograms linger in
        // the registry or its rendered exposition
        let late = [("query", "late")];
        assert_eq!(
            registry.counter_value("serena_query_ticks_total", &late),
            None
        );
        assert!(!registry.render_prometheus().contains("query=\"late\""));
        // the surviving query's series are untouched
        assert_eq!(
            registry.counter_value("serena_query_ticks_total", &[("query", "early")]),
            Some(2)
        );
    }

    #[test]
    fn snapshot_round_trips_clock_queries_and_stats() {
        let reg = example_registry();
        let build = |table: &TableHandle| {
            let mut qp = QueryProcessor::new();
            let mut s = SourceSet::new();
            s.add_table("t", table.clone());
            qp.register(
                "big",
                &StreamPlan::source("t").select(Formula::gt_const("x", 10)),
                &mut s,
            )
            .unwrap();
            qp
        };

        let (table, _) = int_table();
        let mut qp = build(&table);
        table.insert(tuple![20]);
        qp.tick_all_with(&reg, &NoopMetrics);
        qp.tick_all_with(&reg, &NoopMetrics);

        let mut w = Writer::new();
        qp.write_snapshot(&mut w);
        let mut tw = Writer::new();
        table.export_state(&mut tw);
        let (qbytes, tbytes) = (w.into_bytes(), tw.into_bytes());

        // fresh runtime: static setup re-run, dynamic state rehydrated
        let table2 = TableHandle::new(table.schema());
        let mut qp2 = build(&table2);
        table2
            .import_state(&mut Reader::new(&tbytes))
            .expect("table state");
        qp2.read_snapshot(&mut Reader::new(&qbytes))
            .expect("processor state");

        assert_eq!(qp2.clock(), Instant(2));
        assert_eq!(qp2.stats("big"), qp.stats("big"));
        assert_eq!(
            qp2.current_relation("big").unwrap(),
            qp.current_relation("big").unwrap()
        );
        // both resume in lock-step: delete the tuple, identical retraction
        table.delete(tuple![20]);
        table2.delete(tuple![20]);
        let a = qp.tick_all_with(&reg, &NoopMetrics);
        let b = qp2.tick_all_with(&reg, &NoopMetrics);
        assert_eq!(a[0].1.delta, b[0].1.delta);

        // a mismatched query set is a typed error, not a crash
        let (t3, mut s3) = int_table();
        let mut other = QueryProcessor::new();
        other
            .register("different", &StreamPlan::source("t"), &mut s3)
            .unwrap();
        let _ = t3;
        let err = other.read_snapshot(&mut Reader::new(&qbytes)).unwrap_err();
        assert!(matches!(err, SnapshotError::Mismatch(_)), "{err}");
    }

    #[test]
    fn a_panicking_query_tick_fails_only_that_query() {
        use serena_core::telemetry::MemoryTrace;
        use serena_stream::source::FnStream;
        for workers in [1, 4] {
            let mut qp = QueryProcessor::new();
            qp.set_scheduler(SchedulerConfig::new(workers));
            let registry = Arc::new(MetricsRegistry::new());
            qp.set_telemetry(registry.clone(), Arc::new(MemoryTrace::new()));
            let (table, mut s1) = int_table();
            qp.register("healthy", &StreamPlan::source("t"), &mut s1)
                .unwrap();
            let schema = XSchema::builder().real("x", DataType::Int).build().unwrap();
            let mut s2 = SourceSet::new();
            s2.add_stream(
                "s",
                schema,
                Box::new(FnStream(|at: Instant| {
                    if at >= Instant(1) {
                        panic!("stream source exploded at {at:?}");
                    }
                    vec![tuple![7]]
                })),
            );
            qp.register("doomed", &StreamPlan::source("s"), &mut s2)
                .unwrap();

            let reg = example_registry();
            table.insert(tuple![1]);
            let first = qp.tick_all_with(&reg, &NoopMetrics);
            assert!(first.iter().all(|(_, r)| r.errors.is_empty()), "{workers}");

            table.insert(tuple![2]);
            let second = qp.tick_all_with(&reg, &NoopMetrics);
            // name order preserved, healthy query unaffected
            assert_eq!(second[0].0, "doomed");
            assert_eq!(second[1].0, "healthy");
            assert_eq!(second[1].1.delta.inserts.len(), 1);
            assert!(second[1].1.errors.is_empty());
            // the doomed query failed *this tick* with a Panicked error
            let doomed = &second[0].1;
            assert!(doomed.delta.inserts.is_empty() && doomed.batch.is_empty());
            assert!(
                matches!(
                    &doomed.errors[..],
                    [EvalError::Panicked { service, reason, .. }]
                        if service == "query:doomed" && reason.contains("exploded")
                ),
                "workers={workers}: {:?}",
                doomed.errors
            );
            assert_eq!(
                registry.counter_value("serena_query_panics_total", &[("query", "doomed")]),
                Some(1),
                "workers={workers}"
            );
            // the engine keeps ticking: clock advanced, next round runs
            assert_eq!(qp.clock(), Instant(2));
            table.insert(tuple![3]);
            let third = qp.tick_all_with(&reg, &NoopMetrics);
            assert_eq!(third[1].1.delta.inserts.len(), 1, "pool survived");
            assert_eq!(qp.stats("doomed").unwrap().errors, 2);
            assert_eq!(qp.stats("healthy").unwrap().errors, 0);
        }
    }

    #[test]
    fn worker_counts_do_not_change_results() {
        let run = |workers: usize| {
            let mut qp = QueryProcessor::new();
            qp.set_scheduler(SchedulerConfig::new(workers));
            let (table, _) = int_table();
            for i in 0..6 {
                let mut s = SourceSet::new();
                s.add_table("t", table.clone());
                qp.register(
                    format!("q{i}"),
                    &StreamPlan::source("t").select(Formula::gt_const("x", i)),
                    &mut s,
                )
                .unwrap();
            }
            let reg = example_registry();
            let mut all = Vec::new();
            for v in 0..12 {
                table.insert(tuple![v]);
                for (name, r) in qp.tick_all_with(&reg, &NoopMetrics) {
                    all.push((name, r.at, r.delta));
                }
            }
            all
        };
        let serial = run(1);
        assert_eq!(serial, run(2), "workers=2 diverged");
        assert_eq!(serial, run(8), "workers=8 diverged");
    }

    #[test]
    fn scheduler_telemetry_series_update() {
        use serena_core::telemetry::MemoryTrace;
        let mut qp = QueryProcessor::new();
        qp.set_scheduler(SchedulerConfig::new(4));
        let registry = Arc::new(MetricsRegistry::new());
        qp.set_telemetry(registry.clone(), Arc::new(MemoryTrace::new()));
        let (table, _) = int_table();
        for i in 0..5 {
            let mut s = SourceSet::new();
            s.add_table("t", table.clone());
            qp.register(format!("q{i}"), &StreamPlan::source("t"), &mut s)
                .unwrap();
        }
        let reg = example_registry();
        table.insert(tuple![1]);
        qp.tick_all_with(&reg, &NoopMetrics);
        assert_eq!(
            registry.gauge("serena_sched_queue_depth", &[]).get(),
            5,
            "queue depth = tasks submitted this round"
        );
        // steals are timing-dependent: assert the counter is publishable,
        // not a specific value
        let _ = registry.counter_value("serena_sched_steals_total", &[]);
    }

    #[test]
    fn swap_query_carries_window_state_and_keeps_stats() {
        use serena_stream::{migration_pairs, state_keys};
        let mut qp = QueryProcessor::new();
        let (table, mut s1) = int_table();
        let old_plan = StreamPlan::source("t")
            .stream(serena_stream::StreamKind::Heartbeat)
            .window(3)
            .select(Formula::gt_const("x", 10));
        qp.register("w", &old_plan, &mut s1).unwrap();
        let reg = example_registry();
        table.insert(tuple![20]);
        qp.tick_all_with(&reg, &NoopMetrics);
        qp.tick_all_with(&reg, &NoopMetrics);
        let ticks_before = qp.stats("w").unwrap().ticks;

        // the σ-pushed equivalent: same window subtree, so the ring ports
        let new_plan = StreamPlan::source("t")
            .stream(serena_stream::StreamKind::Heartbeat)
            .window(3)
            .select(Formula::gt_const("x", 10));
        let mut s2 = SourceSet::new();
        s2.add_table("t", table.clone());
        let migration = migration_pairs(&state_keys(&old_plan, &s2), &state_keys(&new_plan, &s2));
        assert_eq!(migration.windows, vec![(0, 0)]);
        qp.swap_query("w", &new_plan, &mut s2, &migration).unwrap();

        // the adopted ring bootstraps: full current re-emitted, then the
        // query keeps rolling at the global cadence
        let r = qp.tick_all_with(&reg, &NoopMetrics);
        assert_eq!(r[0].1.at, Instant(2));
        assert!(!r[0].1.delta.inserts.is_empty());
        assert_eq!(qp.stats("w").unwrap().ticks, ticks_before + 1);
        assert_eq!(qp.clock(), Instant(3));

        // unknown names are a typed error
        assert!(qp
            .swap_query("missing", &new_plan, &mut SourceSet::new(), &migration)
            .is_err());
    }

    #[test]
    fn many_parallel_queries_agree() {
        let mut qp = QueryProcessor::new();
        let (table, _) = int_table();
        for i in 0..8 {
            let mut s = SourceSet::new();
            s.add_table("t", table.clone());
            qp.register(format!("q{i}"), &StreamPlan::source("t"), &mut s)
                .unwrap();
        }
        let reg = example_registry();
        for v in 0..10 {
            table.insert(tuple![v]);
            let reports = qp.tick_all_with(&reg, &NoopMetrics);
            let sizes: Vec<usize> = reports.iter().map(|(_, r)| r.delta.inserts.len()).collect();
            assert!(
                sizes.iter().all(|&s| s == sizes[0]),
                "queries disagree: {sizes:?}"
            );
        }
        for i in 0..8 {
            assert_eq!(qp.stats(&format!("q{i}")).unwrap().inserted, 10);
        }
    }
}
