//! The Extended Table Manager (§5.1): owns the named XD-Relations.
//!
//! "The Extended Table Manager allows to define XD-Relations from Serena
//! DDL statements, and to manage their data (insertion and deletion of
//! tuples)." Finite XD-Relations are backed by shared
//! [`TableHandle`]s; infinite ones by *stream bindings* — either a
//! broadcast [`StreamHub`] (externally pushed) or a factory creating a
//! fresh deterministic source per subscribing query.
//!
//! State is **sharded by relation name**: each of [`SHARDS`] shards holds
//! its own lock over its slice of the table and stream maps, so
//! concurrent query ticks (or DDL from the shell while queries run)
//! touching disjoint relations never serialize on a whole-manager lock.
//! Every method takes `&self` — the manager is interior-mutable and
//! freely shareable with the scheduler's worker pool. A name's tables
//! *and* streams land in the same shard (the hash only sees the name),
//! so the cross-kind freshness check stays shard-local.
//!
//! Serialization (`export_tables` / `snapshot_environment`) collects
//! across shards and sorts globally by name, keeping the encoding
//! byte-identical to the pre-sharding single-map layout.

use std::collections::BTreeMap;
use std::sync::Arc;

use serena_core::env::Environment;
use serena_core::error::SchemaError;
use serena_core::plan::SchemaCatalog;
use serena_core::prototype::Prototype;
use serena_core::schema::SchemaRef;
use serena_core::snapshot::{Reader, SnapshotError, Writer};
use serena_core::sync::RwLock;
use serena_core::tuple::Tuple;
use serena_core::xrelation::XRelation;
use serena_stream::exec::SourceSet;
use serena_stream::plan::{StreamPlan, StreamSchema, XdCatalog};
use serena_stream::source::{StreamSource, TableHandle};

use crate::hub::StreamHub;

/// Shards in the catalog. A modest power of two: enough that 8–16
/// workers rarely collide, small enough that full scans (exports,
/// snapshots) stay cheap.
pub const SHARDS: usize = 16;

/// How an infinite XD-Relation obtains its tuples.
enum StreamBinding {
    /// Externally pushed via [`ExtendedTableManager::push_stream`].
    Hub(StreamHub),
    /// A fresh deterministic source per subscribing query.
    Factory(Box<dyn Fn() -> Box<dyn StreamSource> + Send + Sync>),
}

struct StreamDef {
    schema: SchemaRef,
    binding: StreamBinding,
}

/// One shard's slice of the catalog. Tables and streams share the shard
/// (and its locks are taken together on definition) so duplicate-name
/// checks across the two kinds need no global lock.
#[derive(Default)]
struct Shard {
    tables: RwLock<BTreeMap<String, TableHandle>>,
    streams: RwLock<BTreeMap<String, StreamDef>>,
}

/// FNV-1a — deterministic (no per-process `RandomState`) and fast for
/// the short relation names we key shards on.
fn shard_of(name: &str) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    (h % SHARDS as u64) as usize
}

/// The PEMS table catalog: named finite tables and infinite streams,
/// sharded by name (see the module docs).
pub struct ExtendedTableManager {
    shards: Vec<Shard>,
    prototypes: RwLock<BTreeMap<String, Arc<Prototype>>>,
    /// `SERVICE name IMPLEMENTS …` declarations (Table 1) — metadata the
    /// registry is validated against.
    service_decls: RwLock<BTreeMap<String, Vec<String>>>,
}

impl Default for ExtendedTableManager {
    fn default() -> Self {
        ExtendedTableManager {
            shards: (0..SHARDS).map(|_| Shard::default()).collect(),
            prototypes: RwLock::new(BTreeMap::new()),
            service_decls: RwLock::new(BTreeMap::new()),
        }
    }
}

impl ExtendedTableManager {
    /// Empty manager.
    pub fn new() -> Self {
        Self::default()
    }

    fn shard(&self, name: &str) -> &Shard {
        &self.shards[shard_of(name)]
    }

    /// Declare a prototype.
    pub fn declare_prototype(&self, p: Arc<Prototype>) -> Result<(), SchemaError> {
        let mut protos = self.prototypes.write();
        if protos.contains_key(p.name()) {
            return Err(SchemaError::DuplicatePrototype(p.name().to_string()));
        }
        protos.insert(p.name().to_string(), p);
        Ok(())
    }

    /// Look up a declared prototype.
    pub fn prototype(&self, name: &str) -> Option<Arc<Prototype>> {
        self.prototypes.read().get(name).cloned()
    }

    /// All declared prototypes, sorted by name.
    pub fn prototypes(&self) -> Vec<Arc<Prototype>> {
        self.prototypes.read().values().cloned().collect()
    }

    /// Record a `SERVICE … IMPLEMENTS …` declaration.
    pub fn declare_service(&self, name: impl Into<String>, prototypes: Vec<String>) {
        self.service_decls.write().insert(name.into(), prototypes);
    }

    /// Declared services, sorted by name.
    pub fn service_declarations(&self) -> Vec<(String, Vec<String>)> {
        self.service_decls
            .read()
            .iter()
            .map(|(n, p)| (n.clone(), p.clone()))
            .collect()
    }

    /// Define a finite XD-Relation. Returns its shared handle.
    pub fn define_table(
        &self,
        name: impl Into<String>,
        schema: SchemaRef,
    ) -> Result<TableHandle, SchemaError> {
        let name = name.into();
        let shard = self.shard(&name);
        let mut tables = shard.tables.write();
        if tables.contains_key(&name) || shard.streams.read().contains_key(&name) {
            return Err(SchemaError::DuplicateRelation(name));
        }
        let handle = TableHandle::new(schema);
        tables.insert(name, handle.clone());
        Ok(handle)
    }

    /// Define an infinite XD-Relation fed by external pushes. Returns its
    /// hub.
    pub fn define_push_stream(
        &self,
        name: impl Into<String>,
        schema: SchemaRef,
    ) -> Result<StreamHub, SchemaError> {
        let name = name.into();
        let hub = StreamHub::new();
        self.define_stream(
            name,
            StreamDef {
                schema,
                binding: StreamBinding::Hub(hub.clone()),
            },
        )?;
        Ok(hub)
    }

    /// Define an infinite XD-Relation backed by a source factory: each
    /// subscribing query gets `factory()` (sources must be deterministic
    /// functions of the instant for queries to agree).
    pub fn define_stream_with(
        &self,
        name: impl Into<String>,
        schema: SchemaRef,
        factory: impl Fn() -> Box<dyn StreamSource> + Send + Sync + 'static,
    ) -> Result<(), SchemaError> {
        self.define_stream(
            name.into(),
            StreamDef {
                schema,
                binding: StreamBinding::Factory(Box::new(factory)),
            },
        )
    }

    fn define_stream(&self, name: String, def: StreamDef) -> Result<(), SchemaError> {
        let shard = self.shard(&name);
        let mut streams = shard.streams.write();
        if streams.contains_key(&name) || shard.tables.read().contains_key(&name) {
            return Err(SchemaError::DuplicateRelation(name));
        }
        streams.insert(name, def);
        Ok(())
    }

    /// Handle of a finite table (a cheap `Arc` clone of the shared
    /// state).
    pub fn table(&self, name: &str) -> Option<TableHandle> {
        self.shard(name).tables.read().get(name).cloned()
    }

    /// Push a tuple into a hub-backed stream. `false` if the stream does
    /// not exist or is factory-backed.
    pub fn push_stream(&self, name: &str, t: Tuple) -> bool {
        match self.shard(name).streams.read().get(name) {
            Some(StreamDef {
                binding: StreamBinding::Hub(hub),
                ..
            }) => {
                hub.push(t);
                true
            }
            _ => false,
        }
    }

    /// Queue an insertion into a finite table.
    pub fn insert(&self, name: &str, t: Tuple) -> Result<(), SchemaError> {
        match self.table(name) {
            Some(h) => {
                h.insert(t);
                Ok(())
            }
            None => Err(SchemaError::DuplicateRelation(format!(
                "{name} (not defined)"
            ))),
        }
    }

    /// Queue a deletion from a finite table.
    pub fn delete(&self, name: &str, t: Tuple) -> Result<(), SchemaError> {
        match self.table(name) {
            Some(h) => {
                h.delete(t);
                Ok(())
            }
            None => Err(SchemaError::DuplicateRelation(format!(
                "{name} (not defined)"
            ))),
        }
    }

    /// Drop a relation (table or stream). Returns whether it existed.
    pub fn drop_relation(&self, name: &str) -> bool {
        let shard = self.shard(name);
        shard.tables.write().remove(name).is_some() || shard.streams.write().remove(name).is_some()
    }

    /// Build the [`SourceSet`] a continuous plan compiles against: shared
    /// table handles plus a fresh subscription/instance per stream the plan
    /// references.
    pub fn source_set_for(&self, plan: &StreamPlan) -> SourceSet {
        let mut sources = SourceSet::new();
        let mut names = Vec::new();
        collect_sources(plan, &mut names);
        for name in names {
            if let Some(handle) = self.table(name) {
                sources.add_table(name.to_string(), handle);
            } else if let Some((schema, source)) = self.subscribe(name) {
                sources.add_stream(name.to_string(), schema, source);
            }
        }
        sources
    }

    /// A fresh subscription/instance of stream `name`, with its schema.
    fn subscribe(&self, name: &str) -> Option<(SchemaRef, Box<dyn StreamSource>)> {
        let shard = self.shard(name);
        let streams = shard.streams.read();
        let def = streams.get(name)?;
        let source: Box<dyn StreamSource> = match &def.binding {
            StreamBinding::Hub(hub) => Box::new(hub.subscribe()),
            StreamBinding::Factory(f) => f(),
        };
        Some((def.schema.clone(), source))
    }

    /// Every finite table, globally sorted by name — shard layout is an
    /// implementation detail that must never leak into encodings or
    /// one-shot snapshots.
    fn tables_by_name(&self) -> Vec<(String, TableHandle)> {
        let mut all: Vec<(String, TableHandle)> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.tables
                    .read()
                    .iter()
                    .map(|(n, h)| (n.clone(), h.clone()))
                    .collect::<Vec<_>>()
            })
            .collect();
        all.sort_by(|a, b| a.0.cmp(&b.0));
        all
    }

    /// Serialize every finite table's dynamic contents (committed state +
    /// pending mutations), in name order. Schemas and stream definitions
    /// are *not* captured — recovery re-runs the DDL, then rehydrates.
    pub fn export_tables(&self, w: &mut Writer) {
        let tables = self.tables_by_name();
        w.usize(tables.len());
        for (name, handle) in &tables {
            w.str(name);
            handle.export_state(w);
        }
    }

    /// Restore table contents written by [`Self::export_tables`] into the
    /// already-defined tables. Errors with [`SnapshotError::Mismatch`]
    /// when the defined table set disagrees with the snapshot.
    pub fn import_tables(&self, r: &mut Reader<'_>) -> Result<(), SnapshotError> {
        let tables = self.tables_by_name();
        let n = r.usize()?;
        if n != tables.len() {
            return Err(SnapshotError::Mismatch(format!(
                "snapshot holds {n} tables, {} defined",
                tables.len()
            )));
        }
        for (name, handle) in &tables {
            let stored = r.str()?;
            if stored != *name {
                return Err(SnapshotError::Mismatch(format!(
                    "snapshot table `{stored}` does not match defined `{name}`"
                )));
            }
            handle.import_state(r)?;
        }
        Ok(())
    }

    /// Snapshot every finite table into a one-shot [`Environment`]
    /// (pending mutations included), for `EXECUTE` statements.
    pub fn snapshot_environment(&self) -> Environment {
        let mut env = Environment::new();
        for p in self.prototypes() {
            // prototypes were URSA-checked on declaration paths upstream;
            // snapshotting must not fail on re-declaration order
            let _ = env.declare_prototype(p);
        }
        for (name, handle) in self.tables_by_name() {
            let schema = handle.schema();
            let mut rel = XRelation::empty(schema);
            for t in handle.projected().sorted_occurrences() {
                rel.insert(t);
            }
            let _ = env.define_relation(name, rel);
        }
        env
    }
}

fn collect_sources<'a>(plan: &'a StreamPlan, out: &mut Vec<&'a str>) {
    match plan {
        StreamPlan::Source(n) => {
            if !out.contains(&n.as_str()) {
                out.push(n);
            }
        }
        StreamPlan::Union(a, b)
        | StreamPlan::Intersect(a, b)
        | StreamPlan::Difference(a, b)
        | StreamPlan::Join(a, b) => {
            collect_sources(a, out);
            collect_sources(b, out);
        }
        StreamPlan::Project(p, _)
        | StreamPlan::Select(p, _)
        | StreamPlan::Rename(p, _, _)
        | StreamPlan::Assign(p, _, _)
        | StreamPlan::Invoke(p, _, _)
        | StreamPlan::Aggregate(p, _, _)
        | StreamPlan::Window(p, _)
        | StreamPlan::Stream(p, _)
        | StreamPlan::SampleInvoke(p, _, _, _) => collect_sources(p, out),
    }
}

impl XdCatalog for ExtendedTableManager {
    fn xd_schema_of(&self, name: &str) -> Option<StreamSchema> {
        let shard = self.shard(name);
        if let Some(t) = shard.tables.read().get(name) {
            return Some(StreamSchema::finite(t.schema()));
        }
        shard
            .streams
            .read()
            .get(name)
            .map(|d| StreamSchema::infinite(d.schema.clone()))
    }
}

impl SchemaCatalog for ExtendedTableManager {
    fn schema_of(&self, name: &str) -> Option<SchemaRef> {
        self.table(name).map(|t| t.schema())
    }
}

impl serena_ddl::PrototypeCatalog for ExtendedTableManager {
    fn lookup_prototype(&self, name: &str) -> Option<Arc<Prototype>> {
        self.prototype(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serena_core::prototype::examples as protos;
    use serena_core::schema::examples as schemas;
    use serena_core::tuple;

    fn manager() -> ExtendedTableManager {
        let m = ExtendedTableManager::new();
        m.declare_prototype(protos::send_message()).unwrap();
        m.declare_prototype(protos::get_temperature()).unwrap();
        m
    }

    #[test]
    fn define_and_mutate_table() {
        let m = manager();
        m.define_table("contacts", schemas::contacts_schema())
            .unwrap();
        m.insert("contacts", tuple!["Ada", "ada@l.org", "email"])
            .unwrap();
        assert!(m.insert("ghost", tuple![1]).is_err());
        let env = m.snapshot_environment();
        assert_eq!(env.relation("contacts").unwrap().len(), 1);
    }

    #[test]
    fn duplicate_names_rejected_across_kinds() {
        let m = manager();
        m.define_table("x", schemas::contacts_schema()).unwrap();
        assert!(m
            .define_push_stream("x", schemas::contacts_schema())
            .is_err());
        assert!(m.define_table("x", schemas::contacts_schema()).is_err());
    }

    #[test]
    fn source_set_subscribes_streams_per_query() {
        let m = manager();
        let schema = serena_core::schema::XSchema::builder()
            .real("x", serena_core::value::DataType::Int)
            .build()
            .unwrap();
        let hub = m.define_push_stream("s", schema).unwrap();
        let plan = StreamPlan::source("s").window(1);
        let mut set1 = m.source_set_for(&plan);
        let mut set2 = m.source_set_for(&plan);
        let mut q1 = serena_stream::exec::ContinuousQuery::compile(&plan, &mut set1).unwrap();
        let mut q2 = serena_stream::exec::ContinuousQuery::compile(&plan, &mut set2).unwrap();
        use serena_core::metrics::NoopMetrics;
        let reg = serena_core::service::fixtures::example_registry();
        hub.push(tuple![1]);
        // both queries observe the same pushed tuple
        assert_eq!(q1.tick_with(&reg, &NoopMetrics).delta.inserts.len(), 1);
        assert_eq!(q2.tick_with(&reg, &NoopMetrics).delta.inserts.len(), 1);
    }

    #[test]
    fn drop_relation_both_kinds() {
        let m = manager();
        m.define_table("t", schemas::contacts_schema()).unwrap();
        m.define_push_stream(
            "s",
            serena_core::schema::XSchema::builder()
                .real("x", serena_core::value::DataType::Int)
                .build()
                .unwrap(),
        )
        .unwrap();
        assert!(m.drop_relation("t"));
        assert!(m.drop_relation("s"));
        assert!(!m.drop_relation("t"));
    }

    #[test]
    fn xd_catalog_distinguishes_status() {
        let m = manager();
        m.define_table("t", schemas::contacts_schema()).unwrap();
        m.define_push_stream(
            "s",
            serena_core::schema::XSchema::builder()
                .real("x", serena_core::value::DataType::Int)
                .build()
                .unwrap(),
        )
        .unwrap();
        assert!(!m.xd_schema_of("t").unwrap().infinite);
        assert!(m.xd_schema_of("s").unwrap().infinite);
        assert!(m.xd_schema_of("nope").is_none());
        // SchemaCatalog (one-shot) exposes finite tables only
        assert!(m.schema_of("t").is_some());
        assert!(m.schema_of("s").is_none());
    }

    #[test]
    fn push_stream_only_for_hubs() {
        let m = manager();
        let schema = serena_core::schema::XSchema::builder()
            .real("x", serena_core::value::DataType::Int)
            .build()
            .unwrap();
        m.define_push_stream("hub", schema.clone()).unwrap();
        m.define_stream_with("gen", schema, || {
            Box::new(serena_stream::source::FnStream(|_at| Vec::new()))
        })
        .unwrap();
        assert!(m.push_stream("hub", tuple![1]));
        assert!(!m.push_stream("gen", tuple![1]));
        assert!(!m.push_stream("nope", tuple![1]));
    }

    #[test]
    fn service_declarations_recorded() {
        let m = manager();
        m.declare_service("email", vec!["sendMessage".into()]);
        m.declare_service("camera01", vec!["checkPhoto".into(), "takePhoto".into()]);
        let decls: Vec<(String, usize)> = m
            .service_declarations()
            .into_iter()
            .map(|(n, p)| (n, p.len()))
            .collect();
        assert_eq!(
            decls,
            vec![("camera01".to_string(), 2), ("email".to_string(), 1)]
        );
    }

    #[test]
    fn exports_are_name_ordered_across_shards() {
        // Names chosen to scatter across shards; the export must still be
        // globally name-ordered (the pre-sharding byte layout).
        let m = manager();
        let names = ["zeta", "alpha", "mu", "kappa", "beta17", "omega"];
        for n in names {
            m.define_table(n, schemas::contacts_schema()).unwrap();
        }
        let mut w = Writer::new();
        m.export_tables(&mut w);
        let bytes = w.into_bytes();
        let mut sorted = names;
        sorted.sort_unstable();
        // name order in the byte stream follows the sorted order
        let mut pos = Vec::new();
        for n in sorted {
            let at = bytes
                .windows(n.len())
                .position(|win| win == n.as_bytes())
                .expect("name present in export");
            pos.push(at);
        }
        assert!(pos.windows(2).all(|w| w[0] < w[1]), "{pos:?}");
        // and a fresh identically-defined manager imports it cleanly
        let m2 = manager();
        for n in names {
            m2.define_table(n, schemas::contacts_schema()).unwrap();
        }
        m2.import_tables(&mut Reader::new(&bytes)).unwrap();
    }

    #[test]
    fn concurrent_definitions_on_disjoint_names() {
        let m = Arc::new(manager());
        std::thread::scope(|scope| {
            for t in 0..8 {
                let m = Arc::clone(&m);
                scope.spawn(move || {
                    for i in 0..16 {
                        let name = format!("rel_{t}_{i}");
                        m.define_table(&name, schemas::contacts_schema()).unwrap();
                        m.insert(&name, tuple!["Ada", "ada@l.org", "email"])
                            .unwrap();
                    }
                });
            }
        });
        assert_eq!(m.tables_by_name().len(), 128);
        let env = m.snapshot_environment();
        assert_eq!(env.relation("rel_7_15").unwrap().len(), 1);
    }
}
