//! The Extended Table Manager (§5.1): owns the named XD-Relations.
//!
//! "The Extended Table Manager allows to define XD-Relations from Serena
//! DDL statements, and to manage their data (insertion and deletion of
//! tuples)." Finite XD-Relations are backed by shared
//! [`TableHandle`]s; infinite ones by *stream bindings* — either a
//! broadcast [`StreamHub`] (externally pushed) or a factory creating a
//! fresh deterministic source per subscribing query.

use std::collections::BTreeMap;
use std::sync::Arc;

use serena_core::env::Environment;
use serena_core::error::SchemaError;
use serena_core::plan::SchemaCatalog;
use serena_core::prototype::Prototype;
use serena_core::schema::SchemaRef;
use serena_core::snapshot::{Reader, SnapshotError, Writer};
use serena_core::tuple::Tuple;
use serena_core::xrelation::XRelation;
use serena_stream::exec::SourceSet;
use serena_stream::plan::{StreamPlan, StreamSchema, XdCatalog};
use serena_stream::source::{StreamSource, TableHandle};

use crate::hub::StreamHub;

/// How an infinite XD-Relation obtains its tuples.
enum StreamBinding {
    /// Externally pushed via [`ExtendedTableManager::push_stream`].
    Hub(StreamHub),
    /// A fresh deterministic source per subscribing query.
    Factory(Box<dyn Fn() -> Box<dyn StreamSource> + Send + Sync>),
}

struct StreamDef {
    schema: SchemaRef,
    binding: StreamBinding,
}

/// The PEMS table catalog: named finite tables and infinite streams.
#[derive(Default)]
pub struct ExtendedTableManager {
    prototypes: BTreeMap<String, Arc<Prototype>>,
    tables: BTreeMap<String, TableHandle>,
    streams: BTreeMap<String, StreamDef>,
    /// `SERVICE name IMPLEMENTS …` declarations (Table 1) — metadata the
    /// registry is validated against.
    service_decls: BTreeMap<String, Vec<String>>,
}

impl ExtendedTableManager {
    /// Empty manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare a prototype.
    pub fn declare_prototype(&mut self, p: Arc<Prototype>) -> Result<(), SchemaError> {
        if self.prototypes.contains_key(p.name()) {
            return Err(SchemaError::DuplicatePrototype(p.name().to_string()));
        }
        self.prototypes.insert(p.name().to_string(), p);
        Ok(())
    }

    /// Look up a declared prototype.
    pub fn prototype(&self, name: &str) -> Option<&Arc<Prototype>> {
        self.prototypes.get(name)
    }

    /// All declared prototypes, sorted by name.
    pub fn prototypes(&self) -> impl Iterator<Item = &Arc<Prototype>> {
        self.prototypes.values()
    }

    /// Record a `SERVICE … IMPLEMENTS …` declaration.
    pub fn declare_service(&mut self, name: impl Into<String>, prototypes: Vec<String>) {
        self.service_decls.insert(name.into(), prototypes);
    }

    /// Declared services, sorted.
    pub fn service_declarations(&self) -> impl Iterator<Item = (&str, &[String])> {
        self.service_decls
            .iter()
            .map(|(n, p)| (n.as_str(), p.as_slice()))
    }

    fn check_fresh_name(&self, name: &str) -> Result<(), SchemaError> {
        if self.tables.contains_key(name) || self.streams.contains_key(name) {
            return Err(SchemaError::DuplicateRelation(name.to_string()));
        }
        Ok(())
    }

    /// Define a finite XD-Relation. Returns its shared handle.
    pub fn define_table(
        &mut self,
        name: impl Into<String>,
        schema: SchemaRef,
    ) -> Result<TableHandle, SchemaError> {
        let name = name.into();
        self.check_fresh_name(&name)?;
        let handle = TableHandle::new(schema);
        self.tables.insert(name, handle.clone());
        Ok(handle)
    }

    /// Define an infinite XD-Relation fed by external pushes. Returns its
    /// hub.
    pub fn define_push_stream(
        &mut self,
        name: impl Into<String>,
        schema: SchemaRef,
    ) -> Result<StreamHub, SchemaError> {
        let name = name.into();
        self.check_fresh_name(&name)?;
        let hub = StreamHub::new();
        self.streams.insert(
            name,
            StreamDef {
                schema,
                binding: StreamBinding::Hub(hub.clone()),
            },
        );
        Ok(hub)
    }

    /// Define an infinite XD-Relation backed by a source factory: each
    /// subscribing query gets `factory()` (sources must be deterministic
    /// functions of the instant for queries to agree).
    pub fn define_stream_with(
        &mut self,
        name: impl Into<String>,
        schema: SchemaRef,
        factory: impl Fn() -> Box<dyn StreamSource> + Send + Sync + 'static,
    ) -> Result<(), SchemaError> {
        let name = name.into();
        self.check_fresh_name(&name)?;
        self.streams.insert(
            name,
            StreamDef {
                schema,
                binding: StreamBinding::Factory(Box::new(factory)),
            },
        );
        Ok(())
    }

    /// Handle of a finite table.
    pub fn table(&self, name: &str) -> Option<&TableHandle> {
        self.tables.get(name)
    }

    /// Push a tuple into a hub-backed stream. `false` if the stream does
    /// not exist or is factory-backed.
    pub fn push_stream(&self, name: &str, t: Tuple) -> bool {
        match self.streams.get(name) {
            Some(StreamDef {
                binding: StreamBinding::Hub(hub),
                ..
            }) => {
                hub.push(t);
                true
            }
            _ => false,
        }
    }

    /// Queue an insertion into a finite table.
    pub fn insert(&self, name: &str, t: Tuple) -> Result<(), SchemaError> {
        match self.tables.get(name) {
            Some(h) => {
                h.insert(t);
                Ok(())
            }
            None => Err(SchemaError::DuplicateRelation(format!(
                "{name} (not defined)"
            ))),
        }
    }

    /// Queue a deletion from a finite table.
    pub fn delete(&self, name: &str, t: Tuple) -> Result<(), SchemaError> {
        match self.tables.get(name) {
            Some(h) => {
                h.delete(t);
                Ok(())
            }
            None => Err(SchemaError::DuplicateRelation(format!(
                "{name} (not defined)"
            ))),
        }
    }

    /// Drop a relation (table or stream). Returns whether it existed.
    pub fn drop_relation(&mut self, name: &str) -> bool {
        self.tables.remove(name).is_some() || self.streams.remove(name).is_some()
    }

    /// Build the [`SourceSet`] a continuous plan compiles against: shared
    /// table handles plus a fresh subscription/instance per stream the plan
    /// references.
    pub fn source_set_for(&self, plan: &StreamPlan) -> SourceSet {
        let mut sources = SourceSet::new();
        let mut names = Vec::new();
        collect_sources(plan, &mut names);
        for name in names {
            if let Some(handle) = self.tables.get(name) {
                sources.add_table(name.to_string(), handle.clone());
            } else if let Some(def) = self.streams.get(name) {
                let source: Box<dyn StreamSource> = match &def.binding {
                    StreamBinding::Hub(hub) => Box::new(hub.subscribe()),
                    StreamBinding::Factory(f) => f(),
                };
                sources.add_stream(name.to_string(), def.schema.clone(), source);
            }
        }
        sources
    }

    /// Serialize every finite table's dynamic contents (committed state +
    /// pending mutations), in name order. Schemas and stream definitions
    /// are *not* captured — recovery re-runs the DDL, then rehydrates.
    pub fn export_tables(&self, w: &mut Writer) {
        w.usize(self.tables.len());
        for (name, handle) in &self.tables {
            w.str(name);
            handle.export_state(w);
        }
    }

    /// Restore table contents written by [`Self::export_tables`] into the
    /// already-defined tables. Errors with [`SnapshotError::Mismatch`]
    /// when the defined table set disagrees with the snapshot.
    pub fn import_tables(&self, r: &mut Reader<'_>) -> Result<(), SnapshotError> {
        let n = r.usize()?;
        if n != self.tables.len() {
            return Err(SnapshotError::Mismatch(format!(
                "snapshot holds {n} tables, {} defined",
                self.tables.len()
            )));
        }
        for (name, handle) in &self.tables {
            let stored = r.str()?;
            if stored != *name {
                return Err(SnapshotError::Mismatch(format!(
                    "snapshot table `{stored}` does not match defined `{name}`"
                )));
            }
            handle.import_state(r)?;
        }
        Ok(())
    }

    /// Snapshot every finite table into a one-shot [`Environment`]
    /// (pending mutations included), for `EXECUTE` statements.
    pub fn snapshot_environment(&self) -> Environment {
        let mut env = Environment::new();
        for p in self.prototypes.values() {
            // prototypes were URSA-checked on declaration paths upstream;
            // snapshotting must not fail on re-declaration order
            let _ = env.declare_prototype(Arc::clone(p));
        }
        for (name, handle) in &self.tables {
            let schema = handle.schema();
            let mut rel = XRelation::empty(schema);
            for t in handle.projected().sorted_occurrences() {
                rel.insert(t);
            }
            let _ = env.define_relation(name.clone(), rel);
        }
        env
    }
}

fn collect_sources<'a>(plan: &'a StreamPlan, out: &mut Vec<&'a str>) {
    match plan {
        StreamPlan::Source(n) => {
            if !out.contains(&n.as_str()) {
                out.push(n);
            }
        }
        StreamPlan::Union(a, b)
        | StreamPlan::Intersect(a, b)
        | StreamPlan::Difference(a, b)
        | StreamPlan::Join(a, b) => {
            collect_sources(a, out);
            collect_sources(b, out);
        }
        StreamPlan::Project(p, _)
        | StreamPlan::Select(p, _)
        | StreamPlan::Rename(p, _, _)
        | StreamPlan::Assign(p, _, _)
        | StreamPlan::Invoke(p, _, _)
        | StreamPlan::Aggregate(p, _, _)
        | StreamPlan::Window(p, _)
        | StreamPlan::Stream(p, _)
        | StreamPlan::SampleInvoke(p, _, _, _) => collect_sources(p, out),
    }
}

impl XdCatalog for ExtendedTableManager {
    fn xd_schema_of(&self, name: &str) -> Option<StreamSchema> {
        if let Some(t) = self.tables.get(name) {
            return Some(StreamSchema::finite(t.schema()));
        }
        self.streams
            .get(name)
            .map(|d| StreamSchema::infinite(d.schema.clone()))
    }
}

impl SchemaCatalog for ExtendedTableManager {
    fn schema_of(&self, name: &str) -> Option<SchemaRef> {
        self.tables.get(name).map(|t| t.schema())
    }
}

impl serena_ddl::PrototypeCatalog for ExtendedTableManager {
    fn lookup_prototype(&self, name: &str) -> Option<Arc<Prototype>> {
        self.prototypes.get(name).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serena_core::prototype::examples as protos;
    use serena_core::schema::examples as schemas;
    use serena_core::tuple;

    fn manager() -> ExtendedTableManager {
        let mut m = ExtendedTableManager::new();
        m.declare_prototype(protos::send_message()).unwrap();
        m.declare_prototype(protos::get_temperature()).unwrap();
        m
    }

    #[test]
    fn define_and_mutate_table() {
        let mut m = manager();
        m.define_table("contacts", schemas::contacts_schema())
            .unwrap();
        m.insert("contacts", tuple!["Ada", "ada@l.org", "email"])
            .unwrap();
        assert!(m.insert("ghost", tuple![1]).is_err());
        let env = m.snapshot_environment();
        assert_eq!(env.relation("contacts").unwrap().len(), 1);
    }

    #[test]
    fn duplicate_names_rejected_across_kinds() {
        let mut m = manager();
        m.define_table("x", schemas::contacts_schema()).unwrap();
        assert!(m
            .define_push_stream("x", schemas::contacts_schema())
            .is_err());
        assert!(m.define_table("x", schemas::contacts_schema()).is_err());
    }

    #[test]
    fn source_set_subscribes_streams_per_query() {
        let mut m = manager();
        let schema = serena_core::schema::XSchema::builder()
            .real("x", serena_core::value::DataType::Int)
            .build()
            .unwrap();
        let hub = m.define_push_stream("s", schema).unwrap();
        let plan = StreamPlan::source("s").window(1);
        let mut set1 = m.source_set_for(&plan);
        let mut set2 = m.source_set_for(&plan);
        let mut q1 = serena_stream::exec::ContinuousQuery::compile(&plan, &mut set1).unwrap();
        let mut q2 = serena_stream::exec::ContinuousQuery::compile(&plan, &mut set2).unwrap();
        use serena_core::metrics::NoopMetrics;
        let reg = serena_core::service::fixtures::example_registry();
        hub.push(tuple![1]);
        // both queries observe the same pushed tuple
        assert_eq!(q1.tick_with(&reg, &NoopMetrics).delta.inserts.len(), 1);
        assert_eq!(q2.tick_with(&reg, &NoopMetrics).delta.inserts.len(), 1);
    }

    #[test]
    fn drop_relation_both_kinds() {
        let mut m = manager();
        m.define_table("t", schemas::contacts_schema()).unwrap();
        m.define_push_stream(
            "s",
            serena_core::schema::XSchema::builder()
                .real("x", serena_core::value::DataType::Int)
                .build()
                .unwrap(),
        )
        .unwrap();
        assert!(m.drop_relation("t"));
        assert!(m.drop_relation("s"));
        assert!(!m.drop_relation("t"));
    }

    #[test]
    fn xd_catalog_distinguishes_status() {
        let mut m = manager();
        m.define_table("t", schemas::contacts_schema()).unwrap();
        m.define_push_stream(
            "s",
            serena_core::schema::XSchema::builder()
                .real("x", serena_core::value::DataType::Int)
                .build()
                .unwrap(),
        )
        .unwrap();
        assert!(!m.xd_schema_of("t").unwrap().infinite);
        assert!(m.xd_schema_of("s").unwrap().infinite);
        assert!(m.xd_schema_of("nope").is_none());
        // SchemaCatalog (one-shot) exposes finite tables only
        assert!(m.schema_of("t").is_some());
        assert!(m.schema_of("s").is_none());
    }

    #[test]
    fn push_stream_only_for_hubs() {
        let mut m = manager();
        let schema = serena_core::schema::XSchema::builder()
            .real("x", serena_core::value::DataType::Int)
            .build()
            .unwrap();
        m.define_push_stream("hub", schema.clone()).unwrap();
        m.define_stream_with("gen", schema, || {
            Box::new(serena_stream::source::FnStream(|_at| Vec::new()))
        })
        .unwrap();
        assert!(m.push_stream("hub", tuple![1]));
        assert!(!m.push_stream("gen", tuple![1]));
        assert!(!m.push_stream("nope", tuple![1]));
    }

    #[test]
    fn service_declarations_recorded() {
        let mut m = manager();
        m.declare_service("email", vec!["sendMessage".into()]);
        m.declare_service("camera01", vec!["checkPhoto".into(), "takePhoto".into()]);
        let decls: Vec<(&str, usize)> = m
            .service_declarations()
            .map(|(n, p)| (n, p.len()))
            .collect();
        assert_eq!(decls, vec![("camera01", 2), ("email", 1)]);
    }
}
