//! The paper's two experimental scenarios, packaged as reusable
//! deployments (§5.2) — the code behind the `fig1_surveillance` and
//! `rss_scenario` harnesses, the examples and the scalability benchmarks.
//!
//! **Temperature surveillance**: sensors, cameras and messengers deployed
//! behind Local ERMs; four XD-Relations (`cameras`, `contacts`,
//! `surveillance`, and the `temperatures` stream); a continuous alert query
//! joining them so that heating a sensor over the threshold sends messages
//! to the area's manager; plus a photo query in the spirit of `Q4`.
//!
//! **RSS feeds**: wrapper services stream seeded news items; a windowed
//! continuous query keeps the recent items containing a tracked keyword.

use std::collections::BTreeMap;
use std::sync::Arc;

use serena_core::sync::Mutex;

use serena_core::attr::AttrName;
use serena_core::formula::Formula;
use serena_core::prototype::examples as protos;
use serena_core::schema::XSchema;
use serena_core::time::Instant;
use serena_core::tuple::Tuple;
use serena_core::value::{DataType, Value};
use serena_services::bus::BusConfig;
use serena_services::devices::messenger::{MessengerKind, SentMessage};
use serena_services::devices::rss::SimRssFeed;
use serena_stream::plan::{StreamKind, StreamPlan};
use serena_stream::source::StreamSource;

use crate::envspec::EnvSpec;
use crate::hub::{RssStream, SensorSampler};
use crate::pems::{Pems, PemsError};

/// Configuration of the temperature-surveillance deployment.
#[derive(Debug, Clone)]
pub struct SurveillanceConfig {
    /// Number of temperature sensors (round-robin over the areas).
    pub sensors: usize,
    /// Number of cameras (round-robin over the areas).
    pub cameras: usize,
    /// Contacts (each manages one area, round-robin).
    pub contacts: usize,
    /// Areas in the building.
    pub areas: Vec<String>,
    /// Alert threshold in °C.
    pub threshold: f64,
    /// Scripted heat events: (sensor index, from, to, peak °C).
    pub heat_events: Vec<(usize, Instant, Instant, f64)>,
    /// Discovery-network latency model.
    pub bus: BusConfig,
    /// Use the *full* §5.2 scenario: contacts carry a virtual `photo`
    /// attribute and alerts deliver the triggering camera shot via
    /// `sendPhotoMessage` (one combined query over all four XD-Relations).
    pub photo_alerts: bool,
}

impl Default for SurveillanceConfig {
    fn default() -> Self {
        SurveillanceConfig {
            sensors: 4,
            cameras: 3,
            contacts: 3,
            areas: vec!["corridor".into(), "office".into(), "roof".into()],
            threshold: 28.0,
            heat_events: Vec::new(),
            bus: BusConfig::instant(),
            photo_alerts: false,
        }
    }
}

/// A deployed surveillance scenario.
pub struct Surveillance {
    /// The PEMS instance (tick it to run the scenario).
    pub pems: Pems,
    /// Outboxes of the deployed messengers, keyed by service reference.
    pub outboxes: BTreeMap<String, Arc<Mutex<Vec<SentMessage>>>>,
    /// Area assignment of each sensor, in deployment order.
    pub sensor_areas: Vec<(String, String)>,
}

/// The surveillance alert query:
/// `β_sendMessage(α_text(ρ_manager→name(surveillance) ⋈ σ_temp>θ(W[1](temperatures)) ⋈ contacts))`.
pub fn alert_query(threshold: f64) -> StreamPlan {
    StreamPlan::source("temperatures")
        .window(1)
        .select(Formula::gt_const("temperature", threshold))
        .join(StreamPlan::source("surveillance").rename("manager", "name"))
        .project(["location", "name"])
        .join(StreamPlan::source("contacts"))
        .assign_const("text", "Temperature alert!")
        .invoke("sendMessage", "messenger")
}

/// The photo-enriched contacts schema of the *full* §5.2 scenario:
/// `contacts` "with an additional attribute allowing to send a picture
/// with a message". `photo` is **virtual** — it gets realized implicitly
/// by the natural join with the camera subquery's real `photo` attribute.
pub fn photo_contacts_schema() -> serena_core::schema::SchemaRef {
    XSchema::builder()
        .real("name", DataType::Str)
        .real("address", DataType::Str)
        .virt("text", DataType::Str)
        .virt("photo", DataType::Blob)
        .real("messenger", DataType::Service)
        .virt("sent", DataType::Bool)
        .bind(
            serena_services::devices::messenger::send_photo_message_prototype(),
            "messenger",
        )
        .build()
        .expect("photo contacts schema is valid")
}

/// The **combined** continuous query of §5.2: "the continuous query
/// combining these four XD-Relations" — hot reading → photo of the area →
/// photo message to the area's manager. The camera subquery's real `photo`
/// attribute realizes the contacts' virtual `photo` through the natural
/// join (Table 3(d)'s implicit realization, load-bearing here).
pub fn full_alert_query(threshold: f64) -> StreamPlan {
    let shots = StreamPlan::source("temperatures")
        .window(1)
        .select(Formula::gt_const("temperature", threshold))
        .rename("location", "area")
        .project(["area"])
        .join(StreamPlan::source("cameras"))
        .invoke("checkPhoto", "camera")
        .invoke("takePhoto", "camera")
        .project(["area", "photo"]);
    let managers = StreamPlan::source("surveillance")
        .rename("manager", "name")
        .rename("location", "area");
    shots
        .join(managers)
        .project(["area", "name", "photo"])
        .join(StreamPlan::source("contacts"))
        .assign_const("text", "Temperature alert — photo attached")
        .invoke("sendPhotoMessage", "messenger")
}

/// The photo query (Q4-flavoured): photograph areas whose temperature
/// exceeds the threshold.
pub fn photo_query(threshold: f64) -> StreamPlan {
    StreamPlan::source("temperatures")
        .window(1)
        .select(Formula::gt_const("temperature", threshold))
        .rename("location", "area")
        .project(["area"])
        .join(StreamPlan::source("cameras"))
        .invoke("checkPhoto", "camera")
        .invoke("takePhoto", "camera")
        .project(["area", "photo"])
        .stream(StreamKind::Insertion)
}

/// Deploy the temperature-surveillance scenario.
///
/// Devices are described and registered through the one public fleet
/// path, [`EnvSpec`]; the scenario owns only its catalog (the §5.2
/// XD-Relations), the contact/surveillance data and the queries.
pub fn deploy_surveillance(config: &SurveillanceConfig) -> Result<Surveillance, PemsError> {
    let mut pems = Pems::builder().bus(config.bus).build();
    // Seed 1 keeps the historical per-device seeds (sensor/camera i → i+1).
    let spec = EnvSpec::new(1)
        .sensors(config.sensors)
        .cameras(config.cameras)
        .areas(config.areas.clone())
        .heat_events(config.heat_events.clone());

    // --- prototypes (Table 1, plus the full scenario's photo messaging) ---
    for p in [
        protos::send_message(),
        protos::check_photo(),
        protos::take_photo(),
        protos::get_temperature(),
    ] {
        pems.tables_mut().declare_prototype(p)?;
    }
    if config.photo_alerts {
        pems.tables_mut().declare_prototype(
            serena_services::devices::messenger::send_photo_message_prototype(),
        )?;
    }

    // --- XD-Relations (Table 2 + §5.2's surveillance & temperatures) ---
    let contacts_schema = if config.photo_alerts {
        photo_contacts_schema()
    } else {
        serena_core::schema::examples::contacts_schema()
    };
    pems.tables_mut()
        .define_table("contacts", contacts_schema)?;
    let cameras_schema = serena_core::schema::examples::cameras_schema();
    pems.tables_mut().define_table("cameras", cameras_schema)?;
    let surveillance_schema = XSchema::builder()
        .real("location", DataType::Str)
        .real("manager", DataType::Str)
        .build()?;
    pems.tables_mut()
        .define_table("surveillance", surveillance_schema)?;

    // temperatures: a sampler over every *discovered* getTemperature
    // provider — new sensors join the stream automatically.
    let temp_schema = XSchema::builder()
        .real("location", DataType::Str)
        .real("temperature", DataType::Real)
        .build()?;
    let directory = pems.directory();
    pems.tables_mut()
        .define_stream_with("temperatures", temp_schema, move || {
            Box::new(SensorSampler::new(
                directory.clone() as Arc<dyn serena_core::service::Invoker>,
                directory.clone(),
                protos::get_temperature(),
                &["location"],
            )) as Box<dyn StreamSource>
        })?;

    // cameras table maintained by a discovery query (§5.1)
    pems.register_discovery("cameras", "checkPhoto", "camera")?;

    // --- devices behind a Local ERM: the EnvSpec fleet path ---
    let fleet = spec.deploy_into(&pems);

    // contacts + surveillance assignments (data, not devices)
    for i in 0..config.contacts {
        let name = format!("contact{i}");
        let kind = spec.messenger_kind(i);
        let address = match kind {
            MessengerKind::Sms => format!("+336000000{i:02}"),
            _ => format!("{name}@example.org"),
        };
        pems.tables_mut().insert(
            "contacts",
            Tuple::new(vec![
                Value::str(&name),
                Value::str(&address),
                Value::service(kind.label()),
            ]),
        )?;
        pems.tables_mut().insert(
            "surveillance",
            Tuple::new(vec![Value::str(spec.area_of(i)), Value::str(&name)]),
        )?;
    }

    // --- the continuous queries ---
    if config.photo_alerts {
        pems.register_query("alerts", &full_alert_query(config.threshold))?;
    } else {
        pems.register_query("alerts", &alert_query(config.threshold))?;
    }
    pems.register_query("photos", &photo_query(config.threshold))?;

    Ok(Surveillance {
        pems,
        outboxes: fleet.outboxes,
        sensor_areas: fleet.sensors,
    })
}

/// Total messages across all outboxes of a deployment.
pub fn total_messages(outboxes: &BTreeMap<String, Arc<Mutex<Vec<SentMessage>>>>) -> usize {
    outboxes.values().map(|o| o.lock().len()).sum()
}

/// Configuration of the RSS scenario.
#[derive(Debug, Clone)]
pub struct RssConfig {
    /// `(feed name, seed, publish %, keyword %)` per feed; defaults mirror
    /// the paper's three sources.
    pub feeds: Vec<(String, u64, u64, u64)>,
    /// Window length in ticks (the paper used one hour).
    pub window: u64,
}

impl Default for RssConfig {
    fn default() -> Self {
        RssConfig {
            feeds: vec![
                ("lemonde".into(), 17, 60, 25),
                ("lefigaro".into(), 29, 50, 25),
                ("cnn_europe".into(), 41, 70, 35),
            ],
            window: 60,
        }
    }
}

/// The RSS keyword query: recent items whose title contains `keyword`.
pub fn rss_keyword_query(keyword: &str, window: u64) -> StreamPlan {
    StreamPlan::source("news")
        .window(window)
        .select(Formula::contains_const("title", keyword))
}

/// Deploy the RSS scenario: a `news` stream over the configured feeds.
pub fn deploy_rss(config: &RssConfig) -> Result<Pems, PemsError> {
    let mut pems = Pems::builder().bus(BusConfig::instant()).build();
    let news_schema = XSchema::builder()
        .real("source", DataType::Str)
        .real("title", DataType::Str)
        .build()?;
    let feeds = config.feeds.clone();
    pems.tables_mut()
        .define_stream_with("news", news_schema, move || {
            Box::new(RssStream::new(
                feeds
                    .iter()
                    .map(|(n, s, p, k)| SimRssFeed::new(n.clone(), *s, *p, *k))
                    .collect(),
            )) as Box<dyn StreamSource>
        })?;
    pems.register_query(
        "keyword_watch",
        &rss_keyword_query(SimRssFeed::tracked_keyword(), config.window),
    )?;
    Ok(pems)
}

/// Expected keyword matches for a feed configuration over an instant range
/// — the oracle the scenario tests compare the continuous query against.
pub fn rss_expected_matches(
    config: &RssConfig,
    keyword: &str,
    from: Instant,
    to: Instant,
) -> usize {
    config
        .feeds
        .iter()
        .map(|(n, s, p, k)| {
            SimRssFeed::new(n.clone(), *s, *p, *k)
                .items_between(from, to)
                .iter()
                .filter(|i| i.title.contains(keyword))
                .count()
        })
        .sum()
}

#[allow(unused_imports)]
use AttrName as _AttrNameUsedInDocs;

#[cfg(test)]
mod tests {
    use super::*;
    use serena_services::devices::temperature::SimTemperatureSensor;

    #[test]
    fn surveillance_deploys_and_idles_quietly() {
        let mut s = deploy_surveillance(&SurveillanceConfig::default()).unwrap();
        for _ in 0..5 {
            let reports = s.pems.tick();
            for (name, r) in &reports {
                assert!(
                    r.actions.is_empty(),
                    "{name} acted during idle: {:?}",
                    r.actions
                );
            }
        }
        assert_eq!(total_messages(&s.outboxes), 0);
    }

    #[test]
    fn heat_event_triggers_alert_to_area_manager() {
        let config = SurveillanceConfig {
            // sensor 1 is in "office" (areas round-robin); two hot readings
            // with *distinct* values — consecutive identical readings
            // collapse in the window delta (multiset semantics) and in the
            // action set (Definition 8 is a set), so distinct peaks are the
            // repeatable way to trigger two alerts.
            heat_events: vec![
                (1, Instant(3), Instant(3), 45.0),
                (1, Instant(5), Instant(5), 46.0),
            ],
            ..SurveillanceConfig::default()
        };
        let mut s = deploy_surveillance(&config).unwrap();
        let mut alert_ticks = Vec::new();
        for t in 0..8 {
            let reports = s.pems.tick();
            let alerts = reports
                .iter()
                .find(|(n, _)| n == "alerts")
                .map(|(_, r)| r.actions.len())
                .unwrap_or(0);
            if alerts > 0 {
                alert_ticks.push((t, alerts));
            }
        }
        // each distinct hot reading alerts the office manager once
        assert_eq!(alert_ticks.iter().map(|(_, n)| n).sum::<usize>(), 2);
        let delivered = total_messages(&s.outboxes);
        assert_eq!(delivered, 2);
        // the recipient manages the office (contact1 → jabber)
        let jabber = s.outboxes.get("jabber").unwrap().lock();
        assert_eq!(jabber.len(), 2);
        assert!(jabber[0].address.contains("contact1"));
    }

    #[test]
    fn photos_stream_fires_with_alerts() {
        let config = SurveillanceConfig {
            heat_events: vec![(1, Instant(2), Instant(2), 45.0)],
            ..SurveillanceConfig::default()
        };
        let mut s = deploy_surveillance(&config).unwrap();
        let mut photos = 0;
        for _ in 0..6 {
            let reports = s.pems.tick();
            photos += reports
                .iter()
                .find(|(n, _)| n == "photos")
                .map(|(_, r)| r.batch.len())
                .unwrap_or(0);
        }
        // camera01 covers "office" (area round-robin index 1)
        assert_eq!(photos, 1);
    }

    #[test]
    fn late_sensor_joins_running_query() {
        // start with no heat; add a hot sensor mid-run via the LERM
        let mut s = deploy_surveillance(&SurveillanceConfig::default()).unwrap();
        s.pems.run_ticks(3);
        let lerm = s.pems.local_erm("annex");
        let hot = SimTemperatureSensor::new(99, 50.0, 0.0); // always hot
        lerm.register_service("sensor99", hot.into_service(), s.pems.clock());
        s.pems
            .directory()
            .set("sensor99", "location", Value::str("office"));
        let mut alerts = 0;
        for _ in 0..3 {
            let reports = s.pems.tick();
            alerts += reports
                .iter()
                .find(|(n, _)| n == "alerts")
                .map(|(_, r)| r.actions.len())
                .unwrap_or(0);
        }
        assert!(alerts > 0, "hot late-joining sensor must raise alerts");
    }

    #[test]
    fn full_scenario_sends_photo_messages() {
        // the combined four-XD-Relation query: hot reading → camera shot →
        // photo message to the area's manager
        let config = SurveillanceConfig {
            photo_alerts: true,
            heat_events: vec![(1, Instant(3), Instant(3), 45.0)], // office
            ..SurveillanceConfig::default()
        };
        let mut s = deploy_surveillance(&config).unwrap();
        let mut actions = 0;
        for _ in 0..6 {
            let reports = s.pems.tick();
            actions += reports
                .iter()
                .find(|(n, _)| n == "alerts")
                .map(|(_, r)| r.actions.len())
                .unwrap_or(0);
        }
        // office is covered by camera01 — one shot, one manager, one message
        assert_eq!(actions, 1);
        let delivered: Vec<_> = s.outboxes.values().flat_map(|o| o.lock().clone()).collect();
        assert_eq!(delivered.len(), 1);
        assert!(
            delivered[0].attachment_bytes > 0,
            "the photo must be attached"
        );
        assert!(delivered[0].address.contains("contact1"));
    }

    #[test]
    fn full_alert_query_schema_uses_implicit_realization() {
        // static check: photo virtual in contacts, real after the join
        let mut cat = std::collections::BTreeMap::new();
        cat.insert(
            "temperatures".to_string(),
            serena_stream::plan::StreamSchema::infinite(
                XSchema::builder()
                    .real("location", DataType::Str)
                    .real("temperature", DataType::Real)
                    .build()
                    .unwrap(),
            ),
        );
        cat.insert(
            "cameras".to_string(),
            serena_stream::plan::StreamSchema::finite(
                serena_core::schema::examples::cameras_schema(),
            ),
        );
        cat.insert(
            "surveillance".to_string(),
            serena_stream::plan::StreamSchema::finite(
                XSchema::builder()
                    .real("location", DataType::Str)
                    .real("manager", DataType::Str)
                    .build()
                    .unwrap(),
            ),
        );
        cat.insert(
            "contacts".to_string(),
            serena_stream::plan::StreamSchema::finite(photo_contacts_schema()),
        );
        let schema = full_alert_query(28.0).stream_schema(&cat).unwrap();
        assert!(!schema.infinite);
        assert!(
            schema.schema.is_real("photo"),
            "join realized the virtual photo"
        );
        assert!(
            schema.schema.is_real("sent"),
            "β realized the sending result"
        );
    }

    #[test]
    fn rss_scenario_matches_oracle() {
        let config = RssConfig {
            window: 5,
            ..RssConfig::default()
        };
        let mut pems = deploy_rss(&config).unwrap();
        let mut inserted = 0;
        let ticks = 20u64;
        for _ in 0..ticks {
            let reports = pems.tick();
            inserted += reports[0].1.delta.inserts.len();
        }
        let expected = rss_expected_matches(
            &config,
            SimRssFeed::tracked_keyword(),
            Instant(0),
            Instant(ticks - 1),
        );
        assert_eq!(inserted, expected);
        assert!(inserted > 0, "the seeded feeds should mention the keyword");
    }

    #[test]
    fn rss_window_expires_old_news() {
        let config = RssConfig {
            window: 2,
            ..RssConfig::default()
        };
        let mut pems = deploy_rss(&config).unwrap();
        let mut deleted = 0;
        for _ in 0..15 {
            let reports = pems.tick();
            deleted += reports[0].1.delta.deletes.len();
        }
        assert!(deleted > 0, "expired items must be retracted");
        // current window is bounded by what the last 2 instants produced
        let rel = pems.processor().current_relation("keyword_watch").unwrap();
        let bound = rss_expected_matches(
            &config,
            SimRssFeed::tracked_keyword(),
            Instant(13),
            Instant(14),
        );
        assert!(rel.len() <= bound.max(1) * 2);
    }
}
