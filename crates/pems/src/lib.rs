//! # serena-pems
//!
//! The **Pervasive Environment Management System** (Figure 1 of the
//! paper): "manage a relational pervasive environment, with its dynamic
//! data sources and set of services, and execute continuous queries over
//! this environment."
//!
//! * [`pems::Pems`] — the facade: discovery bus + registry (the core
//!   Environment Resource Manager), table manager, query processor and
//!   discovery queries, advanced tick by tick;
//! * [`table_manager::ExtendedTableManager`] — named XD-Relations, DDL
//!   execution, one-shot environment snapshots;
//! * [`processor::QueryProcessor`] — registered continuous queries in
//!   lock-step, ticked in parallel;
//! * [`scheduler`] — the persistent work-stealing worker pool the
//!   processor runs multi-query tick rounds on ([`scheduler::WorkerPool`],
//!   sized by [`scheduler::SchedulerConfig`] / `SERENA_SCHED_WORKERS`);
//! * [`adaptive`] — the adaptive re-optimization controller: replan
//!   triggers fed by breakers/health, candidate bookkeeping and the
//!   checkpoint-surviving replan history behind
//!   [`pems::PemsBuilder::adaptive`];
//! * [`hub`] — stream plumbing (broadcast hubs, sensor samplers, RSS
//!   adapters);
//! * [`recovery`] — periodic checkpoints of the runtime's dynamic state
//!   and crash recovery ([`pems::PemsBuilder::checkpoint`],
//!   [`pems::Pems::restore_from`]);
//! * [`scenario`] — the paper's two experiments (§5.2) as reusable
//!   deployments;
//! * [`envspec`] — the typed [`envspec::EnvSpec`] / [`envspec::WorkloadSpec`]
//!   builders: the one public way to construct device fleets and batches of
//!   continuous queries, from the §5.2 scenario up to 10⁴⁺-device scale
//!   benchmarks, deterministically from a seed.
//!
//! ```
//! use serena_pems::pems::Pems;
//! use serena_services::bus::BusConfig;
//!
//! let mut pems = Pems::builder().bus(BusConfig::instant()).build();
//! pems.run_program("
//!     PROTOTYPE getTemperature( ) : ( temperature REAL );
//!     EXTENDED RELATION sensors (
//!       sensor SERVICE, location STRING, temperature REAL VIRTUAL
//!     ) USING BINDING PATTERNS ( getTemperature[sensor] );
//!     REGISTER QUERY watch AS sensors;
//! ").unwrap();
//! let reports = pems.tick();
//! assert_eq!(reports.len(), 1);
//! ```

#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod adaptive;
pub mod envspec;
pub mod hub;
pub mod pems;
pub mod processor;
pub mod recovery;
pub mod scenario;
pub mod scheduler;
pub mod table_manager;

pub use adaptive::{AdaptiveController, ReplanEvent, ReplanPolicy, ReplanReason};
pub use envspec::{ArrivalTrace, EnvSpec, Fleet, MessengerFleet, QueryTemplate, WorkloadSpec};
pub use hub::{RssStream, SensorSampler, StreamHub};
pub use pems::{ExecOutcome, ExplainAnalyze, Pems, PemsBuilder, PemsError};
pub use processor::{QueryProcessor, QueryStats};
pub use recovery::RecoveryManager;
pub use scheduler::{SchedulerConfig, WorkerPool};
pub use table_manager::ExtendedTableManager;
