//! `pems-shell` — an interactive (or scripted) PEMS session.
//!
//! The GUI of the paper's prototype ("Through the PEMS GUI, XD-Relations
//! have been created … and continuous queries have been registered"),
//! reduced to a line shell:
//!
//! * any Serena DDL / algebra statement terminated by `;` is executed;
//! * dot-commands drive the runtime:
//!   * `.tick [n]` — advance n logical instants (default 1), printing each
//!     query's delta/batch/actions;
//!   * `.tables` — list relations; `.show <rel>` — print a table snapshot;
//!   * `.queries` — registered queries with stats;
//!   * `.result <query>` — current result of a finite continuous query;
//!   * `.metrics` — every telemetry series in the Prometheus text format;
//!   * `.health` — per-service health (attempts, failure rate, status);
//!   * `.top` — live dashboard: worker utilization, queue depth, per-query
//!     tick latency, per-service health and breakers;
//!   * `.profile <query>` — per-query tick timeline and slowest operators
//!     from the flight recorder;
//!   * `.trace <file>` — export the retained spans as a Chrome/Perfetto
//!     `trace.json` (`SERENA_TRACE=0` disarms the recorder,
//!     `SERENA_TRACE_CAPACITY` bounds it);
//!   * `.plan <query>` — the optimizer's candidate plans with measured
//!     costs, the running one marked (needs `SERENA_ADAPTIVE=1`);
//!   * `.replan <query>` — force a re-optimization pass for one query
//!     right now, swapping to the cheapest candidate if it isn't already
//!     running;
//!   * `.demo` — load the paper's running example (Tables 1–2, Example 4's
//!     tuples, simulated services);
//!   * `.checkpoint <dir>` — write a snapshot of the dynamic state;
//!     `.restore <dir>` — rehydrate it (after re-running the static
//!     setup, e.g. `.demo` and the `REGISTER QUERY` statements);
//!   * `.help`, `.quit`.
//!
//! Every dot-command also accepts a backslash prefix (`\metrics`,
//! `\health`, `\tick` …), psql-style.
//!
//! ```sh
//! cargo run -p serena-pems --bin pems-shell            # interactive
//! echo '.demo
//! EXECUTE PROJECT[name](contacts);
//! .quit' | cargo run -p serena-pems --bin pems-shell   # scripted
//! ```

use std::io::{self, BufRead, Write};

use serena_pems::{ExecOutcome, Pems};
use serena_services::bus::BusConfig;
use serena_services::node::NodeHandle;

fn main() {
    let stdin = io::stdin();
    let node_id = std::env::var("SERENA_NODE_ID").unwrap_or_else(|_| "node0".to_string());
    let mut pems = Pems::builder()
        .bus(BusConfig::instant())
        .node_id(node_id)
        .build();
    let mut nodes: Vec<NodeHandle> = Vec::new();
    let mut buffer = String::new();
    let interactive = atty_like();

    if interactive {
        println!("Serena PEMS shell — `.help` for commands, statements end with `;`");
    }
    prompt(interactive, &buffer);
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        let trimmed = line.trim();
        if buffer.is_empty() && (trimmed.starts_with('.') || trimmed.starts_with('\\')) {
            // `\metrics` and `.metrics` are the same command
            let cmd = match trimmed.strip_prefix('\\') {
                Some(rest) => format!(".{rest}"),
                None => trimmed.to_string(),
            };
            if !dot_command(&cmd, &mut pems, &mut nodes) {
                break;
            }
            prompt(interactive, &buffer);
            continue;
        }
        buffer.push_str(&line);
        buffer.push('\n');
        // execute once the buffer holds at least one full statement
        if trimmed.ends_with(';') {
            let program = std::mem::take(&mut buffer);
            // a leading SELECT is Serena SQL; everything else is DDL /
            // algebra-language statements
            let is_sql = program
                .trim_start()
                .get(..6)
                .is_some_and(|s| s.eq_ignore_ascii_case("select"));
            if is_sql {
                match pems.run_sql(None, &program) {
                    Ok(outcome) => print_outcome(outcome),
                    Err(e) => println!("error: {e}"),
                }
            } else {
                match pems.run_program(&program) {
                    Ok(outcomes) => {
                        for outcome in outcomes {
                            print_outcome(outcome);
                        }
                    }
                    Err(e) => println!("error: {e}"),
                }
            }
        }
        prompt(interactive, &buffer);
    }
}

/// stdout-is-a-terminal heuristic without external crates: honour an
/// explicit override, default to non-interactive when piped output is
/// likely (we cannot know portably without libc; the prompt is cosmetic).
fn atty_like() -> bool {
    std::env::var("PEMS_SHELL_INTERACTIVE")
        .map(|v| v != "0")
        .unwrap_or(false)
}

fn prompt(interactive: bool, buffer: &str) {
    if interactive {
        print!(
            "{}",
            if buffer.is_empty() {
                "serena> "
            } else {
                "   ...> "
            }
        );
        let _ = io::stdout().flush();
    }
}

fn print_outcome(outcome: ExecOutcome) {
    match outcome {
        ExecOutcome::Done => println!("ok"),
        ExecOutcome::Registered(name) => println!("registered continuous query `{name}`"),
        ExecOutcome::OneShot(out) => {
            print!("{}", out.relation.to_table());
            if !out.actions.is_empty() {
                println!("actions: {}", out.actions);
            }
        }
    }
}

fn dot_command(cmd: &str, pems: &mut Pems, nodes: &mut Vec<NodeHandle>) -> bool {
    let mut parts = cmd.split_whitespace();
    match parts.next().unwrap_or("") {
        ".quit" | ".exit" => return false,
        ".help" => {
            println!(
                ".tick [n] | .tables | .show <rel> | .queries | .result <query>\n\
                 .metrics | .health | .top | .profile <query> | .trace <file>\n\
                 .plan <query> | .replan <query>\n\
                 .checkpoint <dir> | .restore <dir> | .demo | .quit\n\
                 .serve <addr> | .connect <addr> | .replicate <addr> | .peers\n\
                 (backslash aliases work: \\metrics)\n\
                 …or any Serena DDL / algebra statement ending with `;`"
            );
        }
        ".tick" => {
            let n: u64 = parts.next().and_then(|s| s.parse().ok()).unwrap_or(1);
            for _ in 0..n {
                let at = pems.clock();
                for (name, report) in pems.tick() {
                    let mut notes = Vec::new();
                    if !report.delta.is_empty() {
                        notes.push(format!(
                            "+{} −{}",
                            report.delta.inserts.len(),
                            report.delta.deletes.len()
                        ));
                    }
                    if !report.batch.is_empty() {
                        notes.push(format!("batch {}", report.batch.len()));
                    }
                    if !report.actions.is_empty() {
                        notes.push(format!("actions {}", report.actions));
                    }
                    if !report.errors.is_empty() {
                        notes.push(format!("errors {}", report.errors.len()));
                    }
                    if !notes.is_empty() {
                        println!("{at} [{name}] {}", notes.join(" | "));
                    }
                }
            }
            println!("clock = {}", pems.clock());
        }
        ".tables" => {
            let env = pems.snapshot_environment();
            for (name, rel) in env.relations() {
                println!("{name} ({} tuples) {:?}", rel.len(), rel.schema());
            }
        }
        ".show" => match parts.next() {
            Some(name) => {
                let env = pems.snapshot_environment();
                match env.relation(name) {
                    Some(rel) => print!("{}", rel.to_table()),
                    None => println!("no finite relation `{name}`"),
                }
            }
            None => println!("usage: .show <relation>"),
        },
        ".queries" => {
            for name in pems.processor().names() {
                let stats = pems.processor().stats(name).expect("registered");
                println!(
                    "{name}: {} ticks, +{} −{} tuples, {} actions, {} errors",
                    stats.ticks, stats.inserted, stats.deleted, stats.actions, stats.errors
                );
            }
        }
        ".result" => match parts.next() {
            Some(name) => match pems.processor().current_relation(name) {
                Some(rel) => print!("{}", rel.to_table()),
                None => println!("no finite continuous query `{name}`"),
            },
            None => println!("usage: .result <query>"),
        },
        ".metrics" => print!("{}", pems.render_metrics()),
        ".health" => {
            let report = pems.service_health();
            if report.is_empty() {
                println!("no services observed yet — run a query that invokes β");
            } else {
                let breakers: std::collections::HashMap<_, _> =
                    pems.breakers().into_iter().collect();
                println!(
                    "{:<16} {:>8} {:>8} {:>6} {:>6}  {:<10} status",
                    "service", "attempts", "failures", "rate", "consec", "breaker"
                );
                for h in report {
                    let breaker = breakers
                        .get(&h.reference)
                        .copied()
                        .unwrap_or(serena_services::resilience::BreakerState::Closed);
                    println!(
                        "{:<16} {:>8} {:>8} {:>5.0}% {:>6}  {:<10} {}",
                        h.reference.as_str(),
                        h.attempts,
                        h.failures,
                        h.failure_rate * 100.0,
                        h.consecutive_errors,
                        format!("{breaker}"),
                        h.status()
                    );
                }
                let c = pems.resilience_counters();
                if !pems.resilience_policy().is_disabled() {
                    println!(
                        "resilience: {} retries, {} timeouts, breaker opened {}×, {} rejected",
                        c.retries, c.timeouts, c.breaker_opened, c.rejected
                    );
                }
            }
        }
        ".top" => print!("{}", pems.top()),
        ".profile" => match parts.next() {
            Some(query) => print!("{}", pems.profile(query)),
            None => println!("usage: .profile <query>"),
        },
        ".plan" => match parts.next() {
            Some(query) => match pems.plan_report(query) {
                Ok(report) => print!("{report}"),
                Err(e) => println!("error: {e}"),
            },
            None => println!("usage: .plan <query>"),
        },
        ".replan" => match parts.next() {
            Some(query) => match pems.force_replan(query) {
                Ok(true) => println!("replanned `{query}` — .plan {query} shows the new shape"),
                Ok(false) => println!("`{query}` already runs the cheapest candidate"),
                Err(e) => println!("error: {e}"),
            },
            None => println!("usage: .replan <query>"),
        },
        ".trace" => match parts.next() {
            Some(path) => match pems.export_trace(path) {
                Ok(n) => println!("wrote {n} spans to {path}"),
                Err(e) => println!("error: {e}"),
            },
            None => println!("usage: .trace <file>"),
        },
        ".checkpoint" => match parts.next() {
            Some(dir) => match pems.checkpoint_to(dir) {
                Ok(path) => println!("checkpoint written to {}", path.display()),
                Err(e) => println!("error: {e}"),
            },
            None => println!("usage: .checkpoint <dir>"),
        },
        ".restore" => match parts.next() {
            Some(dir) => match pems.restore_from(dir) {
                Ok(()) => println!("restored; clock = {}", pems.clock()),
                Err(e) => println!("error: {e}"),
            },
            None => println!("usage: .restore <dir>"),
        },
        ".serve" => match parts.next() {
            // the transport comes from SERENA_TRANSPORT (inproc default;
            // `socket` for tcp:/uds: addresses)
            Some(addr) => match pems.serve(serena_services::transport::from_env(), addr) {
                Ok(handle) => {
                    println!("serving node `{}` at {}", pems.node_id(), handle.addr());
                    nodes.push(handle);
                }
                Err(e) => println!("error: {e}"),
            },
            None => println!("usage: .serve <addr>   (e.g. tcp:127.0.0.1:0, uds:/tmp/a.sock)"),
        },
        ".connect" => match parts.next() {
            Some(addr) => match pems.connect_peer(serena_services::transport::from_env(), addr) {
                Ok(node) => println!("linked peer `{node}` at {addr}"),
                Err(e) => println!("error: {e}"),
            },
            None => println!("usage: .connect <addr>"),
        },
        ".replicate" => match parts.next() {
            Some(addr) => match pems.replicate_to(serena_services::transport::from_env(), addr) {
                Ok(node) => println!("replicating checkpoints to `{node}` at {addr}"),
                Err(e) => println!("error: {e}"),
            },
            None => println!("usage: .replicate <addr>"),
        },
        ".peers" => {
            let peers = pems.peer_status();
            if peers.is_empty() {
                println!("no linked peers — use .connect <addr>");
            } else {
                for p in peers {
                    println!(
                        "{} at {} — {} ({} proxied services, last seen t={})",
                        p.node,
                        p.addr,
                        if p.alive { "alive" } else { "down" },
                        p.services,
                        p.last_seen.0,
                    );
                }
            }
        }
        ".demo" => match load_demo(pems) {
            Ok(()) => println!("loaded the paper's running example (Tables 1–2, Example 4)"),
            Err(e) => println!("error: {e}"),
        },
        other => println!("unknown command `{other}` — try .help"),
    }
    true
}

fn load_demo(pems: &mut Pems) -> Result<(), serena_pems::PemsError> {
    use serena_core::service::fixtures;
    let dir = pems.directory();
    dir.register("email", fixtures::messenger());
    dir.register("jabber", fixtures::messenger());
    for (name, seed) in [
        ("sensor01", 1u64),
        ("sensor06", 6),
        ("sensor07", 7),
        ("sensor22", 22),
    ] {
        dir.register(name, fixtures::temperature_sensor(seed));
    }
    for (name, seed) in [("camera01", 1u64), ("camera02", 2), ("webcam07", 7)] {
        dir.register(name, fixtures::camera(seed));
    }
    pems.run_program(
        "PROTOTYPE sendMessage( address STRING, text STRING ) : ( sent BOOLEAN ) ACTIVE;
         PROTOTYPE checkPhoto( area STRING ) : ( quality INTEGER, delay REAL );
         PROTOTYPE takePhoto( area STRING, quality INTEGER ) : ( photo BLOB );
         PROTOTYPE getTemperature( ) : ( temperature REAL );
         EXTENDED RELATION contacts (
           name STRING, address STRING, text STRING VIRTUAL,
           messenger SERVICE, sent BOOLEAN VIRTUAL
         ) USING BINDING PATTERNS ( sendMessage[messenger] ( address, text ) : ( sent ) );
         EXTENDED RELATION cameras (
           camera SERVICE, area STRING, quality INTEGER VIRTUAL,
           delay REAL VIRTUAL, photo BLOB VIRTUAL
         ) USING BINDING PATTERNS (
           checkPhoto[camera] ( area ) : ( quality, delay ),
           takePhoto[camera] ( area, quality ) : ( photo )
         );
         EXTENDED RELATION sensors (
           sensor SERVICE, location STRING, temperature REAL VIRTUAL
         ) USING BINDING PATTERNS ( getTemperature[sensor] );
         INSERT INTO contacts VALUES
           ('Nicolas', 'nicolas@elysee.fr', 'email'),
           ('Carla', 'carla@elysee.fr', 'email'),
           ('Francois', 'francois@im.gouv.fr', 'jabber');
         INSERT INTO cameras VALUES
           ('camera01', 'office'), ('camera02', 'corridor'), ('webcam07', 'office');
         INSERT INTO sensors VALUES
           ('sensor01', 'corridor'), ('sensor06', 'office'),
           ('sensor07', 'office'), ('sensor22', 'roof');",
    )?;
    Ok(())
}
