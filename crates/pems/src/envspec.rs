//! Typed environment & workload builders: [`EnvSpec`] / [`WorkloadSpec`].
//!
//! §7 of the paper calls for "a benchmark for pervasive environments …
//! with objective indicators"; every harness in this repository needs the
//! same ingredients for that — a fleet of simulated devices, a tuple
//! arrival schedule, and a batch of continuous queries. [`EnvSpec`] is the
//! one public way to describe and deploy such a fleet (sensor/camera/
//! messenger counts, area assignment, scripted heat events, zipf-skewed
//! latency/failure distributions from [`serena_services::fleet`]), and
//! [`WorkloadSpec`] stamps out batches of continuous queries from
//! templates.
//!
//! Everything is a pure function of the spec's seed: no wall clock, no OS
//! randomness. The same spec replays **byte-identically** — deploy twice,
//! tick in lock-step, and every per-query delta and every snapshot byte
//! agrees (the property the scale benchmarks and future scheduler PRs
//! claim "byte-identical vs serial" against).
//!
//! ```
//! use serena_pems::envspec::{ArrivalTrace, EnvSpec, QueryTemplate, WorkloadSpec};
//! let spec = EnvSpec::new(42).sensors(100).arrivals(ArrivalTrace::new(42).mean_per_tick(16));
//! let (mut pems, _fleet) = spec.build().expect("valid spec");
//! WorkloadSpec::new()
//!     .queries(QueryTemplate::HotAreas { window: 4, threshold: 30.0 }, 8)
//!     .register_into(&mut pems, &spec)
//!     .expect("valid workload");
//! pems.run_ticks(3);
//! ```

use std::collections::BTreeMap;
use std::sync::Arc;

use serena_core::formula::Formula;
use serena_core::prototype::examples as protos;
use serena_core::schema::{examples as schemas, XSchema};
use serena_core::sync::Mutex;
use serena_core::time::Instant;
use serena_core::tuple::Tuple;
use serena_core::value::{DataType, Value};
use serena_services::bus::BusConfig;
use serena_services::devices::camera::SimCamera;
use serena_services::devices::messenger::{MessengerKind, SentMessage, SimMessenger};
use serena_services::devices::temperature::SimTemperatureSensor;
use serena_services::faults::{FaultPolicy, FaultyService};
use serena_services::fleet::{mix64, FailureProfile, FlakyService, LatencyProfile, SlowService};
use serena_stream::plan::StreamPlan;
use serena_stream::source::StreamSource;

use crate::hub::SensorSampler;
use crate::pems::{Pems, PemsError};

/// How many messengers a spec deploys, and how they are named.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MessengerFleet {
    /// One messenger per transport kind, named by its label
    /// (`email` / `jabber` / `sms`) — the §5.2 scenario shape.
    Kinds,
    /// `n` messengers named `messenger…`, transport kinds round-robin —
    /// the massive-scale shape.
    Indexed(usize),
}

/// Deterministic trace-driven tuple arrival schedule for the
/// `temperatures` stream: at every instant a seeded, zipf-skewed subset of
/// devices report a reading. A pure function of `(seed, instant)` — the
/// same trace replays byte-identically, at any β parallelism.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrivalTrace {
    seed: u64,
    devices: usize,
    mean_per_tick: usize,
    /// Device-activity skew: higher exponents concentrate traffic on fewer
    /// devices (the pervasive "chatty minority" shape).
    activity_exponent: f64,
}

impl ArrivalTrace {
    /// A trace seeded with `seed`: 1000 devices, 64 tuples/tick mean,
    /// activity exponent 2.0.
    pub fn new(seed: u64) -> Self {
        ArrivalTrace {
            seed,
            devices: 1000,
            mean_per_tick: 64,
            activity_exponent: 2.0,
        }
    }

    /// Number of devices the trace draws reporters from (builder style).
    pub fn devices(mut self, n: usize) -> Self {
        self.devices = n.max(1);
        self
    }

    /// Mean tuples per instant (builder style). Actual counts vary ±25%
    /// around the mean, deterministically per instant.
    pub fn mean_per_tick(mut self, n: usize) -> Self {
        self.mean_per_tick = n;
        self
    }

    /// Device-activity zipf-like exponent (builder style).
    pub fn activity_exponent(mut self, s: f64) -> Self {
        self.activity_exponent = s;
        self
    }

    /// Tuples arriving at `at` (deterministic per instant).
    pub fn count_at(&self, at: Instant) -> usize {
        let m = self.mean_per_tick;
        if m == 0 {
            return 0;
        }
        let jitter = (mix64(self.seed, at.ticks(), 0xC0) % (m as u64 / 2 + 1)) as usize;
        m - m / 4 + jitter
    }

    /// The arrivals at `at` as `(device index, temperature °C)` pairs.
    /// Device picks follow a power-law skew toward low indices; readings
    /// span 15.0–32.9 °C so threshold queries around 30 °C see a hot
    /// minority.
    pub fn events_at(&self, at: Instant) -> Vec<(usize, f64)> {
        (0..self.count_at(at))
            .map(|k| {
                let u =
                    mix64(self.seed, at.ticks(), 0xE0 + k as u64) as f64 / (u64::MAX as f64 + 1.0);
                let idx = ((self.devices as f64) * u.powf(self.activity_exponent)) as usize;
                let t = mix64(self.seed, at.ticks(), 0x7E << 8 | k as u64) % 180;
                (idx.min(self.devices - 1), 15.0 + t as f64 / 10.0)
            })
            .collect()
    }

    /// The arrivals at `at` as `(location, temperature)` tuples, locating
    /// each device round-robin over `areas`.
    pub fn tuples_at(&self, at: Instant, areas: &[String]) -> Vec<Tuple> {
        self.events_at(at)
            .into_iter()
            .map(|(idx, temp)| {
                Tuple::new(vec![
                    Value::str(&areas[idx % areas.len()]),
                    Value::Real(temp),
                ])
            })
            .collect()
    }
}

/// A deployed fleet: what [`EnvSpec::deploy_into`] registered, with
/// inspectable handles.
pub struct Fleet {
    /// `(reference, area)` of every deployed sensor, in deployment order.
    pub sensors: Vec<(String, String)>,
    /// `(reference, area)` of every deployed camera, in deployment order.
    pub cameras: Vec<(String, String)>,
    /// Outboxes of the deployed messengers, keyed by service reference.
    pub outboxes: BTreeMap<String, Arc<Mutex<Vec<SentMessage>>>>,
}

/// A typed, seeded description of a pervasive environment: fleet sizes,
/// area assignment, scripted heat events, fault overrides and zipf-skewed
/// latency/failure distributions. See the module docs for the determinism
/// contract.
#[derive(Debug, Clone)]
pub struct EnvSpec {
    seed: u64,
    sensors: usize,
    cameras: usize,
    messengers: MessengerFleet,
    areas: Vec<String>,
    heat_events: Vec<(usize, Instant, Instant, f64)>,
    sensor_faults: Vec<(usize, FaultPolicy)>,
    failures: Option<FailureProfile>,
    latencies: Option<LatencyProfile>,
    arrivals: Option<ArrivalTrace>,
    bus: BusConfig,
    lerm: String,
}

impl EnvSpec {
    /// An empty spec seeded with `seed`: no devices, the §5.2 default
    /// areas, kind-named messengers, an instant discovery bus.
    pub fn new(seed: u64) -> Self {
        EnvSpec {
            seed,
            sensors: 0,
            cameras: 0,
            messengers: MessengerFleet::Kinds,
            areas: vec!["corridor".into(), "office".into(), "roof".into()],
            heat_events: Vec::new(),
            sensor_faults: Vec::new(),
            failures: None,
            latencies: None,
            arrivals: None,
            bus: BusConfig::instant(),
            lerm: "building".into(),
        }
    }

    /// Number of temperature sensors (round-robin over the areas).
    pub fn sensors(mut self, n: usize) -> Self {
        self.sensors = n;
        self
    }

    /// Number of cameras (round-robin over the areas).
    pub fn cameras(mut self, n: usize) -> Self {
        self.cameras = n;
        self
    }

    /// Messenger fleet shape.
    pub fn messengers(mut self, fleet: MessengerFleet) -> Self {
        self.messengers = fleet;
        self
    }

    /// Areas devices are assigned to, round-robin by index.
    pub fn areas<I, S>(mut self, areas: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.areas = areas.into_iter().map(Into::into).collect();
        if self.areas.is_empty() {
            self.areas.push("area0".into());
        }
        self
    }

    /// Script a heat event on sensor `index`: it reads `peak` °C between
    /// `from` and `to` inclusive.
    pub fn heat_event(mut self, index: usize, from: Instant, to: Instant, peak: f64) -> Self {
        self.heat_events.push((index, from, to, peak));
        self
    }

    /// Scripted heat events in bulk — `(sensor index, from, to, peak °C)`.
    pub fn heat_events(mut self, events: Vec<(usize, Instant, Instant, f64)>) -> Self {
        self.heat_events.extend(events);
        self
    }

    /// Explicit fault override for sensor `index` (wins over any
    /// [`Self::failures`] profile draw).
    pub fn sensor_fault(mut self, index: usize, policy: FaultPolicy) -> Self {
        self.sensor_faults.push((index, policy));
        self
    }

    /// Zipf-skewed per-sensor failure rates, drawn from the spec's seed.
    pub fn failures(mut self, profile: FailureProfile) -> Self {
        self.failures = Some(profile);
        self
    }

    /// Zipf-skewed per-sensor wall-clock latencies, drawn from the spec's
    /// seed. Latency never changes logical outputs, so determinism holds.
    pub fn latencies(mut self, profile: LatencyProfile) -> Self {
        self.latencies = Some(profile);
        self
    }

    /// Drive the `temperatures` stream from a deterministic arrival trace
    /// instead of live-sampling every discovered sensor (the only viable
    /// shape at 10⁴⁺ devices).
    pub fn arrivals(mut self, trace: ArrivalTrace) -> Self {
        self.arrivals = Some(trace.devices(self.sensors.max(1)));
        self
    }

    /// Discovery-network latency model for [`Self::build`].
    pub fn bus(mut self, bus: BusConfig) -> Self {
        self.bus = bus;
        self
    }

    /// Name of the Local ERM the fleet registers behind.
    pub fn lerm(mut self, id: impl Into<String>) -> Self {
        self.lerm = id.into();
        self
    }

    /// The spec's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The configured areas.
    pub fn area_names(&self) -> &[String] {
        &self.areas
    }

    /// The area device `index` is assigned to (round-robin).
    pub fn area_of(&self, index: usize) -> &str {
        &self.areas[index % self.areas.len()]
    }

    /// The configured arrival trace, if any.
    pub fn arrival_trace(&self) -> Option<&ArrivalTrace> {
        self.arrivals.as_ref()
    }

    /// Number of sensors in the spec.
    pub fn sensor_count(&self) -> usize {
        self.sensors
    }

    /// The reference of sensor `index` (`sensor00` … zero-padded to the
    /// fleet's width, minimum 2).
    pub fn sensor_name(&self, index: usize) -> String {
        format!("sensor{index:0w$}", w = pad_width(self.sensors))
    }

    /// The reference of camera `index`.
    pub fn camera_name(&self, index: usize) -> String {
        format!("camera{index:0w$}", w = pad_width(self.cameras))
    }

    /// References of the messengers the spec deploys, in deployment order.
    pub fn messenger_names(&self) -> Vec<String> {
        match self.messengers {
            MessengerFleet::Kinds => KINDS.iter().map(|k| k.label().to_string()).collect(),
            MessengerFleet::Indexed(n) => (0..n)
                .map(|i| format!("messenger{i:0w$}", w = pad_width(n)))
                .collect(),
        }
    }

    /// The transport kind of messenger `index` (round-robin for indexed
    /// fleets).
    pub fn messenger_kind(&self, index: usize) -> MessengerKind {
        KINDS[index % KINDS.len()]
    }

    /// Register the fleet on `pems`: every sensor/camera/messenger behind
    /// the spec's Local ERM, with directory metadata (`location` / `area`),
    /// scripted heat events, fault policies (explicit overrides first,
    /// then the failure profile) and latency draws applied. Does **not**
    /// declare catalog objects — callers own their DDL (or use
    /// [`Self::build`] for the standard catalog).
    pub fn deploy_into(&self, pems: &Pems) -> Fleet {
        let lerm = pems.local_erm(&self.lerm);
        let now = pems.clock();
        let directory = pems.directory();

        let mut sensors = Vec::with_capacity(self.sensors);
        for i in 0..self.sensors {
            let name = self.sensor_name(i);
            let area = self.area_of(i).to_string();
            let mut sensor = SimTemperatureSensor::room(self.seed.wrapping_add(i as u64));
            for (idx, from, to, peak) in &self.heat_events {
                if *idx == i {
                    sensor = sensor.with_heat_event(*from, *to, *peak);
                }
            }
            let mut svc = sensor.into_service();
            let policy = self
                .sensor_faults
                .iter()
                .find(|(idx, _)| *idx == i)
                .map(|(_, p)| p.clone());
            if let Some(policy) = policy {
                // Explicit overrides keep FaultyService's stateful
                // call-sequence semantics (outages, every-Nth).
                if !matches!(policy, FaultPolicy::None) {
                    svc = FaultyService::new(svc, policy);
                }
            } else if let Some(f) = self.failures {
                // Profile draws use the pure-per-instant realization so
                // concurrent queries sharing a device stay deterministic.
                svc = FlakyService::wrap(
                    svc,
                    mix64(self.seed, i as u64, 0xF1EE7),
                    f.rate_for(self.seed, i as u64, self.sensors as u64),
                );
            }
            if let Some(lat) = self.latencies {
                let delay = lat.latency_for(self.seed, i as u64, self.sensors as u64);
                // Sub-microsecond draws are not injected: an OS sleep costs
                // tens of µs regardless of the requested duration, which
                // would turn the zipf tail (nanosecond draws) into the
                // dominant cost at 10⁴⁺ devices.
                if delay >= std::time::Duration::from_micros(1) {
                    svc = SlowService::wrap(svc, delay);
                }
            }
            lerm.register_service(name.clone(), svc, now);
            directory.set(name.clone(), "location", Value::str(&area));
            sensors.push((name, area));
        }

        let mut cameras = Vec::with_capacity(self.cameras);
        for i in 0..self.cameras {
            let name = self.camera_name(i);
            let area = self.area_of(i).to_string();
            let camera = SimCamera::new(&name, self.seed.wrapping_add(i as u64), &[area.as_str()]);
            lerm.register_service(name.clone(), camera.into_service(), now);
            directory.set(name.clone(), "area", Value::str(&area));
            cameras.push((name, area));
        }

        let mut outboxes = BTreeMap::new();
        for (i, reference) in self.messenger_names().into_iter().enumerate() {
            let (svc, outbox) = SimMessenger::new(self.messenger_kind(i)).into_service();
            lerm.register_service(reference.clone(), svc, now);
            outboxes.insert(reference, outbox);
        }

        Fleet {
            sensors,
            cameras,
            outboxes,
        }
    }

    /// Build a ready [`Pems`] with the standard catalog and the fleet
    /// deployed: Table 1 prototypes; discovery-maintained `sensors` and
    /// `cameras` tables; and a `temperatures` stream — trace-driven when
    /// [`Self::arrivals`] is set, otherwise live-sampling every discovered
    /// sensor (the §5.2 shape).
    pub fn build(&self) -> Result<(Pems, Fleet), PemsError> {
        let mut pems = Pems::builder().bus(self.bus).build();
        self.install_catalog(&mut pems)?;
        let fleet = self.deploy_into(&pems);
        Ok((pems, fleet))
    }

    /// The standard-catalog half of [`Self::build`], for callers that need
    /// a custom [`Pems`] (execution options, checkpointing, …).
    pub fn install_catalog(&self, pems: &mut Pems) -> Result<(), PemsError> {
        for p in [
            protos::get_temperature(),
            protos::check_photo(),
            protos::take_photo(),
            protos::send_message(),
        ] {
            pems.tables_mut().declare_prototype(p)?;
        }
        pems.tables_mut()
            .define_table("sensors", schemas::sensors_schema())?;
        pems.register_discovery("sensors", "getTemperature", "sensor")?;
        pems.tables_mut()
            .define_table("cameras", schemas::cameras_schema())?;
        pems.register_discovery("cameras", "checkPhoto", "camera")?;

        let temp_schema = XSchema::builder()
            .real("location", DataType::Str)
            .real("temperature", DataType::Real)
            .build()?;
        match self.arrivals {
            Some(trace) => {
                let areas = self.areas.clone();
                pems.tables_mut()
                    .define_stream_with("temperatures", temp_schema, move || {
                        Box::new(TraceSource {
                            trace,
                            areas: areas.clone(),
                        }) as Box<dyn StreamSource>
                    })?;
            }
            None => {
                let directory = pems.directory();
                pems.tables_mut()
                    .define_stream_with("temperatures", temp_schema, move || {
                        Box::new(SensorSampler::new(
                            directory.clone() as Arc<dyn serena_core::service::Invoker>,
                            directory.clone(),
                            protos::get_temperature(),
                            &["location"],
                        )) as Box<dyn StreamSource>
                    })?;
            }
        }
        Ok(())
    }
}

const KINDS: [MessengerKind; 3] = [
    MessengerKind::Email,
    MessengerKind::Jabber,
    MessengerKind::Sms,
];

/// Zero-pad width for a fleet of `n` (minimum 2, so small fleets keep the
/// §5.2 scenario's `sensor00` naming).
fn pad_width(n: usize) -> usize {
    let digits = n.saturating_sub(1).max(1).ilog10() as usize + 1;
    digits.max(2)
}

/// A [`StreamSource`] replaying an [`ArrivalTrace`] — pure per instant, so
/// every subscribing query sees the identical batch.
struct TraceSource {
    trace: ArrivalTrace,
    areas: Vec<String>,
}

impl StreamSource for TraceSource {
    fn poll(&mut self, at: Instant) -> Vec<Tuple> {
        self.trace.tuples_at(at, &self.areas)
    }
}

/// A continuous-query template a [`WorkloadSpec`] stamps instances from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QueryTemplate {
    /// Hot readings in a sliding window:
    /// `σ_{temperature>θᵢ}(W[w](temperatures))`. Instance `i` uses
    /// threshold `θᵢ = threshold + (i mod 4)` so concurrent instances keep
    /// distinct result sets.
    HotAreas {
        /// Window period in instants.
        window: u64,
        /// Base alert threshold in °C.
        threshold: f64,
    },
    /// Per-area watch: `σ_{location=areaᵢ}(W[w](temperatures))`, area
    /// round-robin by instance.
    AreaWatch {
        /// Window period in instants.
        window: u64,
    },
    /// Recent reporting locations: `π_location(W[w](temperatures))`.
    RecentReadings {
        /// Window period in instants.
        window: u64,
    },
    /// The discovered-sensor inventory: `sensors` as a changing relation.
    SensorInventory,
    /// Live sampling: `βˢ_{getTemperature[sensor], every}(sensors)` —
    /// exercises the β invoker stack (and its parallelism) per tick.
    SampledTemperatures {
        /// Re-invocation period in instants.
        every: u64,
    },
}

impl QueryTemplate {
    /// Instance-name prefix for this template.
    fn prefix(&self) -> &'static str {
        match self {
            QueryTemplate::HotAreas { .. } => "hot",
            QueryTemplate::AreaWatch { .. } => "area",
            QueryTemplate::RecentReadings { .. } => "recent",
            QueryTemplate::SensorInventory => "inventory",
            QueryTemplate::SampledTemperatures { .. } => "sampled",
        }
    }

    /// The plan of instance `i`, against `spec`'s environment.
    fn plan(&self, i: usize, spec: &EnvSpec) -> StreamPlan {
        match *self {
            QueryTemplate::HotAreas { window, threshold } => StreamPlan::source("temperatures")
                .window(window)
                .select(Formula::gt_const("temperature", threshold + (i % 4) as f64)),
            QueryTemplate::AreaWatch { window } => StreamPlan::source("temperatures")
                .window(window)
                .select(Formula::eq_const("location", spec.area_of(i))),
            QueryTemplate::RecentReadings { window } => StreamPlan::source("temperatures")
                .window(window)
                .project(["location"]),
            QueryTemplate::SensorInventory => StreamPlan::source("sensors"),
            QueryTemplate::SampledTemperatures { every } => {
                StreamPlan::source("sensors").sample_invoke("getTemperature", "sensor", every)
            }
        }
    }
}

/// A batch of continuous queries, described as `(template, count)` pairs.
#[derive(Debug, Clone, Default)]
pub struct WorkloadSpec {
    entries: Vec<(QueryTemplate, usize)>,
}

impl WorkloadSpec {
    /// An empty workload.
    pub fn new() -> Self {
        WorkloadSpec::default()
    }

    /// Add `count` instances of `template` (builder style).
    pub fn queries(mut self, template: QueryTemplate, count: usize) -> Self {
        self.entries.push((template, count));
        self
    }

    /// Total number of query instances.
    pub fn total(&self) -> usize {
        self.entries.iter().map(|(_, n)| n).sum()
    }

    /// The `(name, plan)` instances, in declaration order. Names are
    /// `<prefix>NNN`, numbered per template kind.
    pub fn plans(&self, spec: &EnvSpec) -> Vec<(String, StreamPlan)> {
        let mut counters: BTreeMap<&'static str, usize> = BTreeMap::new();
        let mut out = Vec::with_capacity(self.total());
        for (template, count) in &self.entries {
            for _ in 0..*count {
                let slot = counters.entry(template.prefix()).or_insert(0);
                let i = *slot;
                *slot += 1;
                out.push((
                    format!("{}{i:03}", template.prefix()),
                    template.plan(i, spec),
                ));
            }
        }
        out
    }

    /// Register every instance on `pems` (batch registration), returning
    /// the registered names.
    pub fn register_into(&self, pems: &mut Pems, spec: &EnvSpec) -> Result<Vec<String>, PemsError> {
        pems.register_queries(self.plans(spec))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_names_and_areas_are_stable() {
        let spec = EnvSpec::new(1).sensors(120).cameras(3);
        assert_eq!(spec.sensor_name(0), "sensor000");
        assert_eq!(spec.sensor_name(119), "sensor119");
        assert_eq!(spec.camera_name(2), "camera02");
        assert_eq!(spec.area_of(0), "corridor");
        assert_eq!(spec.area_of(4), "office");
        assert_eq!(
            spec.messenger_names(),
            vec!["email".to_string(), "jabber".into(), "sms".into()]
        );
        let indexed = spec.messengers(MessengerFleet::Indexed(11));
        assert_eq!(indexed.messenger_names()[10], "messenger10");
        assert_eq!(indexed.messenger_kind(4), MessengerKind::Jabber);
    }

    #[test]
    fn build_deploys_the_fleet_and_streams_the_trace() {
        let spec = EnvSpec::new(7)
            .sensors(12)
            .cameras(4)
            .messengers(MessengerFleet::Indexed(2))
            .arrivals(ArrivalTrace::new(7).mean_per_tick(8));
        let (mut pems, fleet) = spec.build().unwrap();
        assert_eq!(fleet.sensors.len(), 12);
        assert_eq!(fleet.cameras.len(), 4);
        assert_eq!(fleet.outboxes.len(), 2);

        let mut pems2 = {
            let names = WorkloadSpec::new()
                .queries(QueryTemplate::SensorInventory, 1)
                .queries(QueryTemplate::RecentReadings { window: 2 }, 1)
                .register_into(&mut pems, &spec)
                .unwrap();
            assert_eq!(names, vec!["inventory000".to_string(), "recent000".into()]);
            pems
        };
        let reports = pems2.tick();
        let inventory = reports.iter().find(|(n, _)| n == "inventory000").unwrap();
        assert_eq!(
            inventory.1.delta.inserts.len(),
            12,
            "all sensors discovered"
        );
        let recent = reports.iter().find(|(n, _)| n == "recent000").unwrap();
        let trace = spec.arrival_trace().unwrap();
        assert_eq!(recent.1.delta.inserts.len(), trace.count_at(Instant(0)));
    }

    #[test]
    fn trace_is_deterministic_and_skewed() {
        let trace = ArrivalTrace::new(3).devices(100).mean_per_tick(40);
        for t in 0..5 {
            assert_eq!(trace.events_at(Instant(t)), trace.events_at(Instant(t)));
            let n = trace.count_at(Instant(t));
            assert!((30..=60).contains(&n), "count {n} outside ±25% band");
            assert_eq!(trace.events_at(Instant(t)).len(), n);
        }
        // activity skew: low indices dominate
        let events: Vec<usize> = (0..50)
            .flat_map(|t| trace.events_at(Instant(t)))
            .map(|(i, _)| i)
            .collect();
        let low = events.iter().filter(|i| **i < 50).count();
        assert!(
            low * 2 > events.len(),
            "no skew: {low}/{} events on the low half",
            events.len()
        );
        // readings stay in band
        assert!((0..20)
            .flat_map(|t| trace.events_at(Instant(t)))
            .all(|(_, temp)| (15.0..33.0).contains(&temp)));
    }

    #[test]
    fn faults_and_latencies_apply_to_the_fleet() {
        let spec = EnvSpec::new(5)
            .sensors(4)
            .sensor_fault(1, FaultPolicy::EveryNth(1))
            .latencies(LatencyProfile::new(
                std::time::Duration::from_micros(50),
                1.0,
            ));
        let (mut pems, _fleet) = spec.build().unwrap();
        pems.register_queries(vec![(
            "sampled".to_string(),
            StreamPlan::source("sensors").sample_invoke("getTemperature", "sensor", 1),
        )])
        .unwrap();
        pems.tick(); // discovery lands
        let reports = pems.tick();
        let (_, r) = &reports[0];
        assert!(
            !r.errors.is_empty(),
            "the always-failing sensor must surface errors"
        );
    }

    #[test]
    fn workload_plans_vary_by_instance() {
        let spec = EnvSpec::new(1).sensors(4);
        let plans = WorkloadSpec::new()
            .queries(
                QueryTemplate::HotAreas {
                    window: 2,
                    threshold: 30.0,
                },
                2,
            )
            .queries(QueryTemplate::AreaWatch { window: 2 }, 2)
            .plans(&spec);
        assert_eq!(plans.len(), 4);
        assert_eq!(plans[0].0, "hot000");
        assert_eq!(plans[3].0, "area001");
        // distinct thresholds / areas per instance
        assert_ne!(plans[0].1.to_algebra(), plans[1].1.to_algebra());
        assert_ne!(plans[2].1.to_algebra(), plans[3].1.to_algebra());
    }
}
