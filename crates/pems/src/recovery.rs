//! Checkpoint & recovery for the PEMS runtime.
//!
//! A *checkpoint* is one versioned snapshot file capturing everything the
//! runtime cannot rebuild from its static setup: table contents (committed
//! state + pending mutations), per-query executor state (window rings,
//! multisets, β caches), aggregated query statistics, the logical clock,
//! circuit-breaker state and service-health windows. Telemetry registry
//! series are deliberately *not* captured — counters restart from the
//! restored aggregates' point of view.
//!
//! The recovery model is **re-run the static setup, rehydrate the dynamic
//! state**: a recovering process constructs a fresh [`crate::pems::Pems`],
//! replays its DDL program / service registrations / query registrations,
//! then calls [`crate::pems::Pems::restore_from`]. The snapshot is cut at
//! a tick boundary (after a tick completes, before the next begins), so a
//! restored runtime's next tick evaluates exactly the instant the original
//! would have — byte-identical output from there on, provided sources are
//! deterministic functions of the instant.
//!
//! Checkpoint files are written atomically: the snapshot is staged to a
//! `.tmp` sibling and `rename(2)`d into place, so a crash mid-write leaves
//! the previous checkpoint intact.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use serena_core::snapshot::SnapshotError;

/// File name of the current checkpoint inside the checkpoint directory.
pub const CHECKPOINT_FILE: &str = "serena.ckpt";

/// Staging suffix used for the atomic write-then-rename protocol.
const TMP_SUFFIX: &str = ".tmp";

/// Periodic checkpoint writer: owns the checkpoint directory, the cadence
/// (every `n` completed ticks), and the atomic write protocol.
#[derive(Debug)]
pub struct RecoveryManager {
    dir: PathBuf,
    every: u64,
    ticks_since_checkpoint: u64,
    checkpoints_written: u64,
}

impl RecoveryManager {
    /// A manager writing a checkpoint into `dir` every `every_n_ticks`
    /// completed ticks. A cadence of 0 is treated as 1 (every tick).
    pub fn new(dir: impl Into<PathBuf>, every_n_ticks: u64) -> Self {
        RecoveryManager {
            dir: dir.into(),
            every: every_n_ticks.max(1),
            ticks_since_checkpoint: 0,
            checkpoints_written: 0,
        }
    }

    /// The checkpoint directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The configured cadence in ticks.
    pub fn every_n_ticks(&self) -> u64 {
        self.every
    }

    /// Path the current checkpoint lives at.
    pub fn checkpoint_path(&self) -> PathBuf {
        self.dir.join(CHECKPOINT_FILE)
    }

    /// Checkpoints successfully written so far.
    pub fn checkpoints_written(&self) -> u64 {
        self.checkpoints_written
    }

    /// Record one completed tick; true when the cadence says a checkpoint
    /// is due now. The internal counter resets on `true` — the caller is
    /// expected to write the checkpoint (a failed write skips at most one
    /// cadence interval, it does not wedge the schedule).
    pub fn tick_completed(&mut self) -> bool {
        self.ticks_since_checkpoint += 1;
        if self.ticks_since_checkpoint >= self.every {
            self.ticks_since_checkpoint = 0;
            true
        } else {
            false
        }
    }

    /// Atomically replace the checkpoint with `bytes`: create the
    /// directory if needed, stage to a `.tmp` sibling, fsync, rename.
    pub fn write(&mut self, bytes: &[u8]) -> Result<PathBuf, SnapshotError> {
        fs::create_dir_all(&self.dir)?;
        let target = self.checkpoint_path();
        let mut tmp = target.clone().into_os_string();
        tmp.push(TMP_SUFFIX);
        let tmp = PathBuf::from(tmp);
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(bytes)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, &target)?;
        self.checkpoints_written += 1;
        Ok(target)
    }
}

/// Read the checkpoint bytes from `dir` (a directory containing
/// [`CHECKPOINT_FILE`], or a direct path to a snapshot file).
pub fn read_checkpoint(dir: impl AsRef<Path>) -> Result<Vec<u8>, SnapshotError> {
    let p = dir.as_ref();
    let path = if p.is_dir() {
        p.join(CHECKPOINT_FILE)
    } else {
        p.to_path_buf()
    };
    Ok(fs::read(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("serena-recovery-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn cadence_counts_completed_ticks() {
        let mut rm = RecoveryManager::new("unused", 3);
        let due: Vec<bool> = (0..7).map(|_| rm.tick_completed()).collect();
        assert_eq!(due, [false, false, true, false, false, true, false]);
        // cadence 0 degrades to every tick
        let mut every = RecoveryManager::new("unused", 0);
        assert!(every.tick_completed());
        assert!(every.tick_completed());
    }

    #[test]
    fn write_is_atomic_and_readable() {
        let dir = temp_dir("atomic");
        let mut rm = RecoveryManager::new(&dir, 1);
        let path = rm.write(b"first").expect("write");
        assert_eq!(path, dir.join(CHECKPOINT_FILE));
        assert_eq!(read_checkpoint(&dir).expect("read"), b"first");
        // a second write replaces, never leaves the staging file behind
        rm.write(b"second").expect("rewrite");
        assert_eq!(read_checkpoint(&dir).expect("read"), b"second");
        assert_eq!(read_checkpoint(&path).expect("direct path"), b"second");
        assert!(!dir.join(format!("{CHECKPOINT_FILE}{TMP_SUFFIX}")).exists());
        assert_eq!(rm.checkpoints_written(), 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_checkpoint_is_an_io_error() {
        let err = read_checkpoint(temp_dir("missing")).unwrap_err();
        assert!(matches!(err, SnapshotError::Io(_)), "{err}");
    }
}
