//! The multi-query tick scheduler: a persistent, bounded, work-stealing
//! worker pool (ROADMAP item 1).
//!
//! The query processor used to tick every registered query on its own OS
//! thread (`thread::scope` + one spawn per query) — fine for the paper's
//! §5.2 scenario, pathological for the §7-scale benchmark with 120+
//! concurrent queries on a handful of cores. [`WorkerPool`] replaces that
//! with `SchedulerConfig::workers` persistent threads and per-worker
//! deques: a tick round submits one stealable task per query
//! (round-robin across workers), idle workers steal from the back of
//! their peers' queues, and the round barrier (`Scope`) blocks the
//! caller until every task completed. The pool survives across ticks —
//! no per-tick thread spawn/join churn — and panicking tasks are caught
//! by the worker loop, so one bad tick cannot take the pool (or the
//! engine) down.
//!
//! Determinism: tasks may run in any order on any worker, so the
//! scheduler is only used for *independent* work — one task per query,
//! with results written into per-task slots and read back in registration
//! (name) order. Combined with the per-instant commit memo in
//! [`TableHandle::tick_at`](serena_stream::source::TableHandle::tick_at)
//! this keeps multi-worker output byte-identical to serial execution
//! (`tests/envgen_determinism.rs`).
//!
//! Observability: the pool counts cross-worker steals
//! (`serena_sched_steals_total`) and exposes the submitted-task depth per
//! round (`serena_sched_queue_depth`); the processor publishes both.

use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar};
use std::thread::JoinHandle;

use serena_core::sync::Mutex;
use serena_core::telemetry::span;
use serena_core::telemetry::FlightRecorder;
use serena_core::time::Instant;

/// How the processor runs a multi-query tick round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedulerConfig {
    /// Worker threads in the persistent pool. `1` means serial in-place
    /// execution (no pool is ever started).
    pub workers: usize,
}

impl Default for SchedulerConfig {
    /// One worker per available core (the pool is shared by all queries;
    /// intra-β parallelism is budgeted *within* it, not on top of it).
    fn default() -> Self {
        SchedulerConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    }
}

impl SchedulerConfig {
    /// A pool of exactly `workers` threads (floored at 1).
    pub fn new(workers: usize) -> Self {
        SchedulerConfig {
            workers: workers.max(1),
        }
    }

    /// [`SchedulerConfig::default`] with the `SERENA_SCHED_WORKERS`
    /// environment override applied.
    pub fn from_env() -> Self {
        match std::env::var("SERENA_SCHED_WORKERS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
        {
            Some(n) => SchedulerConfig::new(n),
            None => SchedulerConfig::default(),
        }
    }
}

/// A unit of work: type-erased, lifetime-erased (see [`Scope::submit`]
/// for why the erasure is sound).
type Job = Box<dyn FnOnce() + Send + 'static>;

/// A queued job plus its scheduling provenance: the span that submitted
/// it (so worker-side `sched.job` spans parent correctly across the
/// thread hop), the queue it was submitted to (steal attribution) and
/// when it was enqueued (queue-wait vs run-time split). The provenance
/// fields are zero when no recorder is armed.
struct Tracked {
    job: Job,
    parent: u64,
    home: u32,
    submitted_ns: u64,
}

/// Shared pool state: per-worker job deques plus the round barrier.
struct Shared {
    /// One deque per worker. Owners pop from the front, thieves steal
    /// from the back.
    queues: Vec<Mutex<VecDeque<Tracked>>>,
    /// Parks idle workers; notified on submit and shutdown.
    work: Condvar,
    /// Guards the park decision (re-checked under this lock so a submit
    /// between "queues empty" and "park" cannot be lost).
    park: Mutex<()>,
    /// Jobs submitted but not yet finished in the current round.
    pending: AtomicUsize,
    /// Signals `pending == 0`; waited on by [`Scope`]'s drop barrier.
    done: Condvar,
    done_lock: Mutex<()>,
    /// Pool shutdown flag (checked by parked workers).
    shutdown: AtomicBool,
    /// Jobs executed by a worker other than the one they were submitted
    /// to — the work-stealing effectiveness signal.
    steals: AtomicU64,
    /// Span recorder for `sched.job` spans (None = no tracing).
    tracer: Option<Arc<FlightRecorder>>,
}

impl Shared {
    fn pop_local(&self, worker: usize) -> Option<Tracked> {
        self.queues[worker].lock().pop_front()
    }

    fn steal(&self, thief: usize) -> Option<Tracked> {
        let n = self.queues.len();
        for i in 1..n {
            let victim = (thief + i) % n;
            if let Some(job) = self.queues[victim].lock().pop_back() {
                self.steals.fetch_add(1, Ordering::Relaxed);
                return Some(job);
            }
        }
        None
    }

    fn finish_one(&self) {
        if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Notify under the lock so a barrier thread between its
            // pending check and its park cannot miss the wakeup.
            let _guard = self.done_lock.lock();
            self.done.notify_all();
        }
    }
}

fn worker_loop(shared: Arc<Shared>, index: usize) {
    loop {
        if let Some(tracked) = shared.pop_local(index).or_else(|| shared.steal(index)) {
            let tracer = shared.tracer.as_deref().filter(|r| r.armed());
            // The job span parents under the submitting round's span
            // (captured at submit time — thread-locals don't cross the
            // queue) and splits queue-wait from run time.
            let mut job_span =
                tracer.and_then(|r| r.start_with("sched.job", tracked.parent, Instant::ZERO));
            if let Some(s) = job_span.as_mut() {
                let wait = if tracked.submitted_ns > 0 {
                    tracer.map_or(0, |r| r.now_ns().saturating_sub(tracked.submitted_ns))
                } else {
                    0
                };
                s.attr_u64("queue_wait_ns", wait);
                s.attr_u64("worker", index as u64);
                s.attr_u64("home_worker", u64::from(tracked.home));
                s.attr_u64("stolen", u64::from(tracked.home as usize != index));
            }
            let in_span = job_span.as_ref().map(|s| s.enter());
            // Contain panics: a panicking tick task must not kill the
            // worker (the processor records the failure from its slot).
            let _ = std::panic::catch_unwind(AssertUnwindSafe(tracked.job));
            drop(in_span);
            drop(job_span);
            shared.finish_one();
            continue;
        }
        // Park until new work or shutdown; re-check queues under the park
        // lock so a submit racing with this decision is never lost.
        let guard = shared.park.lock();
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        let queues_empty = shared.queues.iter().all(|q| q.lock().is_empty());
        if queues_empty {
            drop(shared.work.wait(guard).unwrap_or_else(|e| e.into_inner()));
        }
    }
}

/// A persistent work-stealing thread pool. Create once, submit rounds of
/// scoped tasks via [`WorkerPool::scope`], drop to shut down.
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    next_queue: AtomicUsize,
}

impl WorkerPool {
    /// Start `config.workers` threads (at least 1).
    pub fn new(config: SchedulerConfig) -> Self {
        Self::with_tracer(config, None)
    }

    /// [`WorkerPool::new`] recording one `sched.job` span per executed
    /// job into `tracer` (queue-wait vs run time, steal attribution).
    pub fn with_tracer(config: SchedulerConfig, tracer: Option<Arc<FlightRecorder>>) -> Self {
        let workers = config.workers.max(1);
        let shared = Arc::new(Shared {
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            work: Condvar::new(),
            park: Mutex::new(()),
            pending: AtomicUsize::new(0),
            done: Condvar::new(),
            done_lock: Mutex::new(()),
            shutdown: AtomicBool::new(false),
            steals: AtomicU64::new(0),
            tracer,
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("serena-sched-{i}"))
                    .spawn(move || worker_loop(shared, i))
                    .expect("spawn scheduler worker")
            })
            .collect();
        WorkerPool {
            shared,
            handles,
            next_queue: AtomicUsize::new(0),
        }
    }

    /// Worker threads in the pool.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Cross-worker steals since the pool started (cumulative).
    pub fn steals(&self) -> u64 {
        self.shared.steals.load(Ordering::Relaxed)
    }

    /// Run one round of scoped tasks: `f` submits any number of jobs
    /// borrowing from the caller's stack via [`Scope::submit`]; `scope`
    /// returns only when every submitted job has finished (even if `f`
    /// or a job panics — the drop barrier waits either way, which is
    /// exactly what makes the lifetime erasure in `submit` sound).
    pub fn scope<'env, F>(&self, f: F)
    where
        F: FnOnce(&Scope<'env, '_>),
    {
        let scope = Scope {
            pool: self,
            _env: std::marker::PhantomData,
        };
        // Barrier runs from Drop so unwinding out of `f` still waits for
        // already-submitted jobs before their borrows go out of scope.
        f(&scope);
    }

    fn submit_erased(&self, job: Job) {
        self.shared.pending.fetch_add(1, Ordering::AcqRel);
        let slot = self.next_queue.fetch_add(1, Ordering::Relaxed) % self.shared.queues.len();
        let armed = self.shared.tracer.as_deref().filter(|r| r.armed());
        let tracked = Tracked {
            job,
            parent: if armed.is_some() { span::current() } else { 0 },
            home: slot as u32,
            submitted_ns: armed.map_or(0, |r| r.now_ns()),
        };
        self.shared.queues[slot].lock().push_back(tracked);
        // Hold the park lock while notifying so a worker's empty-check →
        // park transition cannot swallow this wakeup.
        let _guard = self.shared.park.lock();
        self.shared.work.notify_all();
    }

    fn wait_idle(&self) {
        loop {
            if self.shared.pending.load(Ordering::Acquire) == 0 {
                return;
            }
            let guard = self.shared.done_lock.lock();
            if self.shared.pending.load(Ordering::Acquire) == 0 {
                return;
            }
            drop(
                self.shared
                    .done
                    .wait(guard)
                    .unwrap_or_else(|e| e.into_inner()),
            );
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Finish any in-flight round, then wake everyone for shutdown.
        self.wait_idle();
        self.shared.shutdown.store(true, Ordering::Release);
        {
            let _guard = self.shared.park.lock();
            self.shared.work.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// A submission handle for one round. Jobs may borrow from the `'env`
/// stack frame; the round barrier (run on drop) guarantees they finish
/// before `'env` ends.
pub struct Scope<'env, 'pool> {
    pool: &'pool WorkerPool,
    _env: std::marker::PhantomData<&'env mut &'env ()>,
}

impl<'env> Scope<'env, '_> {
    /// Submit a job that may borrow from `'env`.
    pub fn submit<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'env,
    {
        let job: Box<dyn FnOnce() + Send + 'env> = Box::new(f);
        // SAFETY: lifetime erasure `'env → 'static`. The job only runs on
        // pool worker threads, and `Scope`'s drop barrier (`wait_idle`)
        // blocks the submitting thread until `pending == 0` — including
        // when unwinding — so the job can never outlive the `'env`
        // borrows it captures. This is the `thread::scope` argument with
        // the spawn/join replaced by submit/barrier.
        let job: Job = unsafe { std::mem::transmute(job) };
        self.pool.submit_erased(job);
    }
}

impl Drop for Scope<'_, '_> {
    fn drop(&mut self) {
        self.pool.wait_idle();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_floors_at_one_worker() {
        assert_eq!(SchedulerConfig::new(0).workers, 1);
        assert_eq!(SchedulerConfig::new(5).workers, 5);
        assert!(SchedulerConfig::default().workers >= 1);
    }

    #[test]
    fn scope_runs_every_job_and_blocks_until_done() {
        let pool = WorkerPool::new(SchedulerConfig::new(4));
        let counter = AtomicUsize::new(0);
        pool.scope(|scope| {
            for _ in 0..64 {
                scope.submit(|| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        // scope() returned ⇒ all jobs finished; borrows of `counter` done.
        assert_eq!(counter.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn rounds_reuse_the_same_pool() {
        let pool = WorkerPool::new(SchedulerConfig::new(2));
        let counter = AtomicUsize::new(0);
        for _ in 0..10 {
            pool.scope(|scope| {
                for _ in 0..8 {
                    scope.submit(|| {
                        counter.fetch_add(1, Ordering::SeqCst);
                    });
                }
            });
        }
        assert_eq!(counter.load(Ordering::SeqCst), 80);
        assert_eq!(pool.workers(), 2);
    }

    #[test]
    fn results_can_be_written_into_stack_slots() {
        let pool = WorkerPool::new(SchedulerConfig::new(3));
        let mut slots: Vec<Option<usize>> = vec![None; 16];
        pool.scope(|scope| {
            for (i, slot) in slots.iter_mut().enumerate() {
                scope.submit(move || {
                    *slot = Some(i * i);
                });
            }
        });
        let got: Vec<usize> = slots.into_iter().map(|s| s.expect("slot filled")).collect();
        assert_eq!(got, (0..16).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn a_panicking_job_does_not_kill_the_pool() {
        let pool = WorkerPool::new(SchedulerConfig::new(2));
        let counter = AtomicUsize::new(0);
        pool.scope(|scope| {
            scope.submit(|| panic!("tick exploded"));
            for _ in 0..4 {
                scope.submit(|| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 4);
        // the pool still works for the next round
        pool.scope(|scope| {
            scope.submit(|| {
                counter.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert_eq!(counter.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn uneven_rounds_trigger_steals() {
        // 8 workers, 256 jobs of uneven cost submitted round-robin: the
        // long jobs pile onto a few queues and idle workers must steal.
        let pool = WorkerPool::new(SchedulerConfig::new(8));
        let counter = AtomicUsize::new(0);
        pool.scope(|scope| {
            for i in 0..256 {
                scope.submit(move || {
                    if i % 8 == 0 {
                        std::thread::sleep(std::time::Duration::from_micros(500));
                    }
                });
            }
            let _ = &counter;
        });
        // steals are timing-dependent; assert the counter is wired, not a
        // specific count (≥ 0 trivially — the point is it didn't wedge).
        let _ = pool.steals();
    }

    #[test]
    fn single_worker_pool_is_exact() {
        let pool = WorkerPool::new(SchedulerConfig::new(1));
        let sum = AtomicUsize::new(0);
        pool.scope(|scope| {
            for i in 1..=100 {
                scope.submit(move || {
                    let _ = i;
                });
            }
            sum.store(5050, Ordering::SeqCst);
        });
        assert_eq!(sum.load(Ordering::SeqCst), 5050);
        assert_eq!(pool.steals(), 0, "nobody to steal from");
    }
}
