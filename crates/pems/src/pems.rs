//! The PEMS facade: Figure 1 assembled.
//!
//! A [`Pems`] instance wires together the core **Environment Resource
//! Manager** (discovery bus + dynamic registry + service directory), the
//! **Extended Table Manager** (named XD-Relations, DDL execution) and the
//! **Query Processor** (registered continuous queries on a shared logical
//! clock), plus the *service-discovery queries* that keep provider tables
//! (like the scenario's `cameras`) up to date.
//!
//! Each [`Pems::tick`] advances one logical instant:
//! 1. discovery messages due at this instant are applied to the registry;
//! 2. discovery queries refresh their provider tables;
//! 3. every registered continuous query evaluates the instant.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use serena_core::dedup::{DedupLayer, DedupState};
use serena_core::env::Environment;
use serena_core::error::{EvalError, PlanError, SchemaError};
use serena_core::eval::EvalOutcome;
use serena_core::exec::{explain_analyze_text, ExecContext};
use serena_core::metrics::{ExecStats, MetricsSink, NoopMetrics, Tee};
use serena_core::physical::ExecOptions;
use serena_core::plan::Plan;
use serena_core::service::{CatchPanicLayer, Invoker, InvokerStack};
use serena_core::snapshot::{self, Reader, SnapshotError, Writer};
use serena_core::telemetry::{
    chrome_trace, FlightRecorder, InstrumentedLayer, MetricsRegistry, NoopTrace, RegistrySink,
    SpanRecord, TraceSink,
};
use serena_core::time::Instant;
use serena_core::value::ServiceRef;
use serena_ddl::ast::Statement;
use serena_ddl::resolve::{
    resolve_prototype, resolve_query, resolve_relation_schema, resolve_tuple, to_one_shot,
};
use serena_ddl::DdlError;
use serena_services::bus::{BusConfig, CoreErm, DiscoveryBus, LocalErm};
use serena_services::directory::{NodeDirectory, PeerStatus};
use serena_services::discovery::DiscoveryQuery;
use serena_services::health::{HealthTracker, ServiceHealth};
use serena_services::node::{NodeHandle, RemoteNodeClient, ServiceNode};
use serena_services::registry::DynamicRegistry;
use serena_services::resilience::{
    BreakerState, ResilienceCounters, ResiliencePolicy, ResilienceState, ResilientLayer,
};
use serena_services::transport::{Transport, TransportError};
use serena_stream::exec::TickReport;

use crate::adaptive::{AdaptiveController, ReplanEvent, ReplanPolicy, ReplanReason};
use crate::processor::QueryProcessor;
use crate::recovery::{read_checkpoint, RecoveryManager};
use crate::scheduler::SchedulerConfig;
use crate::table_manager::ExtendedTableManager;

/// Errors surfaced by the PEMS API.
#[derive(Debug)]
pub enum PemsError {
    /// DDL parsing/resolution failed.
    Ddl(DdlError),
    /// Plan validation failed.
    Plan(PlanError),
    /// One-shot evaluation failed.
    Eval(EvalError),
    /// Schema/catalog failure.
    Schema(SchemaError),
    /// Checkpoint encoding/decoding or recovery failure.
    Snapshot(SnapshotError),
    /// Node-to-node transport failure (serve/connect/replicate).
    Transport(TransportError),
    /// Anything else.
    Other(String),
}

impl std::fmt::Display for PemsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PemsError::Ddl(e) => write!(f, "{e}"),
            PemsError::Plan(e) => write!(f, "{e}"),
            PemsError::Eval(e) => write!(f, "{e}"),
            PemsError::Schema(e) => write!(f, "{e}"),
            PemsError::Snapshot(e) => write!(f, "{e}"),
            PemsError::Transport(e) => write!(f, "{e}"),
            PemsError::Other(s) => write!(f, "{s}"),
        }
    }
}

impl std::error::Error for PemsError {}

impl From<DdlError> for PemsError {
    fn from(e: DdlError) -> Self {
        PemsError::Ddl(e)
    }
}
impl From<PlanError> for PemsError {
    fn from(e: PlanError) -> Self {
        PemsError::Plan(e)
    }
}
impl From<EvalError> for PemsError {
    fn from(e: EvalError) -> Self {
        PemsError::Eval(e)
    }
}
impl From<SchemaError> for PemsError {
    fn from(e: SchemaError) -> Self {
        PemsError::Schema(e)
    }
}
impl From<serena_ddl::ParseError> for PemsError {
    fn from(e: serena_ddl::ParseError) -> Self {
        PemsError::Ddl(DdlError::Parse(e))
    }
}
impl From<SnapshotError> for PemsError {
    fn from(e: SnapshotError) -> Self {
        PemsError::Snapshot(e)
    }
}
impl From<TransportError> for PemsError {
    fn from(e: TransportError) -> Self {
        PemsError::Transport(e)
    }
}

/// The result of executing one statement.
#[derive(Debug)]
pub enum ExecOutcome {
    /// A definition/mutation statement completed.
    Done,
    /// An `EXECUTE` one-shot query evaluated to this outcome.
    OneShot(EvalOutcome),
    /// A continuous query was registered under this name.
    Registered(String),
}

/// A one-shot plan annotated with what its evaluation actually did — the
/// result of [`Pems::explain_analyze`].
#[derive(Debug)]
pub struct ExplainAnalyze {
    /// The evaluation's result (relation + action set).
    pub outcome: EvalOutcome,
    /// Per-node observed statistics, keyed by pre-order node id.
    pub stats: ExecStats,
    /// The plan tree rendered with the observed counts inline.
    pub rendered: String,
}

impl std::fmt::Display for ExplainAnalyze {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.rendered)
    }
}

/// Step-by-step construction of a [`Pems`]: discovery-bus latency model,
/// starting logical instant, and a PEMS-wide [`MetricsSink`] that observes
/// every one-shot evaluation and every continuous tick.
///
/// ```
/// # use serena_pems::pems::Pems;
/// # use serena_services::bus::BusConfig;
/// # use std::sync::Arc;
/// let stats = Arc::new(serena_core::metrics::ExecStats::new());
/// let pems = Pems::builder()
///     .bus(BusConfig::instant())
///     .metrics(stats.clone())
///     .build();
/// # let _ = pems;
/// ```
pub struct PemsBuilder {
    bus: BusConfig,
    node_id: String,
    clock: Instant,
    metrics: Option<Arc<dyn MetricsSink>>,
    exec_options: ExecOptions,
    trace: Option<Arc<dyn TraceSink>>,
    health_window: usize,
    resilience: ResiliencePolicy,
    checkpoint: Option<(PathBuf, u64)>,
    scheduler: Option<SchedulerConfig>,
    dedup: Option<bool>,
    tracing: Option<bool>,
    adaptive: Option<ReplanPolicy>,
}

impl PemsBuilder {
    /// Defaults: default bus latency, clock at zero, no metrics sink,
    /// serial execution, no trace sink, default health window, resilience
    /// disabled, scheduler and β dedup from the environment
    /// (`SERENA_SCHED_WORKERS` / `SERENA_SCHED_DEDUP`).
    pub fn new() -> Self {
        PemsBuilder {
            bus: BusConfig::default(),
            node_id: "node0".to_string(),
            clock: Instant::ZERO,
            metrics: None,
            exec_options: ExecOptions::default(),
            trace: None,
            health_window: serena_services::health::DEFAULT_WINDOW,
            resilience: ResiliencePolicy::disabled(),
            checkpoint: None,
            scheduler: None,
            dedup: None,
            tracing: None,
            adaptive: None,
        }
    }

    /// Discovery-network latency model.
    pub fn bus(mut self, config: BusConfig) -> Self {
        self.bus = config;
        self
    }

    /// This runtime's node id in a multi-node deployment — what peers see
    /// in the handshake and in [`PeerStatus`]. Defaults to `"node0"`.
    pub fn node_id(mut self, id: impl Into<String>) -> Self {
        self.node_id = id.into();
        self
    }

    /// Logical instant the runtime starts at (first tick evaluates it).
    pub fn clock(mut self, at: Instant) -> Self {
        self.clock = at;
        self
    }

    /// Sink observing every operator application across the runtime —
    /// one-shot queries and continuous ticks alike.
    pub fn metrics(mut self, sink: Arc<dyn MetricsSink>) -> Self {
        self.metrics = Some(sink);
        self
    }

    /// Execution options applied to every one-shot evaluation and every
    /// continuous query registered after construction (β parallelism;
    /// serial by default).
    pub fn exec_options(mut self, options: ExecOptions) -> Self {
        self.exec_options = options;
        self
    }

    /// Structured trace sink receiving span-style [`TraceEvent`]s (query
    /// registered, tick start/end, invocation, failure) — e.g. a
    /// [`serena_core::telemetry::JsonlTrace`] over a file.
    ///
    /// [`TraceEvent`]: serena_core::telemetry::TraceEvent
    pub fn trace(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.trace = Some(sink);
        self
    }

    /// Rolling-window length (outcomes per service) for health tracking.
    pub fn health_window(mut self, window: usize) -> Self {
        self.health_window = window;
        self
    }

    /// Resilience policy applied to every β invocation (one-shot and
    /// continuous): per-service deadline, bounded retry with jittered
    /// exponential backoff, and a circuit breaker. Disabled by default —
    /// a disabled policy adds no layer to the invoker stack. Pair with
    /// [`ExecOptions::with_degrade`] (via [`Self::exec_options`]) to let
    /// queries survive the failures that remain after retries.
    pub fn resilience(mut self, policy: ResiliencePolicy) -> Self {
        self.resilience = policy;
        self
    }

    /// Periodically checkpoint the runtime's dynamic state into `dir`:
    /// after every `every_n_ticks` completed ticks, a versioned snapshot
    /// (tables, query executors & stats, logical clock, breakers, health)
    /// is written atomically to `dir/serena.ckpt`. A crashed process
    /// recovers by re-running its static setup on a fresh [`Pems`] and
    /// calling [`Pems::restore_from`]. See [`crate::recovery`].
    pub fn checkpoint(mut self, dir: impl Into<PathBuf>, every_n_ticks: u64) -> Self {
        self.checkpoint = Some((dir.into(), every_n_ticks));
        self
    }

    /// Multi-query tick scheduler configuration: the width of the
    /// persistent work-stealing worker pool query ticks run on. Defaults
    /// to [`SchedulerConfig::from_env`] (`SERENA_SCHED_WORKERS`, else one
    /// worker per core). Worker count never changes query output — see
    /// `tests/envgen_determinism.rs`.
    pub fn scheduler(mut self, config: SchedulerConfig) -> Self {
        self.scheduler = Some(config);
        self
    }

    /// Arm or disarm the cross-query β dedup layer
    /// ([`serena_core::dedup::DedupLayer`]): identical `(service, args)`
    /// invocations issued by different queries within one instant coalesce
    /// into a single upstream call. Sound because services are
    /// deterministic at an instant (§3.2). Defaults to the
    /// `SERENA_SCHED_DEDUP` environment variable (`0` disables), else on.
    pub fn dedup(mut self, enabled: bool) -> Self {
        self.dedup = Some(enabled);
        self
    }

    /// Arm or disarm the hierarchical span tracer's flight recorder
    /// ([`serena_core::telemetry::FlightRecorder`]). Armed by default;
    /// `SERENA_TRACE=0` disarms and `SERENA_TRACE_CAPACITY` bounds the
    /// retained spans (drop-oldest). The recorder is strictly
    /// observational: query outputs are byte-identical armed or disarmed
    /// (see `tests/envgen_determinism.rs`).
    pub fn tracing(mut self, enabled: bool) -> Self {
        self.tracing = Some(enabled);
        self
    }

    /// Arm adaptive re-optimization: after every tick, the runtime checks
    /// `policy`'s triggers (circuit-breaker transitions, sustained
    /// degradation) against instant-scoped telemetry, re-ranks each
    /// registered query's candidate plans under the telemetry-fed
    /// [`MeasuredCosts`] model, and hot-swaps a cheaper plan in at the
    /// tick boundary with portable operator state (window rings, β
    /// caches) carried over. Off by default; `SERENA_ADAPTIVE=1` arms the
    /// default policy from the environment.
    ///
    /// Replan decisions consume only logically-timed signals, so two runs
    /// with the same fault schedule replan at the same instants and
    /// produce byte-identical output.
    ///
    /// [`MeasuredCosts`]: serena_core::rewrite::MeasuredCosts
    pub fn adaptive(mut self, policy: ReplanPolicy) -> Self {
        self.adaptive = Some(policy);
        self
    }

    /// Assemble the runtime.
    pub fn build(self) -> Pems {
        let bus = DiscoveryBus::new(self.bus);
        let erm = CoreErm::new(Arc::clone(&bus));
        let telemetry = Arc::new(MetricsRegistry::new());
        let telemetry_sink = RegistrySink::new(&telemetry);
        let trace: Arc<dyn TraceSink> = self.trace.unwrap_or_else(|| Arc::new(NoopTrace));
        let tracer = Arc::new(FlightRecorder::from_env());
        if let Some(on) = self.tracing {
            tracer.arm(on);
        }
        let mut processor = QueryProcessor::new();
        processor.seek(self.clock);
        processor.set_telemetry(Arc::clone(&telemetry), Arc::clone(&trace));
        processor.set_scheduler(self.scheduler.unwrap_or_else(SchedulerConfig::from_env));
        processor.set_tracer(Arc::clone(&tracer));
        let dedup_enabled = self
            .dedup
            .unwrap_or_else(|| std::env::var("SERENA_SCHED_DEDUP").map_or(true, |v| v != "0"));
        // Eagerly register the scheduler/dedup series so they render (at
        // zero) from the first `.metrics` call, armed or not.
        telemetry.counter("serena_sched_steals_total", &[]);
        telemetry.gauge("serena_sched_queue_depth", &[]);
        telemetry.counter("serena_beta_dedup_total", &[]);
        telemetry.counter("serena_trace_dropped_total", &[]);
        telemetry.counter("serena_replication_total", &[]);
        telemetry.counter("serena_replication_errors_total", &[]);
        telemetry.counter("serena_replan_total", &[]);
        let adaptive = self
            .adaptive
            .or_else(|| {
                std::env::var("SERENA_ADAPTIVE")
                    .ok()
                    .filter(|v| v != "0" && !v.is_empty())
                    .map(|_| ReplanPolicy::default())
            })
            .map(AdaptiveController::new);
        let directory = Arc::new(NodeDirectory::with_registry(
            self.node_id,
            Arc::clone(erm.registry()),
        ));
        Pems {
            bus,
            erm,
            directory,
            standby: None,
            tables: ExtendedTableManager::new(),
            processor,
            discoveries: Vec::new(),
            sql_counter: 0,
            metrics: self.metrics.unwrap_or_else(|| Arc::new(NoopMetrics)),
            exec_options: self.exec_options,
            telemetry,
            telemetry_sink,
            health: Arc::new(HealthTracker::new(self.health_window)),
            trace,
            resilience_policy: self.resilience,
            resilience: Arc::new(ResilienceState::new()),
            dedup: Arc::new(DedupState::new()),
            dedup_enabled,
            recovery: self
                .checkpoint
                .map(|(dir, every)| RecoveryManager::new(dir, every)),
            snapshot_size_hint: std::sync::atomic::AtomicUsize::new(0),
            tracer,
            trace_dropped_seen: 0,
            adaptive,
        }
    }
}

impl Default for PemsBuilder {
    fn default() -> Self {
        PemsBuilder::new()
    }
}

/// A Pervasive Environment Management System instance.
pub struct Pems {
    bus: Arc<DiscoveryBus>,
    erm: CoreErm,
    directory: Arc<NodeDirectory>,
    /// Standby peer receiving a checkpoint stream after every tick, when
    /// configured via [`Pems::replicate_to`].
    standby: Option<RemoteNodeClient>,
    tables: ExtendedTableManager,
    processor: QueryProcessor,
    discoveries: Vec<(String, DiscoveryQuery)>,
    sql_counter: u64,
    metrics: Arc<dyn MetricsSink>,
    exec_options: ExecOptions,
    /// Named metric series for the whole runtime (always on; lock-cheap).
    telemetry: Arc<MetricsRegistry>,
    /// Bridges per-operator observations into `telemetry`.
    telemetry_sink: RegistrySink,
    /// Rolling per-service health fed by every β invocation outcome.
    health: Arc<HealthTracker>,
    /// Structured trace sink ([`NoopTrace`] unless configured).
    trace: Arc<dyn TraceSink>,
    /// Resilience policy the invoker stack is built with.
    resilience_policy: ResiliencePolicy,
    /// Breakers and retry/timeout counters, shared across rebuilt stacks.
    resilience: Arc<ResilienceState>,
    /// Cross-query β dedup memo + counters, shared across rebuilt stacks
    /// (the memo is per-instant; the counters are cumulative).
    dedup: Arc<DedupState>,
    /// Whether the dedup layer is armed ([`PemsBuilder::dedup`] /
    /// `SERENA_SCHED_DEDUP`).
    dedup_enabled: bool,
    /// Periodic checkpoint writer, when configured via
    /// [`PemsBuilder::checkpoint`].
    recovery: Option<RecoveryManager>,
    /// Size of the last snapshot, used to preallocate the next one.
    snapshot_size_hint: std::sync::atomic::AtomicUsize,
    /// Hierarchical span tracer: bounded in-memory flight recorder shared
    /// by the scheduler, the stream executor and the β invoker stack.
    tracer: Arc<FlightRecorder>,
    /// Recorder drop count already published to
    /// `serena_trace_dropped_total` (the counter is monotone; the recorder
    /// reports a cumulative total).
    trace_dropped_seen: u64,
    /// Adaptive re-optimization controller, when armed via
    /// [`PemsBuilder::adaptive`] / `SERENA_ADAPTIVE`.
    adaptive: Option<AdaptiveController>,
}

impl Default for Pems {
    fn default() -> Self {
        Pems::builder().build()
    }
}

impl Pems {
    /// Start building a PEMS (bus config, clock, metrics sink).
    pub fn builder() -> PemsBuilder {
        PemsBuilder::new()
    }

    /// The unified service directory: registration, resolution, discovery
    /// metadata, join/leave events and multi-node peer links. Local
    /// registrations go through
    /// [`ServiceDirectory::register`](serena_services::ServiceDirectory::register);
    /// remote services appear here automatically once
    /// [`Pems::connect_peer`] links their node.
    pub fn directory(&self) -> Arc<NodeDirectory> {
        Arc::clone(&self.directory)
    }

    /// This runtime's node id (see [`PemsBuilder::node_id`]).
    pub fn node_id(&self) -> &str {
        use serena_services::ServiceDirectory as _;
        self.directory.node()
    }

    /// Expose this runtime's directory to peers at `addr` on `transport`:
    /// they can discover and invoke its locally hosted services and push
    /// standby checkpoints to it. Returns a handle whose drop shuts the
    /// endpoint down; [`NodeHandle::addr`] is the canonical re-connectable
    /// address (useful with `tcp:host:0`).
    pub fn serve(
        &self,
        transport: Arc<dyn Transport>,
        addr: &str,
    ) -> Result<NodeHandle, PemsError> {
        Ok(ServiceNode::serve(
            transport,
            addr,
            Arc::clone(&self.directory),
        )?)
    }

    /// Link a remote node into this runtime's directory: its services are
    /// proxied locally (discovery queries list them; β invocations relay
    /// over the transport) and kept current by per-tick heartbeat polling.
    /// Returns the peer's node id.
    pub fn connect_peer(
        &self,
        transport: Arc<dyn Transport>,
        addr: &str,
    ) -> Result<String, PemsError> {
        Ok(self.directory.connect_peer(transport, addr)?)
    }

    /// Stream a checkpoint of this runtime's dynamic state to the node at
    /// `addr` after **every** tick (independent of any on-disk
    /// [`PemsBuilder::checkpoint`] cadence). The standby retrieves the
    /// latest snapshot via [`NodeHandle::last_checkpoint`] and resumes a
    /// dead primary with [`Pems::restore_bytes`]. A failed send is counted
    /// (`serena_replication_errors_total`) and traced, never fatal.
    /// Returns the standby's node id.
    pub fn replicate_to(
        &mut self,
        transport: Arc<dyn Transport>,
        addr: &str,
    ) -> Result<String, PemsError> {
        let client = RemoteNodeClient::connect(transport, addr, self.node_id())?;
        let node = client.node().to_string();
        self.standby = Some(client);
        Ok(node)
    }

    /// Health of every linked peer (id, address, liveness, last-seen
    /// instant, proxied service count).
    pub fn peer_status(&self) -> Vec<PeerStatus> {
        self.directory.peer_status()
    }

    /// The runtime-wide metric registry: operator counters, β-invocation
    /// latency histograms, per-query tick/lag series. Always on.
    pub fn metrics_registry(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.telemetry)
    }

    /// Every metric series rendered in the Prometheus text exposition
    /// format — what the shell's `\metrics` command prints.
    pub fn render_metrics(&self) -> String {
        self.telemetry.render_prometheus()
    }

    /// Health snapshot of every service observed by a β invocation so far,
    /// ordered by service reference — what the shell's `\health` command
    /// prints. Reflects injected faults: a service wrapped in a
    /// [`serena_services::faults::FaultyService`] shows its failure rate
    /// here.
    pub fn service_health(&self) -> Vec<ServiceHealth> {
        self.health.report()
    }

    /// The rolling per-service health tracker behind
    /// [`Self::service_health`].
    pub fn health_tracker(&self) -> Arc<HealthTracker> {
        Arc::clone(&self.health)
    }

    /// Runtime-wide resilience counters: retries, converted deadline
    /// timeouts, breaker trips and breaker-rejected calls. All zero when
    /// no [`PemsBuilder::resilience`] policy was configured.
    pub fn resilience_counters(&self) -> ResilienceCounters {
        self.resilience.counters()
    }

    /// Per-service circuit-breaker states, ordered by service reference —
    /// shown by the shell's `\health` command next to the health report.
    pub fn breakers(&self) -> Vec<(ServiceRef, BreakerState)> {
        self.resilience.breakers()
    }

    /// The resilience policy the invoker stack is built with.
    pub fn resilience_policy(&self) -> ResiliencePolicy {
        self.resilience_policy
    }

    /// The full β invoker stack for *one-shot* evaluations — see
    /// [`build_invoker_stack`]. One-shots run between ticks and must
    /// observe registry hot-swaps immediately, so the cross-query dedup
    /// memo (valid only within one atomic tick round, where the registry
    /// is stable) is never armed here.
    fn invoker_stack<'r>(&'r self, registry: &'r DynamicRegistry) -> Box<dyn Invoker + 'r> {
        build_invoker_stack(
            registry,
            &self.telemetry,
            &self.health,
            &*self.trace,
            &self.tracer,
            self.resilience_policy,
            Arc::clone(&self.resilience),
            Arc::clone(&self.dedup),
            false,
        )
    }

    /// Cumulative cross-query β dedup counters: `(hits, misses)` — calls
    /// served without an upstream invocation vs. upstream calls actually
    /// performed through the dedup layer. Both zero when dedup is
    /// disarmed.
    pub fn dedup_stats(&self) -> (u64, u64) {
        (self.dedup.hits(), self.dedup.misses())
    }

    /// The hierarchical span tracer's flight recorder: a bounded
    /// in-memory ring of closed [`SpanRecord`]s covering scheduler rounds,
    /// per-worker jobs, query ticks, operators and β invocations.
    pub fn flight_recorder(&self) -> Arc<FlightRecorder> {
        Arc::clone(&self.tracer)
    }

    /// Arm or disarm the span tracer on a built runtime (see
    /// [`PemsBuilder::tracing`]). Disarming keeps already-recorded spans;
    /// call [`FlightRecorder::clear`] via [`Self::flight_recorder`] to
    /// discard them.
    pub fn set_tracing(&mut self, enabled: bool) {
        self.tracer.arm(enabled);
    }

    /// Export every span currently retained by the flight recorder as a
    /// Chrome/Perfetto `trace.json` (load it in `chrome://tracing` or
    /// [ui.perfetto.dev](https://ui.perfetto.dev)) — the shell's
    /// `.trace <file>` command. Returns the number of spans written.
    pub fn export_trace(&self, path: impl AsRef<Path>) -> std::io::Result<usize> {
        let spans = self.tracer.snapshot();
        std::fs::write(path, chrome_trace(&spans))?;
        Ok(spans.len())
    }

    /// Per-query profile from the flight recorder — the shell's
    /// `.profile <query>` command: recent tick timeline (duration, delta
    /// sizes, errors), the slowest operators by self time across the
    /// retained ticks, and the p99 tick with its exemplar span id.
    pub fn profile(&self, query: &str) -> String {
        let hist = self
            .telemetry
            .histogram("serena_query_tick_duration_ns", &[("query", query)]);
        profile_text(query, &self.tracer.snapshot(), hist.as_ref())
    }

    /// Live runtime dashboard — the shell's `.top` command: worker
    /// utilization over the retained scheduler rounds, queue depth and
    /// steal counts, per-query tick rates/latency/errors, and per-service
    /// health, latency and breaker state.
    pub fn top(&self) -> String {
        let mut out = String::new();
        let spans = self.tracer.snapshot();

        // -- scheduler ----------------------------------------------------
        let rounds: Vec<&SpanRecord> = spans.iter().filter(|s| s.name == "sched.round").collect();
        let window_ns: u64 = rounds.iter().map(|s| s.duration_ns()).sum();
        let mut busy: std::collections::BTreeMap<u64, (u64, u64)> =
            std::collections::BTreeMap::new();
        for job in spans.iter().filter(|s| s.name == "sched.job") {
            let worker = job.attr_u64("worker").unwrap_or(u64::MAX);
            let e = busy.entry(worker).or_insert((0, 0));
            e.0 += job.duration_ns();
            e.1 += 1;
        }
        out.push_str(&format!(
            "scheduler  rounds={} queue_depth={} steals={} spans={} dropped={}\n",
            rounds.len(),
            self.telemetry.gauge("serena_sched_queue_depth", &[]).get(),
            self.telemetry
                .counter_value("serena_sched_steals_total", &[])
                .unwrap_or(0),
            spans.len(),
            self.tracer.dropped_total(),
        ));
        for (worker, (busy_ns, jobs)) in &busy {
            let util = if window_ns > 0 {
                100.0 * *busy_ns as f64 / window_ns as f64
            } else {
                0.0
            };
            out.push_str(&format!(
                "  worker {worker}: util={util:5.1}% jobs={jobs} busy={:.2}ms\n",
                *busy_ns as f64 / 1e6
            ));
        }

        // -- queries ------------------------------------------------------
        out.push_str("queries\n");
        for name in self.processor.names() {
            let labels = [("query", name)];
            let ticks = self
                .telemetry
                .counter_value("serena_query_ticks_total", &labels)
                .unwrap_or(0);
            let errors = self
                .telemetry
                .counter_value("serena_query_errors_total", &labels)
                .unwrap_or(0);
            let hist = self
                .telemetry
                .histogram("serena_query_tick_duration_ns", &labels);
            out.push_str(&format!(
                "  {name}: ticks={ticks} p50={:.2}ms p99={:.2}ms errors={errors}\n",
                hist.p50() as f64 / 1e6,
                hist.p99() as f64 / 1e6,
            ));
        }

        // -- services -----------------------------------------------------
        let breakers: std::collections::BTreeMap<String, BreakerState> = self
            .breakers()
            .into_iter()
            .map(|(r, b)| (r.as_str().to_string(), b))
            .collect();
        out.push_str("services\n");
        for h in self.service_health() {
            let service = h.reference.as_str();
            let hist = self
                .telemetry
                .histogram("serena_service_latency_ns", &[("service", service)]);
            let breaker = breakers
                .get(service)
                .map_or_else(|| "-".to_string(), ToString::to_string);
            out.push_str(&format!(
                "  {service}: {:?} attempts={} fail_rate={:.1}% p99={:.2}ms breaker={breaker}\n",
                h.status(),
                h.attempts,
                100.0 * h.failure_rate,
                hist.p99() as f64 / 1e6,
            ));
        }
        out
    }

    /// Replace the tick scheduler configuration (worker-pool width) on a
    /// built runtime — how the scale bench sweeps its worker axis.
    pub fn set_scheduler(&mut self, config: SchedulerConfig) {
        self.processor.set_scheduler(config);
    }

    /// Arm or disarm the cross-query β dedup layer on a built runtime.
    pub fn set_dedup(&mut self, enabled: bool) {
        self.dedup_enabled = enabled;
    }

    /// Create a Local Environment Resource Manager attached to this PEMS's
    /// discovery bus.
    pub fn local_erm(&self, id: impl Into<String>) -> LocalErm {
        LocalErm::new(id, Arc::clone(&self.bus))
    }

    /// The Extended Table Manager.
    pub fn tables(&self) -> &ExtendedTableManager {
        &self.tables
    }

    /// Mutable access to the Extended Table Manager.
    pub fn tables_mut(&mut self) -> &mut ExtendedTableManager {
        &mut self.tables
    }

    /// The Query Processor.
    pub fn processor(&self) -> &QueryProcessor {
        &self.processor
    }

    /// The instant the next tick evaluates.
    pub fn clock(&self) -> Instant {
        self.processor.clock()
    }

    /// Register a service-discovery query maintaining finite table
    /// `table` as "providers of `prototype`", with the table's
    /// `service_attr` holding the references (§5.1).
    pub fn register_discovery(
        &mut self,
        table: &str,
        prototype: &str,
        service_attr: &str,
    ) -> Result<(), PemsError> {
        let handle = self
            .tables
            .table(table)
            .ok_or_else(|| PemsError::Other(format!("unknown table `{table}`")))?;
        let query = DiscoveryQuery::new(prototype, handle.schema(), service_attr)?;
        self.discoveries.push((table.to_string(), query));
        Ok(())
    }

    /// Register a continuous query by name and plan. The query runs with
    /// the runtime's configured [`ExecOptions`].
    pub fn register_query(
        &mut self,
        name: impl Into<String>,
        plan: &serena_stream::plan::StreamPlan,
    ) -> Result<(), PemsError> {
        let name = name.into();
        let mut sources = self.tables.source_set_for(plan);
        self.processor.register_with_options(
            name.as_str(),
            plan,
            &mut sources,
            self.exec_options,
        )?;
        if let Some(ctrl) = &mut self.adaptive {
            ctrl.track(name, plan.clone());
        }
        Ok(())
    }

    /// Register a batch of continuous queries in declaration order,
    /// returning the registered names — the ergonomic path for
    /// [`crate::envspec::WorkloadSpec`]-sized workloads (hundreds of
    /// queries).
    pub fn register_queries<I, S>(&mut self, queries: I) -> Result<Vec<String>, PemsError>
    where
        I: IntoIterator<Item = (S, serena_stream::plan::StreamPlan)>,
        S: Into<String>,
    {
        let mut names = Vec::new();
        for (name, plan) in queries {
            let name = name.into();
            self.register_query(name.clone(), &plan)?;
            names.push(name);
        }
        Ok(names)
    }

    /// Execute a parsed statement.
    pub fn run_statement(&mut self, stmt: &Statement) -> Result<ExecOutcome, PemsError> {
        match stmt {
            Statement::Prototype {
                name,
                input,
                output,
                active,
            } => {
                let p = resolve_prototype(name, input, output, *active)?;
                self.tables.declare_prototype(p)?;
                Ok(ExecOutcome::Done)
            }
            Statement::Service { name, prototypes } => {
                self.tables
                    .declare_service(name.clone(), prototypes.clone());
                Ok(ExecOutcome::Done)
            }
            Statement::ExtendedRelation {
                name,
                attrs,
                bindings,
                stream,
            } => {
                let schema = resolve_relation_schema(attrs, bindings, &self.tables)?;
                if *stream {
                    self.tables.define_push_stream(name.clone(), schema)?;
                } else {
                    self.tables.define_table(name.clone(), schema)?;
                }
                Ok(ExecOutcome::Done)
            }
            Statement::Insert { relation, tuples } => {
                let schema = self
                    .tables
                    .table(relation)
                    .map(|t| t.schema())
                    .ok_or_else(|| PemsError::Other(format!("unknown table `{relation}`")))?;
                for lits in tuples {
                    let t = resolve_tuple(lits, &schema)?;
                    self.tables.insert(relation, t)?;
                }
                Ok(ExecOutcome::Done)
            }
            Statement::Delete { relation, tuples } => {
                let schema = self
                    .tables
                    .table(relation)
                    .map(|t| t.schema())
                    .ok_or_else(|| PemsError::Other(format!("unknown table `{relation}`")))?;
                for lits in tuples {
                    let t = resolve_tuple(lits, &schema)?;
                    self.tables.delete(relation, t)?;
                }
                Ok(ExecOutcome::Done)
            }
            Statement::DropRelation { name } => {
                if !self.tables.drop_relation(name) {
                    return Err(PemsError::Other(format!("unknown relation `{name}`")));
                }
                Ok(ExecOutcome::Done)
            }
            Statement::RegisterQuery { name, expr } => {
                let plan = resolve_query(expr);
                self.register_query(name.clone(), &plan)?;
                Ok(ExecOutcome::Registered(name.clone()))
            }
            Statement::UnregisterQuery { name } => {
                if !self.processor.deregister(name) {
                    return Err(PemsError::Other(format!("unknown query `{name}`")));
                }
                if let Some(ctrl) = &mut self.adaptive {
                    ctrl.untrack(name);
                }
                Ok(ExecOutcome::Done)
            }
            Statement::Execute { expr } => {
                let stream_plan = resolve_query(expr);
                let plan = to_one_shot(&stream_plan).ok_or_else(|| {
                    PemsError::Other(
                        "continuous expression (window/stream); use REGISTER QUERY".into(),
                    )
                })?;
                Ok(ExecOutcome::OneShot(self.one_shot(&plan)?))
            }
        }
    }

    /// Execute a Serena SQL `SELECT` (see [`serena_ddl::sql`]): a
    /// statement without window/streaming parts evaluates one-shot;
    /// otherwise it is registered as a continuous query (under `name`, or
    /// an auto-generated `sql_N`).
    pub fn run_sql(&mut self, name: Option<&str>, sql: &str) -> Result<ExecOutcome, PemsError> {
        let plan = serena_ddl::sql::compile_select(sql, &self.tables)?;
        match to_one_shot(&plan) {
            Some(one_shot) => Ok(ExecOutcome::OneShot(self.one_shot(&one_shot)?)),
            None => {
                let name = match name {
                    Some(n) => n.to_string(),
                    None => {
                        self.sql_counter += 1;
                        format!("sql_{}", self.sql_counter)
                    }
                };
                self.register_query(name.clone(), &plan)?;
                Ok(ExecOutcome::Registered(name))
            }
        }
    }

    /// Parse and execute a `;`-separated program.
    pub fn run_program(&mut self, text: &str) -> Result<Vec<ExecOutcome>, PemsError> {
        let stmts = serena_ddl::parse_program(text)?;
        let mut out = Vec::with_capacity(stmts.len());
        for s in &stmts {
            out.push(self.run_statement(s)?);
        }
        Ok(out)
    }

    /// Evaluate a one-shot query "now": against a snapshot of the finite
    /// tables, at the current logical instant, through the live registry.
    pub fn one_shot(&self, plan: &Plan) -> Result<EvalOutcome, PemsError> {
        self.one_shot_with(plan, &*self.metrics)
    }

    /// [`Self::one_shot`], reporting per-operator observations to `sink`
    /// instead of the PEMS-wide metrics sink.
    pub fn one_shot_with(
        &self,
        plan: &Plan,
        sink: &dyn MetricsSink,
    ) -> Result<EvalOutcome, PemsError> {
        let env = self.snapshot_environment();
        let registry = Arc::clone(self.erm.registry());
        let invoker = self.invoker_stack(&registry);
        let tee = Tee(&self.telemetry_sink, sink);
        let ctx = ExecContext::with_metrics(&env, &*invoker, self.clock(), &tee)
            .with_options(self.exec_options);
        Ok(ctx.execute(plan)?)
    }

    /// Evaluate `plan` one-shot and return the plan tree annotated with the
    /// observed per-node counts (rows out, tuples in, invocations, β-cache
    /// hits/misses, failures, wall time) — the classic `EXPLAIN ANALYZE`.
    /// Observations also flow to the PEMS-wide metrics sink.
    pub fn explain_analyze(&self, plan: &Plan) -> Result<ExplainAnalyze, PemsError> {
        let stats = ExecStats::new();
        let tee = serena_core::metrics::Tee(&stats, &*self.metrics);
        let outcome = self.one_shot_with(plan, &tee)?;
        let rendered = explain_analyze_text(plan, &stats);
        Ok(ExplainAnalyze {
            outcome,
            stats,
            rendered,
        })
    }

    /// Snapshot the finite tables into a one-shot [`Environment`].
    pub fn snapshot_environment(&self) -> Environment {
        self.tables.snapshot_environment()
    }

    /// The periodic checkpoint writer, when one was configured via
    /// [`PemsBuilder::checkpoint`].
    pub fn recovery(&self) -> Option<&RecoveryManager> {
        self.recovery.as_ref()
    }

    /// Serialize the runtime's full dynamic state into one versioned
    /// snapshot: table contents, per-query executor state and statistics,
    /// the logical clock, circuit breakers and service-health windows.
    /// Static setup (DDL, service registrations, query registrations) is
    /// *not* captured — see [`crate::recovery`] for the recovery model.
    pub fn snapshot_bytes(&self) -> Vec<u8> {
        use std::sync::atomic::Ordering;
        let hint = self.snapshot_size_hint.load(Ordering::Relaxed);
        let mut w = Writer::with_capacity(hint + hint / 4 + 256);
        snapshot::write_header(&mut w);
        self.tables.export_tables(&mut w);
        // the adaptive section is always present (empty when the feature
        // is off) and precedes the processor: recovery must rebuild the
        // adapted plan structures before rehydrating executor state
        match &self.adaptive {
            Some(ctrl) => ctrl.export_state(&mut w),
            None => AdaptiveController::export_empty(&mut w),
        }
        self.processor.write_snapshot(&mut w);
        self.resilience.export_state(&mut w);
        self.health.export_state(&mut w);
        self.snapshot_size_hint.store(w.len(), Ordering::Relaxed);
        w.into_bytes()
    }

    /// Restore dynamic state from [`Self::snapshot_bytes`] output. The
    /// static setup must already have been re-run on this instance (same
    /// tables, same queries, same plans); a disagreement surfaces as
    /// [`SnapshotError::Mismatch`].
    pub fn restore_bytes(&mut self, bytes: &[u8]) -> Result<(), PemsError> {
        let mut r = Reader::new(bytes);
        snapshot::read_header(&mut r)?;
        self.tables.import_tables(&mut r)?;
        // adaptive section: restore the replan history and re-apply each
        // adapted plan choice (regenerating the deterministic candidate
        // list from the original plan), so the processor restore below
        // finds structurally matching executors. State carry-over is not
        // needed here — read_snapshot rehydrates every node.
        match self.adaptive.take() {
            Some(mut ctrl) => {
                ctrl.import_state(&mut r)?;
                for name in ctrl.tracked().iter().map(|s| s.to_string()) {
                    let candidate = ctrl.candidate(&name).unwrap_or(0);
                    if candidate == 0 {
                        continue;
                    }
                    let plan = ctrl
                        .original(&name)
                        .cloned()
                        .expect("tracked query has an original plan");
                    let candidates = serena_stream::candidates_for(&plan, &self.tables);
                    let adapted = candidates.get(candidate).ok_or_else(|| {
                        SnapshotError::Mismatch(format!(
                            "query `{name}` snapshot selects candidate {candidate}, \
                             only {} generated",
                            candidates.len()
                        ))
                    })?;
                    let mut sources = self.tables.source_set_for(adapted);
                    self.processor.swap_query(
                        &name,
                        adapted,
                        &mut sources,
                        &serena_stream::MigrationMap::empty(),
                    )?;
                }
                self.adaptive = Some(ctrl);
            }
            None => AdaptiveController::import_disabled(&mut r)?,
        }
        self.processor.read_snapshot(&mut r)?;
        self.resilience.import_state(&mut r)?;
        self.health.import_state(&mut r)?;
        if !r.is_at_end() {
            return Err(SnapshotError::Corrupt(format!(
                "{} trailing bytes after snapshot",
                r.remaining()
            ))
            .into());
        }
        Ok(())
    }

    /// Restore from the checkpoint in `dir` (a checkpoint directory, or a
    /// direct path to a snapshot file). Call after re-running the static
    /// setup; the next [`Self::tick`] then evaluates exactly the instant
    /// the checkpointed runtime would have evaluated next.
    pub fn restore_from(&mut self, dir: impl AsRef<Path>) -> Result<(), PemsError> {
        let bytes = read_checkpoint(dir)?;
        self.restore_bytes(&bytes)
    }

    /// Write a checkpoint immediately through the configured
    /// [`RecoveryManager`] (error if [`PemsBuilder::checkpoint`] was not
    /// set). Returns the checkpoint path.
    pub fn checkpoint_now(&mut self) -> Result<PathBuf, PemsError> {
        let bytes = self.snapshot_bytes();
        self.write_checkpoint(&bytes)
    }

    /// Write already-cut snapshot bytes through the configured
    /// [`RecoveryManager`].
    fn write_checkpoint(&mut self, bytes: &[u8]) -> Result<PathBuf, PemsError> {
        let rm = self.recovery.as_mut().ok_or_else(|| {
            PemsError::Other("no checkpoint directory configured (PemsBuilder::checkpoint)".into())
        })?;
        let path = rm.write(bytes)?;
        self.telemetry.counter("serena_checkpoint_total", &[]).inc();
        Ok(path)
    }

    /// Write a one-off checkpoint of the current state into `dir`,
    /// independent of any configured cadence — the shell's `.checkpoint`
    /// command.
    pub fn checkpoint_to(&self, dir: impl AsRef<Path>) -> Result<PathBuf, PemsError> {
        let mut rm = RecoveryManager::new(dir.as_ref(), 1);
        let path = rm.write(&self.snapshot_bytes())?;
        self.telemetry.counter("serena_checkpoint_total", &[]).inc();
        Ok(path)
    }

    /// Advance one logical instant (see the module docs for the phase
    /// order). Returns each registered query's tick report.
    pub fn tick(&mut self) -> Vec<(String, TickReport)> {
        let now = self.processor.clock();
        // 1. apply due discovery traffic: the local bus first, then the
        // heartbeat/poll round over every linked peer (remote joins and
        // leaves land in the directory with the same this-tick visibility
        // as bus announcements)
        self.erm.tick(now);
        self.directory.poll_peers(now);
        // 2. refresh discovery-maintained provider tables
        let registry = Arc::clone(self.erm.registry());
        for (table, query) in &self.discoveries {
            if let Some(handle) = self.tables.table(table) {
                let rel = query.refresh_in(&*self.directory);
                handle.replace_with(rel.into_tuples());
            }
        }
        // 3. evaluate every continuous query at `now`, through the same
        // instrumented + resilient stack one-shot queries use (disjoint
        // field borrows: the stack must not borrow all of `self` while the
        // processor ticks mutably)
        let invoker = build_invoker_stack(
            &registry,
            &self.telemetry,
            &self.health,
            &*self.trace,
            &self.tracer,
            self.resilience_policy,
            Arc::clone(&self.resilience),
            Arc::clone(&self.dedup),
            self.dedup_enabled,
        );
        let reports = self
            .processor
            .tick_all_with(&*invoker, &Tee(&self.telemetry_sink, &*self.metrics));
        drop(invoker);
        // 3½. adaptive re-optimization: evaluate the replan triggers
        // against this tick's instant-scoped telemetry and hot-swap any
        // query whose measured-cost ranking changed. Runs before the
        // checkpoint cut, so a snapshot taken below already carries the
        // adapted plans and the replan history.
        self.evaluate_replans(now);
        // publish the flight recorder's eviction count as a monotone series
        let dropped = self.tracer.dropped_total();
        if dropped > self.trace_dropped_seen {
            self.telemetry
                .counter("serena_trace_dropped_total", &[])
                .add(dropped - self.trace_dropped_seen);
            self.trace_dropped_seen = dropped;
        }
        // 4. the tick is complete — the snapshot cut is consistent here —
        // so cut one snapshot and fan it out: to disk if the cadence says
        // a checkpoint is due, and to the standby peer if one is linked.
        // Neither failure may take the runtime down: both are counted and
        // traced.
        let due = self
            .recovery
            .as_mut()
            .is_some_and(RecoveryManager::tick_completed);
        if due || self.standby.is_some() {
            let bytes = self.snapshot_bytes();
            if due {
                if let Err(e) = self.write_checkpoint(&bytes) {
                    self.telemetry
                        .counter("serena_checkpoint_errors_total", &[])
                        .inc();
                    self.trace
                        .emit(&serena_core::telemetry::TraceEvent::Failure {
                            scope: "checkpoint".into(),
                            at: self.processor.clock(),
                            message: e.to_string(),
                        });
                }
            }
            if let Some(standby) = &self.standby {
                match standby.send_checkpoint(now.0, &bytes) {
                    Ok(()) => {
                        self.telemetry
                            .counter("serena_replication_total", &[])
                            .inc();
                    }
                    Err(e) => {
                        self.telemetry
                            .counter("serena_replication_errors_total", &[])
                            .inc();
                        self.trace
                            .emit(&serena_core::telemetry::TraceEvent::Failure {
                                scope: "replication".into(),
                                at: self.processor.clock(),
                                message: e.to_string(),
                            });
                    }
                }
            }
        }
        reports
    }

    /// Run `n` ticks, returning all reports flattened.
    pub fn run_ticks(&mut self, n: u64) -> Vec<(Instant, String, TickReport)> {
        let mut out = Vec::new();
        for _ in 0..n {
            let at = self.clock();
            for (name, report) in self.tick() {
                out.push((at, name, report));
            }
        }
        out
    }

    /// Whether adaptive re-optimization is armed (see
    /// [`PemsBuilder::adaptive`]).
    pub fn adaptive_enabled(&self) -> bool {
        self.adaptive.is_some()
    }

    /// Every plan swap applied so far, in application order. Empty when
    /// adaptivity is off (or nothing has triggered).
    pub fn replan_history(&self) -> &[ReplanEvent] {
        self.adaptive
            .as_ref()
            .map_or(&[], AdaptiveController::history)
    }

    /// Force a replan evaluation of `query` right now (the shell's
    /// `.replan` command): candidates are re-ranked under the current
    /// measured costs, ignoring triggers and cooldown. Returns whether a
    /// swap was applied. Errors when adaptivity is off or the query is
    /// unknown.
    pub fn force_replan(&mut self, query: &str) -> Result<bool, PemsError> {
        let Some(mut ctrl) = self.adaptive.take() else {
            return Err(PemsError::Other(
                "adaptive optimization is off (PemsBuilder::adaptive / SERENA_ADAPTIVE=1)".into(),
            ));
        };
        if ctrl.original(query).is_none() {
            self.adaptive = Some(ctrl);
            return Err(PemsError::Other(format!("unknown query `{query}`")));
        }
        let costs = self.assemble_costs(&ctrl);
        let at = self.clock();
        let swapped = self.replan_query(&mut ctrl, query, at, ReplanReason::Forced, true, &costs);
        self.adaptive = Some(ctrl);
        Ok(swapped)
    }

    /// Render `query`'s candidate plans with their telemetry-fed cost
    /// estimates, marking the one currently running — the shell's `.plan`
    /// command. Errors when adaptivity is off or the query is unknown.
    pub fn plan_report(&self, query: &str) -> Result<String, PemsError> {
        let Some(ctrl) = &self.adaptive else {
            return Err(PemsError::Other(
                "adaptive optimization is off (PemsBuilder::adaptive / SERENA_ADAPTIVE=1)".into(),
            ));
        };
        let Some(original) = ctrl.original(query) else {
            return Err(PemsError::Other(format!("unknown query `{query}`")));
        };
        let costs = self.assemble_costs(ctrl);
        let current = ctrl.candidate(query).unwrap_or(0);
        let candidates = serena_stream::candidates_for(original, &self.tables);
        let mut out = format!("query `{query}`: {} candidate plan(s)\n", candidates.len());
        for (i, cand) in candidates.iter().enumerate() {
            let marker = if i == current { '*' } else { ' ' };
            match serena_stream::estimate_stream(cand, &self.tables, &costs) {
                Ok(e) => out.push_str(&format!(
                    "{marker} [{i}] cost={:.1} invocations={:.1} rows={:.1}\n      {cand}\n",
                    e.cost, e.invocations, e.rows
                )),
                Err(e) => out.push_str(&format!("{marker} [{i}] <estimate failed: {e}>\n")),
            }
        }
        let replans = ctrl.history().iter().filter(|e| e.query == query).count();
        out.push_str(&format!("replans so far: {replans}\n"));
        Ok(out)
    }

    /// Phase 3½ of [`Self::tick`]: evaluate the replan triggers against
    /// this tick's instant-scoped telemetry and hot-swap any query whose
    /// best candidate changed. Runs *before* the checkpoint cut so a
    /// snapshot taken this tick already carries the adapted plans.
    fn evaluate_replans(&mut self, at: Instant) {
        let Some(mut ctrl) = self.adaptive.take() else {
            return;
        };
        // triggers, from logical state only (breakers + rolling health)
        let breaker_edge = ctrl.observe_breakers(&self.resilience.breakers());
        let worst = self
            .health
            .report()
            .iter()
            .map(|h| h.failure_rate)
            .fold(0.0, f64::max);
        let degraded = ctrl.observe_degradation(worst);
        let reason = if breaker_edge && ctrl.policy().on_breaker_transition {
            Some(ReplanReason::BreakerTransition)
        } else if degraded {
            Some(ReplanReason::SustainedDegradation)
        } else {
            None
        };
        if let Some(reason) = reason {
            let costs = self.assemble_costs(&ctrl);
            let names: Vec<String> = ctrl.tracked().iter().map(|s| s.to_string()).collect();
            for name in names {
                self.replan_query(&mut ctrl, &name, at, reason, false, &costs);
            }
        }
        self.adaptive = Some(ctrl);
    }

    /// Re-rank one query's candidates and hot-swap if a strictly cheaper
    /// plan than the running one exists. Idempotent: a restored node
    /// re-detecting the same degradation finds its best candidate already
    /// running and applies nothing.
    fn replan_query(
        &mut self,
        ctrl: &mut AdaptiveController,
        name: &str,
        at: Instant,
        reason: ReplanReason,
        force: bool,
        costs: &serena_core::rewrite::MeasuredCosts,
    ) -> bool {
        if !force && !ctrl.cooled_down(name, at) {
            return false;
        }
        let Some(original) = ctrl.original(name) else {
            return false;
        };
        let current = ctrl.candidate(name).unwrap_or(0);
        let candidates = serena_stream::candidates_for(original, &self.tables);
        let mut best: Option<(usize, f64)> = None;
        for (i, cand) in candidates.iter().enumerate() {
            let Ok(e) = serena_stream::estimate_stream(cand, &self.tables, costs) else {
                continue;
            };
            // ties keep the lower index — candidate order is
            // deterministic, so so is the choice
            if best.is_none_or(|(_, c)| e.cost < c) {
                best = Some((i, e.cost));
            }
        }
        let Some((best, best_cost)) = best else {
            return false;
        };
        if best == current {
            return false;
        }
        let current_cost =
            serena_stream::estimate_stream(&candidates[current], &self.tables, costs)
                .map(|e| e.cost)
                .unwrap_or(f64::INFINITY);
        if best_cost >= current_cost {
            return false;
        }
        let old_plan = &candidates[current];
        let new_plan = &candidates[best];
        let migration = serena_stream::migration_pairs(
            &serena_stream::state_keys(old_plan, &self.tables),
            &serena_stream::state_keys(new_plan, &self.tables),
        );
        let mut sources = self.tables.source_set_for(new_plan);
        if let Err(e) = self
            .processor
            .swap_query(name, new_plan, &mut sources, &migration)
        {
            self.trace
                .emit(&serena_core::telemetry::TraceEvent::Failure {
                    scope: format!("replan:{name}"),
                    at,
                    message: e.to_string(),
                });
            return false;
        }
        ctrl.record(at, name, reason, best);
        self.telemetry
            .counter(
                "serena_replan_total",
                &[("query", name), ("reason", reason.label())],
            )
            .inc();
        if let Some(mut span) = self.tracer.start("query.replan", at) {
            span.attr_str("query", name);
            span.attr_str("reason", reason.label());
            span.attr_u64("from", current as u64);
            span.attr_u64("to", best as u64);
            span.attr_u64("windows_migrated", migration.windows.len() as u64);
            span.attr_u64("caches_migrated", migration.invokes.len() as u64);
        }
        true
    }

    /// Assemble the telemetry-fed cost model from the runtime's current
    /// instant-scoped state: per-prototype failure rates and breaker
    /// flags aggregated over the registry's providers, the global β-cache
    /// hit rate, and observed cardinalities of every table the tracked
    /// plans read. Always [deterministic] — wall-clock latency never
    /// feeds a replan decision.
    ///
    /// [deterministic]: serena_core::rewrite::MeasuredCosts::deterministic
    fn assemble_costs(&self, ctrl: &AdaptiveController) -> serena_core::rewrite::MeasuredCosts {
        use serena_core::rewrite::{MeasuredCosts, ServiceObservation};
        let mut costs = MeasuredCosts::new().deterministic(true);
        // global β-cache hit rate from the processors' rolling stats
        let (mut hits, mut misses) = (0u64, 0u64);
        for name in self.processor.names() {
            if let Some(s) = self.processor.stats(name) {
                hits += s.cache_hits;
                misses += s.cache_misses;
            }
        }
        let hit_rate = if hits + misses > 0 {
            hits as f64 / (hits + misses) as f64
        } else {
            0.0
        };
        // per-prototype health/breaker aggregation over providers
        let registry = self.erm.registry();
        let mut observations: std::collections::BTreeMap<String, ServiceObservation> =
            std::collections::BTreeMap::new();
        for reference in registry.references() {
            let Some(service) = registry.resolve(&reference) else {
                continue;
            };
            let failure_rate = self
                .health
                .health_of(&reference)
                .map_or(0.0, |h| h.failure_rate);
            let breaker_open =
                !matches!(self.resilience.breaker_of(&reference), BreakerState::Closed);
            for proto in service.prototypes() {
                let obs = observations.entry(proto.name().to_string()).or_default();
                obs.failure_rate = obs.failure_rate.max(failure_rate);
                obs.breaker_open |= breaker_open;
                obs.cache_hit_rate = hit_rate;
            }
        }
        for (proto, obs) in observations {
            costs.observe(proto, obs);
        }
        for name in ctrl.tracked() {
            if let Some(plan) = ctrl.original(name) {
                for source in crate::adaptive::source_names(plan) {
                    if let Some(handle) = self.tables.table(&source) {
                        costs.observe_cardinality(source, handle.snapshot().len());
                    }
                }
            }
        }
        costs
    }
}

/// The full β invoker stack: registry → panic containment (innermost, so
/// a panicking service body becomes an [`EvalError::Panicked`] every outer
/// layer sees as an ordinary failure) → instrumentation (metrics, health,
/// trace) → resilience (retry/deadline/breaker, so every retry attempt is
/// individually observed and counted) → cross-query β dedup (outermost:
/// only the *first* logical caller of a `(service, args)` key at an
/// instant descends into resilience and performs — possibly retries — the
/// upstream call; coalesced callers share its final result and are
/// counted in `serena_beta_dedup_total`). The resilient layer is a no-op
/// pass-through when `policy` is disabled, the dedup layer when
/// `dedup_enabled` is false.
/// Render [`Pems::profile`]'s report from a flight-recorder snapshot:
/// tick timeline, slowest operators by total self time (parent-chain
/// ownership walk, tolerant of evicted ancestors), and the p99 tick with
/// its exemplar span.
fn profile_text(
    query: &str,
    spans: &[SpanRecord],
    tick_hist: &serena_core::telemetry::Histogram,
) -> String {
    use std::collections::{HashMap, HashSet};
    let by_id: HashMap<u64, &SpanRecord> = spans.iter().map(|s| (s.id, s)).collect();
    let ticks: Vec<&SpanRecord> = spans
        .iter()
        .filter(|s| s.name == "query.tick" && s.attr_str("query") == Some(query))
        .collect();
    if ticks.is_empty() {
        return format!(
            "no retained ticks for query `{query}` (recorder disarmed, or spans evicted)\n"
        );
    }
    let tick_ids: HashSet<u64> = ticks.iter().map(|s| s.id).collect();
    let mut out = format!("query `{query}`: {} retained tick(s)\n", ticks.len());

    const TIMELINE: usize = 12;
    let shown = &ticks[ticks.len().saturating_sub(TIMELINE)..];
    if shown.len() < ticks.len() {
        out.push_str(&format!(
            "  … {} earlier tick(s) elided\n",
            ticks.len() - shown.len()
        ));
    }
    for t in shown {
        out.push_str(&format!(
            "  t={:<6} {:9.3}ms  +{} -{} errors={}{}\n",
            t.at.ticks(),
            t.duration_ns() as f64 / 1e6,
            t.attr_u64("inserted").unwrap_or(0),
            t.attr_u64("deleted").unwrap_or(0),
            t.attr_u64("errors").unwrap_or(0),
            if t.attr_u64("panicked") == Some(1) {
                " PANICKED"
            } else {
                ""
            },
        ));
    }

    // Ownership: an operator span belongs to this query if walking its
    // parent chain reaches one of the query's tick spans. A broken chain
    // (ancestor evicted from the ring) drops the span rather than guessing.
    let owned = |span: &SpanRecord| -> bool {
        let mut s = span;
        loop {
            if s.parent == 0 {
                return false;
            }
            if tick_ids.contains(&s.parent) {
                return true;
            }
            match by_id.get(&s.parent) {
                Some(p) => s = p,
                None => return false,
            }
        }
    };
    // (self_ns total, applications, tuples_out total) per (operator, node)
    type OpTotals = ((&'static str, u64), (u64, u64, u64));
    let mut ops: HashMap<(&str, u64), (u64, u64, u64)> = HashMap::new();
    for s in spans.iter().filter(|s| s.name.starts_with("op.")) {
        if !owned(s) {
            continue;
        }
        let node = s.attr_u64("node").unwrap_or(u64::MAX);
        let e = ops.entry((s.name, node)).or_insert((0, 0, 0));
        e.0 += s.attr_u64("self_ns").unwrap_or_else(|| s.duration_ns());
        e.1 += 1;
        e.2 += s.attr_u64("tuples_out").unwrap_or(0);
    }
    let mut ranked: Vec<OpTotals> = ops.into_iter().collect();
    ranked.sort_by(|(ka, va), (kb, vb)| vb.0.cmp(&va.0).then(ka.1.cmp(&kb.1)));
    out.push_str("slowest operators (total self time across retained ticks)\n");
    if ranked.is_empty() {
        out.push_str("  (no operator spans retained)\n");
    }
    for ((name, node), (self_ns, calls, tuples)) in ranked.into_iter().take(5) {
        out.push_str(&format!(
            "  node {node:<3} {name:<16} self={:9.3}ms calls={calls} tuples_out={tuples}\n",
            self_ns as f64 / 1e6
        ));
    }
    out.push_str(&format!(
        "p99 tick: {:.3}ms{}\n",
        tick_hist.p99() as f64 / 1e6,
        tick_hist
            .exemplar_for_quantile(0.99)
            .map_or(String::new(), |id| format!(" (exemplar span {id})")),
    ));
    out
}

#[allow(clippy::too_many_arguments)]
fn build_invoker_stack<'r>(
    registry: &'r DynamicRegistry,
    telemetry: &'r Arc<MetricsRegistry>,
    health: &'r HealthTracker,
    trace: &'r dyn TraceSink,
    tracer: &'r Arc<FlightRecorder>,
    policy: ResiliencePolicy,
    state: Arc<ResilienceState>,
    dedup: Arc<DedupState>,
    dedup_enabled: bool,
) -> Box<dyn Invoker + 'r> {
    InvokerStack::new(registry)
        .layer(CatchPanicLayer::new())
        .layer(
            InstrumentedLayer::new()
                .registry(telemetry.as_ref())
                .observer(health)
                .trace(trace)
                .tracer(tracer.as_ref()),
        )
        .layer(
            ResilientLayer::new(policy, state)
                .health(health)
                .registry(telemetry.as_ref())
                .tracer(tracer.as_ref())
                .trace(trace),
        )
        .layer(
            DedupLayer::new(dedup)
                .registry(Arc::clone(telemetry))
                .enabled(dedup_enabled)
                .tracer(Arc::clone(tracer)),
        )
        .into_inner()
}

#[cfg(test)]
mod tests {
    use super::*;
    use serena_core::tuple;
    use serena_core::value::Value;

    const SETUP: &str = "
        PROTOTYPE sendMessage( address STRING, text STRING ) : ( sent BOOLEAN ) ACTIVE;
        PROTOTYPE getTemperature( ) : ( temperature REAL );
        SERVICE email IMPLEMENTS sendMessage;
        EXTENDED RELATION contacts (
          name STRING, address STRING, text STRING VIRTUAL,
          messenger SERVICE, sent BOOLEAN VIRTUAL
        ) USING BINDING PATTERNS ( sendMessage[messenger] ( address, text ) : ( sent ) );
        INSERT INTO contacts VALUES
          ('Nicolas', 'nicolas@elysee.fr', 'email'),
          ('Carla', 'carla@elysee.fr', 'email');
    ";

    fn pems_with_messenger() -> Pems {
        let pems = Pems::builder().bus(BusConfig::instant()).build();
        let (svc, _outbox) = serena_services::devices::messenger::SimMessenger::new(
            serena_services::devices::messenger::MessengerKind::Email,
        )
        .into_service();
        pems.directory().register("email", svc);
        pems
    }

    #[test]
    fn ddl_program_and_one_shot_execute() {
        let mut pems = pems_with_messenger();
        pems.run_program(SETUP).unwrap();
        let outcomes = pems
            .run_program(
                "EXECUTE INVOKE[sendMessage[messenger]](ASSIGN[text := 'Hi'](SELECT[name = 'Nicolas'](contacts)));",
            )
            .unwrap();
        let ExecOutcome::OneShot(out) = &outcomes[0] else {
            panic!()
        };
        assert_eq!(out.relation.len(), 1);
        assert_eq!(out.actions.len(), 1);
    }

    #[test]
    fn register_continuous_query_via_ddl() {
        let mut pems = pems_with_messenger();
        pems.run_program(SETUP).unwrap();
        pems.run_program("REGISTER QUERY watch AS SELECT[messenger = 'email'](contacts);")
            .unwrap();
        let reports = pems.tick();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].1.delta.inserts.len(), 2);
        // one-shot snapshot agrees with continuous state
        let rel = pems.processor().current_relation("watch").unwrap();
        assert_eq!(rel.len(), 2);
    }

    #[test]
    fn discovery_query_maintains_provider_table() {
        let mut pems = Pems::builder().bus(BusConfig::instant()).build();
        pems.run_program(
            "PROTOTYPE getTemperature( ) : ( temperature REAL );
             EXTENDED RELATION sensors (
               sensor SERVICE, location STRING, temperature REAL VIRTUAL
             ) USING BINDING PATTERNS ( getTemperature[sensor] );",
        )
        .unwrap();
        pems.register_discovery("sensors", "getTemperature", "sensor")
            .unwrap();
        pems.register_query(
            "all_sensors",
            &serena_stream::plan::StreamPlan::source("sensors"),
        )
        .unwrap();

        // deploy a sensor through a LERM, with metadata
        let lerm = pems.local_erm("lab");
        lerm.register_service(
            "sensor01",
            serena_core::service::fixtures::temperature_sensor(1),
            pems.clock(),
        );
        pems.directory()
            .set("sensor01", "location", Value::str("corridor"));

        let reports = pems.tick(); // discovery applies, table refreshes, query sees row
        assert_eq!(reports[0].1.delta.inserts.len(), 1);
        // sensor leaves → row retracted
        lerm.unregister_service("sensor01", pems.clock());
        let reports = pems.tick();
        assert_eq!(reports[0].1.delta.deletes.len(), 1);
    }

    #[test]
    fn insert_delete_via_ddl_affect_queries() {
        let mut pems = pems_with_messenger();
        pems.run_program(SETUP).unwrap();
        pems.run_program("REGISTER QUERY watch AS contacts;")
            .unwrap();
        pems.tick();
        pems.run_program("DELETE FROM contacts VALUES ('Carla', 'carla@elysee.fr', 'email');")
            .unwrap();
        let reports = pems.tick();
        assert_eq!(reports[0].1.delta.deletes.len(), 1);
        assert_eq!(pems.processor().current_relation("watch").unwrap().len(), 1);
    }

    #[test]
    fn errors_are_reported_not_panicked() {
        let mut pems = Pems::default();
        assert!(pems.run_program("INSERT INTO ghost VALUES (1);").is_err());
        assert!(pems.run_program("DROP RELATION ghost;").is_err());
        assert!(pems
            .run_program("EXECUTE SELECT[x = 1](WINDOW[1](s));")
            .is_err());
        assert!(pems.run_program("this is not DDL").is_err());
    }

    #[test]
    fn unregister_query_statement() {
        let mut pems = pems_with_messenger();
        pems.run_program(SETUP).unwrap();
        pems.run_program("REGISTER QUERY watch AS contacts;")
            .unwrap();
        assert_eq!(pems.processor().names(), vec!["watch"]);
        pems.run_program("UNREGISTER QUERY watch;").unwrap();
        assert!(pems.processor().names().is_empty());
        assert!(pems.run_program("UNREGISTER QUERY watch;").is_err());
    }

    #[test]
    fn serena_sql_one_shot_and_continuous() {
        let mut pems = pems_with_messenger();
        pems.run_program(SETUP).unwrap();
        // one-shot with WHERE-before-invocation semantics
        let outcome = pems
            .run_sql(
                None,
                "SELECT sent FROM contacts
                 WITH text := 'Hi'
                 USING sendMessage[messenger]
                 WHERE name = 'Nicolas'",
            )
            .unwrap();
        let ExecOutcome::OneShot(out) = outcome else {
            panic!()
        };
        assert_eq!(out.actions.len(), 1);
        assert_eq!(out.relation.len(), 1);

        // continuous: windowed source → auto-registered
        pems.run_program(
            "EXTENDED RELATION readings ( location STRING, temperature REAL ) STREAM;",
        )
        .unwrap();
        let outcome = pems
            .run_sql(
                None,
                "SELECT location FROM readings WINDOW 2 WHERE temperature > 30.0",
            )
            .unwrap();
        let ExecOutcome::Registered(name) = outcome else {
            panic!()
        };
        assert_eq!(name, "sql_1");
        pems.tables()
            .push_stream("readings", tuple!["office", 35.0]);
        let reports = pems.tick();
        let r = reports.iter().find(|(n, _)| *n == name).unwrap();
        assert_eq!(r.1.delta.inserts.len(), 1);

        // explicitly named registration
        let outcome = pems
            .run_sql(Some("hot2"), "SELECT location FROM readings WINDOW 1")
            .unwrap();
        assert!(matches!(outcome, ExecOutcome::Registered(n) if n == "hot2"));
        assert!(pems.processor().names().contains(&"hot2"));
        // name collisions are rejected
        assert!(pems
            .run_sql(Some("hot2"), "SELECT location FROM readings WINDOW 1")
            .is_err());
    }

    #[test]
    fn stream_relation_via_ddl_and_push() {
        let mut pems = Pems::default();
        pems.run_program(
            "EXTENDED RELATION readings ( location STRING, temperature REAL ) STREAM;
             REGISTER QUERY hot AS SELECT[temperature > 30.0](WINDOW[1](readings));",
        )
        .unwrap();
        assert!(pems
            .tables()
            .push_stream("readings", tuple!["office", 35.0]));
        let reports = pems.tick();
        assert_eq!(reports[0].1.delta.inserts.len(), 1);
    }

    #[test]
    fn explain_analyze_totals_match_result_cardinality() {
        let mut pems = pems_with_messenger();
        pems.run_program(SETUP).unwrap();
        let plan = Plan::relation("contacts")
            .select(serena_core::formula::Formula::eq_const(
                "name",
                Value::str("Nicolas"),
            ))
            .assign_const("text", Value::str("Hi"))
            .invoke("sendMessage", "messenger");
        let ea = pems.explain_analyze(&plan).unwrap();

        // the annotated root agrees with the relation actually returned
        assert_eq!(
            ea.stats.root_tuples_out(),
            Some(ea.outcome.relation.len() as u64)
        );
        // one tuple survived the select, so exactly one β invocation
        assert_eq!(ea.stats.total_invocations(), 1);
        assert_eq!(ea.stats.total_failures(), 0);
        // rendering: one line per plan node, counts inline
        let lines: Vec<&str> = ea.rendered.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("Invoke sendMessage[messenger]"));
        assert!(lines[0].contains("rows=1"));
        assert!(lines[0].contains("invocations=1"));
        assert!(ea.to_string().contains("Relation contacts"));
    }

    #[test]
    fn builder_exec_options_apply_to_one_shot_and_continuous() {
        let build = |options: ExecOptions| {
            let mut pems = Pems::builder()
                .bus(BusConfig::instant())
                .exec_options(options)
                .build();
            let (svc, _outbox) = serena_services::devices::messenger::SimMessenger::new(
                serena_services::devices::messenger::MessengerKind::Email,
            )
            .into_service();
            pems.directory().register("email", svc);
            pems.run_program(SETUP).unwrap();
            pems
        };
        let plan = Plan::relation("contacts")
            .assign_const("text", Value::str("Hi"))
            .invoke("sendMessage", "messenger");

        let serial = build(ExecOptions::serial());
        let parallel = build(ExecOptions::parallel(4));
        let a = serial.one_shot(&plan).unwrap();
        let b = parallel.one_shot(&plan).unwrap();
        assert_eq!(a.relation, b.relation);
        assert_eq!(a.actions, b.actions);

        // continuous registration inherits the runtime's options and the
        // parallel tick produces the same report as the serial one
        let mut serial = serial;
        let mut parallel = parallel;
        for p in [&mut serial, &mut parallel] {
            p.run_program(
                "REGISTER QUERY send AS INVOKE[sendMessage[messenger]](ASSIGN[text := 'Hi'](contacts));",
            )
            .unwrap();
        }
        let ra = serial.tick();
        let rb = parallel.tick();
        assert_eq!(ra[0].1.delta, rb[0].1.delta);
        assert_eq!(ra[0].1.actions, rb[0].1.actions);
        assert_eq!(
            ra[0].1.stats.total_invocations(),
            rb[0].1.stats.total_invocations()
        );
    }

    #[test]
    fn builder_configures_clock_and_metrics() {
        let sink = Arc::new(serena_core::metrics::ExecStats::new());
        let pems = Pems::builder()
            .bus(BusConfig::instant())
            .clock(Instant(7))
            .metrics(sink.clone())
            .build();
        assert_eq!(pems.clock(), Instant(7));

        let mut pems = pems;
        let (svc, _outbox) = serena_services::devices::messenger::SimMessenger::new(
            serena_services::devices::messenger::MessengerKind::Email,
        )
        .into_service();
        pems.directory().register("email", svc);
        pems.run_program(SETUP).unwrap();

        // one-shot observations land in the PEMS-wide sink...
        pems.one_shot(&Plan::relation("contacts")).unwrap();
        assert_eq!(pems.run_ticks(1).len(), 0);
        let scan = sink.node(serena_core::metrics::NodeId(0)).unwrap();
        assert_eq!(scan.tuples_out, 2);

        // ...and continuous ticks tee into it too
        pems.run_program("REGISTER QUERY watch AS contacts;")
            .unwrap();
        sink.clear();
        let reports = pems.tick();
        assert_eq!(reports.len(), 1);
        let node = sink.node(serena_core::metrics::NodeId(0)).unwrap();
        assert_eq!(node.tuples_out, 2);
        // ticks advanced the builder-seeded clock
        assert_eq!(pems.clock(), Instant(9));
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("serena-pems-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn periodic_checkpoints_follow_the_cadence() {
        let dir = temp_dir("cadence");
        let mut pems = Pems::builder()
            .bus(BusConfig::instant())
            .checkpoint(&dir, 2)
            .build();
        let (svc, _outbox) = serena_services::devices::messenger::SimMessenger::new(
            serena_services::devices::messenger::MessengerKind::Email,
        )
        .into_service();
        pems.directory().register("email", svc);
        pems.run_program(SETUP).unwrap();
        pems.run_program("REGISTER QUERY watch AS contacts;")
            .unwrap();
        pems.run_ticks(5);
        let rm = pems.recovery().expect("configured");
        assert_eq!(rm.checkpoints_written(), 2); // after ticks 2 and 4
        assert!(rm.checkpoint_path().exists());
        assert_eq!(
            pems.metrics_registry()
                .counter_value("serena_checkpoint_total", &[]),
            Some(2)
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn restore_resumes_exactly_where_the_checkpoint_cut() {
        let dir = temp_dir("restore");
        let setup = || {
            let mut pems = pems_with_messenger();
            pems.run_program(SETUP).unwrap();
            pems.run_program("REGISTER QUERY watch AS SELECT[messenger = 'email'](contacts);")
                .unwrap();
            pems
        };

        let mut original = setup();
        original.run_ticks(2);
        original
            .run_program("DELETE FROM contacts VALUES ('Carla', 'carla@elysee.fr', 'email');")
            .unwrap();
        original.checkpoint_to(&dir).unwrap(); // pending delete captured

        // crash: re-run the static setup on a fresh process, rehydrate
        let mut recovered = setup();
        recovered.restore_from(&dir).unwrap();
        assert_eq!(recovered.clock(), original.clock());
        assert_eq!(
            recovered.processor().stats("watch"),
            original.processor().stats("watch")
        );

        // both runtimes tick forward in lock-step: the pending delete
        // commits identically
        let a = original.tick();
        let b = recovered.tick();
        assert_eq!(a[0].1.delta, b[0].1.delta);
        assert_eq!(a[0].1.delta.deletes.len(), 1);
        assert_eq!(
            recovered.processor().current_relation("watch").unwrap(),
            original.processor().current_relation("watch").unwrap()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_errors_are_reported_not_fatal() {
        // no configured manager → checkpoint_now is a typed error
        let mut pems = pems_with_messenger();
        assert!(matches!(pems.checkpoint_now(), Err(PemsError::Other(_))));
        // restoring garbage is a typed snapshot error
        assert!(matches!(
            pems.restore_bytes(b"not a snapshot"),
            Err(PemsError::Snapshot(_))
        ));
        // a checkpoint directory that cannot be created is counted and
        // traced, and the tick still succeeds
        use serena_core::telemetry::MemoryTrace;
        let trace = Arc::new(MemoryTrace::new());
        let mut pems = Pems::builder()
            .bus(BusConfig::instant())
            .trace(trace.clone())
            .checkpoint("/proc/serena-cannot-write-here", 1)
            .build();
        pems.run_program("EXTENDED RELATION t ( x INTEGER );")
            .unwrap();
        pems.run_program("REGISTER QUERY q AS t;").unwrap();
        let reports = pems.tick();
        assert_eq!(reports.len(), 1);
        assert_eq!(
            pems.metrics_registry()
                .counter_value("serena_checkpoint_errors_total", &[]),
            Some(1)
        );
        assert!(trace.events().iter().any(|e| matches!(
            e,
            serena_core::telemetry::TraceEvent::Failure { scope, .. } if scope == "checkpoint"
        )));
    }

    /// Acceptance (PR 3): `service_health()` reflects injected
    /// [`FaultPolicy`] failures and `render_metrics()` produces valid
    /// Prometheus text for a scenario run.
    #[test]
    fn telemetry_health_and_prometheus_render() {
        use serena_core::telemetry::{MemoryTrace, TraceEvent};
        use serena_services::faults::{FaultPolicy, FaultyService};
        use serena_services::health::HealthStatus;

        let trace = Arc::new(MemoryTrace::new());
        let mut pems = Pems::builder()
            .bus(BusConfig::instant())
            .trace(trace.clone())
            .build();
        let (svc, _outbox) = serena_services::devices::messenger::SimMessenger::new(
            serena_services::devices::messenger::MessengerKind::Email,
        )
        .into_service();
        // every invocation fails → health must notice through β
        let faulty = FaultyService::new(svc, FaultPolicy::EveryNth(1));
        pems.directory().register("email", faulty.clone());
        pems.run_program(SETUP).unwrap();

        // a clean scan populates the per-operator series...
        pems.one_shot(&Plan::relation("contacts")).unwrap();
        // ...and a failing β invocation is a hard one-shot error, but the
        // instrumented invoker observed it on the way out
        let plan = Plan::relation("contacts")
            .assign_const("text", Value::str("Hi"))
            .invoke("sendMessage", "messenger");
        let err = pems.one_shot(&plan).unwrap_err();
        assert!(matches!(err, PemsError::Eval(_)));

        let health = pems.service_health();
        assert_eq!(health.len(), 1);
        let h = &health[0];
        assert_eq!(h.reference.as_str(), "email");
        assert_eq!(h.attempts, faulty.attempts());
        assert!(h.failures > 0);
        assert_ne!(h.status(), HealthStatus::Healthy);
        assert!(h.last_error.is_some());

        // Prometheus text: counters, histogram buckets, per-service series
        let text = pems.render_metrics();
        assert!(text.contains("# TYPE serena_op_applications_total counter"));
        assert!(text.contains("# TYPE serena_service_latency_ns histogram"));
        assert!(text.contains("serena_service_latency_ns_bucket"));
        assert!(text.contains("le=\"+Inf\""));
        assert!(text.contains("serena_service_failures_total{service=\"email\"}"));
        // the scheduler/dedup series render (zero-valued) from the start,
        // so scrapes and the shell's `.metrics` always expose them
        assert!(text.contains("# TYPE serena_sched_steals_total counter"));
        assert!(text.contains("# TYPE serena_sched_queue_depth gauge"));
        assert!(text.contains("# TYPE serena_beta_dedup_total counter"));

        // the configured trace sink saw the failed invocations
        assert!(trace
            .events()
            .iter()
            .any(|e| matches!(e, TraceEvent::Invocation { ok: false, .. })));
    }
}
