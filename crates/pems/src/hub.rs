//! Stream plumbing: broadcast hubs and environment-fed stream sources.
//!
//! Several registered queries may read the same infinite XD-Relation, and
//! each [`serena_stream::source::StreamSource`] is single-consumer, so the
//! Extended Table Manager hands each query its own subscription:
//!
//! * [`StreamHub`] — an append-only log with per-subscriber cursors, for
//!   externally pushed streams (DDL-declared `STREAM` relations);
//! * [`SensorSampler`] — the temperature stream of the surveillance
//!   scenario: each tick, sample every currently-discovered provider of a
//!   prototype (new sensors join the stream as soon as discovery sees
//!   them — "without the need to stop the continuous query", §5.2);
//! * [`RssStream`] — the RSS wrapper of scenario 2: merge the items the
//!   simulated feeds publish at each instant.

use std::sync::Arc;

use serena_core::sync::Mutex;

use serena_core::prototype::Prototype;
use serena_core::service::Invoker;
use serena_core::time::Instant;
use serena_core::tuple::Tuple;
use serena_core::value::Value;
use serena_services::devices::rss::SimRssFeed;
use serena_services::ServiceDirectory;
use serena_stream::source::StreamSource;

/// An append-only broadcast log: every subscriber sees every tuple pushed
/// after it subscribed.
#[derive(Clone, Default)]
pub struct StreamHub {
    log: Arc<Mutex<Vec<Tuple>>>,
}

impl StreamHub {
    /// Empty hub.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a tuple; every live subscription will deliver it on its next
    /// poll.
    pub fn push(&self, t: Tuple) {
        self.log.lock().push(t);
    }

    /// Total tuples ever pushed.
    pub fn len(&self) -> usize {
        self.log.lock().len()
    }

    /// True iff nothing was ever pushed.
    pub fn is_empty(&self) -> bool {
        self.log.lock().is_empty()
    }

    /// A new subscription starting at the current end of the log (streams
    /// are append-only: history is not replayed).
    pub fn subscribe(&self) -> HubSubscription {
        HubSubscription {
            log: Arc::clone(&self.log),
            offset: self.log.lock().len(),
        }
    }
}

/// One subscriber's cursor over a [`StreamHub`].
pub struct HubSubscription {
    log: Arc<Mutex<Vec<Tuple>>>,
    offset: usize,
}

impl StreamSource for HubSubscription {
    fn poll(&mut self, _at: Instant) -> Vec<Tuple> {
        let log = self.log.lock();
        let out = log[self.offset..].to_vec();
        self.offset = log.len();
        out
    }
}

/// A stream that samples every discovered provider of a prototype each
/// tick, emitting `(…metadata attrs…, …output attrs…)` tuples.
///
/// For the surveillance scenario: prototype `getTemperature`, metadata
/// attribute `location` → stream `(location, temperature)`.
pub struct SensorSampler {
    invoker: Arc<dyn Invoker>,
    directory: Arc<dyn ServiceDirectory>,
    prototype: Arc<Prototype>,
    /// Metadata keys prepended to each output tuple (e.g. `["location"]`).
    metadata_attrs: Vec<String>,
    errors: Arc<Mutex<u64>>,
}

impl SensorSampler {
    /// Sample providers of `prototype`, prefixing outputs with the given
    /// directory metadata attributes.
    pub fn new(
        invoker: Arc<dyn Invoker>,
        directory: Arc<dyn ServiceDirectory>,
        prototype: Arc<Prototype>,
        metadata_attrs: &[&str],
    ) -> Self {
        SensorSampler {
            invoker,
            directory,
            prototype,
            metadata_attrs: metadata_attrs.iter().map(|s| s.to_string()).collect(),
            errors: Arc::new(Mutex::new(0)),
        }
    }

    /// Shared counter of sampling failures (dead sensors etc.).
    pub fn error_counter(&self) -> Arc<Mutex<u64>> {
        Arc::clone(&self.errors)
    }
}

impl StreamSource for SensorSampler {
    fn poll(&mut self, at: Instant) -> Vec<Tuple> {
        let mut out = Vec::new();
        'providers: for reference in self.invoker.providers_of(self.prototype.name()) {
            let mut prefix: Vec<Value> = Vec::with_capacity(self.metadata_attrs.len());
            for key in &self.metadata_attrs {
                match self.directory.metadata(&reference, key) {
                    Some(v) => prefix.push(v),
                    None => continue 'providers, // not describable yet
                }
            }
            match self
                .invoker
                .invoke(&self.prototype, &reference, &Tuple::empty(), at)
            {
                Ok(results) => {
                    for r in results {
                        let mut values = prefix.clone();
                        values.extend(r.values().cloned());
                        out.push(Tuple::new(values));
                    }
                }
                Err(_) => {
                    *self.errors.lock() += 1;
                }
            }
        }
        out
    }
}

/// Merge the per-instant items of several simulated RSS feeds into one
/// `(source, title)` stream.
pub struct RssStream {
    feeds: Vec<SimRssFeed>,
}

impl RssStream {
    /// A stream over the given feeds.
    pub fn new(feeds: Vec<SimRssFeed>) -> Self {
        RssStream { feeds }
    }
}

impl StreamSource for RssStream {
    fn poll(&mut self, at: Instant) -> Vec<Tuple> {
        self.feeds
            .iter()
            .flat_map(|f| f.items_at(at))
            .map(|item| Tuple::new(vec![Value::str(&item.source), Value::str(&item.title)]))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serena_core::prototype::examples as protos;
    use serena_core::tuple;
    use serena_services::directory::NodeDirectory;
    use serena_services::registry::DynamicRegistry;

    #[test]
    fn hub_broadcasts_to_all_subscribers() {
        let hub = StreamHub::new();
        let mut a = hub.subscribe();
        hub.push(tuple![1]);
        let mut b = hub.subscribe(); // subscribes after push → misses it
        hub.push(tuple![2]);
        assert_eq!(a.poll(Instant(0)), vec![tuple![1], tuple![2]]);
        assert_eq!(b.poll(Instant(0)), vec![tuple![2]]);
        assert!(a.poll(Instant(1)).is_empty());
        assert_eq!(hub.len(), 2);
    }

    #[test]
    fn sensor_sampler_emits_located_readings() {
        let reg = Arc::new(DynamicRegistry::new());
        reg.register(
            "sensor01",
            serena_core::service::fixtures::temperature_sensor(1),
        );
        reg.register(
            "sensor06",
            serena_core::service::fixtures::temperature_sensor(6),
        );
        let dir = Arc::new(NodeDirectory::new("test"));
        dir.set("sensor01", "location", Value::str("corridor"));
        dir.set("sensor06", "location", Value::str("office"));
        let mut sampler = SensorSampler::new(
            reg.clone() as Arc<dyn Invoker>,
            dir,
            protos::get_temperature(),
            &["location"],
        );
        let batch = sampler.poll(Instant(3));
        assert_eq!(batch.len(), 2);
        for t in &batch {
            assert_eq!(t.arity(), 2);
            assert!(t[1].as_real().is_some());
        }
        // deterministic at the instant
        assert_eq!(batch, sampler.poll(Instant(3)));
    }

    #[test]
    fn sensor_sampler_skips_undescribed_and_counts_failures() {
        let reg = Arc::new(DynamicRegistry::new());
        reg.register(
            "sensor01",
            serena_core::service::fixtures::temperature_sensor(1),
        );
        // a registered-but-faulty sensor
        let flaky = serena_services::faults::FaultyService::new(
            serena_core::service::fixtures::temperature_sensor(2),
            serena_services::faults::FaultPolicy::EveryNth(1),
        );
        reg.register("sensor02", flaky);
        let dir = Arc::new(NodeDirectory::new("test"));
        dir.set("sensor01", "location", Value::str("corridor"));
        dir.set("sensor02", "location", Value::str("roof"));
        // sensor03 registered but no metadata
        reg.register(
            "sensor03",
            serena_core::service::fixtures::temperature_sensor(3),
        );
        let mut sampler = SensorSampler::new(
            reg.clone() as Arc<dyn Invoker>,
            dir,
            protos::get_temperature(),
            &["location"],
        );
        let errors = sampler.error_counter();
        let batch = sampler.poll(Instant(0));
        assert_eq!(batch.len(), 1); // only sensor01 delivers
        assert_eq!(*errors.lock(), 1);
    }

    #[test]
    fn rss_stream_merges_feeds() {
        let feeds = vec![
            SimRssFeed::new("lemonde", 17, 100, 30),
            SimRssFeed::new("figaro", 29, 100, 30),
        ];
        let expected: usize = feeds.iter().map(|f| f.items_at(Instant(4)).len()).sum();
        let mut s = RssStream::new(feeds);
        let batch = s.poll(Instant(4));
        assert_eq!(batch.len(), expected);
        assert!(batch.iter().all(|t| t.arity() == 2));
    }
}
