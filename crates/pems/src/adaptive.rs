//! Adaptive re-optimization under degradation: bookkeeping for the
//! telemetry-fed replan loop ([`crate::pems::Pems::tick`] phase 3½).
//!
//! The controller decides *when* to re-rank a query's candidate plans —
//! from logically-timed signals only, so two runs with the same fault
//! schedule replan at the same instants — and remembers *which* candidate
//! each query currently runs, so a restored node resumes with the adapted
//! plan. The ranking itself (candidate generation + measured-cost
//! estimation + hot swap) lives in the PEMS facade, which owns the
//! tables, telemetry and processor the decision consumes.
//!
//! Triggers, all derived from instant-scoped state:
//! - a **circuit-breaker transition** (closed → open, open → half-open,
//!   …) on any tracked service — the crispest degradation edge;
//! - **sustained degradation**: some service's rolling failure rate at or
//!   above a threshold for N consecutive ticks.
//!
//! Wall-clock latency histograms are deliberately *not* triggers and are
//! excluded from the replan-time cost model
//! ([`MeasuredCosts::deterministic`]): replay determinism is a core
//! invariant (`tests/envgen_determinism.rs`), and decisions fed by timing
//! would diverge between byte-identical replays.
//!
//! [`MeasuredCosts::deterministic`]: serena_core::rewrite::MeasuredCosts::deterministic

use std::collections::BTreeMap;

use serena_core::snapshot::{Reader, SnapshotError, Writer};
use serena_core::time::Instant;
use serena_services::resilience::BreakerState;
use serena_stream::plan::StreamPlan;

/// When the runtime re-evaluates its queries' plan choices.
///
/// Adaptivity is **off by default**: a plain-built PEMS never swaps a
/// running plan. Opt in with `PemsBuilder::adaptive(policy)` or the
/// `SERENA_ADAPTIVE=1` environment variable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplanPolicy {
    /// Re-evaluate when any circuit breaker changes state. On by default:
    /// breaker edges are sparse, logically timed, and mark exactly the
    /// moments the measured cost surface moved.
    pub on_breaker_transition: bool,
    /// Re-evaluate when some service's rolling failure rate stays at or
    /// above this threshold (`0.0 ..= 1.0`) for
    /// [`sustain_ticks`](Self::sustain_ticks) consecutive ticks — catches
    /// degradation too soft to trip a breaker (or runtimes with no
    /// breaker configured).
    pub degraded_failure_rate: f64,
    /// Consecutive degraded ticks before the failure-rate trigger fires.
    pub sustain_ticks: u64,
    /// Minimum ticks between two replans of the same query (flap
    /// damping): a half-open breaker bouncing must not thrash the plan.
    pub cooldown_ticks: u64,
}

impl Default for ReplanPolicy {
    fn default() -> Self {
        ReplanPolicy {
            on_breaker_transition: true,
            degraded_failure_rate: 0.5,
            sustain_ticks: 3,
            cooldown_ticks: 8,
        }
    }
}

/// Why a replan was evaluated — the `reason` label of
/// `serena_replan_total` and an attribute of the `query.replan` span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplanReason {
    /// A circuit breaker changed state this tick.
    BreakerTransition,
    /// A service's failure rate stayed over the policy threshold.
    SustainedDegradation,
    /// Explicitly requested (`Pems::force_replan` / the shell's
    /// `.replan` command).
    Forced,
}

impl ReplanReason {
    /// Stable metric-label form.
    pub fn label(self) -> &'static str {
        match self {
            ReplanReason::BreakerTransition => "breaker",
            ReplanReason::SustainedDegradation => "degraded",
            ReplanReason::Forced => "forced",
        }
    }

    fn tag(self) -> u8 {
        match self {
            ReplanReason::BreakerTransition => 0,
            ReplanReason::SustainedDegradation => 1,
            ReplanReason::Forced => 2,
        }
    }

    fn from_tag(tag: u8) -> Result<Self, SnapshotError> {
        Ok(match tag {
            0 => ReplanReason::BreakerTransition,
            1 => ReplanReason::SustainedDegradation,
            2 => ReplanReason::Forced,
            other => {
                return Err(SnapshotError::Corrupt(format!(
                    "unknown replan reason tag {other}"
                )))
            }
        })
    }
}

impl std::fmt::Display for ReplanReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One applied plan swap, as kept in the replan history (and in every
/// checkpoint — recovery replays these to rebuild the adapted plans
/// before rehydrating executor state).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplanEvent {
    /// Logical instant whose tick boundary applied the swap.
    pub at: Instant,
    /// The query whose plan was swapped.
    pub query: String,
    /// What triggered the evaluation.
    pub reason: ReplanReason,
    /// Index into [`serena_stream::candidates_for`]'s deterministic
    /// candidate list that the query switched to.
    pub candidate: usize,
}

/// Per-query adaptive bookkeeping.
struct AdaptiveQuery {
    /// The plan as registered — candidate generation always starts here,
    /// so candidate indices mean the same thing on every node and replay.
    original: StreamPlan,
    /// Currently-running candidate index (0 = the original plan).
    candidate: usize,
    /// Instant of the last applied swap, for cooldown damping.
    last_replan: Option<Instant>,
}

/// The adaptive re-optimization controller: policy, per-query candidate
/// state, trigger edge-detection and the replan history.
pub struct AdaptiveController {
    policy: ReplanPolicy,
    queries: BTreeMap<String, AdaptiveQuery>,
    history: Vec<ReplanEvent>,
    /// Breaker state (discriminant only — `Open.until` is stable while
    /// open, but `HalfOpen.probes_left` counts down without being a
    /// *transition*) per service, as of the last evaluated tick.
    breakers_seen: BTreeMap<String, u8>,
    /// Consecutive ticks some service was over the failure-rate
    /// threshold.
    degraded_streak: u64,
}

fn breaker_tag(state: &BreakerState) -> u8 {
    match state {
        BreakerState::Closed => 0,
        BreakerState::Open { .. } => 1,
        BreakerState::HalfOpen { .. } => 2,
    }
}

impl AdaptiveController {
    /// A controller with no queries and a clean trigger state.
    pub fn new(policy: ReplanPolicy) -> Self {
        AdaptiveController {
            policy,
            queries: BTreeMap::new(),
            history: Vec::new(),
            breakers_seen: BTreeMap::new(),
            degraded_streak: 0,
        }
    }

    /// The configured policy.
    pub fn policy(&self) -> ReplanPolicy {
        self.policy
    }

    /// Track a newly registered query (running its original plan).
    pub fn track(&mut self, name: impl Into<String>, plan: StreamPlan) {
        self.queries.insert(
            name.into(),
            AdaptiveQuery {
                original: plan,
                candidate: 0,
                last_replan: None,
            },
        );
    }

    /// Stop tracking a deregistered query (its history entries remain).
    pub fn untrack(&mut self, name: &str) {
        self.queries.remove(name);
    }

    /// Names of all tracked queries, sorted.
    pub fn tracked(&self) -> Vec<&str> {
        self.queries.keys().map(|s| s.as_str()).collect()
    }

    /// The plan a query was registered with, if tracked.
    pub fn original(&self, name: &str) -> Option<&StreamPlan> {
        self.queries.get(name).map(|q| &q.original)
    }

    /// The candidate index a query currently runs (0 = original).
    pub fn candidate(&self, name: &str) -> Option<usize> {
        self.queries.get(name).map(|q| q.candidate)
    }

    /// Every applied swap, in application order.
    pub fn history(&self) -> &[ReplanEvent] {
        &self.history
    }

    /// Fold this tick's breaker states into the edge detector. Returns
    /// whether any service's breaker *changed* state since the last call
    /// (a service appearing with a non-closed breaker counts as an edge;
    /// one appearing closed does not).
    pub fn observe_breakers(
        &mut self,
        breakers: &[(serena_core::value::ServiceRef, BreakerState)],
    ) -> bool {
        let mut edge = false;
        for (service, state) in breakers {
            let tag = breaker_tag(state);
            match self.breakers_seen.insert(service.as_str().to_string(), tag) {
                Some(prev) if prev != tag => edge = true,
                None if tag != 0 => edge = true,
                _ => {}
            }
        }
        edge
    }

    /// Fold this tick's worst observed failure rate into the sustained-
    /// degradation counter. Returns whether the streak just reached the
    /// policy's `sustain_ticks` (exactly — so one sustained episode fires
    /// once, not every tick it persists).
    pub fn observe_degradation(&mut self, worst_failure_rate: f64) -> bool {
        if worst_failure_rate >= self.policy.degraded_failure_rate {
            self.degraded_streak += 1;
            self.degraded_streak == self.policy.sustain_ticks.max(1)
        } else {
            self.degraded_streak = 0;
            false
        }
    }

    /// Whether a replan of `name` at `at` is allowed by the cooldown.
    pub fn cooled_down(&self, name: &str, at: Instant) -> bool {
        match self.queries.get(name).and_then(|q| q.last_replan) {
            Some(last) => at.ticks().saturating_sub(last.ticks()) >= self.policy.cooldown_ticks,
            None => true,
        }
    }

    /// Record an applied swap: update the query's current candidate and
    /// cooldown clock, append to the history.
    pub fn record(&mut self, at: Instant, name: &str, reason: ReplanReason, candidate: usize) {
        if let Some(q) = self.queries.get_mut(name) {
            q.candidate = candidate;
            q.last_replan = Some(at);
        }
        self.history.push(ReplanEvent {
            at,
            query: name.to_string(),
            reason,
            candidate,
        });
    }

    /// Serialize the controller's dynamic state: replan history, per-query
    /// candidate indices and cooldown clocks, and the trigger edge state
    /// (breaker discriminants, degradation streak). The policy and the
    /// original plans are static setup and are *not* captured.
    pub fn export_state(&self, w: &mut Writer) {
        w.usize(self.history.len());
        for e in &self.history {
            w.u64(e.at.ticks());
            w.str(&e.query);
            w.u8(e.reason.tag());
            w.usize(e.candidate);
        }
        w.usize(self.queries.len());
        for (name, q) in &self.queries {
            w.str(name);
            w.usize(q.candidate);
            match q.last_replan {
                Some(at) => {
                    w.bool(true);
                    w.u64(at.ticks());
                }
                None => {
                    w.bool(false);
                }
            }
        }
        w.u64(self.degraded_streak);
        w.usize(self.breakers_seen.len());
        for (service, tag) in &self.breakers_seen {
            w.str(service);
            w.u8(*tag);
        }
    }

    /// The adaptive snapshot section of a runtime with adaptivity
    /// disabled — all-empty, so the snapshot format does not depend on
    /// the feature being on.
    pub fn export_empty(w: &mut Writer) {
        w.usize(0).usize(0).u64(0).usize(0);
    }

    /// Restore state written by [`Self::export_state`]. The same queries
    /// must already be tracked (static setup re-ran); a disagreement
    /// surfaces as [`SnapshotError::Mismatch`].
    pub fn import_state(&mut self, r: &mut Reader<'_>) -> Result<(), SnapshotError> {
        let n = r.usize()?;
        let mut history = Vec::with_capacity(n);
        for _ in 0..n {
            let at = Instant(r.u64()?);
            let query = r.str()?.to_string();
            let reason = ReplanReason::from_tag(r.u8()?)?;
            let candidate = r.usize()?;
            history.push(ReplanEvent {
                at,
                query,
                reason,
                candidate,
            });
        }
        let n = r.usize()?;
        if n != self.queries.len() {
            return Err(SnapshotError::Mismatch(format!(
                "snapshot tracks {n} adaptive queries, {} registered",
                self.queries.len()
            )));
        }
        for (name, q) in &mut self.queries {
            let stored = r.str()?;
            if stored != *name {
                return Err(SnapshotError::Mismatch(format!(
                    "snapshot adaptive query `{stored}` does not match registered `{name}`"
                )));
            }
            q.candidate = r.usize()?;
            q.last_replan = if r.bool()? {
                Some(Instant(r.u64()?))
            } else {
                None
            };
        }
        self.history = history;
        self.degraded_streak = r.u64()?;
        let n = r.usize()?;
        let mut seen = BTreeMap::new();
        for _ in 0..n {
            let service = r.str()?.to_string();
            seen.insert(service, r.u8()?);
        }
        self.breakers_seen = seen;
        Ok(())
    }

    /// Skip (and validate) an adaptive section on a runtime with
    /// adaptivity disabled. Errors with [`SnapshotError::Mismatch`] when
    /// the snapshot carries adaptive state — a node restored without the
    /// policy would silently run un-adapted plans against executor state
    /// shaped by the adapted ones.
    pub fn import_disabled(r: &mut Reader<'_>) -> Result<(), SnapshotError> {
        let events = r.usize()?;
        let queries = r.usize()?;
        if events != 0 || queries != 0 {
            return Err(SnapshotError::Mismatch(
                "snapshot is from an adaptive runtime; rebuild with the same \
                 replan policy before restoring"
                    .into(),
            ));
        }
        let _streak = r.u64()?;
        let breakers = r.usize()?;
        for _ in 0..breakers {
            let _service = r.str()?;
            let _tag = r.u8()?;
        }
        Ok(())
    }
}

/// Names of every base relation (`Source` leaf) a plan reads — what the
/// replan loop feeds observed cardinalities for.
pub fn source_names(plan: &StreamPlan) -> std::collections::BTreeSet<String> {
    let mut names = std::collections::BTreeSet::new();
    collect_sources(plan, &mut names);
    names
}

fn collect_sources(plan: &StreamPlan, names: &mut std::collections::BTreeSet<String>) {
    match plan {
        StreamPlan::Source(name) => {
            names.insert(name.clone());
        }
        StreamPlan::Union(a, b)
        | StreamPlan::Intersect(a, b)
        | StreamPlan::Difference(a, b)
        | StreamPlan::Join(a, b) => {
            collect_sources(a, names);
            collect_sources(b, names);
        }
        StreamPlan::Project(p, _)
        | StreamPlan::Select(p, _)
        | StreamPlan::Rename(p, _, _)
        | StreamPlan::Assign(p, _, _)
        | StreamPlan::Invoke(p, _, _)
        | StreamPlan::Aggregate(p, _, _)
        | StreamPlan::Window(p, _)
        | StreamPlan::Stream(p, _)
        | StreamPlan::SampleInvoke(p, _, _, _) => collect_sources(p, names),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serena_core::value::ServiceRef;

    fn plan() -> StreamPlan {
        StreamPlan::source("t")
    }

    #[test]
    fn breaker_edges_are_transitions_not_states() {
        let mut c = AdaptiveController::new(ReplanPolicy::default());
        let s = ServiceRef::new("svc");
        assert!(!c.observe_breakers(&[(s.clone(), BreakerState::Closed)]));
        assert!(c.observe_breakers(&[(s.clone(), BreakerState::Open { until: Instant(9) })]));
        // still open: the (stable) `until` field is not an edge
        assert!(!c.observe_breakers(&[(s.clone(), BreakerState::Open { until: Instant(9) })]));
        assert!(c.observe_breakers(&[(s.clone(), BreakerState::HalfOpen { probes_left: 2 })]));
        // probe budget counting down is not an edge either
        assert!(!c.observe_breakers(&[(s.clone(), BreakerState::HalfOpen { probes_left: 1 })]));
        assert!(c.observe_breakers(&[(s, BreakerState::Closed)]));
    }

    #[test]
    fn a_service_first_seen_open_is_an_edge() {
        let mut c = AdaptiveController::new(ReplanPolicy::default());
        let s = ServiceRef::new("svc");
        assert!(c.observe_breakers(&[(s, BreakerState::Open { until: Instant(4) })]));
    }

    #[test]
    fn sustained_degradation_fires_once_per_episode() {
        let mut c = AdaptiveController::new(ReplanPolicy {
            sustain_ticks: 3,
            ..ReplanPolicy::default()
        });
        assert!(!c.observe_degradation(0.9));
        assert!(!c.observe_degradation(0.9));
        assert!(c.observe_degradation(0.9), "streak reaches 3");
        assert!(!c.observe_degradation(0.9), "already fired this episode");
        assert!(!c.observe_degradation(0.0), "recovery resets");
        assert!(!c.observe_degradation(0.9));
        assert!(!c.observe_degradation(0.9));
        assert!(c.observe_degradation(0.9), "a new episode fires again");
    }

    #[test]
    fn cooldown_dampens_flapping() {
        let mut c = AdaptiveController::new(ReplanPolicy {
            cooldown_ticks: 5,
            ..ReplanPolicy::default()
        });
        c.track("q", plan());
        assert!(c.cooled_down("q", Instant(0)));
        c.record(Instant(2), "q", ReplanReason::BreakerTransition, 1);
        assert!(!c.cooled_down("q", Instant(3)));
        assert!(!c.cooled_down("q", Instant(6)));
        assert!(c.cooled_down("q", Instant(7)));
        assert_eq!(c.candidate("q"), Some(1));
    }

    #[test]
    fn state_round_trips_and_empty_section_matches_disabled() {
        let mut c = AdaptiveController::new(ReplanPolicy::default());
        c.track("a", plan());
        c.track("b", plan());
        c.observe_breakers(&[(
            ServiceRef::new("svc"),
            BreakerState::Open { until: Instant(7) },
        )]);
        c.observe_degradation(0.8);
        c.record(Instant(4), "b", ReplanReason::SustainedDegradation, 1);

        let mut w = Writer::new();
        c.export_state(&mut w);
        let bytes = w.into_bytes();

        let mut restored = AdaptiveController::new(ReplanPolicy::default());
        restored.track("a", plan());
        restored.track("b", plan());
        restored
            .import_state(&mut Reader::new(&bytes))
            .expect("import");
        assert_eq!(restored.history(), c.history());
        assert_eq!(restored.candidate("b"), Some(1));
        assert_eq!(restored.candidate("a"), Some(0));
        // edge state survives: the still-open breaker is not a fresh edge
        assert!(!restored.observe_breakers(&[(
            ServiceRef::new("svc"),
            BreakerState::Open { until: Instant(7) },
        )]));

        // a populated section refuses to restore into a disabled runtime
        let err = AdaptiveController::import_disabled(&mut Reader::new(&bytes)).unwrap_err();
        assert!(matches!(err, SnapshotError::Mismatch(_)), "{err}");

        // the disabled runtime's empty section round-trips both ways
        let mut w = Writer::new();
        AdaptiveController::export_empty(&mut w);
        let empty = w.into_bytes();
        AdaptiveController::import_disabled(&mut Reader::new(&empty)).expect("empty section");
        let mut none = AdaptiveController::new(ReplanPolicy::default());
        none.import_state(&mut Reader::new(&empty))
            .expect("empty into fresh controller");
        assert!(none.history().is_empty());
    }

    #[test]
    fn import_rejects_mismatched_query_sets() {
        let mut c = AdaptiveController::new(ReplanPolicy::default());
        c.track("a", plan());
        let mut w = Writer::new();
        c.export_state(&mut w);
        let bytes = w.into_bytes();
        let mut other = AdaptiveController::new(ReplanPolicy::default());
        other.track("different", plan());
        let err = other.import_state(&mut Reader::new(&bytes)).unwrap_err();
        assert!(matches!(err, SnapshotError::Mismatch(_)), "{err}");
    }
}
