//! Stream-level plan optimization (optimizer v2).
//!
//! The core rewriter ([`serena_core::rewrite`]) works on *finite* algebra
//! trees; a continuous plan interleaves those finite regions with the
//! stream operators `W[p]`, `S[kind]` and `βˢ[p]`. This module closes the
//! gap:
//!
//! * [`optimize_stream`] — two stream-specific pushdown rules (a selection
//!   commutes past a window over a streaming operator when its predicate
//!   only touches attributes the stream passes through unchanged), plus a
//!   *bridge* that carves out every maximal finite region, hands it to the
//!   core heuristic optimizer with the stream subtrees abstracted as
//!   opaque leaves, and splices the optimized region back;
//! * [`candidates_for`] — the deterministic candidate set the adaptive
//!   re-optimizer ranks: the original plan plus, when different, the
//!   optimized one. Pure function of (plan, catalog) so every replay
//!   regenerates the same candidates in the same order;
//! * [`estimate_stream`] — the cost walk extended to the stream operators
//!   (per-instant tuple rates; a window multiplies by its period, a
//!   sampling invocation amortizes its per-period service calls), fed by
//!   any [`CostInputs`] — in particular the telemetry-backed
//!   [`MeasuredCosts`](serena_core::rewrite::MeasuredCosts);
//! * [`state_keys`] / [`migration_pairs`] — the plan-level inventory of
//!   state-carrying nodes (window rings, β caches) that lets a hot-swap
//!   carry state from the outgoing plan into the incoming one when the
//!   subtree feeding a node is unchanged.

use serena_core::error::PlanError;
use serena_core::plan::{Plan, SchemaCatalog};
use serena_core::rewrite::{optimize, CostEstimate, CostInputs};
use serena_core::schema::SchemaRef;

use crate::plan::{StreamPlan, XdCatalog};

/// Upper bound on alternating rule/bridge passes (each pass is itself a
/// fixpoint; alternation converges in one or two rounds in practice).
const MAX_PASSES: usize = 8;

/// Optimize a continuous plan: apply the stream pushdown rules and the
/// core optimizer over every finite region, to fixpoint. Always returns a
/// plan with the same output schema and status; on any internal mismatch
/// the affected region is left untouched.
pub fn optimize_stream(plan: &StreamPlan, catalog: &dyn XdCatalog) -> StreamPlan {
    let mut current = plan.clone();
    for _ in 0..MAX_PASSES {
        let pushed = apply_stream_rules(&current, catalog);
        let bridged = bridge_finite_regions(&pushed, catalog);
        if bridged == current {
            break;
        }
        current = bridged;
    }
    current
}

/// The deterministic candidate set for adaptive re-optimization:
/// `[0]` is always the original plan; the optimized plan follows when it
/// differs. Replays regenerate identical candidates from the same inputs.
pub fn candidates_for(plan: &StreamPlan, catalog: &dyn XdCatalog) -> Vec<StreamPlan> {
    let mut out = vec![plan.clone()];
    let opt = optimize_stream(plan, catalog);
    if !out.contains(&opt) {
        out.push(opt);
    }
    out
}

// ---------------------------------------------------------------------
// stream pushdown rules
// ---------------------------------------------------------------------

/// σ-pushdown past windows over streaming operators, bottom-up to
/// fixpoint:
///
/// * `σ_F(W[p](βˢ[k](q)))` → `W[p](βˢ[k](σ_F(q)))` when `F` touches only
///   attributes that are real in `q`'s schema (the sampling invocation
///   copies them through unchanged, so filtering before sampling removes
///   exactly the rows whose outputs the selection would have dropped —
///   and saves their service calls);
/// * `σ_F(W[p](S[kind](q)))` → `W[p](S[kind](σ_F(q)))` under the same
///   condition (`S` re-emits `q`'s tuples verbatim for all three kinds,
///   so the selection commutes per tuple).
///
/// Both rewrites re-derive the full plan schema as a safety net and are
/// dropped if it changed.
fn apply_stream_rules(plan: &StreamPlan, catalog: &dyn XdCatalog) -> StreamPlan {
    let rebuilt = map_children(plan, &|c| apply_stream_rules(c, catalog));
    if let StreamPlan::Select(child, f) = &rebuilt {
        if let StreamPlan::Window(wchild, period) = child.as_ref() {
            let pushed = match wchild.as_ref() {
                StreamPlan::SampleInvoke(q, proto, sa, k) if passes_through(f, q, catalog) => {
                    Some(StreamPlan::Window(
                        Box::new(StreamPlan::SampleInvoke(
                            Box::new(StreamPlan::Select(q.clone(), f.clone())),
                            proto.clone(),
                            sa.clone(),
                            *k,
                        )),
                        *period,
                    ))
                }
                StreamPlan::Stream(q, kind) if passes_through(f, q, catalog) => {
                    Some(StreamPlan::Window(
                        Box::new(StreamPlan::Stream(
                            Box::new(StreamPlan::Select(q.clone(), f.clone())),
                            *kind,
                        )),
                        *period,
                    ))
                }
                _ => None,
            };
            if let Some(pushed) = pushed {
                if schemas_agree(&rebuilt, &pushed, catalog) {
                    // the new selection may enable further pushes below
                    return apply_stream_rules(&pushed, catalog);
                }
            }
        }
    }
    rebuilt
}

/// Every attribute the formula references is *real* in the operand's
/// schema — i.e. the streaming operator above passes it through unchanged
/// (realization only turns virtual attributes real).
fn passes_through(
    f: &serena_core::formula::Formula,
    q: &StreamPlan,
    catalog: &dyn XdCatalog,
) -> bool {
    match q.stream_schema(catalog) {
        Ok(s) if !s.infinite => f.attrs().iter().all(|a| s.schema.is_real(a.as_str())),
        _ => false,
    }
}

fn schemas_agree(a: &StreamPlan, b: &StreamPlan, catalog: &dyn XdCatalog) -> bool {
    match (a.stream_schema(catalog), b.stream_schema(catalog)) {
        (Ok(sa), Ok(sb)) => sa == sb,
        _ => false,
    }
}

// ---------------------------------------------------------------------
// finite-region bridge into the core optimizer
// ---------------------------------------------------------------------

fn placeholder_name(i: usize) -> String {
    format!("\u{27e8}w{i}\u{27e9}") // ⟨w0⟩, ⟨w1⟩, …
}

fn placeholder_index(name: &str) -> Option<usize> {
    name.strip_prefix("\u{27e8}w")?
        .strip_suffix('\u{27e9}')?
        .parse()
        .ok()
}

/// Resolve placeholder leaves to the schema of the window subtree they
/// abstract; everything else through the XD catalog.
struct BridgeCatalog<'a> {
    inner: &'a dyn XdCatalog,
    placeholders: &'a [StreamPlan],
}

impl SchemaCatalog for BridgeCatalog<'_> {
    fn schema_of(&self, name: &str) -> Option<SchemaRef> {
        if let Some(i) = placeholder_index(name) {
            return self
                .placeholders
                .get(i)
                .and_then(|p| p.stream_schema(self.inner).ok())
                .map(|s| s.schema);
        }
        self.inner.xd_schema_of(name).map(|s| s.schema)
    }
}

/// Hand every maximal finite region to the core optimizer, with each
/// `W[p](…)` subtree inside it abstracted as an opaque placeholder leaf
/// (itself recursively optimized below the window). Streaming operators
/// above a finite region are descended through untouched.
fn bridge_finite_regions(plan: &StreamPlan, catalog: &dyn XdCatalog) -> StreamPlan {
    let finite = matches!(plan.stream_schema(catalog), Ok(s) if !s.infinite);
    if finite {
        let mut placeholders = Vec::new();
        if let Some(core) = extract(plan, &mut placeholders, catalog) {
            let bridge = BridgeCatalog {
                inner: catalog,
                placeholders: &placeholders,
            };
            let report = optimize(&core, &bridge);
            let rebuilt = substitute(&report.plan, &placeholders);
            if schemas_agree(plan, &rebuilt, catalog) {
                return rebuilt;
            }
        }
        return plan.clone();
    }
    map_children(plan, &|c| bridge_finite_regions(c, catalog))
}

/// Convert a finite region to a core [`Plan`], pushing each window
/// subtree (recursively bridged) into `placeholders` and standing in a
/// synthetic leaf for it. `None` if a streaming operator appears where a
/// finite operand is required (invalid plan — leave it alone).
fn extract(
    plan: &StreamPlan,
    placeholders: &mut Vec<StreamPlan>,
    catalog: &dyn XdCatalog,
) -> Option<Plan> {
    Some(match plan {
        StreamPlan::Source(n) => Plan::Relation(n.clone()),
        StreamPlan::Window(child, period) => {
            let below =
                StreamPlan::Window(Box::new(bridge_finite_regions(child, catalog)), *period);
            let name = placeholder_name(placeholders.len());
            placeholders.push(below);
            Plan::Relation(name)
        }
        StreamPlan::Union(a, b) => Plan::Union(
            Box::new(extract(a, placeholders, catalog)?),
            Box::new(extract(b, placeholders, catalog)?),
        ),
        StreamPlan::Intersect(a, b) => Plan::Intersect(
            Box::new(extract(a, placeholders, catalog)?),
            Box::new(extract(b, placeholders, catalog)?),
        ),
        StreamPlan::Difference(a, b) => Plan::Difference(
            Box::new(extract(a, placeholders, catalog)?),
            Box::new(extract(b, placeholders, catalog)?),
        ),
        StreamPlan::Project(p, attrs) => {
            Plan::Project(Box::new(extract(p, placeholders, catalog)?), attrs.clone())
        }
        StreamPlan::Select(p, f) => {
            Plan::Select(Box::new(extract(p, placeholders, catalog)?), f.clone())
        }
        StreamPlan::Rename(p, from, to) => Plan::Rename(
            Box::new(extract(p, placeholders, catalog)?),
            from.clone(),
            to.clone(),
        ),
        StreamPlan::Join(a, b) => Plan::Join(
            Box::new(extract(a, placeholders, catalog)?),
            Box::new(extract(b, placeholders, catalog)?),
        ),
        StreamPlan::Assign(p, attr, src) => Plan::Assign(
            Box::new(extract(p, placeholders, catalog)?),
            attr.clone(),
            src.clone(),
        ),
        StreamPlan::Invoke(p, proto, sa) => Plan::Invoke(
            Box::new(extract(p, placeholders, catalog)?),
            proto.clone(),
            sa.clone(),
        ),
        StreamPlan::Aggregate(p, group, aggs) => Plan::Aggregate(
            Box::new(extract(p, placeholders, catalog)?),
            group.clone(),
            aggs.clone(),
        ),
        StreamPlan::Stream(..) | StreamPlan::SampleInvoke(..) => return None,
    })
}

/// Inverse of [`extract`]: core plan back to a stream plan, placeholder
/// leaves splicing their window subtrees back in.
fn substitute(plan: &Plan, placeholders: &[StreamPlan]) -> StreamPlan {
    match plan {
        Plan::Relation(n) => match placeholder_index(n).and_then(|i| placeholders.get(i)) {
            Some(sub) => sub.clone(),
            None => StreamPlan::Source(n.clone()),
        },
        Plan::Union(a, b) => StreamPlan::Union(
            Box::new(substitute(a, placeholders)),
            Box::new(substitute(b, placeholders)),
        ),
        Plan::Intersect(a, b) => StreamPlan::Intersect(
            Box::new(substitute(a, placeholders)),
            Box::new(substitute(b, placeholders)),
        ),
        Plan::Difference(a, b) => StreamPlan::Difference(
            Box::new(substitute(a, placeholders)),
            Box::new(substitute(b, placeholders)),
        ),
        Plan::Project(p, attrs) => {
            StreamPlan::Project(Box::new(substitute(p, placeholders)), attrs.clone())
        }
        Plan::Select(p, f) => StreamPlan::Select(Box::new(substitute(p, placeholders)), f.clone()),
        Plan::Rename(p, from, to) => StreamPlan::Rename(
            Box::new(substitute(p, placeholders)),
            from.clone(),
            to.clone(),
        ),
        Plan::Join(a, b) => StreamPlan::Join(
            Box::new(substitute(a, placeholders)),
            Box::new(substitute(b, placeholders)),
        ),
        Plan::Assign(p, attr, src) => StreamPlan::Assign(
            Box::new(substitute(p, placeholders)),
            attr.clone(),
            src.clone(),
        ),
        Plan::Invoke(p, proto, sa) => StreamPlan::Invoke(
            Box::new(substitute(p, placeholders)),
            proto.clone(),
            sa.clone(),
        ),
        Plan::Aggregate(p, group, aggs) => StreamPlan::Aggregate(
            Box::new(substitute(p, placeholders)),
            group.clone(),
            aggs.clone(),
        ),
    }
}

/// Rebuild a node with every direct child mapped through `f`.
fn map_children(plan: &StreamPlan, f: &dyn Fn(&StreamPlan) -> StreamPlan) -> StreamPlan {
    match plan {
        StreamPlan::Source(n) => StreamPlan::Source(n.clone()),
        StreamPlan::Union(a, b) => StreamPlan::Union(Box::new(f(a)), Box::new(f(b))),
        StreamPlan::Intersect(a, b) => StreamPlan::Intersect(Box::new(f(a)), Box::new(f(b))),
        StreamPlan::Difference(a, b) => StreamPlan::Difference(Box::new(f(a)), Box::new(f(b))),
        StreamPlan::Project(p, attrs) => StreamPlan::Project(Box::new(f(p)), attrs.clone()),
        StreamPlan::Select(p, form) => StreamPlan::Select(Box::new(f(p)), form.clone()),
        StreamPlan::Rename(p, a, b) => StreamPlan::Rename(Box::new(f(p)), a.clone(), b.clone()),
        StreamPlan::Join(a, b) => StreamPlan::Join(Box::new(f(a)), Box::new(f(b))),
        StreamPlan::Assign(p, a, s) => StreamPlan::Assign(Box::new(f(p)), a.clone(), s.clone()),
        StreamPlan::Invoke(p, proto, sa) => {
            StreamPlan::Invoke(Box::new(f(p)), proto.clone(), sa.clone())
        }
        StreamPlan::Aggregate(p, g, aggs) => {
            StreamPlan::Aggregate(Box::new(f(p)), g.clone(), aggs.clone())
        }
        StreamPlan::Window(p, period) => StreamPlan::Window(Box::new(f(p)), *period),
        StreamPlan::Stream(p, kind) => StreamPlan::Stream(Box::new(f(p)), *kind),
        StreamPlan::SampleInvoke(p, proto, sa, k) => {
            StreamPlan::SampleInvoke(Box::new(f(p)), proto.clone(), sa.clone(), *k)
        }
    }
}

// ---------------------------------------------------------------------
// cost estimation over stream plans
// ---------------------------------------------------------------------

/// Estimate a continuous plan's per-instant cost under any [`CostInputs`]
/// provider. Cardinalities of infinite nodes are expected tuples *per
/// instant*: a window multiplies its operand's rate by its period, a
/// sampling invocation `βˢ[k]` amortizes one full scan of its operand
/// every `k` instants.
pub fn estimate_stream(
    plan: &StreamPlan,
    catalog: &dyn XdCatalog,
    inputs: &dyn CostInputs,
) -> Result<CostEstimate, PlanError> {
    let params = *inputs.params();
    match plan {
        StreamPlan::Source(name) => {
            plan.stream_schema(catalog)?;
            let rows = inputs
                .cardinality(name)
                .unwrap_or(params.default_cardinality);
            Ok(CostEstimate {
                rows,
                invocations: 0.0,
                cost: rows,
            })
        }
        StreamPlan::Union(a, b) => {
            let (ea, eb) = (
                estimate_stream(a, catalog, inputs)?,
                estimate_stream(b, catalog, inputs)?,
            );
            let rows = ea.rows + eb.rows;
            Ok(combine2(ea, eb, rows))
        }
        StreamPlan::Intersect(a, b) => {
            let (ea, eb) = (
                estimate_stream(a, catalog, inputs)?,
                estimate_stream(b, catalog, inputs)?,
            );
            let rows = ea.rows.min(eb.rows) * params.selectivity;
            Ok(combine2(ea, eb, rows))
        }
        StreamPlan::Difference(a, b) => {
            let (ea, eb) = (
                estimate_stream(a, catalog, inputs)?,
                estimate_stream(b, catalog, inputs)?,
            );
            let rows = ea.rows * params.selectivity;
            Ok(combine2(ea, eb, rows))
        }
        StreamPlan::Project(p, _) | StreamPlan::Rename(p, _, _) | StreamPlan::Assign(p, _, _) => {
            let e = estimate_stream(p, catalog, inputs)?;
            Ok(CostEstimate {
                rows: e.rows,
                invocations: e.invocations,
                cost: e.cost + e.rows,
            })
        }
        StreamPlan::Select(p, _) => {
            let e = estimate_stream(p, catalog, inputs)?;
            let rows = e.rows * params.selectivity;
            Ok(CostEstimate {
                rows,
                invocations: e.invocations,
                cost: e.cost + e.rows,
            })
        }
        StreamPlan::Join(a, b) => {
            let (ea, eb) = (
                estimate_stream(a, catalog, inputs)?,
                estimate_stream(b, catalog, inputs)?,
            );
            let sa = a.stream_schema(catalog)?.schema;
            let sb = b.stream_schema(catalog)?.schema;
            let has_predicate = sa
                .attrs()
                .iter()
                .any(|x| x.is_real() && sb.is_real(x.name.as_str()));
            let rows = if has_predicate {
                (ea.rows * eb.rows * params.join_factor).max(ea.rows.min(eb.rows))
            } else {
                ea.rows * eb.rows
            };
            Ok(combine2(ea, eb, rows))
        }
        StreamPlan::Invoke(p, proto, _) => {
            let e = estimate_stream(p, catalog, inputs)?;
            let invocations = e.invocations + e.rows;
            let rows = e.rows * inputs.invocation_fanout(proto);
            Ok(CostEstimate {
                rows,
                invocations,
                cost: e.cost + e.rows * inputs.invocation_cost(proto),
            })
        }
        StreamPlan::Aggregate(p, group, _) => {
            let e = estimate_stream(p, catalog, inputs)?;
            let rows = if group.is_empty() {
                1.0
            } else {
                (e.rows * params.selectivity).max(1.0)
            };
            Ok(CostEstimate {
                rows,
                invocations: e.invocations,
                cost: e.cost + e.rows,
            })
        }
        StreamPlan::Window(p, period) => {
            let e = estimate_stream(p, catalog, inputs)?;
            let rows = e.rows * (*period).max(1) as f64;
            Ok(CostEstimate {
                rows,
                invocations: e.invocations,
                cost: e.cost + rows,
            })
        }
        StreamPlan::Stream(p, _) => {
            let e = estimate_stream(p, catalog, inputs)?;
            Ok(CostEstimate {
                rows: e.rows,
                invocations: e.invocations,
                cost: e.cost + e.rows,
            })
        }
        StreamPlan::SampleInvoke(p, proto, _, period) => {
            let e = estimate_stream(p, catalog, inputs)?;
            let per = (*period).max(1) as f64;
            let invocations = e.invocations + e.rows / per;
            let rows = e.rows * inputs.invocation_fanout(proto) / per;
            Ok(CostEstimate {
                rows,
                invocations,
                cost: e.cost + (e.rows / per) * inputs.invocation_cost(proto),
            })
        }
    }
}

fn combine2(a: CostEstimate, b: CostEstimate, rows: f64) -> CostEstimate {
    CostEstimate {
        rows,
        invocations: a.invocations + b.invocations,
        cost: a.cost + b.cost + rows,
    }
}

// ---------------------------------------------------------------------
// state-carryover inventory for plan hot-swaps
// ---------------------------------------------------------------------

/// Signatures of a plan's state-carrying nodes, each list in the
/// executor's pre-order (the order [`crate::exec::ContinuousQuery`]
/// assigns node ids: node first, then children left to right).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StateKeys {
    /// One signature per `W[p]` node: period plus the full rendering of
    /// the subtree feeding it — a ring is only portable when its feeding
    /// subtree is unchanged.
    pub windows: Vec<String>,
    /// One signature per `β` node: prototype, service attribute and the
    /// operand's *schema* — a cache keyed on input tuples is portable
    /// exactly when the input tuple layout is unchanged (a different
    /// subset of the same-shaped inputs is fine; unused entries idle).
    pub invokes: Vec<String>,
}

/// Inventory `plan`'s state-carrying nodes.
pub fn state_keys(plan: &StreamPlan, catalog: &dyn XdCatalog) -> StateKeys {
    let mut keys = StateKeys::default();
    collect_keys(plan, catalog, &mut keys);
    keys
}

fn collect_keys(plan: &StreamPlan, catalog: &dyn XdCatalog, keys: &mut StateKeys) {
    match plan {
        StreamPlan::Window(child, period) => {
            keys.windows
                .push(format!("W[{period}] {}", child.to_algebra()));
            collect_keys(child, catalog, keys);
        }
        StreamPlan::Invoke(child, proto, sa) => {
            let operand = match child.stream_schema(catalog) {
                Ok(s) => format!("{:?}", s.schema),
                // fall back to structural identity when the schema cannot
                // be derived (conservative: only identical subtrees match)
                Err(_) => child.to_algebra(),
            };
            keys.invokes
                .push(format!("\u{3b2} {proto}[{sa}] over {operand}"));
            collect_keys(child, catalog, keys);
        }
        StreamPlan::Source(_) => {}
        StreamPlan::Union(a, b)
        | StreamPlan::Intersect(a, b)
        | StreamPlan::Difference(a, b)
        | StreamPlan::Join(a, b) => {
            collect_keys(a, catalog, keys);
            collect_keys(b, catalog, keys);
        }
        StreamPlan::Project(p, _)
        | StreamPlan::Select(p, _)
        | StreamPlan::Rename(p, _, _)
        | StreamPlan::Assign(p, _, _)
        | StreamPlan::Aggregate(p, _, _)
        | StreamPlan::Stream(p, _)
        | StreamPlan::SampleInvoke(p, _, _, _) => collect_keys(p, catalog, keys),
    }
}

/// Which state a hot-swap can carry over: `(new_position, old_position)`
/// pairs per node kind, positions counting same-kind nodes in pre-order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MigrationMap {
    /// Window-ring adoptions.
    pub windows: Vec<(usize, usize)>,
    /// β-cache adoptions.
    pub invokes: Vec<(usize, usize)>,
}

impl MigrationMap {
    /// No state carried over (cold swap).
    pub fn empty() -> Self {
        Self::default()
    }
}

/// Match the state-carrying nodes of the incoming plan against the
/// outgoing plan's: each new node adopts the first not-yet-claimed old
/// node with an identical signature.
pub fn migration_pairs(old: &StateKeys, new: &StateKeys) -> MigrationMap {
    MigrationMap {
        windows: greedy_match(&old.windows, &new.windows),
        invokes: greedy_match(&old.invokes, &new.invokes),
    }
}

fn greedy_match(old: &[String], new: &[String]) -> Vec<(usize, usize)> {
    let mut used = vec![false; old.len()];
    let mut out = Vec::new();
    for (ni, key) in new.iter().enumerate() {
        if let Some(oi) = (0..old.len()).find(|&i| !used[i] && old[i] == *key) {
            used[oi] = true;
            out.push((ni, oi));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{StreamKind, StreamSchema};
    use serena_core::formula::Formula;
    use serena_core::rewrite::{MeasuredCosts, ServiceObservation};
    use serena_core::schema::examples as schemas;
    use std::collections::BTreeMap;

    fn catalog() -> BTreeMap<String, StreamSchema> {
        let mut cat = BTreeMap::new();
        cat.insert(
            "sensors".to_string(),
            StreamSchema::finite(schemas::sensors_schema()),
        );
        cat.insert(
            "contacts".to_string(),
            StreamSchema::finite(schemas::contacts_schema()),
        );
        cat.insert(
            "cameras".to_string(),
            StreamSchema::finite(schemas::cameras_schema()),
        );
        cat
    }

    /// The E20 shape: filter a windowed periodic sampling of the sensor
    /// fleet down to one location.
    fn naive_sampler() -> StreamPlan {
        StreamPlan::source("sensors")
            .sample_invoke("getTemperature", "sensor", 1)
            .window(1)
            .select(Formula::eq_const("location", "corridor"))
    }

    fn pushed_sampler() -> StreamPlan {
        StreamPlan::source("sensors")
            .select(Formula::eq_const("location", "corridor"))
            .sample_invoke("getTemperature", "sensor", 1)
            .window(1)
    }

    #[test]
    fn selection_pushes_below_sampling_invocation() {
        let cat = catalog();
        let opt = optimize_stream(&naive_sampler(), &cat);
        assert_eq!(opt, pushed_sampler(), "{opt}");
        assert!(schemas_agree(&naive_sampler(), &opt, &cat));
    }

    #[test]
    fn selection_on_realized_attr_stays_put() {
        // temperature is *realized by* the sampling invocation — the
        // filter cannot move below it
        let cat = catalog();
        let plan = StreamPlan::source("sensors")
            .sample_invoke("getTemperature", "sensor", 1)
            .window(1)
            .select(Formula::gt_const("temperature", 35.5));
        assert_eq!(optimize_stream(&plan, &cat), plan);
    }

    #[test]
    fn selection_pushes_below_stream_of() {
        let cat = catalog();
        let plan = StreamPlan::source("contacts")
            .stream(StreamKind::Insertion)
            .window(2)
            .select(Formula::eq_const("name", "Alice"));
        let expected = StreamPlan::source("contacts")
            .select(Formula::eq_const("name", "Alice"))
            .stream(StreamKind::Insertion)
            .window(2);
        assert_eq!(optimize_stream(&plan, &cat), expected);
    }

    #[test]
    fn core_optimizer_reaches_regions_above_windows() {
        // σ above a projection above a window: the bridge abstracts the
        // window as a leaf and the core optimizer pushes σ below π
        let cat = catalog();
        let plan = StreamPlan::source("contacts")
            .stream(StreamKind::Insertion)
            .window(1)
            .project(["name", "address"])
            .select(Formula::eq_const("name", "Alice"));
        let opt = optimize_stream(&plan, &cat);
        let text = opt.to_algebra();
        let sigma = text.find("\u{3c3}").expect("selection survives");
        let pi = text.find("\u{3c0}").expect("projection survives");
        assert!(
            sigma > pi,
            "selection should sit below the projection: {text}"
        );
        assert!(schemas_agree(&plan, &opt, &cat));
    }

    #[test]
    fn candidates_are_deterministic_and_original_first() {
        let cat = catalog();
        let a = candidates_for(&naive_sampler(), &cat);
        let b = candidates_for(&naive_sampler(), &cat);
        assert_eq!(a, b);
        assert_eq!(a[0], naive_sampler());
        assert_eq!(a.len(), 2);
        // an already-optimal plan yields a single candidate
        assert_eq!(candidates_for(&pushed_sampler(), &cat).len(), 1);
    }

    #[test]
    fn degradation_widens_the_pushdown_gap() {
        let cat = catalog();
        let mut healthy = MeasuredCosts::new();
        healthy.observe_cardinality("sensors", 100);
        let mut degraded = healthy.clone();
        degraded.observe(
            "getTemperature",
            ServiceObservation {
                failure_rate: 0.8,
                breaker_open: true,
                ..ServiceObservation::default()
            },
        );
        let gap = |m: &MeasuredCosts| {
            let naive = estimate_stream(&naive_sampler(), &cat, m).unwrap().cost;
            let pushed = estimate_stream(&pushed_sampler(), &cat, m).unwrap().cost;
            naive - pushed
        };
        assert!(gap(&healthy) > 0.0, "pushdown wins even when healthy");
        assert!(gap(&degraded) > gap(&healthy), "and wins harder degraded");
    }

    #[test]
    fn sampling_period_amortizes_invocations() {
        let cat = catalog();
        let m = MeasuredCosts::new();
        let every = StreamPlan::source("sensors")
            .sample_invoke("getTemperature", "sensor", 1)
            .window(1);
        let sparse = StreamPlan::source("sensors")
            .sample_invoke("getTemperature", "sensor", 4)
            .window(1);
        let e1 = estimate_stream(&every, &cat, &m).unwrap();
        let e4 = estimate_stream(&sparse, &cat, &m).unwrap();
        assert!(e4.invocations < e1.invocations);
        assert!(e4.cost < e1.cost);
    }

    #[test]
    fn state_keys_track_feeding_subtrees() {
        let cat = catalog();
        let old = state_keys(&naive_sampler(), &cat);
        let new = state_keys(&pushed_sampler(), &cat);
        assert_eq!(old.windows.len(), 1);
        assert_eq!(new.windows.len(), 1);
        // the subtree feeding the window changed → the ring is not portable
        let pairs = migration_pairs(&old, &new);
        assert!(pairs.windows.is_empty());

        // an unchanged β keeps its cache portable
        let q = StreamPlan::source("contacts")
            .assign_const("text", "hi")
            .invoke("sendMessage", "messenger");
        let keys = state_keys(&q, &cat);
        assert_eq!(keys.invokes.len(), 1);
        let pairs = migration_pairs(&keys, &keys);
        assert_eq!(pairs.invokes, vec![(0, 0)]);
    }

    #[test]
    fn invoke_cache_portable_across_selection_change_below() {
        // σ-pushdown below a β filters *which* inputs arrive but not their
        // layout — the cache stays portable (schema-keyed, not tree-keyed)
        let cat = catalog();
        let wide = StreamPlan::source("contacts")
            .assign_const("text", "hi")
            .invoke("sendMessage", "messenger");
        let narrow = StreamPlan::source("contacts")
            .select(Formula::eq_const("name", "Alice"))
            .assign_const("text", "hi")
            .invoke("sendMessage", "messenger");
        let pairs = migration_pairs(&state_keys(&wide, &cat), &state_keys(&narrow, &cat));
        assert_eq!(pairs.invokes, vec![(0, 0)]);
    }

    #[test]
    fn q3_and_q4_round_trip_the_bridge_unchanged_in_meaning() {
        let mut cat = catalog();
        cat.insert(
            "temperatures".to_string(),
            StreamSchema::infinite(
                serena_core::schema::XSchema::builder()
                    .real("location", serena_core::value::DataType::Str)
                    .real("temperature", serena_core::value::DataType::Real)
                    .build()
                    .unwrap(),
            ),
        );
        for q in [crate::plan::examples::q3(), crate::plan::examples::q4()] {
            let opt = optimize_stream(&q, &cat);
            assert!(schemas_agree(&q, &opt, &cat), "{q} vs {opt}");
        }
    }
}
