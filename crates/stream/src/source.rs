//! XD-Relation sources: dynamic tables and streams.
//!
//! §4.1: relations and data streams are both XD-Relations; finite ones are
//! updatable tables (the Extended Table Manager's insert/delete of tuples,
//! §5.1), infinite ones are append-only streams fed by the environment
//! (sensor samplers, RSS wrappers, …).
//!
//! * [`TableHandle`] — a shared, mutable finite XD-Relation; mutations are
//!   buffered and become the table's delta at the next tick boundary;
//! * [`StreamSource`] — the producer side of an infinite XD-Relation:
//!   polled once per tick for the batch of newly appended tuples;
//! * [`PushStream`] — a buffering `StreamSource` for manually pushed
//!   tuples; [`FnStream`] — a source computed from the instant (e.g. a
//!   simulated device sampler).

use std::sync::Arc;

use serena_core::sync::Mutex;

use serena_core::schema::SchemaRef;
use serena_core::time::Instant;
use serena_core::tuple::Tuple;

use crate::multiset::{Delta, Multiset};

/// Shared handle to a finite, updatable XD-Relation.
#[derive(Clone)]
pub struct TableHandle {
    inner: Arc<Mutex<TableState>>,
}

struct TableState {
    schema: SchemaRef,
    current: Multiset,
    pending: Delta,
    /// The last committed tick, kept so several queries sharing this table
    /// within the same global instant all observe the same delta.
    committed: Option<(Instant, Delta)>,
}

impl TableHandle {
    /// An empty table over `schema`.
    pub fn new(schema: SchemaRef) -> Self {
        TableHandle {
            inner: Arc::new(Mutex::new(TableState {
                schema,
                current: Multiset::new(),
                pending: Delta::new(),
                committed: None,
            })),
        }
    }

    /// A table pre-loaded with `tuples` (they appear in the first tick's
    /// delta, like any insertion).
    pub fn with_tuples(schema: SchemaRef, tuples: impl IntoIterator<Item = Tuple>) -> Self {
        let h = TableHandle::new(schema);
        for t in tuples {
            h.insert(t);
        }
        h
    }

    /// The table's extended schema.
    pub fn schema(&self) -> SchemaRef {
        self.inner.lock().schema.clone()
    }

    /// Queue a tuple insertion (applied at the next tick).
    pub fn insert(&self, t: Tuple) {
        self.inner.lock().pending.inserts.insert(t, 1);
    }

    /// Queue a tuple deletion (applied at the next tick).
    pub fn delete(&self, t: Tuple) {
        self.inner.lock().pending.deletes.insert(t, 1);
    }

    /// Replace the table's contents wholesale (applied at the next tick) —
    /// used by discovery queries refreshing provider tables.
    pub fn replace_with(&self, tuples: impl IntoIterator<Item = Tuple>) {
        let mut state = self.inner.lock();
        let target: Multiset = tuples.into_iter().collect();
        // desired delta from (current ⊕ already-pending) to target
        let mut projected = state.current.clone();
        let pending = std::mem::take(&mut state.pending);
        projected.apply(&pending);
        state.pending = projected.diff_to(&target);
    }

    /// Snapshot of the current (already-ticked) contents.
    pub fn snapshot(&self) -> Multiset {
        self.inner.lock().current.clone()
    }

    /// The contents the table will have once pending mutations commit —
    /// what a one-shot query evaluated "now" should see (§4.2: one-shot
    /// queries over finite XD-Relations).
    pub fn projected(&self) -> Multiset {
        let state = self.inner.lock();
        let mut m = state.current.clone();
        m.apply(&state.pending);
        m
    }

    /// Serialize the table's dynamic state — current contents and pending
    /// (not yet committed) mutations — into a checkpoint. The per-instant
    /// committed-delta memo is deliberately not captured: a restored table
    /// has not ticked yet at any instant, so the first post-restore tick
    /// commits whatever was pending, exactly as the original would have.
    pub fn export_state(&self, w: &mut serena_core::snapshot::Writer) {
        let state = self.inner.lock();
        state.current.encode(w);
        state.pending.encode(w);
    }

    /// Restore dynamic state written by [`TableHandle::export_state`],
    /// replacing current contents and pending mutations wholesale.
    pub fn import_state(
        &self,
        r: &mut serena_core::snapshot::Reader<'_>,
    ) -> Result<(), serena_core::snapshot::SnapshotError> {
        let current = Multiset::decode(r)?;
        let pending = Delta::decode(r)?;
        let mut state = self.inner.lock();
        state.current = current;
        state.pending = pending;
        state.committed = None;
        Ok(())
    }

    /// Advance the tick boundary at instant `at`: the first call for a
    /// given instant commits the pending mutations; subsequent calls at the
    /// same instant (other queries sharing the table) observe the same
    /// delta. With `bootstrap` (a query's very first tick), the returned
    /// delta instead inserts the whole current contents — the new query's
    /// initial instantaneous relation.
    pub(crate) fn tick_at(&self, at: Instant, bootstrap: bool) -> Delta {
        let mut state = self.inner.lock();
        let already = matches!(&state.committed, Some((t, _)) if *t == at);
        if !already {
            let delta = std::mem::take(&mut state.pending);
            // Clamp deletions of absent tuples: the applied delta must be
            // consistent with what downstream operators see.
            let mut effective = Delta::new();
            for (t, c) in delta.inserts.iter() {
                effective.inserts.insert(t.clone(), c);
            }
            for (t, c) in delta.deletes.iter() {
                let present = state.current.count(t);
                let c = c.min(present);
                if c > 0 {
                    effective.deletes.insert(t.clone(), c);
                }
            }
            state.current.apply(&effective);
            state.committed = Some((at, effective));
        }
        if bootstrap {
            return Delta {
                inserts: state.current.clone(),
                deletes: Multiset::new(),
            };
        }
        state
            .committed
            .as_ref()
            .map(|(_, d)| d.clone())
            .expect("committed above")
    }
}

/// The producer side of an infinite XD-Relation: per tick, the batch of
/// newly appended tuples.
pub trait StreamSource: Send {
    /// Tuples appended at instant `at`. Called exactly once per instant, in
    /// increasing order.
    fn poll(&mut self, at: Instant) -> Vec<Tuple>;
}

/// A stream fed by explicit pushes (the manual/test source).
#[derive(Clone, Default)]
pub struct PushStream {
    buffer: Arc<Mutex<Vec<Tuple>>>,
}

impl PushStream {
    /// An empty push stream.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a tuple; it is emitted at the next poll.
    pub fn push(&self, t: Tuple) {
        self.buffer.lock().push(t);
    }

    /// Number of buffered (not yet polled) tuples.
    pub fn pending(&self) -> usize {
        self.buffer.lock().len()
    }
}

impl StreamSource for PushStream {
    fn poll(&mut self, _at: Instant) -> Vec<Tuple> {
        std::mem::take(&mut *self.buffer.lock())
    }
}

/// A stream computed from the instant — wrap any deterministic generator
/// (sensor sampler, RSS schedule, workload driver).
pub struct FnStream<F>(pub F);

impl<F> StreamSource for FnStream<F>
where
    F: FnMut(Instant) -> Vec<Tuple> + Send,
{
    fn poll(&mut self, at: Instant) -> Vec<Tuple> {
        (self.0)(at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serena_core::schema::XSchema;
    use serena_core::tuple;
    use serena_core::value::DataType;

    fn schema() -> SchemaRef {
        XSchema::builder().real("x", DataType::Int).build().unwrap()
    }

    #[test]
    fn table_buffers_until_tick() {
        let t = TableHandle::new(schema());
        t.insert(tuple![1]);
        t.insert(tuple![2]);
        assert!(t.snapshot().is_empty());
        let d = t.tick_at(Instant(1), false);
        assert_eq!(d.inserts.len(), 2);
        assert_eq!(t.snapshot().len(), 2);
        // idle tick → empty delta
        assert!(t.tick_at(Instant(2), false).is_empty());
    }

    #[test]
    fn delete_of_absent_tuple_is_clamped() {
        let t = TableHandle::new(schema());
        t.delete(tuple![9]);
        let d = t.tick_at(Instant(3), false);
        assert!(d.is_empty());
        t.insert(tuple![1]);
        t.tick_at(Instant(4), false);
        t.delete(tuple![1]);
        t.delete(tuple![1]); // second delete of a single occurrence
        let d = t.tick_at(Instant(5), false);
        assert_eq!(d.deletes.count(&tuple![1]), 1);
        assert!(t.snapshot().is_empty());
    }

    #[test]
    fn replace_with_computes_minimal_delta() {
        let t = TableHandle::with_tuples(schema(), vec![tuple![1], tuple![2]]);
        t.tick_at(Instant(6), false);
        t.replace_with(vec![tuple![2], tuple![3]]);
        let d = t.tick_at(Instant(7), false);
        assert_eq!(d.inserts.count(&tuple![3]), 1);
        assert_eq!(d.deletes.count(&tuple![1]), 1);
        assert_eq!(d.magnitude(), 2);
        assert_eq!(t.snapshot().len(), 2);
    }

    #[test]
    fn replace_with_accounts_for_pending() {
        let t = TableHandle::new(schema());
        t.insert(tuple![1]);
        t.replace_with(vec![tuple![2]]);
        t.tick_at(Instant(8), false);
        let snap = t.snapshot();
        assert!(snap.contains(&tuple![2]));
        assert!(!snap.contains(&tuple![1]));
        assert_eq!(snap.len(), 1);
    }

    #[test]
    fn table_state_round_trips_through_snapshot() {
        use serena_core::snapshot::{Reader, Writer};
        let t = TableHandle::with_tuples(schema(), vec![tuple![1], tuple![2]]);
        t.tick_at(Instant(0), false);
        t.insert(tuple![3]); // pending, not yet committed
        let mut w = Writer::new();
        t.export_state(&mut w);
        let bytes = w.into_bytes();

        let restored = TableHandle::new(schema());
        restored.import_state(&mut Reader::new(&bytes)).unwrap();
        assert_eq!(restored.snapshot(), t.snapshot());
        // pending survives: the next tick commits it like the original would
        let d = restored.tick_at(Instant(1), false);
        assert_eq!(d.inserts.sorted_occurrences(), vec![tuple![3]]);
        assert_eq!(restored.snapshot().len(), 3);
    }

    #[test]
    fn push_stream_drains_on_poll() {
        let s = PushStream::new();
        s.push(tuple![1]);
        s.push(tuple![2]);
        assert_eq!(s.pending(), 2);
        let mut src: Box<dyn StreamSource> = Box::new(s.clone());
        assert_eq!(src.poll(Instant(0)).len(), 2);
        assert_eq!(src.poll(Instant(1)).len(), 0);
        s.push(tuple![3]);
        assert_eq!(src.poll(Instant(2)), vec![tuple![3]]);
    }

    #[test]
    fn fn_stream_uses_instant() {
        let mut src = FnStream(|at: Instant| {
            if at.ticks().is_multiple_of(2) {
                vec![tuple![at.ticks() as i64]]
            } else {
                vec![]
            }
        });
        assert_eq!(src.poll(Instant(0)).len(), 1);
        assert_eq!(src.poll(Instant(1)).len(), 0);
        assert_eq!(src.poll(Instant(2)), vec![tuple![2]]);
    }
}
