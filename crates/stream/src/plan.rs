//! Continuous query plans over XD-Relations (§4.2).
//!
//! [`StreamPlan`] extends the Serena algebra tree with the two continuous
//! operators:
//!
//! * **Window** `W[period]` — infinite → finite: at every instant, the
//!   multiset of tuples inserted during the last `period` instants;
//! * **Streaming** `S[type]` — finite → infinite: at every instant, emits
//!   the tuples inserted / deleted / present (`insertion` / `deletion` /
//!   `heartbeat`).
//!
//! All core operators require *finite* operands (they are evaluated on
//! instantaneous relations); windows require *infinite* operands. The
//! finite/infinite status is checked statically by
//! [`StreamPlan::stream_schema`].

use serena_core::attr::AttrName;
use serena_core::error::PlanError;
use serena_core::formula::Formula;
use serena_core::ops::{self, AggSpec, AssignSource};
use serena_core::schema::SchemaRef;

/// Streaming operator flavour (§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamKind {
    /// Emit tuples inserted at each instant.
    Insertion,
    /// Emit tuples deleted at each instant.
    Deletion,
    /// Emit the full instantaneous relation at each instant.
    Heartbeat,
}

impl std::fmt::Display for StreamKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            StreamKind::Insertion => "insertion",
            StreamKind::Deletion => "deletion",
            StreamKind::Heartbeat => "heartbeat",
        })
    }
}

/// Schema of an XD-Relation: an extended relation schema plus its
/// finite/infinite status.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamSchema {
    /// The extended relation schema.
    pub schema: SchemaRef,
    /// Whether the XD-Relation is infinite (a stream).
    pub infinite: bool,
}

impl StreamSchema {
    /// A finite XD-Relation schema.
    pub fn finite(schema: SchemaRef) -> Self {
        StreamSchema {
            schema,
            infinite: false,
        }
    }

    /// An infinite XD-Relation schema.
    pub fn infinite(schema: SchemaRef) -> Self {
        StreamSchema {
            schema,
            infinite: true,
        }
    }
}

/// Catalog of XD-Relation schemas for static validation.
pub trait XdCatalog {
    /// Schema and status of the named XD-Relation.
    fn xd_schema_of(&self, name: &str) -> Option<StreamSchema>;
}

impl XdCatalog for std::collections::BTreeMap<String, StreamSchema> {
    fn xd_schema_of(&self, name: &str) -> Option<StreamSchema> {
        self.get(name).cloned()
    }
}

/// A continuous query plan.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamPlan {
    /// Leaf: a named XD-Relation (finite table or infinite stream).
    Source(String),
    /// `r1 ∪ r2` (finite operands).
    Union(Box<StreamPlan>, Box<StreamPlan>),
    /// `r1 ∩ r2` (finite operands).
    Intersect(Box<StreamPlan>, Box<StreamPlan>),
    /// `r1 − r2` (finite operands).
    Difference(Box<StreamPlan>, Box<StreamPlan>),
    /// `π_Y(r)` (finite operand).
    Project(Box<StreamPlan>, Vec<AttrName>),
    /// `σ_F(r)` (finite operand).
    Select(Box<StreamPlan>, Formula),
    /// `ρ_{A→B}(r)` (finite operand).
    Rename(Box<StreamPlan>, AttrName, AttrName),
    /// `r1 ⋈ r2` (finite operands).
    Join(Box<StreamPlan>, Box<StreamPlan>),
    /// `α_{A:=src}(r)` (finite operand).
    Assign(Box<StreamPlan>, AttrName, AssignSource),
    /// `β_{proto[service]}(r)` (finite operand; §4.2: invoked only for
    /// newly inserted tuples).
    Invoke(Box<StreamPlan>, String, AttrName),
    /// `γ_{group; aggs}(r)` (finite operand) — extension.
    Aggregate(Box<StreamPlan>, Vec<AttrName>, Vec<AggSpec>),
    /// `W[period](r)` (infinite operand → finite output).
    Window(Box<StreamPlan>, u64),
    /// `S[kind](r)` (finite operand → infinite output).
    Stream(Box<StreamPlan>, StreamKind),
    /// `βˢ[period]_{proto[service]}(r)` — **streaming binding pattern**
    /// (the paper's §7 future work: "a new notion of streaming binding
    /// pattern to homogeneously integrate in our framework streams
    /// provided by services"). Every `period` instants, the (passive)
    /// binding pattern is invoked on *every* tuple of the finite operand
    /// and the extended tuples are appended to the output stream — the
    /// algebraic form of a periodic sensor sampler. Finite operand →
    /// infinite output.
    SampleInvoke(Box<StreamPlan>, String, AttrName, u64),
}

impl StreamPlan {
    /// Leaf source.
    pub fn source(name: impl Into<String>) -> StreamPlan {
        StreamPlan::Source(name.into())
    }

    /// `self ∪ other`.
    pub fn union(self, other: StreamPlan) -> StreamPlan {
        StreamPlan::Union(Box::new(self), Box::new(other))
    }

    /// `self ∩ other`.
    pub fn intersect(self, other: StreamPlan) -> StreamPlan {
        StreamPlan::Intersect(Box::new(self), Box::new(other))
    }

    /// `self − other`.
    pub fn difference(self, other: StreamPlan) -> StreamPlan {
        StreamPlan::Difference(Box::new(self), Box::new(other))
    }

    /// `π_Y(self)`.
    pub fn project<I, A>(self, attrs: I) -> StreamPlan
    where
        I: IntoIterator<Item = A>,
        A: Into<AttrName>,
    {
        StreamPlan::Project(Box::new(self), attrs.into_iter().map(Into::into).collect())
    }

    /// `σ_F(self)`.
    pub fn select(self, formula: Formula) -> StreamPlan {
        StreamPlan::Select(Box::new(self), formula)
    }

    /// `ρ_{A→B}(self)`.
    pub fn rename(self, from: impl Into<AttrName>, to: impl Into<AttrName>) -> StreamPlan {
        StreamPlan::Rename(Box::new(self), from.into(), to.into())
    }

    /// `self ⋈ other`.
    pub fn join(self, other: StreamPlan) -> StreamPlan {
        StreamPlan::Join(Box::new(self), Box::new(other))
    }

    /// `α_{A:=constant}(self)`.
    pub fn assign_const(
        self,
        attr: impl Into<AttrName>,
        value: impl Into<serena_core::value::Value>,
    ) -> StreamPlan {
        StreamPlan::Assign(Box::new(self), attr.into(), AssignSource::constant(value))
    }

    /// `α_{A:=B}(self)`.
    pub fn assign_attr(self, attr: impl Into<AttrName>, source: impl Into<AttrName>) -> StreamPlan {
        StreamPlan::Assign(
            Box::new(self),
            attr.into(),
            AssignSource::Attr(source.into()),
        )
    }

    /// `β_{prototype[service_attr]}(self)`.
    pub fn invoke(
        self,
        prototype: impl Into<String>,
        service_attr: impl Into<AttrName>,
    ) -> StreamPlan {
        StreamPlan::Invoke(Box::new(self), prototype.into(), service_attr.into())
    }

    /// `γ_{group; aggs}(self)` — extension.
    pub fn aggregate<I, A>(self, group: I, aggs: Vec<AggSpec>) -> StreamPlan
    where
        I: IntoIterator<Item = A>,
        A: Into<AttrName>,
    {
        StreamPlan::Aggregate(
            Box::new(self),
            group.into_iter().map(Into::into).collect(),
            aggs,
        )
    }

    /// `W[period](self)`.
    pub fn window(self, period: u64) -> StreamPlan {
        StreamPlan::Window(Box::new(self), period)
    }

    /// `S[kind](self)`.
    pub fn stream(self, kind: StreamKind) -> StreamPlan {
        StreamPlan::Stream(Box::new(self), kind)
    }

    /// `βˢ[period]_{prototype[service_attr]}(self)` — streaming binding
    /// pattern (extension, §7 future work). The prototype must be passive.
    pub fn sample_invoke(
        self,
        prototype: impl Into<String>,
        service_attr: impl Into<AttrName>,
        period: u64,
    ) -> StreamPlan {
        StreamPlan::SampleInvoke(
            Box::new(self),
            prototype.into(),
            service_attr.into(),
            period.max(1),
        )
    }

    /// Static validation: derive the output [`StreamSchema`], checking both
    /// Table 3 constraints (via the core schema derivations) and the
    /// finite/infinite status rules of §4.2.
    pub fn stream_schema(&self, catalog: &dyn XdCatalog) -> Result<StreamSchema, PlanError> {
        let finite_operand = |p: &StreamPlan, op: &'static str| -> Result<SchemaRef, PlanError> {
            let s = p.stream_schema(catalog)?;
            if s.infinite {
                return Err(PlanError::StreamStatusMismatch {
                    operator: op,
                    detail: "operand is an infinite XD-Relation; apply a window first".into(),
                });
            }
            Ok(s.schema)
        };
        match self {
            StreamPlan::Source(name) => catalog
                .xd_schema_of(name)
                .ok_or_else(|| PlanError::UnknownRelation(name.clone())),
            StreamPlan::Union(a, b)
            | StreamPlan::Intersect(a, b)
            | StreamPlan::Difference(a, b) => {
                let sa = finite_operand(a, "set operator")?;
                let sb = finite_operand(b, "set operator")?;
                Ok(StreamSchema::finite(ops::set_op_schema(&sa, &sb)?))
            }
            StreamPlan::Project(p, attrs) => {
                let s = finite_operand(p, "projection")?;
                Ok(StreamSchema::finite(ops::project_schema(&s, attrs)?))
            }
            StreamPlan::Select(p, f) => {
                let s = finite_operand(p, "selection")?;
                Ok(StreamSchema::finite(ops::select_schema(&s, f)?))
            }
            StreamPlan::Rename(p, from, to) => {
                let s = finite_operand(p, "renaming")?;
                Ok(StreamSchema::finite(ops::rename_schema(&s, from, to)?))
            }
            StreamPlan::Join(a, b) => {
                let sa = finite_operand(a, "join")?;
                let sb = finite_operand(b, "join")?;
                Ok(StreamSchema::finite(ops::join_schema(&sa, &sb)?))
            }
            StreamPlan::Assign(p, attr, src) => {
                let s = finite_operand(p, "assignment")?;
                Ok(StreamSchema::finite(ops::assign_schema(&s, attr, src)?))
            }
            StreamPlan::Invoke(p, proto, sa) => {
                let s = finite_operand(p, "invocation")?;
                let (out, _) = ops::invoke_schema(&s, proto, sa.as_str())?;
                Ok(StreamSchema::finite(out))
            }
            StreamPlan::Aggregate(p, group, aggs) => {
                let s = finite_operand(p, "aggregation")?;
                Ok(StreamSchema::finite(ops::aggregate_schema(
                    &s, group, aggs,
                )?))
            }
            StreamPlan::Window(p, _) => {
                let s = p.stream_schema(catalog)?;
                if !s.infinite {
                    return Err(PlanError::StreamStatusMismatch {
                        operator: "window",
                        detail: "operand is already finite".into(),
                    });
                }
                Ok(StreamSchema::finite(s.schema))
            }
            StreamPlan::Stream(p, _) => {
                let s = finite_operand(p, "streaming")?;
                Ok(StreamSchema::infinite(s))
            }
            StreamPlan::SampleInvoke(p, proto, sa, _) => {
                let s = finite_operand(p, "streaming invocation")?;
                let (out, bp) = ops::invoke_schema(&s, proto, sa.as_str())?;
                if bp.is_active() {
                    return Err(PlanError::StreamStatusMismatch {
                        operator: "streaming invocation",
                        detail: format!(
                            "binding pattern {} is active; periodic sampling would \
                             repeat its side effect every period",
                            bp.key()
                        ),
                    });
                }
                Ok(StreamSchema::infinite(out))
            }
        }
    }

    /// One-line algebra notation extending [`serena_core::plan::Plan`]'s.
    pub fn to_algebra(&self) -> String {
        match self {
            StreamPlan::Source(n) => n.clone(),
            StreamPlan::Union(a, b) => format!("({} ∪ {})", a.to_algebra(), b.to_algebra()),
            StreamPlan::Intersect(a, b) => format!("({} ∩ {})", a.to_algebra(), b.to_algebra()),
            StreamPlan::Difference(a, b) => format!("({} − {})", a.to_algebra(), b.to_algebra()),
            StreamPlan::Project(p, attrs) => format!(
                "π {} ({})",
                attrs
                    .iter()
                    .map(|a| a.to_string())
                    .collect::<Vec<_>>()
                    .join(","),
                p.to_algebra()
            ),
            StreamPlan::Select(p, f) => format!("σ {f} ({})", p.to_algebra()),
            StreamPlan::Rename(p, a, b) => format!("ρ {a}→{b} ({})", p.to_algebra()),
            StreamPlan::Join(a, b) => format!("({} ⋈ {})", a.to_algebra(), b.to_algebra()),
            StreamPlan::Assign(p, a, s) => format!("α {a}:={s} ({})", p.to_algebra()),
            StreamPlan::Invoke(p, proto, sa) => {
                format!("β {proto}[{sa}] ({})", p.to_algebra())
            }
            StreamPlan::Aggregate(p, g, aggs) => format!(
                "γ [{}; {} aggs] ({})",
                g.iter()
                    .map(|a| a.to_string())
                    .collect::<Vec<_>>()
                    .join(","),
                aggs.len(),
                p.to_algebra()
            ),
            StreamPlan::Window(p, period) => format!("W[{period}] ({})", p.to_algebra()),
            StreamPlan::Stream(p, kind) => format!("S[{kind}] ({})", p.to_algebra()),
            StreamPlan::SampleInvoke(p, proto, sa, period) => {
                format!("βˢ[{period}] {proto}[{sa}] ({})", p.to_algebra())
            }
        }
    }
}

impl std::fmt::Display for StreamPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_algebra())
    }
}

/// The continuous example queries of Table 4 / Example 8, reconstructed
/// from the paper's prose (the camera-ready table is partially garbled in
/// the archived copy; the reconstruction follows the stated behaviour and
/// the finite/infinite status the paper gives for each result).
pub mod examples {
    use super::*;
    use serena_core::formula::Formula;

    /// `Q3`: "when a temperature exceeds 35.5 °C, send the message 'Hot!'
    /// to the contacts" —
    /// `β_sendMessage(α_text:='Hot!'(contacts ⋈ σ_temp>35.5(W[1](temperatures))))`.
    /// The result is finite ("its last operator is the invocation
    /// operator"); the join with `contacts` is a Cartesian product at tuple
    /// level (no common real attribute), i.e. every contact is alerted for
    /// every hot reading.
    pub fn q3() -> StreamPlan {
        StreamPlan::source("temperatures")
            .window(1)
            .select(Formula::gt_const("temperature", 35.5))
            .project(["temperature"])
            .join(StreamPlan::source("contacts"))
            .assign_const("text", "Hot!")
            .invoke("sendMessage", "messenger")
    }

    /// `Q4`: "when a temperature goes down below 12.0 °C, take a photo of
    /// the area" —
    /// `S[insertion](π_photo(β_takePhoto(β_checkPhoto(cameras ⋈ ρ_location→area(σ_temp<12(W[1](temperatures)))))))`.
    /// The result is an infinite XD-Relation — a stream of photos.
    pub fn q4() -> StreamPlan {
        StreamPlan::source("temperatures")
            .window(1)
            .select(Formula::lt_const("temperature", 12.0))
            .rename("location", "area")
            .project(["area"])
            .join(StreamPlan::source("cameras"))
            .invoke("checkPhoto", "camera")
            .invoke("takePhoto", "camera")
            .project(["photo"])
            .stream(StreamKind::Insertion)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serena_core::schema::examples as schemas;
    use serena_core::schema::XSchema;
    use serena_core::value::DataType;
    use std::collections::BTreeMap;

    /// temperatures(location STRING, temperature REAL) — an infinite
    /// XD-Relation (the sensor stream of §1.2).
    pub fn temperatures_schema() -> SchemaRef {
        XSchema::builder()
            .real("location", DataType::Str)
            .real("temperature", DataType::Real)
            .build()
            .unwrap()
    }

    fn catalog() -> BTreeMap<String, StreamSchema> {
        let mut cat = BTreeMap::new();
        cat.insert(
            "temperatures".to_string(),
            StreamSchema::infinite(temperatures_schema()),
        );
        cat.insert(
            "contacts".to_string(),
            StreamSchema::finite(schemas::contacts_schema()),
        );
        cat.insert(
            "cameras".to_string(),
            StreamSchema::finite(schemas::cameras_schema()),
        );
        cat
    }

    #[test]
    fn q3_is_finite_with_sent_realized() {
        let s = examples::q3().stream_schema(&catalog()).unwrap();
        assert!(!s.infinite);
        assert!(s.schema.is_real("sent"));
        assert!(s.schema.is_real("text"));
    }

    #[test]
    fn q4_is_an_infinite_photo_stream() {
        let s = examples::q4().stream_schema(&catalog()).unwrap();
        assert!(s.infinite);
        let names: Vec<String> = s.schema.names().map(|a| a.to_string()).collect();
        assert_eq!(names, vec!["photo"]);
    }

    #[test]
    fn window_requires_infinite_operand() {
        let err = StreamPlan::source("contacts")
            .window(1)
            .stream_schema(&catalog())
            .unwrap_err();
        assert!(matches!(err, PlanError::StreamStatusMismatch { .. }));
    }

    #[test]
    fn relational_ops_require_finite_operands() {
        let err = StreamPlan::source("temperatures")
            .select(Formula::gt_const("temperature", 30.0))
            .stream_schema(&catalog())
            .unwrap_err();
        assert!(matches!(
            err,
            PlanError::StreamStatusMismatch {
                operator: "selection",
                ..
            }
        ));
    }

    #[test]
    fn streaming_requires_finite_operand() {
        let err = StreamPlan::source("temperatures")
            .stream(StreamKind::Insertion)
            .stream_schema(&catalog())
            .unwrap_err();
        assert!(matches!(err, PlanError::StreamStatusMismatch { .. }));
    }

    #[test]
    fn window_then_stream_round_trips_status() {
        let s = StreamPlan::source("temperatures")
            .window(5)
            .stream(StreamKind::Heartbeat)
            .stream_schema(&catalog())
            .unwrap();
        assert!(s.infinite);
    }

    #[test]
    fn unknown_source_rejected() {
        assert!(matches!(
            StreamPlan::source("ghost").stream_schema(&catalog()),
            Err(PlanError::UnknownRelation(_))
        ));
    }

    #[test]
    fn algebra_rendering_includes_window_and_stream() {
        let text = examples::q4().to_algebra();
        assert!(text.contains("W[1]"));
        assert!(text.contains("S[insertion]"));
        assert!(text.contains("β takePhoto[camera]"));
    }
}
