//! Tuple multisets and deltas.
//!
//! §4.1 defines XD-Relations as mappings from time instants to *multisets*
//! of tuples (finite for dynamic relations, infinite append-only for
//! streams), following CQL. The continuous executor manipulates
//! instantaneous states as [`Multiset`]s and communicates changes between
//! operators as [`Delta`]s (inserted/deleted multisets per tick).

use std::collections::HashMap;

use serena_core::snapshot::{Reader, SnapshotError, Writer};
use serena_core::tuple::Tuple;

/// A finite multiset of tuples with positive counts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Multiset {
    counts: HashMap<Tuple, usize>,
    total: usize,
}

impl Multiset {
    /// The empty multiset.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from an iterator of tuples (each occurrence counts).
    pub fn from_tuples(tuples: impl IntoIterator<Item = Tuple>) -> Self {
        let mut m = Multiset::new();
        for t in tuples {
            m.insert(t, 1);
        }
        m
    }

    /// Number of tuple occurrences (with multiplicity).
    pub fn len(&self) -> usize {
        self.total
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Number of *distinct* tuples.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Multiplicity of `t`.
    pub fn count(&self, t: &Tuple) -> usize {
        self.counts.get(t).copied().unwrap_or(0)
    }

    /// Whether `t` occurs at least once.
    pub fn contains(&self, t: &Tuple) -> bool {
        self.count(t) > 0
    }

    /// Add `n` occurrences of `t`.
    pub fn insert(&mut self, t: Tuple, n: usize) {
        if n == 0 {
            return;
        }
        *self.counts.entry(t).or_insert(0) += n;
        self.total += n;
    }

    /// Remove up to `n` occurrences; returns how many were removed.
    pub fn remove(&mut self, t: &Tuple, n: usize) -> usize {
        if n == 0 {
            return 0;
        }
        match self.counts.get_mut(t) {
            None => 0,
            Some(c) => {
                let removed = n.min(*c);
                *c -= removed;
                if *c == 0 {
                    self.counts.remove(t);
                }
                self.total -= removed;
                removed
            }
        }
    }

    /// Iterate `(tuple, count)` pairs (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = (&Tuple, usize)> {
        self.counts.iter().map(|(t, &c)| (t, c))
    }

    /// Iterate tuples with multiplicity (each occurrence yielded).
    pub fn iter_occurrences(&self) -> impl Iterator<Item = &Tuple> {
        self.counts
            .iter()
            .flat_map(|(t, &c)| std::iter::repeat_n(t, c))
    }

    /// Apply a delta in place. Deletions of absent tuples are clamped (and
    /// reported as a consistency violation count, which callers may assert
    /// on in tests).
    pub fn apply(&mut self, delta: &Delta) -> usize {
        let mut missing = 0;
        for (t, c) in delta.deletes.iter() {
            let removed = self.remove(t, c);
            missing += c - removed;
        }
        for (t, c) in delta.inserts.iter() {
            self.insert(t.clone(), c);
        }
        missing
    }

    /// Multiset difference driving recompute-and-diff operators:
    /// `self → target` as a [`Delta`].
    pub fn diff_to(&self, target: &Multiset) -> Delta {
        let mut delta = Delta::new();
        for (t, new_c) in target.iter() {
            let old_c = self.count(t);
            if new_c > old_c {
                delta.inserts.insert(t.clone(), new_c - old_c);
            }
        }
        for (t, old_c) in self.iter() {
            let new_c = target.count(t);
            if old_c > new_c {
                delta.deletes.insert(t.clone(), old_c - new_c);
            }
        }
        delta
    }

    /// All tuples, sorted, with multiplicity — deterministic output for
    /// tables and assertions.
    pub fn sorted_occurrences(&self) -> Vec<Tuple> {
        let mut out: Vec<Tuple> = self.iter_occurrences().cloned().collect();
        out.sort();
        out
    }

    /// Encode into a checkpoint as `(distinct, then tuple ++ count per
    /// entry)`. Entries are written in sorted tuple order so the byte
    /// encoding is deterministic despite the unordered backing map.
    pub fn encode(&self, w: &mut Writer) {
        let mut entries: Vec<(&Tuple, usize)> = self.iter().collect();
        entries.sort_unstable_by(|a, b| a.0.cmp(b.0));
        w.usize(entries.len());
        for (t, c) in entries {
            w.tuple(t).usize(c);
        }
    }

    /// Decode a multiset written by [`Multiset::encode`].
    pub fn decode(r: &mut Reader<'_>) -> Result<Multiset, SnapshotError> {
        let n = r.usize()?;
        let mut m = Multiset::new();
        for _ in 0..n {
            let t = r.tuple()?;
            let c = r.usize()?;
            m.insert(t, c);
        }
        Ok(m)
    }
}

impl FromIterator<Tuple> for Multiset {
    fn from_iter<I: IntoIterator<Item = Tuple>>(iter: I) -> Self {
        Multiset::from_tuples(iter)
    }
}

/// A per-tick change: inserted and deleted multisets.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Delta {
    /// Tuples inserted this tick.
    pub inserts: Multiset,
    /// Tuples deleted this tick.
    pub deletes: Multiset,
}

impl Delta {
    /// The empty delta.
    pub fn new() -> Self {
        Self::default()
    }

    /// Delta inserting the given tuples.
    pub fn of_inserts(tuples: impl IntoIterator<Item = Tuple>) -> Self {
        Delta {
            inserts: Multiset::from_tuples(tuples),
            deletes: Multiset::new(),
        }
    }

    /// True iff nothing changed.
    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.deletes.is_empty()
    }

    /// Total occurrences touched.
    pub fn magnitude(&self) -> usize {
        self.inserts.len() + self.deletes.len()
    }

    /// Encode into a checkpoint (inserts, then deletes).
    pub fn encode(&self, w: &mut Writer) {
        self.inserts.encode(w);
        self.deletes.encode(w);
    }

    /// Decode a delta written by [`Delta::encode`].
    pub fn decode(r: &mut Reader<'_>) -> Result<Delta, SnapshotError> {
        Ok(Delta {
            inserts: Multiset::decode(r)?,
            deletes: Multiset::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serena_core::tuple;

    #[test]
    fn counts_and_removal() {
        let mut m = Multiset::new();
        m.insert(tuple![1], 2);
        m.insert(tuple![2], 1);
        assert_eq!(m.len(), 3);
        assert_eq!(m.distinct(), 2);
        assert_eq!(m.count(&tuple![1]), 2);
        assert_eq!(m.remove(&tuple![1], 5), 2);
        assert!(!m.contains(&tuple![1]));
        assert_eq!(m.len(), 1);
        assert_eq!(m.remove(&tuple![9], 1), 0);
    }

    #[test]
    fn diff_round_trip() {
        let a: Multiset = vec![tuple![1], tuple![1], tuple![2]].into_iter().collect();
        let b: Multiset = vec![tuple![1], tuple![3]].into_iter().collect();
        let d = a.diff_to(&b);
        assert_eq!(d.inserts.count(&tuple![3]), 1);
        assert_eq!(d.deletes.count(&tuple![1]), 1);
        assert_eq!(d.deletes.count(&tuple![2]), 1);
        let mut a2 = a.clone();
        assert_eq!(a2.apply(&d), 0);
        assert_eq!(a2, b);
    }

    #[test]
    fn diff_of_equal_is_empty() {
        let a: Multiset = vec![tuple![1], tuple![2]].into_iter().collect();
        assert!(a.diff_to(&a.clone()).is_empty());
    }

    #[test]
    fn apply_reports_missing_deletes() {
        let mut a: Multiset = vec![tuple![1]].into_iter().collect();
        let mut d = Delta::new();
        d.deletes.insert(tuple![1], 2);
        assert_eq!(a.apply(&d), 1);
        assert!(a.is_empty());
    }

    #[test]
    fn occurrences_iteration() {
        let m: Multiset = vec![tuple![1], tuple![1], tuple![2]].into_iter().collect();
        assert_eq!(m.iter_occurrences().count(), 3);
        assert_eq!(
            m.sorted_occurrences(),
            vec![tuple![1], tuple![1], tuple![2]]
        );
    }

    #[test]
    fn snapshot_round_trip_is_deterministic() {
        let m: Multiset = vec![tuple![2], tuple![1], tuple![1], tuple!["x", 3.5]]
            .into_iter()
            .collect();
        let mut w = Writer::new();
        m.encode(&mut w);
        let bytes = w.into_bytes();
        assert_eq!(Multiset::decode(&mut Reader::new(&bytes)).unwrap(), m);
        // deterministic: same multiset built in a different order encodes
        // to the same bytes
        let m2: Multiset = vec![tuple!["x", 3.5], tuple![1], tuple![2], tuple![1]]
            .into_iter()
            .collect();
        let mut w2 = Writer::new();
        m2.encode(&mut w2);
        assert_eq!(bytes, w2.into_bytes());

        let mut d = Delta::new();
        d.inserts.insert(tuple![7], 2);
        d.deletes.insert(tuple![9], 1);
        let mut w = Writer::new();
        d.encode(&mut w);
        let bytes = w.into_bytes();
        assert_eq!(Delta::decode(&mut Reader::new(&bytes)).unwrap(), d);
    }

    #[test]
    fn delta_constructors() {
        let d = Delta::of_inserts(vec![tuple![1], tuple![1]]);
        assert_eq!(d.magnitude(), 2);
        assert!(!d.is_empty());
        assert!(Delta::new().is_empty());
    }
}
