//! # serena-stream
//!
//! The continuous extension of the Serena algebra (§4 of the paper):
//! XD-Relations, window and streaming operators, and an incremental
//! executor for continuous queries.
//!
//! * [`multiset`] — instantaneous states as tuple multisets and per-tick
//!   deltas (§4.1's CQL-style semantics);
//! * [`source`] — dynamic tables ([`source::TableHandle`]) and stream
//!   producers ([`source::StreamSource`]);
//! * [`plan`] — [`plan::StreamPlan`]: the Serena operators plus
//!   `W[period]` and `S[insertion|deletion|heartbeat]`, with static
//!   finite/infinite checking;
//! * [`exec`] — [`exec::ContinuousQuery`]: tick-by-tick incremental
//!   evaluation with §4.2's delta-only invocation semantics and per-tick
//!   action sets;
//! * [`rewrite`] — stream-level optimization: σ-pushdown past windows,
//!   a bridge into the core heuristic optimizer for every finite region,
//!   deterministic candidate generation, telemetry-fed cost estimation
//!   and the state-migration inventory behind adaptive plan hot-swaps.
//!
//! ```
//! use serena_core::formula::Formula;
//! use serena_core::metrics::NoopMetrics;
//! use serena_core::schema::XSchema;
//! use serena_core::service::fixtures::example_registry;
//! use serena_core::tuple;
//! use serena_core::value::DataType;
//! use serena_stream::exec::{ContinuousQuery, SourceSet};
//! use serena_stream::plan::StreamPlan;
//! use serena_stream::source::PushStream;
//!
//! // a temperature stream, windowed and filtered
//! let schema = XSchema::builder()
//!     .real("location", DataType::Str)
//!     .real("temperature", DataType::Real)
//!     .build()
//!     .unwrap();
//! let push = PushStream::new();
//! let mut sources = SourceSet::new();
//! sources.add_stream("temps", schema, Box::new(push.clone()));
//!
//! let plan = StreamPlan::source("temps")
//!     .window(1)
//!     .select(Formula::gt_const("temperature", 35.5));
//! let mut query = ContinuousQuery::compile(&plan, &mut sources).unwrap();
//!
//! let registry = example_registry();
//! push.push(tuple!["office", 40.0]);
//! let report = query.tick_with(&registry, &NoopMetrics);
//! assert_eq!(report.delta.inserts.len(), 1);
//! ```

#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod exec;
pub mod multiset;
pub mod plan;
pub mod rewrite;
pub mod source;

pub use exec::{ContinuousQuery, SourceSet, TickReport};
pub use multiset::{Delta, Multiset};
pub use plan::{StreamKind, StreamPlan, StreamSchema, XdCatalog};
pub use rewrite::{
    candidates_for, estimate_stream, migration_pairs, optimize_stream, state_keys, MigrationMap,
    StateKeys,
};
pub use source::{FnStream, PushStream, StreamSource, TableHandle};
