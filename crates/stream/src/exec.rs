//! The incremental continuous-query executor (§4.2, §5.1 Query Processor).
//!
//! A [`ContinuousQuery`] interprets a [`StreamPlan`] tick by tick over
//! discrete time. Each operator node keeps its instantaneous state (a
//! multiset, per §4.1) and produces a per-tick [`Delta`]:
//!
//! * **linear operators** (σ, π, ρ, α) map their child's delta directly;
//! * **nonlinear operators** (⋈, set ops, γ) recompute their instantaneous
//!   output from their children's current states and diff against their
//!   previous output — simple, uniform and correct for the experiment
//!   scales this reproduction targets;
//! * **β (invocation)** follows §4.2 exactly: "a binding pattern is
//!   actually invoked only for newly inserted tuples, and not for every
//!   tuple from the relation at each time instant". Results are cached per
//!   input tuple so a later deletion retracts exactly the tuples the
//!   insertion produced;
//! * **W\[p\]** buffers the last `p` stream batches; **S\[kind\]** converts
//!   a finite node's delta back into a stream.
//!
//! Invocation failures (a sensor dying mid-query) do not abort the query:
//! the affected input tuple contributes nothing this tick and the error is
//! surfaced in the [`TickReport`] — the robustness behaviour §5.2 calls
//! for.

use std::collections::{HashMap, VecDeque};

use serena_core::action::{Action, ActionSet};
use serena_core::error::{EvalError, PlanError};
use serena_core::formula::CompiledFormula;
use serena_core::metrics::{
    ExecStats, MetricsSink, NodeId, NoopMetrics, OpKind, OpObservation, Tee,
};
use serena_core::ops::{self, AggSpec, AssignSource, DegradePolicy, InvokeRecipe};
use serena_core::physical::ExecOptions;
use serena_core::schema::SchemaRef;
use serena_core::service::Invoker;
use serena_core::snapshot::{Reader, SnapshotError, Writer};
use serena_core::telemetry::FlightRecorder;
use serena_core::time::Instant;
use serena_core::tuple::Tuple;
use serena_core::value::Value;
use serena_core::xrelation::XRelation;

use crate::multiset::{Delta, Multiset};
use crate::plan::{StreamKind, StreamPlan, StreamSchema, XdCatalog};
use crate::source::{StreamSource, TableHandle};

/// The named XD-Relations a continuous query runs over.
#[derive(Default)]
pub struct SourceSet {
    tables: HashMap<String, TableHandle>,
    streams: HashMap<String, (SchemaRef, Box<dyn StreamSource>)>,
}

impl SourceSet {
    /// Empty source set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a finite XD-Relation (a dynamic table).
    pub fn add_table(&mut self, name: impl Into<String>, table: TableHandle) -> &mut Self {
        self.tables.insert(name.into(), table);
        self
    }

    /// Add an infinite XD-Relation (a stream) with its schema.
    pub fn add_stream(
        &mut self,
        name: impl Into<String>,
        schema: SchemaRef,
        source: Box<dyn StreamSource>,
    ) -> &mut Self {
        self.streams.insert(name.into(), (schema, source));
        self
    }

    /// Handle to a registered table.
    pub fn table(&self, name: &str) -> Option<&TableHandle> {
        self.tables.get(name)
    }
}

impl XdCatalog for SourceSet {
    fn xd_schema_of(&self, name: &str) -> Option<StreamSchema> {
        if let Some(t) = self.tables.get(name) {
            return Some(StreamSchema::finite(t.schema()));
        }
        self.streams
            .get(name)
            .map(|(s, _)| StreamSchema::infinite(s.clone()))
    }
}

/// What one tick produced.
#[derive(Debug)]
pub struct TickReport {
    /// The instant that was evaluated.
    pub at: Instant,
    /// Root delta (finite roots).
    pub delta: Delta,
    /// Root stream batch (infinite roots; empty for finite roots).
    pub batch: Vec<Tuple>,
    /// Active invocations triggered this tick (Definition 8, per-tick).
    pub actions: ActionSet,
    /// Invocation errors survived this tick.
    pub errors: Vec<EvalError>,
    /// Per-node statistics of this tick (delta sizes, β invocations and
    /// cache hits/misses, self-time), keyed by the plan's pre-order
    /// [`NodeId`]s.
    pub stats: ExecStats,
    /// Wall-clock duration of the whole tick (all nodes, β calls
    /// included) — the sample behind per-query tick-duration histograms.
    pub elapsed: std::time::Duration,
}

struct Ctx<'a> {
    at: Instant,
    invoker: &'a dyn Invoker,
    actions: &'a mut ActionSet,
    errors: &'a mut Vec<EvalError>,
    metrics: &'a dyn MetricsSink,
    /// β worker-pool width for one δ-batch (1 = serial).
    parallelism: usize,
    /// How β/βˢ reacts when one tuple's invocation fails.
    degrade: DegradePolicy,
    /// Armed flight recorder for per-operator spans (`None` = no tracing).
    tracer: Option<&'a FlightRecorder>,
}

/// Per-tick node output: a finite delta or a stream batch.
enum Out {
    Finite(Delta),
    Batch(Vec<Tuple>),
}

impl Out {
    fn finite(self) -> Delta {
        match self {
            Out::Finite(d) => d,
            Out::Batch(_) => unreachable!("type-checked: finite operand expected"),
        }
    }

    fn batch(self) -> Vec<Tuple> {
        match self {
            Out::Batch(b) => b,
            Out::Finite(_) => unreachable!("type-checked: stream operand expected"),
        }
    }
}

/// One compiled physical node of a continuous query: its stable pre-order
/// [`NodeId`] (assigned once at compile time, reused every tick so per-tick
/// and rolling statistics line up across the query's lifetime) plus the
/// operator state.
struct Node {
    id: NodeId,
    kind: NodeKind,
}

enum NodeKind {
    Table {
        handle: TableHandle,
        current: Multiset,
        /// Whether this node has ticked before (first tick bootstraps the
        /// node from the table's current contents — queries registered
        /// mid-run start from the live state, §5.1).
        started: bool,
    },
    Stream {
        source: Box<dyn StreamSource>,
    },
    Linear {
        child: Box<Node>,
        op: LinearOp,
        current: Multiset,
    },
    Recompute {
        left: Box<Node>,
        right: Option<Box<Node>>,
        op: RecomputeOp,
        current: Multiset,
    },
    Invoke {
        child: Box<Node>,
        recipe: InvokeRecipe,
        cache: HashMap<Tuple, CacheEntry>,
        current: Multiset,
    },
    Window {
        child: Box<Node>,
        period: u64,
        ring: VecDeque<Vec<Tuple>>,
        current: Multiset,
        /// Set when a plan hot-swap adopted this ring from an outgoing
        /// query: the first tick then emits the full (post-update) window
        /// content as pure insertions — downstream nodes of the new plan
        /// start cold and need the complete state, not an incremental
        /// delta. Cleared after that bootstrap tick; survives checkpoints.
        warm: bool,
    },
    StreamOf {
        child: Box<Node>,
        kind: StreamKind,
    },
    /// Streaming binding pattern `βˢ` (extension, §7 future work):
    /// periodically invoke a passive BP over the whole finite child and
    /// stream the extended tuples.
    SampleInvoke {
        child: Box<Node>,
        recipe: InvokeRecipe,
        period: u64,
    },
}

struct CacheEntry {
    count: usize,
    outputs: Vec<Tuple>,
}

enum LinearOp {
    Select(CompiledFormula),
    /// Coordinates of the output tuple within the input tuple.
    Project(Vec<usize>),
    Rename,
    /// (recipe over new real layout: Some(old coord) or None = assigned)
    Assign {
        recipe: Vec<Option<usize>>,
        source_coord: Option<usize>,
        constant: Option<Value>,
    },
}

enum RecomputeOp {
    Union,
    Intersect,
    Difference,
    Join(JoinRecipe),
    Aggregate {
        schema: SchemaRef,
        group: Vec<serena_core::attr::AttrName>,
        aggs: Vec<AggSpec>,
    },
}

struct JoinRecipe {
    key_left: Vec<usize>,
    key_right: Vec<usize>,
    /// For each output real attr: coordinate in (left=true) or right.
    recipe: Vec<(bool, usize)>,
}

impl Node {
    /// The node's current instantaneous multiset (finite nodes only).
    fn current(&self) -> &Multiset {
        match &self.kind {
            NodeKind::Table { current, .. }
            | NodeKind::Linear { current, .. }
            | NodeKind::Recompute { current, .. }
            | NodeKind::Invoke { current, .. }
            | NodeKind::Window { current, .. } => current,
            NodeKind::Stream { .. } | NodeKind::StreamOf { .. } | NodeKind::SampleInvoke { .. } => {
                unreachable!("type-checked: streams have no instantaneous state")
            }
        }
    }
}

/// A running continuous query.
pub struct ContinuousQuery {
    root: Node,
    schema: StreamSchema,
    next: Instant,
    options: ExecOptions,
    tracer: Option<std::sync::Arc<FlightRecorder>>,
}

impl ContinuousQuery {
    /// Compile `plan` against `sources`, consuming the stream sources it
    /// references. Performs full static validation first.
    pub fn compile(plan: &StreamPlan, sources: &mut SourceSet) -> Result<Self, PlanError> {
        Self::compile_with_options(plan, sources, ExecOptions::default())
    }

    /// [`ContinuousQuery::compile`] with explicit execution options
    /// (β worker-pool width).
    pub fn compile_with_options(
        plan: &StreamPlan,
        sources: &mut SourceSet,
        options: ExecOptions,
    ) -> Result<Self, PlanError> {
        let schema = plan.stream_schema(sources)?;
        let mut next_id = 0usize;
        let root = build(plan, sources, &mut next_id)?;
        Ok(ContinuousQuery {
            root,
            schema,
            next: Instant::ZERO,
            options,
            tracer: None,
        })
    }

    /// Attach (or detach) a flight recorder: every tick then records one
    /// span per plan node, keyed by the compile-time [`NodeId`], with
    /// delta sizes and β counters as attributes. Purely observational —
    /// results are byte-identical with or without a recorder.
    pub fn set_tracer(&mut self, tracer: Option<std::sync::Arc<FlightRecorder>>) {
        self.tracer = tracer;
    }

    /// The query's output schema and finite/infinite status.
    pub fn schema(&self) -> &StreamSchema {
        &self.schema
    }

    /// The instant the next `tick` will evaluate.
    pub fn next_instant(&self) -> Instant {
        self.next
    }

    /// The configured β invocation pool width (see
    /// [`ContinuousQuery::tick_with_budget`] for how a multi-query
    /// scheduler divides it among concurrent ticks).
    pub fn invoke_parallelism(&self) -> usize {
        self.options.invoke_parallelism
    }

    /// The full execution options the query was compiled with — a plan
    /// hot-swap recompiles the replacement with the same knobs.
    pub fn options(&self) -> ExecOptions {
        self.options
    }

    /// Align the query's clock so its next tick evaluates `at` — used when
    /// registering a query mid-run so it joins the global tick cadence.
    pub fn seek(&mut self, at: Instant) {
        self.next = at;
    }

    /// Evaluate one instant, additionally duplicating this tick's
    /// per-node observations into `sink` — the hook the Query Processor
    /// uses to accumulate rolling per-query statistics. The per-tick
    /// statistics are always available in the returned
    /// [`TickReport::stats`].
    pub fn tick_with(&mut self, invoker: &dyn Invoker, sink: &dyn MetricsSink) -> TickReport {
        self.tick_with_budget(invoker, sink, self.options.invoke_parallelism)
    }

    /// [`ContinuousQuery::tick_with`] under an explicit intra-β
    /// parallelism budget: the effective β pool width for this tick is
    /// `min(invoke_parallelism, budget)` (floored at 1). The multi-query
    /// scheduler uses this to *divide* the configured budget among queries
    /// ticking concurrently instead of multiplying it — β parallelism is
    /// proven output-neutral (`tests/physical_differential.rs`), so the
    /// clamp never changes results, only thread counts.
    pub fn tick_with_budget(
        &mut self,
        invoker: &dyn Invoker,
        sink: &dyn MetricsSink,
        budget: usize,
    ) -> TickReport {
        let started = std::time::Instant::now();
        let at = self.next;
        self.next = at.next();
        let mut actions = ActionSet::new();
        let mut errors = Vec::new();
        let stats = ExecStats::new();
        let out = {
            let tee = Tee(&stats, sink);
            let mut ctx = Ctx {
                at,
                invoker,
                actions: &mut actions,
                errors: &mut errors,
                metrics: &tee,
                parallelism: self.options.invoke_parallelism.min(budget.max(1)),
                degrade: self.options.degrade,
                tracer: self.tracer.as_deref().filter(|r| r.armed()),
            };
            tick_node(&mut self.root, &mut ctx)
        };
        let (delta, batch) = match out {
            Out::Finite(d) => (d, Vec::new()),
            Out::Batch(b) => (Delta::new(), b),
        };
        TickReport {
            at,
            delta,
            batch,
            actions,
            errors,
            stats,
            elapsed: started.elapsed(),
        }
    }

    /// Run `n` ticks, collecting reports.
    pub fn run(&mut self, invoker: &dyn Invoker, n: u64) -> Vec<TickReport> {
        (0..n)
            .map(|_| self.tick_with(invoker, &NoopMetrics))
            .collect()
    }

    /// Snapshot the current instantaneous result as an [`XRelation`]
    /// (finite queries only; multiplicities collapse to set semantics).
    pub fn current_relation(&self) -> Option<XRelation> {
        if self.schema.infinite {
            return None;
        }
        let mut rel = XRelation::empty(self.schema.schema.clone());
        for t in self.root.current().sorted_occurrences() {
            rel.insert(t);
        }
        Some(rel)
    }

    /// Serialize the query's dynamic state into a checkpoint: the logical
    /// clock plus, per node in pre-order, whatever the operator carries
    /// across ticks (instantaneous multisets, the β cache, window rings,
    /// the table bootstrap flag). Static structure — the plan shape,
    /// schemas, compiled recipes — is *not* captured: restore recompiles
    /// the plan and [`ContinuousQuery::read_snapshot`] verifies the shapes
    /// agree.
    ///
    /// Table *contents* are shared state owned by [`TableHandle`]s and are
    /// checkpointed separately (see [`TableHandle::export_state`]).
    pub fn write_snapshot(&self, w: &mut Writer) {
        w.u64(self.next.ticks());
        snapshot_node(&self.root, w);
    }

    /// Restore dynamic state written by [`ContinuousQuery::write_snapshot`]
    /// into a freshly compiled query over the same plan. Fails with
    /// [`SnapshotError::Mismatch`] if the snapshot's node tree does not
    /// match this query's shape; on any error the query's state is
    /// unspecified and the query should be discarded.
    pub fn read_snapshot(&mut self, r: &mut Reader<'_>) -> Result<(), SnapshotError> {
        let next = r.u64()?;
        restore_node(&mut self.root, r)?;
        self.next = Instant(next);
        Ok(())
    }

    /// Carry reusable operator state over from the outgoing query of a
    /// plan hot-swap. `windows` and `invokes` are `(new_pos, old_pos)`
    /// pairs, positions counting nodes of that kind in pre-order (the
    /// plan-level [`crate::rewrite::migration_pairs`] inventory) — only
    /// pairs whose operand subtree (windows) or operand schema (β caches)
    /// is unchanged may be passed.
    ///
    /// * a window adopts the old ring and content and is marked *warm*:
    ///   its first tick emits the full window as insertions so the cold
    ///   downstream nodes of the new plan see complete state;
    /// * a β node adopts the old cache with all counts zeroed (its cold
    ///   child will re-insert whatever subset of inputs survives the new
    ///   plan); adopted hits re-emit cached outputs without re-invoking
    ///   the service — no duplicate actions, no duplicate calls.
    ///
    /// Everything else starts cold, which is exactly the registered-
    /// mid-run bootstrap every node already supports.
    pub fn adopt_state_from(
        &mut self,
        old: &ContinuousQuery,
        windows: &[(usize, usize)],
        invokes: &[(usize, usize)],
    ) {
        let mut old_windows = Vec::new();
        let mut old_invokes = Vec::new();
        collect_state(&old.root, &mut old_windows, &mut old_invokes);
        let wmap: HashMap<usize, usize> = windows.iter().copied().collect();
        let imap: HashMap<usize, usize> = invokes.iter().copied().collect();
        let (mut wi, mut ii) = (0usize, 0usize);
        adopt_node(
            &mut self.root,
            &wmap,
            &imap,
            &old_windows,
            &old_invokes,
            &mut wi,
            &mut ii,
        );
    }
}

/// Cloned per-kind state of an old query's tree, in pre-order.
type WindowState = (u64, VecDeque<Vec<Tuple>>, Multiset);
type InvokeState = Vec<(Tuple, Vec<Tuple>)>;

fn collect_state(node: &Node, windows: &mut Vec<WindowState>, invokes: &mut Vec<InvokeState>) {
    match &node.kind {
        NodeKind::Window {
            child,
            period,
            ring,
            current,
            ..
        } => {
            windows.push((*period, ring.clone(), current.clone()));
            collect_state(child, windows, invokes);
        }
        NodeKind::Invoke { child, cache, .. } => {
            let mut entries: Vec<(Tuple, Vec<Tuple>)> = cache
                .iter()
                .map(|(t, e)| (t.clone(), e.outputs.clone()))
                .collect();
            entries.sort_unstable_by(|a, b| a.0.cmp(&b.0));
            invokes.push(entries);
            collect_state(child, windows, invokes);
        }
        NodeKind::Table { .. } | NodeKind::Stream { .. } => {}
        NodeKind::Linear { child, .. }
        | NodeKind::StreamOf { child, .. }
        | NodeKind::SampleInvoke { child, .. } => collect_state(child, windows, invokes),
        NodeKind::Recompute { left, right, .. } => {
            collect_state(left, windows, invokes);
            if let Some(r) = right {
                collect_state(r, windows, invokes);
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn adopt_node(
    node: &mut Node,
    wmap: &HashMap<usize, usize>,
    imap: &HashMap<usize, usize>,
    old_windows: &[WindowState],
    old_invokes: &[InvokeState],
    wi: &mut usize,
    ii: &mut usize,
) {
    match &mut node.kind {
        NodeKind::Window {
            child,
            period,
            ring,
            current,
            warm,
        } => {
            let pos = *wi;
            *wi += 1;
            if let Some((operiod, oring, ocurrent)) =
                wmap.get(&pos).and_then(|&oi| old_windows.get(oi))
            {
                // defense in depth: the pairing already implies identical
                // subtrees, which includes the period
                if operiod == period {
                    *ring = oring.clone();
                    *current = ocurrent.clone();
                    *warm = true;
                }
            }
            adopt_node(child, wmap, imap, old_windows, old_invokes, wi, ii);
        }
        NodeKind::Invoke {
            child,
            cache,
            current,
            ..
        } => {
            let pos = *ii;
            *ii += 1;
            if let Some(entries) = imap.get(&pos).and_then(|&oi| old_invokes.get(oi)) {
                cache.clear();
                *current = Multiset::new();
                for (t, outputs) in entries {
                    cache.insert(
                        t.clone(),
                        CacheEntry {
                            count: 0,
                            outputs: outputs.clone(),
                        },
                    );
                }
            }
            adopt_node(child, wmap, imap, old_windows, old_invokes, wi, ii);
        }
        NodeKind::Table { .. } | NodeKind::Stream { .. } => {}
        NodeKind::Linear { child, .. }
        | NodeKind::StreamOf { child, .. }
        | NodeKind::SampleInvoke { child, .. } => {
            adopt_node(child, wmap, imap, old_windows, old_invokes, wi, ii)
        }
        NodeKind::Recompute { left, right, .. } => {
            adopt_node(left, wmap, imap, old_windows, old_invokes, wi, ii);
            if let Some(r) = right {
                adopt_node(r, wmap, imap, old_windows, old_invokes, wi, ii);
            }
        }
    }
}

/// Stable operator tag for shape verification across checkpoint/restore.
fn node_tag(kind: &NodeKind) -> u8 {
    match kind {
        NodeKind::Table { .. } => 0,
        NodeKind::Stream { .. } => 1,
        NodeKind::Linear { .. } => 2,
        NodeKind::Recompute { .. } => 3,
        NodeKind::Invoke { .. } => 4,
        NodeKind::Window { .. } => 5,
        NodeKind::StreamOf { .. } => 6,
        NodeKind::SampleInvoke { .. } => 7,
    }
}

fn snapshot_node(node: &Node, w: &mut Writer) {
    w.u8(node_tag(&node.kind));
    match &node.kind {
        NodeKind::Table {
            // at a tick boundary the node's instantaneous state equals the
            // table's committed contents, which the table manager already
            // persists — only the bootstrap flag is node-local
            started,
            ..
        } => {
            w.bool(*started);
        }
        // stream sources are driven by the environment; they carry no
        // executor state of their own
        NodeKind::Stream { .. } => {}
        NodeKind::Linear { child, current, .. } => {
            current.encode(w);
            snapshot_node(child, w);
        }
        NodeKind::Recompute {
            left,
            right,
            current,
            ..
        } => {
            current.encode(w);
            snapshot_node(left, w);
            if let Some(r) = right {
                snapshot_node(r, w);
            }
        }
        NodeKind::Invoke {
            child,
            cache,
            // every β emission is mirrored in the cache (fillers included),
            // so `current` is Σ count × outputs over the entries — derived
            // on restore rather than encoded
            current: _,
            ..
        } => {
            let mut entries: Vec<(&Tuple, &CacheEntry)> = cache.iter().collect();
            entries.sort_unstable_by(|a, b| a.0.cmp(b.0));
            w.usize(entries.len());
            for (t, e) in entries {
                w.tuple(t).usize(e.count).usize(e.outputs.len());
                for o in &e.outputs {
                    w.tuple(o);
                }
            }
            snapshot_node(child, w);
        }
        NodeKind::Window {
            child,
            period,
            ring,
            // `current` is exactly the multiset of the ring's tuples (each
            // tick inserts the new batch and deletes the expired one), so
            // it is derived on restore rather than encoded — the dominant
            // term of a windowed query's snapshot, halved
            current: _,
            warm,
        } => {
            w.u64(*period);
            // a checkpoint can land between a plan hot-swap and the
            // adopted ring's bootstrap tick — the pending full emission
            // must survive restore (snapshot format v2)
            w.bool(*warm);
            w.usize(ring.len());
            for batch in ring {
                w.usize(batch.len());
                for t in batch {
                    w.tuple(t);
                }
            }
            snapshot_node(child, w);
        }
        NodeKind::StreamOf { child, .. } | NodeKind::SampleInvoke { child, .. } => {
            snapshot_node(child, w);
        }
    }
}

fn restore_node(node: &mut Node, r: &mut Reader<'_>) -> Result<(), SnapshotError> {
    let tag = r.u8()?;
    let expected = node_tag(&node.kind);
    if tag != expected {
        return Err(SnapshotError::Mismatch(format!(
            "node {}: plan has operator tag {expected}, snapshot has {tag}",
            node.id
        )));
    }
    match &mut node.kind {
        NodeKind::Table {
            handle,
            current,
            started,
        } => {
            *started = r.bool()?;
            // derived: the table manager restored the handle's committed
            // contents before the processor restore reached this node.
            // A node checkpointed *before* its bootstrap tick (e.g. a plan
            // hot-swap checkpointed before the new plan's first tick) was
            // still empty — its bootstrap tick will apply the contents.
            *current = if *started {
                handle.snapshot()
            } else {
                Multiset::new()
            };
        }
        NodeKind::Stream { .. } => {}
        NodeKind::Linear { child, current, .. } => {
            *current = Multiset::decode(r)?;
            restore_node(child, r)?;
        }
        NodeKind::Recompute {
            left,
            right,
            current,
            ..
        } => {
            *current = Multiset::decode(r)?;
            restore_node(left, r)?;
            if let Some(right) = right {
                restore_node(right, r)?;
            }
        }
        NodeKind::Invoke {
            child,
            cache,
            current,
            ..
        } => {
            let entries = r.usize()?;
            cache.clear();
            *current = Multiset::new();
            for _ in 0..entries {
                let t = r.tuple()?;
                let count = r.usize()?;
                let n_outputs = r.usize()?;
                let mut outputs = Vec::with_capacity(n_outputs.min(r.remaining()));
                for _ in 0..n_outputs {
                    let o = r.tuple()?;
                    // derived: the β output is the cached extensions, one
                    // occurrence per cached occurrence of the input tuple
                    current.insert(o.clone(), count);
                    outputs.push(o);
                }
                cache.insert(t, CacheEntry { count, outputs });
            }
            restore_node(child, r)?;
        }
        NodeKind::Window {
            child,
            period,
            ring,
            current,
            warm,
        } => {
            let stored = r.u64()?;
            if stored != *period {
                return Err(SnapshotError::Mismatch(format!(
                    "node {}: window period {period} vs snapshot {stored}",
                    node.id
                )));
            }
            *warm = r.bool()?;
            let batches = r.usize()?;
            ring.clear();
            *current = Multiset::new();
            for _ in 0..batches {
                let len = r.usize()?;
                let mut batch = Vec::with_capacity(len.min(r.remaining()));
                for _ in 0..len {
                    batch.push(r.tuple()?);
                }
                // the instantaneous window content is derived, not stored:
                // it is the multiset union of the ring's batches
                for t in &batch {
                    current.insert(t.clone(), 1);
                }
                ring.push_back(batch);
            }
            restore_node(child, r)?;
        }
        NodeKind::StreamOf { child, .. } | NodeKind::SampleInvoke { child, .. } => {
            restore_node(child, r)?;
        }
    }
    Ok(())
}

/// Compile one plan node, assigning pre-order [`NodeId`]s (this node first,
/// then children left to right — the order [`tick_node`] visits them).
fn build(
    plan: &StreamPlan,
    sources: &mut SourceSet,
    next_id: &mut usize,
) -> Result<Node, PlanError> {
    let id = NodeId(*next_id);
    *next_id += 1;
    let kind = match plan {
        StreamPlan::Source(name) => {
            if let Some(handle) = sources.tables.get(name) {
                NodeKind::Table {
                    handle: handle.clone(),
                    current: Multiset::new(),
                    started: false,
                }
            } else if let Some((_, source)) = sources.streams.remove(name) {
                NodeKind::Stream { source }
            } else {
                return Err(PlanError::UnknownRelation(name.clone()));
            }
        }
        StreamPlan::Select(p, f) => {
            let child_schema = p.stream_schema(sources)?.schema;
            let compiled = f.compile(&child_schema)?;
            NodeKind::Linear {
                child: Box::new(build(p, sources, next_id)?),
                op: LinearOp::Select(compiled),
                current: Multiset::new(),
            }
        }
        StreamPlan::Project(p, attrs) => {
            let child_schema = p.stream_schema(sources)?.schema;
            let out = ops::project_schema(&child_schema, attrs)?;
            let coords: Vec<usize> = out
                .attrs()
                .iter()
                .filter(|a| a.is_real())
                .map(|a| child_schema.coord_of(a.name.as_str()).expect("real"))
                .collect();
            NodeKind::Linear {
                child: Box::new(build(p, sources, next_id)?),
                op: LinearOp::Project(coords),
                current: Multiset::new(),
            }
        }
        StreamPlan::Rename(p, from, to) => {
            let child_schema = p.stream_schema(sources)?.schema;
            ops::rename_schema(&child_schema, from, to)?;
            NodeKind::Linear {
                child: Box::new(build(p, sources, next_id)?),
                op: LinearOp::Rename,
                current: Multiset::new(),
            }
        }
        StreamPlan::Assign(p, attr, src) => {
            let child_schema = p.stream_schema(sources)?.schema;
            let out = ops::assign_schema(&child_schema, attr, src)?;
            let recipe: Vec<Option<usize>> = out
                .attrs()
                .iter()
                .filter(|a| a.is_real())
                .map(|a| {
                    if a.name == *attr {
                        None
                    } else {
                        Some(child_schema.coord_of(a.name.as_str()).expect("was real"))
                    }
                })
                .collect();
            let (source_coord, constant) = match src {
                AssignSource::Attr(b) => {
                    (Some(child_schema.coord_of(b.as_str()).expect("real")), None)
                }
                AssignSource::Const(v) => (None, Some(v.clone())),
            };
            NodeKind::Linear {
                child: Box::new(build(p, sources, next_id)?),
                op: LinearOp::Assign {
                    recipe,
                    source_coord,
                    constant,
                },
                current: Multiset::new(),
            }
        }
        StreamPlan::Union(a, b) | StreamPlan::Intersect(a, b) | StreamPlan::Difference(a, b) => {
            let sa = a.stream_schema(sources)?.schema;
            let sb = b.stream_schema(sources)?.schema;
            ops::set_op_schema(&sa, &sb)?;
            let op = match plan {
                StreamPlan::Union(..) => RecomputeOp::Union,
                StreamPlan::Intersect(..) => RecomputeOp::Intersect,
                _ => RecomputeOp::Difference,
            };
            let left = Box::new(build(a, sources, next_id)?);
            let right = Some(Box::new(build(b, sources, next_id)?));
            NodeKind::Recompute {
                left,
                right,
                op,
                current: Multiset::new(),
            }
        }
        StreamPlan::Join(a, b) => {
            let sa = a.stream_schema(sources)?.schema;
            let sb = b.stream_schema(sources)?.schema;
            let out = ops::join_schema(&sa, &sb)?;
            let key_attrs: Vec<&str> = sa
                .attrs()
                .iter()
                .filter(|x| x.is_real() && sb.is_real(x.name.as_str()))
                .map(|x| x.name.as_str())
                .collect();
            let recipe = JoinRecipe {
                key_left: key_attrs
                    .iter()
                    .map(|x| sa.coord_of(x).expect("real"))
                    .collect(),
                key_right: key_attrs
                    .iter()
                    .map(|x| sb.coord_of(x).expect("real"))
                    .collect(),
                recipe: out
                    .attrs()
                    .iter()
                    .filter(|x| x.is_real())
                    .map(|x| match sa.coord_of(x.name.as_str()) {
                        Some(c) => (true, c),
                        None => (false, sb.coord_of(x.name.as_str()).expect("real")),
                    })
                    .collect(),
            };
            let left = Box::new(build(a, sources, next_id)?);
            let right = Some(Box::new(build(b, sources, next_id)?));
            NodeKind::Recompute {
                left,
                right,
                op: RecomputeOp::Join(recipe),
                current: Multiset::new(),
            }
        }
        StreamPlan::Aggregate(p, group, aggs) => {
            let child_schema = p.stream_schema(sources)?.schema;
            ops::aggregate_schema(&child_schema, group, aggs)?;
            NodeKind::Recompute {
                left: Box::new(build(p, sources, next_id)?),
                right: None,
                op: RecomputeOp::Aggregate {
                    schema: child_schema,
                    group: group.clone(),
                    aggs: aggs.clone(),
                },
                current: Multiset::new(),
            }
        }
        StreamPlan::Invoke(p, proto, sa) => {
            let in_schema = p.stream_schema(sources)?.schema;
            let recipe = InvokeRecipe::prepare(&in_schema, proto, sa.as_str())?;
            NodeKind::Invoke {
                child: Box::new(build(p, sources, next_id)?),
                recipe,
                cache: HashMap::new(),
                current: Multiset::new(),
            }
        }
        StreamPlan::Window(p, period) => NodeKind::Window {
            child: Box::new(build(p, sources, next_id)?),
            period: (*period).max(1),
            ring: VecDeque::new(),
            current: Multiset::new(),
            warm: false,
        },
        StreamPlan::Stream(p, kind) => NodeKind::StreamOf {
            child: Box::new(build(p, sources, next_id)?),
            kind: *kind,
        },
        StreamPlan::SampleInvoke(p, proto, sa, period) => {
            let in_schema = p.stream_schema(sources)?.schema;
            let recipe = InvokeRecipe::prepare(&in_schema, proto, sa.as_str())?;
            NodeKind::SampleInvoke {
                child: Box::new(build(p, sources, next_id)?),
                recipe,
                period: (*period).max(1),
            }
        }
    };
    Ok(Node { id, kind })
}

fn op_kind_of(kind: &NodeKind) -> OpKind {
    match kind {
        NodeKind::Table { .. } => OpKind::Relation,
        NodeKind::Stream { .. } => OpKind::Source,
        NodeKind::Linear { op, .. } => match op {
            LinearOp::Select(_) => OpKind::Select,
            LinearOp::Project(_) => OpKind::Project,
            LinearOp::Rename => OpKind::Rename,
            LinearOp::Assign { .. } => OpKind::Assign,
        },
        NodeKind::Recompute { op, .. } => match op {
            RecomputeOp::Union => OpKind::Union,
            RecomputeOp::Intersect => OpKind::Intersect,
            RecomputeOp::Difference => OpKind::Difference,
            RecomputeOp::Join(_) => OpKind::Join,
            RecomputeOp::Aggregate { .. } => OpKind::Aggregate,
        },
        NodeKind::Invoke { .. } => OpKind::Invoke,
        NodeKind::Window { .. } => OpKind::Window,
        NodeKind::StreamOf { .. } => OpKind::StreamOf,
        NodeKind::SampleInvoke { .. } => OpKind::SampleInvoke,
    }
}

fn delta_size(d: &Delta) -> u64 {
    (d.inserts.len() + d.deletes.len()) as u64
}

/// Static span name per operator, matching [`op_kind_of`].
fn span_name_of(kind: &NodeKind) -> &'static str {
    match kind {
        NodeKind::Table { .. } => "op.table",
        NodeKind::Stream { .. } => "op.stream",
        NodeKind::Linear { op, .. } => match op {
            LinearOp::Select(_) => "op.select",
            LinearOp::Project(_) => "op.project",
            LinearOp::Rename => "op.rename",
            LinearOp::Assign { .. } => "op.assign",
        },
        NodeKind::Recompute { op, .. } => match op {
            RecomputeOp::Union => "op.union",
            RecomputeOp::Intersect => "op.intersect",
            RecomputeOp::Difference => "op.difference",
            RecomputeOp::Join(_) => "op.join",
            RecomputeOp::Aggregate { .. } => "op.aggregate",
        },
        NodeKind::Invoke { .. } => "op.invoke",
        NodeKind::Window { .. } => "op.window",
        NodeKind::StreamOf { .. } => "op.streamof",
        NodeKind::SampleInvoke { .. } => "op.sample_invoke",
    }
}

/// Tick one node, recording one [`OpObservation`] under its compile-time
/// pre-order [`NodeId`] (delta sizes, β counters, operator self-time) —
/// and, when a flight recorder is armed, one span per node. The span's
/// wall interval is *inclusive* (children run inside it, nesting the tree
/// naturally); the observation's `elapsed` stays self-time.
fn tick_node(node: &mut Node, ctx: &mut Ctx<'_>) -> Out {
    let mut obs = OpObservation::new(node.id, op_kind_of(&node.kind));
    let mut span = ctx
        .tracer
        .and_then(|t| t.start(span_name_of(&node.kind), ctx.at));
    let out = {
        let _in_span = span.as_ref().map(|s| s.enter());
        tick_node_inner(&mut node.kind, ctx, &mut obs)
    };
    obs.tuples_out = match &out {
        Out::Finite(d) => delta_size(d),
        Out::Batch(b) => b.len() as u64,
    };
    if let Some(s) = span.as_mut() {
        s.attr_u64("node", node.id.0 as u64);
        s.attr_u64("tuples_in", obs.tuples_in);
        s.attr_u64("tuples_out", obs.tuples_out);
        s.attr_u64(
            "self_ns",
            u128::min(obs.elapsed.as_nanos(), u64::MAX as u128) as u64,
        );
        if obs.invocations > 0 {
            s.attr_u64("invocations", obs.invocations);
            s.attr_u64("cache_hits", obs.cache_hits);
            s.attr_u64("failures", obs.failures);
            s.attr_u64("degraded", obs.degraded);
            if obs.remote_unavailable > 0 {
                s.attr_u64("remote_unavailable", obs.remote_unavailable);
            }
        }
    }
    drop(span);
    ctx.metrics.record(&obs);
    out
}

fn tick_node_inner(node: &mut NodeKind, ctx: &mut Ctx<'_>, obs: &mut OpObservation) -> Out {
    match node {
        NodeKind::Table {
            handle,
            current,
            started,
        } => {
            let started_at = std::time::Instant::now();
            let delta = handle.tick_at(ctx.at, !*started);
            *started = true;
            current.apply(&delta);
            obs.elapsed = started_at.elapsed();
            Out::Finite(delta)
        }
        NodeKind::Stream { source } => {
            let started_at = std::time::Instant::now();
            let batch = source.poll(ctx.at);
            obs.elapsed = started_at.elapsed();
            Out::Batch(batch)
        }
        NodeKind::Linear { child, op, current } => {
            let child_delta = tick_node(child, ctx).finite();
            obs.tuples_in = delta_size(&child_delta);
            let started_at = std::time::Instant::now();
            let delta = apply_linear(op, &child_delta, ctx);
            current.apply(&delta);
            obs.elapsed = started_at.elapsed();
            Out::Finite(delta)
        }
        NodeKind::Recompute {
            left,
            right,
            op,
            current,
        } => {
            let left_delta = tick_node(left, ctx).finite();
            obs.tuples_in = delta_size(&left_delta);
            if let Some(r) = right {
                let right_delta = tick_node(r, ctx).finite();
                obs.tuples_in += delta_size(&right_delta);
            }
            let started_at = std::time::Instant::now();
            let new = recompute(op, left, right.as_deref(), ctx);
            let delta = current.diff_to(&new);
            *current = new;
            obs.elapsed = started_at.elapsed();
            Out::Finite(delta)
        }
        NodeKind::Invoke {
            child,
            recipe,
            cache,
            current,
        } => {
            let child_delta = tick_node(child, ctx).finite();
            obs.tuples_in = delta_size(&child_delta);
            let started_at = std::time::Instant::now();
            let delta = apply_invoke(recipe, cache, &child_delta, ctx, obs);
            current.apply(&delta);
            obs.elapsed = started_at.elapsed();
            Out::Finite(delta)
        }
        NodeKind::Window {
            child,
            period,
            ring,
            current,
            warm,
        } => {
            let batch = tick_node(child, ctx).batch();
            obs.tuples_in = batch.len() as u64;
            let started_at = std::time::Instant::now();
            let mut delta = Delta::new();
            for t in &batch {
                delta.inserts.insert(t.clone(), 1);
            }
            ring.push_back(batch);
            if ring.len() as u64 > *period {
                let expired = ring.pop_front().expect("nonempty");
                for t in expired {
                    delta.deletes.insert(t, 1);
                }
            }
            current.apply(&delta);
            if *warm {
                // bootstrap tick after a hot-swap adopted this ring: the
                // nodes downstream are cold, so replace the incremental
                // delta with the full post-update content as insertions
                *warm = false;
                delta = Delta::new();
                for (t, c) in current.iter() {
                    delta.inserts.insert(t.clone(), c);
                }
            }
            obs.elapsed = started_at.elapsed();
            Out::Finite(delta)
        }
        NodeKind::StreamOf { child, kind } => {
            let child_delta = tick_node(child, ctx).finite();
            obs.tuples_in = delta_size(&child_delta);
            let started_at = std::time::Instant::now();
            let batch: Vec<Tuple> = match kind {
                StreamKind::Insertion => child_delta.inserts.sorted_occurrences(),
                StreamKind::Deletion => child_delta.deletes.sorted_occurrences(),
                StreamKind::Heartbeat => child.current().sorted_occurrences(),
            };
            obs.elapsed = started_at.elapsed();
            Out::Batch(batch)
        }
        NodeKind::SampleInvoke {
            child,
            recipe,
            period,
        } => {
            let child_delta = tick_node(child, ctx).finite();
            obs.tuples_in = delta_size(&child_delta);
            if !ctx.at.ticks().is_multiple_of(*period) {
                return Out::Batch(Vec::new());
            }
            // sample the *whole* current relation (distinct tuples; each
            // occurrence contributes one output copy). The BP is passive
            // (statically checked), so no actions are recorded.
            let started_at = std::time::Instant::now();
            let entries: Vec<(&Tuple, usize)> = child.current().iter().collect();
            let tuples: Vec<&Tuple> = entries.iter().map(|(t, _)| *t).collect();
            let outcomes = recipe.call_batch(&tuples, ctx.invoker, ctx.at, ctx.parallelism);
            let mut batch = Vec::new();
            for ((t, count), outcome) in entries.into_iter().zip(outcomes) {
                obs.invocations += 1;
                let emit = |outputs: Vec<Tuple>, batch: &mut Vec<Tuple>| {
                    for o in outputs {
                        for _ in 0..count {
                            batch.push(o.clone());
                        }
                    }
                };
                match outcome.and_then(|call| call.result) {
                    Ok(results) => {
                        let mut outputs = Vec::new();
                        recipe.assemble_into(t, &results, &mut outputs);
                        emit(outputs, &mut batch);
                    }
                    Err(e) => {
                        obs.failures += 1;
                        if matches!(e, EvalError::Panicked { .. }) {
                            obs.panics += 1;
                        }
                        if matches!(e, EvalError::RemoteUnavailable { .. }) {
                            obs.remote_unavailable += 1;
                        }
                        match ctx.degrade {
                            DegradePolicy::FailQuery => ctx.errors.push(e),
                            DegradePolicy::DropTuple => obs.degraded += 1,
                            DegradePolicy::NullFill => {
                                obs.degraded += 1;
                                let mut outputs = Vec::new();
                                let filler = recipe.null_fill_row();
                                recipe.assemble_into(
                                    t,
                                    std::slice::from_ref(&filler),
                                    &mut outputs,
                                );
                                emit(outputs, &mut batch);
                            }
                        }
                    }
                }
            }
            batch.sort();
            obs.elapsed = started_at.elapsed();
            Out::Batch(batch)
        }
    }
}

fn apply_linear(op: &LinearOp, child_delta: &Delta, ctx: &mut Ctx<'_>) -> Delta {
    let mut out = Delta::new();
    let map_side = |side: &Multiset, into_inserts: bool, out: &mut Delta, ctx: &mut Ctx<'_>| {
        for (t, c) in side.iter() {
            let mapped: Option<Tuple> = match op {
                LinearOp::Select(f) => match f.matches(t) {
                    Ok(true) => Some(t.clone()),
                    Ok(false) => None,
                    Err(e) => {
                        ctx.errors.push(e);
                        None
                    }
                },
                LinearOp::Project(coords) => Some(t.project_positions(coords)),
                LinearOp::Rename => Some(t.clone()),
                LinearOp::Assign {
                    recipe,
                    source_coord,
                    constant,
                } => {
                    let v = match (source_coord, constant) {
                        (Some(c), _) => t[*c].clone(),
                        (None, Some(v)) => v.clone(),
                        (None, None) => unreachable!("assign has a source"),
                    };
                    Some(
                        recipe
                            .iter()
                            .map(|slot| match slot {
                                Some(c) => t[*c].clone(),
                                None => v.clone(),
                            })
                            .collect(),
                    )
                }
            };
            if let Some(m) = mapped {
                if into_inserts {
                    out.inserts.insert(m, c);
                } else {
                    out.deletes.insert(m, c);
                }
            }
        }
    };
    map_side(&child_delta.inserts, true, &mut out, ctx);
    map_side(&child_delta.deletes, false, &mut out, ctx);
    out
}

fn recompute(op: &RecomputeOp, left: &Node, right: Option<&Node>, ctx: &mut Ctx<'_>) -> Multiset {
    match op {
        RecomputeOp::Union => {
            let mut out = left.current().clone();
            for (t, c) in right.expect("binary").current().iter() {
                out.insert(t.clone(), c);
            }
            out
        }
        RecomputeOp::Intersect => {
            let r = right.expect("binary").current();
            let mut out = Multiset::new();
            for (t, c) in left.current().iter() {
                let m = c.min(r.count(t));
                if m > 0 {
                    out.insert(t.clone(), m);
                }
            }
            out
        }
        RecomputeOp::Difference => {
            let r = right.expect("binary").current();
            let mut out = Multiset::new();
            for (t, c) in left.current().iter() {
                let m = c.saturating_sub(r.count(t));
                if m > 0 {
                    out.insert(t.clone(), m);
                }
            }
            out
        }
        RecomputeOp::Join(recipe) => {
            let r = right.expect("binary").current();
            let mut index: HashMap<Vec<Value>, Vec<(&Tuple, usize)>> = HashMap::new();
            for (t, c) in r.iter() {
                let key: Vec<Value> = recipe.key_right.iter().map(|&i| t[i].clone()).collect();
                index.entry(key).or_default().push((t, c));
            }
            let mut out = Multiset::new();
            for (tl, cl) in left.current().iter() {
                let key: Vec<Value> = recipe.key_left.iter().map(|&i| tl[i].clone()).collect();
                if let Some(matches) = index.get(&key) {
                    for (tr, cr) in matches {
                        let joined: Tuple = recipe
                            .recipe
                            .iter()
                            .map(|(from_left, c)| {
                                if *from_left {
                                    tl[*c].clone()
                                } else {
                                    tr[*c].clone()
                                }
                            })
                            .collect();
                        out.insert(joined, cl * cr);
                    }
                }
            }
            out
        }
        RecomputeOp::Aggregate {
            schema,
            group,
            aggs,
        } => {
            // Aggregate over the child's *distinct* tuples (set semantics,
            // matching the one-shot operator).
            let rel = XRelation::from_tuples(
                schema.clone(),
                left.current().iter().map(|(t, _)| t.clone()),
            );
            match ops::aggregate(&rel, group, aggs) {
                Ok(out_rel) => out_rel.into_tuples().into_iter().collect(),
                Err(e) => {
                    ctx.errors.push(e);
                    Multiset::new()
                }
            }
        }
    }
}

fn apply_invoke(
    recipe: &InvokeRecipe,
    cache: &mut HashMap<Tuple, CacheEntry>,
    child_delta: &Delta,
    ctx: &mut Ctx<'_>,
    obs: &mut OpObservation,
) -> Delta {
    let mut out = Delta::new();
    // Deletions first: retract the cached extensions.
    for (t, c) in child_delta.deletes.iter() {
        if let Some(entry) = cache.get_mut(t) {
            let retract = c.min(entry.count);
            for o in &entry.outputs {
                out.deletes.insert(o.clone(), retract);
            }
            entry.count -= retract;
            if entry.count == 0 {
                cache.remove(t);
            }
        }
    }
    // Insertions: §4.2 — invoke only for newly inserted tuples. Cache hits
    // re-emit their cached extensions; the misses of one δ-batch are fanned
    // across the worker pool together.
    let mut misses: Vec<(&Tuple, usize)> = Vec::new();
    for (t, c) in child_delta.inserts.iter() {
        if let Some(entry) = cache.get_mut(t) {
            // the same tuple re-inserted reuses its cached invocation
            obs.cache_hits += 1;
            entry.count += c;
            for o in &entry.outputs {
                out.inserts.insert(o.clone(), c);
            }
            continue;
        }
        misses.push((t, c));
    }
    if misses.is_empty() {
        return out;
    }
    let tuples: Vec<&Tuple> = misses.iter().map(|(t, _)| *t).collect();
    let outcomes = recipe.call_batch(&tuples, ctx.invoker, ctx.at, ctx.parallelism);
    for ((t, c), outcome) in misses.into_iter().zip(outcomes) {
        obs.cache_misses += 1;
        obs.invocations += 1;
        match outcome {
            Ok(call) => {
                // the action is recorded whether or not the call succeeded,
                // matching the one-shot operator (record, then invoke)
                if recipe.binding_pattern().is_active() {
                    ctx.actions.record(Action::new(
                        recipe.binding_pattern().clone(),
                        call.sref,
                        call.input,
                    ));
                }
                match call.result {
                    Ok(results) => {
                        let mut outputs = Vec::new();
                        recipe.assemble_into(t, &results, &mut outputs);
                        for o in &outputs {
                            out.inserts.insert(o.clone(), c);
                        }
                        cache.insert(t.clone(), CacheEntry { count: c, outputs });
                    }
                    Err(e) => {
                        obs.failures += 1;
                        if matches!(e, EvalError::Panicked { .. }) {
                            obs.panics += 1;
                        }
                        if matches!(e, EvalError::RemoteUnavailable { .. }) {
                            obs.remote_unavailable += 1;
                        }
                        match ctx.degrade {
                            DegradePolicy::FailQuery => {
                                // failed invocation: tuple contributes
                                // nothing this tick, error surfaces
                                ctx.errors.push(e);
                            }
                            DegradePolicy::DropTuple => {
                                // degraded: silently dropped, not cached —
                                // a later re-insertion retries the service
                                obs.degraded += 1;
                            }
                            DegradePolicy::NullFill => {
                                obs.degraded += 1;
                                let mut outputs = Vec::new();
                                let filler = recipe.null_fill_row();
                                recipe.assemble_into(
                                    t,
                                    std::slice::from_ref(&filler),
                                    &mut outputs,
                                );
                                for o in &outputs {
                                    out.inserts.insert(o.clone(), c);
                                }
                                // cache the filler extension so a later
                                // deletion retracts exactly what was emitted
                                cache.insert(t.clone(), CacheEntry { count: c, outputs });
                            }
                        }
                    }
                }
            }
            Err(e) => {
                // the tuple's service attribute held no service reference:
                // nothing was invoked, no action recorded
                obs.failures += 1;
                ctx.errors.push(e);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::StreamPlan;
    use crate::source::{FnStream, PushStream};
    use serena_core::formula::Formula;
    use serena_core::schema::XSchema;
    use serena_core::service::fixtures::example_registry;
    use serena_core::tuple;
    use serena_core::value::DataType;

    fn int_schema(name: &str) -> SchemaRef {
        XSchema::builder()
            .real(name, DataType::Int)
            .build()
            .unwrap()
    }

    #[test]
    fn table_select_project_pipeline() {
        let mut sources = SourceSet::new();
        let table = TableHandle::new(
            XSchema::builder()
                .real("x", DataType::Int)
                .real("y", DataType::Str)
                .build()
                .unwrap(),
        );
        sources.add_table("t", table.clone());
        let plan = StreamPlan::source("t")
            .select(Formula::gt_const("x", 10))
            .project(["y"]);
        let mut q = ContinuousQuery::compile(&plan, &mut sources).unwrap();
        let reg = example_registry();

        table.insert(tuple![5, "small"]);
        table.insert(tuple![20, "big"]);
        let r = q.tick_with(&reg, &NoopMetrics);
        assert_eq!(r.delta.inserts.sorted_occurrences(), vec![tuple!["big"]]);

        table.delete(tuple![20, "big"]);
        let r = q.tick_with(&reg, &NoopMetrics);
        assert_eq!(r.delta.deletes.sorted_occurrences(), vec![tuple!["big"]]);
        assert!(q.current_relation().unwrap().is_empty());
    }

    #[test]
    fn window_slides_and_expires() {
        let mut sources = SourceSet::new();
        let push = PushStream::new();
        sources.add_stream("s", int_schema("x"), Box::new(push.clone()));
        let plan = StreamPlan::source("s").window(2);
        let mut q = ContinuousQuery::compile(&plan, &mut sources).unwrap();
        let reg = example_registry();

        push.push(tuple![1]);
        let r = q.tick_with(&reg, &NoopMetrics); // window {1}
        assert_eq!(r.delta.inserts.len(), 1);

        push.push(tuple![2]);
        let r = q.tick_with(&reg, &NoopMetrics); // window {1, 2}
        assert_eq!(r.delta.inserts.len(), 1);
        assert!(r.delta.deletes.is_empty());

        push.push(tuple![3]);
        let r = q.tick_with(&reg, &NoopMetrics); // window {2, 3}; 1 expires
        assert_eq!(r.delta.inserts.sorted_occurrences(), vec![tuple![3]]);
        assert_eq!(r.delta.deletes.sorted_occurrences(), vec![tuple![1]]);

        let r = q.tick_with(&reg, &NoopMetrics); // window {3}; 2 expires
        assert_eq!(r.delta.deletes.sorted_occurrences(), vec![tuple![2]]);
        let r = q.tick_with(&reg, &NoopMetrics); // window {}; 3 expires
        assert_eq!(r.delta.deletes.sorted_occurrences(), vec![tuple![3]]);
        assert!(q.current_relation().unwrap().is_empty());
    }

    #[test]
    fn stream_insertion_emits_deltas_only() {
        let mut sources = SourceSet::new();
        let table = TableHandle::new(int_schema("x"));
        sources.add_table("t", table.clone());
        let plan = StreamPlan::source("t").stream(StreamKind::Insertion);
        let mut q = ContinuousQuery::compile(&plan, &mut sources).unwrap();
        let reg = example_registry();

        table.insert(tuple![1]);
        assert_eq!(q.tick_with(&reg, &NoopMetrics).batch, vec![tuple![1]]);
        // no change → empty batch
        assert!(q.tick_with(&reg, &NoopMetrics).batch.is_empty());
        table.delete(tuple![1]);
        assert!(q.tick_with(&reg, &NoopMetrics).batch.is_empty()); // deletions invisible to S[insertion]
    }

    #[test]
    fn stream_heartbeat_repeats_current() {
        let mut sources = SourceSet::new();
        let table = TableHandle::new(int_schema("x"));
        sources.add_table("t", table.clone());
        let plan = StreamPlan::source("t").stream(StreamKind::Heartbeat);
        let mut q = ContinuousQuery::compile(&plan, &mut sources).unwrap();
        let reg = example_registry();
        table.insert(tuple![1]);
        assert_eq!(q.tick_with(&reg, &NoopMetrics).batch.len(), 1);
        assert_eq!(q.tick_with(&reg, &NoopMetrics).batch.len(), 1); // repeated while present
        table.delete(tuple![1]);
        assert!(q.tick_with(&reg, &NoopMetrics).batch.is_empty());
    }

    #[test]
    fn incremental_join_tracks_both_sides() {
        let mut sources = SourceSet::new();
        let left = TableHandle::new(
            XSchema::builder()
                .real("k", DataType::Int)
                .real("a", DataType::Str)
                .build()
                .unwrap(),
        );
        let right = TableHandle::new(
            XSchema::builder()
                .real("k", DataType::Int)
                .real("b", DataType::Str)
                .build()
                .unwrap(),
        );
        sources.add_table("l", left.clone());
        sources.add_table("r", right.clone());
        let plan = StreamPlan::source("l").join(StreamPlan::source("r"));
        let mut q = ContinuousQuery::compile(&plan, &mut sources).unwrap();
        let reg = example_registry();

        left.insert(tuple![1, "x"]);
        let r1 = q.tick_with(&reg, &NoopMetrics);
        assert!(r1.delta.is_empty()); // no right match yet

        right.insert(tuple![1, "y"]);
        let r2 = q.tick_with(&reg, &NoopMetrics);
        assert_eq!(
            r2.delta.inserts.sorted_occurrences(),
            vec![tuple![1, "x", "y"]]
        );

        left.delete(tuple![1, "x"]);
        let r3 = q.tick_with(&reg, &NoopMetrics);
        assert_eq!(
            r3.delta.deletes.sorted_occurrences(),
            vec![tuple![1, "x", "y"]]
        );
    }

    #[test]
    fn continuous_invoke_only_new_tuples() {
        use serena_core::value::ServiceRef;
        let mut sources = SourceSet::new();
        let table = TableHandle::new(serena_core::schema::examples::sensors_schema());
        sources.add_table("sensors", table.clone());
        let plan = StreamPlan::source("sensors").invoke("getTemperature", "sensor");
        let mut q = ContinuousQuery::compile(&plan, &mut sources).unwrap();
        let reg = example_registry();
        let counting = serena_core::eval::CountingInvoker::new(&reg);

        table.insert(tuple![Value::service("sensor01"), "corridor"]);
        q.tick_with(&counting, &NoopMetrics);
        assert_eq!(counting.count_of("getTemperature"), 1);
        // stable table → no further invocations despite more ticks
        q.tick_with(&counting, &NoopMetrics);
        q.tick_with(&counting, &NoopMetrics);
        assert_eq!(counting.count_of("getTemperature"), 1);
        // new sensor → exactly one more invocation
        table.insert(tuple![Value::service("sensor06"), "office"]);
        q.tick_with(&counting, &NoopMetrics);
        assert_eq!(counting.count_of("getTemperature"), 2);
        let _ = ServiceRef::new("sensor01");
    }

    #[test]
    fn invoke_retracts_cached_outputs_on_delete() {
        let mut sources = SourceSet::new();
        let table = TableHandle::new(serena_core::schema::examples::sensors_schema());
        sources.add_table("sensors", table.clone());
        let plan = StreamPlan::source("sensors").invoke("getTemperature", "sensor");
        let mut q = ContinuousQuery::compile(&plan, &mut sources).unwrap();
        let reg = example_registry();

        table.insert(tuple![Value::service("sensor01"), "corridor"]);
        let r = q.tick_with(&reg, &NoopMetrics);
        let produced = r.delta.inserts.sorted_occurrences();
        assert_eq!(produced.len(), 1);

        table.delete(tuple![Value::service("sensor01"), "corridor"]);
        let r = q.tick_with(&reg, &NoopMetrics);
        // the retracted tuple is exactly the cached extension (same value,
        // even though the *current* instant would read differently)
        assert_eq!(r.delta.deletes.sorted_occurrences(), produced);
        assert!(q.current_relation().unwrap().is_empty());
    }

    #[test]
    fn invoke_failure_surfaces_error_and_continues() {
        let mut sources = SourceSet::new();
        let table = TableHandle::new(serena_core::schema::examples::sensors_schema());
        sources.add_table("sensors", table.clone());
        let plan = StreamPlan::source("sensors").invoke("getTemperature", "sensor");
        let mut q = ContinuousQuery::compile(&plan, &mut sources).unwrap();
        let reg = example_registry(); // has no `deadbeef` service

        table.insert(tuple![Value::service("deadbeef"), "void"]);
        table.insert(tuple![Value::service("sensor01"), "corridor"]);
        let r = q.tick_with(&reg, &NoopMetrics);
        assert_eq!(r.errors.len(), 1);
        assert_eq!(r.delta.inserts.len(), 1); // the healthy sensor got through
    }

    #[test]
    fn windowed_aggregate_mean_temperature() {
        use serena_core::ops::{AggFun, AggSpec};
        let mut sources = SourceSet::new();
        let schema = XSchema::builder()
            .real("location", DataType::Str)
            .real("temperature", DataType::Real)
            .build()
            .unwrap();
        // synthetic stream: at tick t, one reading (office, 20+t)
        let src = FnStream(move |at: Instant| vec![tuple!["office", 20.0 + at.ticks() as f64]]);
        sources.add_stream("temps", schema, Box::new(src));
        let plan = StreamPlan::source("temps").window(2).aggregate(
            ["location"],
            vec![AggSpec::new(AggFun::Avg, "temperature").named("mean")],
        );
        let mut q = ContinuousQuery::compile(&plan, &mut sources).unwrap();
        let reg = example_registry();

        q.tick_with(&reg, &NoopMetrics); // window {20} → mean 20
        let rel = q.current_relation().unwrap();
        assert!(rel.contains(&tuple!["office", 20.0]));
        q.tick_with(&reg, &NoopMetrics); // window {20, 21} → mean 20.5
        let rel = q.current_relation().unwrap();
        assert!(rel.contains(&tuple!["office", 20.5]));
        q.tick_with(&reg, &NoopMetrics); // window {21, 22} → mean 21.5
        let rel = q.current_relation().unwrap();
        assert!(rel.contains(&tuple!["office", 21.5]));
    }

    #[test]
    fn set_ops_multiset_semantics() {
        let mut sources = SourceSet::new();
        let a = TableHandle::new(int_schema("x"));
        let b = TableHandle::new(int_schema("x"));
        sources.add_table("a", a.clone());
        sources.add_table("b", b.clone());
        let plan = StreamPlan::source("a").difference(StreamPlan::source("b"));
        let mut q = ContinuousQuery::compile(&plan, &mut sources).unwrap();
        let reg = example_registry();
        a.insert(tuple![1]);
        a.insert(tuple![2]);
        q.tick_with(&reg, &NoopMetrics);
        assert_eq!(q.current_relation().unwrap().len(), 2);
        b.insert(tuple![1]);
        let r = q.tick_with(&reg, &NoopMetrics);
        assert_eq!(r.delta.deletes.sorted_occurrences(), vec![tuple![1]]);
        assert_eq!(q.current_relation().unwrap().len(), 1);
    }

    #[test]
    fn q3_sends_hot_alerts_once_per_reading() {
        // End-to-end Q3 over a scripted temperature stream.
        let mut sources = SourceSet::new();
        let temps_schema = XSchema::builder()
            .real("location", DataType::Str)
            .real("temperature", DataType::Real)
            .build()
            .unwrap();
        // hot reading only at tick 3
        let src = FnStream(|at: Instant| {
            if at.ticks() == 3 {
                vec![tuple!["office", 40.0]]
            } else {
                vec![tuple!["office", 20.0]]
            }
        });
        sources.add_stream("temperatures", temps_schema, Box::new(src));
        let contacts = TableHandle::with_tuples(
            serena_core::schema::examples::contacts_schema(),
            serena_core::xrelation::examples::contacts().into_tuples(),
        );
        sources.add_table("contacts", contacts);
        let mut q = ContinuousQuery::compile(&crate::plan::examples::q3(), &mut sources).unwrap();
        let reg = example_registry();

        let mut total_actions = 0;
        for t in 0..6 {
            let r = q.tick_with(&reg, &NoopMetrics);
            if t == 3 {
                // 3 contacts × 1 hot reading
                assert_eq!(r.actions.len(), 3, "tick {t}");
            } else {
                assert!(r.actions.is_empty(), "tick {t}: {:?}", r.actions);
            }
            total_actions += r.actions.len();
        }
        assert_eq!(total_actions, 3);
    }

    #[test]
    fn sample_invoke_streams_periodic_readings() {
        // βˢ[2] getTemperature[sensor] (sensors): every 2 ticks, sample
        // every sensor currently in the table.
        let mut sources = SourceSet::new();
        let table = TableHandle::with_tuples(
            serena_core::schema::examples::sensors_schema(),
            vec![
                tuple![Value::service("sensor01"), "corridor"],
                tuple![Value::service("sensor06"), "office"],
            ],
        );
        sources.add_table("sensors", table.clone());
        let plan = StreamPlan::source("sensors").sample_invoke("getTemperature", "sensor", 2);
        let mut q = ContinuousQuery::compile(&plan, &mut sources).unwrap();
        assert!(q.schema().infinite);
        assert!(q.schema().schema.is_real("temperature"));
        let reg = example_registry();

        // τ0: sample (2 sensors); τ1: quiet; τ2: sample again
        assert_eq!(q.tick_with(&reg, &NoopMetrics).batch.len(), 2);
        assert_eq!(q.tick_with(&reg, &NoopMetrics).batch.len(), 0);
        let b2 = q.tick_with(&reg, &NoopMetrics).batch;
        assert_eq!(b2.len(), 2);
        // new sensor joins → next sampling includes it
        table.insert(tuple![Value::service("sensor22"), "roof"]);
        assert_eq!(q.tick_with(&reg, &NoopMetrics).batch.len(), 0); // τ3 off-period
        assert_eq!(q.tick_with(&reg, &NoopMetrics).batch.len(), 3); // τ4
    }

    #[test]
    fn sample_invoke_rejects_active_bp_and_surfaces_errors() {
        // active BP → static rejection
        let mut sources = SourceSet::new();
        sources.add_table(
            "contacts",
            TableHandle::with_tuples(
                serena_core::schema::examples::contacts_schema(),
                serena_core::xrelation::examples::contacts().into_tuples(),
            ),
        );
        let plan = StreamPlan::source("contacts")
            .assign_const("text", "hi")
            .sample_invoke("sendMessage", "messenger", 1);
        assert!(matches!(
            ContinuousQuery::compile(&plan, &mut sources),
            Err(PlanError::StreamStatusMismatch { .. })
        ));

        // unknown service → per-tick error, healthy sensors still sampled
        let mut sources = SourceSet::new();
        sources.add_table(
            "sensors",
            TableHandle::with_tuples(
                serena_core::schema::examples::sensors_schema(),
                vec![
                    tuple![Value::service("sensor01"), "corridor"],
                    tuple![Value::service("ghost"), "void"],
                ],
            ),
        );
        let plan = StreamPlan::source("sensors").sample_invoke("getTemperature", "sensor", 1);
        let mut q = ContinuousQuery::compile(&plan, &mut sources).unwrap();
        let r = q.tick_with(&example_registry(), &NoopMetrics);
        assert_eq!(r.batch.len(), 1);
        assert_eq!(r.errors.len(), 1);
    }

    #[test]
    fn sample_invoke_feeds_windows_downstream() {
        // the full future-work composition: sensors →βˢ→ stream →W[1]→ σ
        let mut sources = SourceSet::new();
        sources.add_table(
            "sensors",
            TableHandle::with_tuples(
                serena_core::schema::examples::sensors_schema(),
                vec![tuple![Value::service("sensor01"), "corridor"]],
            ),
        );
        let plan = StreamPlan::source("sensors")
            .sample_invoke("getTemperature", "sensor", 1)
            .window(1)
            .select(Formula::gt_const("temperature", -1000.0));
        let mut q = ContinuousQuery::compile(&plan, &mut sources).unwrap();
        assert!(!q.schema().infinite);
        let reg = example_registry();
        let r = q.tick_with(&reg, &NoopMetrics);
        assert_eq!(r.delta.inserts.len(), 1);
    }

    #[test]
    fn tick_stats_track_beta_cache_hits_and_misses() {
        let mut sources = SourceSet::new();
        let table = TableHandle::new(serena_core::schema::examples::sensors_schema());
        sources.add_table("sensors", table.clone());
        let plan = StreamPlan::source("sensors").invoke("getTemperature", "sensor");
        let mut q = ContinuousQuery::compile(&plan, &mut sources).unwrap();
        let reg = example_registry();
        // pre-order: 0 = Invoke (root), 1 = Table
        let beta = NodeId(0);

        // a brand-new tuple is a cache miss → one live invocation
        table.insert(tuple![Value::service("sensor01"), "corridor"]);
        let r = q.tick_with(&reg, &NoopMetrics);
        let s = r.stats.node(beta).unwrap();
        assert_eq!(s.op, OpKind::Invoke);
        assert_eq!((s.cache_misses, s.cache_hits, s.invocations), (1, 0, 1));
        assert_eq!(r.stats.node(NodeId(1)).unwrap().op, OpKind::Relation);

        // a quiet tick records the node with all-zero counters
        let r = q.tick_with(&reg, &NoopMetrics);
        let s = r.stats.node(beta).unwrap();
        assert_eq!((s.cache_misses, s.cache_hits, s.invocations), (0, 0, 0));

        // re-inserting the same tuple (still cached) is a hit — no call
        table.insert(tuple![Value::service("sensor01"), "corridor"]);
        let r = q.tick_with(&reg, &NoopMetrics);
        let s = r.stats.node(beta).unwrap();
        assert_eq!((s.cache_misses, s.cache_hits, s.invocations), (0, 1, 0));

        // a different tuple is a miss again
        table.insert(tuple![Value::service("sensor06"), "office"]);
        let r = q.tick_with(&reg, &NoopMetrics);
        let s = r.stats.node(beta).unwrap();
        assert_eq!((s.cache_misses, s.cache_hits, s.invocations), (1, 0, 1));

        // a failed invocation is counted as miss + failure, no output
        table.insert(tuple![Value::service("ghost"), "void"]);
        let r = q.tick_with(&reg, &NoopMetrics);
        let s = r.stats.node(beta).unwrap();
        assert_eq!((s.cache_misses, s.failures, s.invocations), (1, 1, 1));
        assert_eq!(r.errors.len(), 1);
    }

    /// Satellite regression (PR 3): the batched β path
    /// (`InvokeRecipe::call_batch`) must record cache hits/misses and
    /// failures in `ExecStats` identically to the serial path — stats are
    /// a function of the input, not of `invoke_parallelism`.
    #[test]
    fn batched_beta_stats_identical_across_parallelism() {
        use serena_core::metrics::NodeStats;
        fn run(
            parallelism: usize,
            degrade: DegradePolicy,
        ) -> Vec<std::collections::BTreeMap<NodeId, NodeStats>> {
            let mut sources = SourceSet::new();
            let table = TableHandle::new(serena_core::schema::examples::sensors_schema());
            sources.add_table("sensors", table.clone());
            let plan = StreamPlan::source("sensors").invoke("getTemperature", "sensor");
            let mut q = ContinuousQuery::compile_with_options(
                &plan,
                &mut sources,
                ExecOptions::parallel(parallelism).with_degrade(degrade),
            )
            .unwrap();
            let reg = example_registry();
            let mut per_tick = Vec::new();

            // tick 0: a cold batch with two failures mixed in
            for (sref, loc) in [
                ("sensor01", "corridor"),
                ("sensor06", "office"),
                ("sensor07", "roof"),
                ("ghost", "void"),
                ("deadbeef", "void"),
            ] {
                table.insert(tuple![Value::service(sref), loc]);
            }
            per_tick.push(q.tick_with(&reg, &NoopMetrics).stats.nodes());
            // tick 1: re-insert a cached tuple (hit) + one new miss
            table.insert(tuple![Value::service("sensor01"), "corridor"]);
            table.insert(tuple![Value::service("sensor22"), "kitchen"]);
            per_tick.push(q.tick_with(&reg, &NoopMetrics).stats.nodes());
            // tick 2: quiet
            per_tick.push(q.tick_with(&reg, &NoopMetrics).stats.nodes());
            per_tick
        }

        let serial = run(1, DegradePolicy::FailQuery);
        // sanity: the scenario exercises every counter we compare
        let beta0 = &serial[0][&NodeId(0)];
        assert_eq!((beta0.cache_misses, beta0.failures), (5, 2));
        let beta1 = &serial[1][&NodeId(0)];
        assert_eq!((beta1.cache_hits, beta1.cache_misses), (1, 1));
        // and the degrading policies account every failure as degraded
        let dropped = run(1, DegradePolicy::DropTuple);
        assert_eq!(dropped[0][&NodeId(0)].degraded, 2);

        for degrade in [
            DegradePolicy::FailQuery,
            DegradePolicy::DropTuple,
            DegradePolicy::NullFill,
        ] {
            let serial = run(1, degrade);
            for workers in [1usize, 8] {
                let batched = run(workers, degrade);
                assert_eq!(batched.len(), serial.len());
                for (tick, (a, b)) in serial.iter().zip(&batched).enumerate() {
                    assert_eq!(
                        a.keys().collect::<Vec<_>>(),
                        b.keys().collect::<Vec<_>>(),
                        "node set diverged at tick {tick} (workers={workers})"
                    );
                    for (id, sa) in a {
                        let sb = &b[id];
                        assert_eq!(
                            (
                                sa.op,
                                sa.applications,
                                sa.tuples_in,
                                sa.tuples_out,
                                sa.invocations,
                                sa.cache_hits,
                                sa.cache_misses,
                                sa.failures,
                                sa.degraded
                            ),
                            (
                                sb.op,
                                sb.applications,
                                sb.tuples_in,
                                sb.tuples_out,
                                sb.invocations,
                                sb.cache_hits,
                                sb.cache_misses,
                                sb.failures,
                                sb.degraded
                            ),
                            "node {id} diverged at tick {tick} \
                             (workers={workers}, degrade={degrade:?})"
                        );
                    }
                }
            }
        }
    }

    /// Tentpole: β degradation in the incremental executor. `DropTuple`
    /// suppresses the error and contributes nothing; `NullFill` emits (and
    /// caches) a type-default filler extension so a later deletion retracts
    /// exactly what was emitted.
    #[test]
    fn degrade_policies_shape_stream_deltas() {
        fn query(degrade: DegradePolicy) -> (TableHandle, ContinuousQuery) {
            let mut sources = SourceSet::new();
            let table = TableHandle::new(serena_core::schema::examples::sensors_schema());
            sources.add_table("sensors", table.clone());
            let plan = StreamPlan::source("sensors").invoke("getTemperature", "sensor");
            let q = ContinuousQuery::compile_with_options(
                &plan,
                &mut sources,
                ExecOptions::default().with_degrade(degrade),
            )
            .unwrap();
            (table, q)
        }
        let reg = example_registry();

        // DropTuple: the dead sensor vanishes, the healthy one survives.
        let (table, mut q) = query(DegradePolicy::DropTuple);
        table.insert(tuple![Value::service("sensor01"), "corridor"]);
        table.insert(tuple![Value::service("ghost"), "void"]);
        let r = q.tick_with(&reg, &NoopMetrics);
        assert!(r.errors.is_empty());
        assert_eq!(r.delta.inserts.len(), 1);
        let s = r.stats.node(NodeId(0)).unwrap();
        assert_eq!((s.failures, s.degraded), (1, 1));

        // NullFill: the dead sensor yields a type-default extension…
        let (table, mut q) = query(DegradePolicy::NullFill);
        table.insert(tuple![Value::service("ghost"), "void"]);
        let r = q.tick_with(&reg, &NoopMetrics);
        assert!(r.errors.is_empty());
        let filler = tuple![Value::service("ghost"), "void", 0.0];
        assert_eq!(r.delta.inserts.iter().collect::<Vec<_>>(), [(&filler, 1)]);
        assert_eq!(r.stats.node(NodeId(0)).unwrap().degraded, 1);

        // …which is cached: deleting the input retracts the filler exactly.
        table.delete(tuple![Value::service("ghost"), "void"]);
        let r = q.tick_with(&reg, &NoopMetrics);
        assert!(r.errors.is_empty());
        assert_eq!(r.delta.deletes.iter().collect::<Vec<_>>(), [(&filler, 1)]);
    }

    #[test]
    fn tick_with_accumulates_into_external_sink() {
        let mut sources = SourceSet::new();
        let table = TableHandle::new(int_schema("x"));
        sources.add_table("t", table.clone());
        let plan = StreamPlan::source("t").select(Formula::gt_const("x", 0));
        let mut q = ContinuousQuery::compile(&plan, &mut sources).unwrap();
        let reg = example_registry();
        let rolling = ExecStats::new();

        table.insert(tuple![1]);
        q.tick_with(&reg, &rolling);
        table.insert(tuple![2]);
        let r = q.tick_with(&reg, &rolling);

        // the per-tick report sees only this tick…
        assert_eq!(r.stats.node(NodeId(0)).unwrap().tuples_out, 1);
        assert_eq!(r.stats.node(NodeId(0)).unwrap().applications, 1);
        // …while the external sink accumulates across ticks
        let total = rolling.node(NodeId(0)).unwrap();
        assert_eq!(total.applications, 2);
        assert_eq!(total.tuples_out, 2);
        assert_eq!(total.op, OpKind::Select);
    }

    #[test]
    fn snapshot_restores_window_and_clock_mid_stream() {
        // deterministic stream: one reading per tick, value = tick
        fn make() -> (SourceSet, StreamPlan) {
            let mut sources = SourceSet::new();
            let src = FnStream(|at: Instant| vec![tuple![at.ticks() as i64]]);
            sources.add_stream("s", int_schema("x"), Box::new(src));
            (sources, StreamPlan::source("s").window(2))
        }
        let reg = example_registry();

        // uninterrupted run: 6 ticks
        let (mut sources, plan) = make();
        let mut baseline = ContinuousQuery::compile(&plan, &mut sources).unwrap();
        let mut expected = Vec::new();
        for t in 0..6u64 {
            let r = baseline.tick_with(&reg, &NoopMetrics);
            if t >= 3 {
                expected.push((
                    r.delta.inserts.sorted_occurrences(),
                    r.delta.deletes.sorted_occurrences(),
                ));
            }
        }

        // interrupted run: 3 ticks, snapshot, "crash", restore, 3 more
        let (mut sources, plan) = make();
        let mut q = ContinuousQuery::compile(&plan, &mut sources).unwrap();
        for _ in 0..3 {
            q.tick_with(&reg, &NoopMetrics);
        }
        let mut w = Writer::new();
        q.write_snapshot(&mut w);
        let bytes = w.into_bytes();
        drop(q);

        let (mut sources, plan) = make();
        let mut restored = ContinuousQuery::compile(&plan, &mut sources).unwrap();
        restored.read_snapshot(&mut Reader::new(&bytes)).unwrap();
        assert_eq!(restored.next_instant(), Instant(3));
        let got: Vec<_> = (0..3)
            .map(|_| {
                let r = restored.tick_with(&reg, &NoopMetrics);
                (
                    r.delta.inserts.sorted_occurrences(),
                    r.delta.deletes.sorted_occurrences(),
                )
            })
            .collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn snapshot_restores_beta_cache_exactly() {
        // the cached extension (not a re-invocation) must be retracted
        // after restore, even though a live call would read differently
        fn make(table: &TableHandle) -> ContinuousQuery {
            let mut sources = SourceSet::new();
            sources.add_table("sensors", table.clone());
            let plan = StreamPlan::source("sensors").invoke("getTemperature", "sensor");
            ContinuousQuery::compile(&plan, &mut sources).unwrap()
        }
        let reg = example_registry();
        let table = TableHandle::new(serena_core::schema::examples::sensors_schema());
        let mut q = make(&table);
        table.insert(tuple![Value::service("sensor01"), "corridor"]);
        let produced = q
            .tick_with(&reg, &NoopMetrics)
            .delta
            .inserts
            .sorted_occurrences();
        let mut w = Writer::new();
        q.write_snapshot(&mut w);
        let mut tw = Writer::new();
        table.export_state(&mut tw);
        let (qb, tb) = (w.into_bytes(), tw.into_bytes());
        drop((q, table));

        let table = TableHandle::new(serena_core::schema::examples::sensors_schema());
        table.import_state(&mut Reader::new(&tb)).unwrap();
        let mut q = make(&table);
        q.read_snapshot(&mut Reader::new(&qb)).unwrap();
        let counting = serena_core::eval::CountingInvoker::new(&reg);
        table.delete(tuple![Value::service("sensor01"), "corridor"]);
        let r = q.tick_with(&counting, &NoopMetrics);
        assert_eq!(r.delta.deletes.sorted_occurrences(), produced);
        assert_eq!(counting.count_of("getTemperature"), 0); // served from cache
    }

    #[test]
    fn snapshot_shape_mismatch_is_a_typed_error() {
        let mut sources = SourceSet::new();
        let table = TableHandle::new(int_schema("x"));
        sources.add_table("t", table.clone());
        let q = ContinuousQuery::compile(&StreamPlan::source("t"), &mut sources).unwrap();
        let mut w = Writer::new();
        q.write_snapshot(&mut w);
        let bytes = w.into_bytes();

        // restore into a structurally different query
        let mut sources = SourceSet::new();
        sources.add_table("t", table.clone());
        let plan = StreamPlan::source("t").select(Formula::gt_const("x", 0));
        let mut other = ContinuousQuery::compile(&plan, &mut sources).unwrap();
        assert!(matches!(
            other.read_snapshot(&mut Reader::new(&bytes)),
            Err(SnapshotError::Mismatch(_))
        ));
    }

    #[test]
    fn q4_emits_photo_stream_on_cold_readings() {
        let mut sources = SourceSet::new();
        let temps_schema = XSchema::builder()
            .real("location", DataType::Str)
            .real("temperature", DataType::Real)
            .build()
            .unwrap();
        let src = FnStream(|at: Instant| {
            if at.ticks() == 2 {
                vec![tuple!["office", 5.0]]
            } else {
                vec![tuple!["office", 20.0]]
            }
        });
        sources.add_stream("temperatures", temps_schema, Box::new(src));
        let cameras = TableHandle::with_tuples(
            serena_core::schema::examples::cameras_schema(),
            serena_core::xrelation::examples::cameras().into_tuples(),
        );
        sources.add_table("cameras", cameras);
        let mut q = ContinuousQuery::compile(&crate::plan::examples::q4(), &mut sources).unwrap();
        let reg = example_registry();

        for t in 0..5 {
            let r = q.tick_with(&reg, &NoopMetrics);
            if t == 2 {
                // two cameras cover "office" (camera01, webcam07)
                assert_eq!(r.batch.len(), 2, "tick {t}");
                assert!(r.actions.is_empty()); // both prototypes passive
            } else {
                assert!(r.batch.is_empty(), "tick {t}");
            }
        }
    }

    #[test]
    fn adopted_window_ring_survives_a_hot_swap() {
        // the shared table feeds both the outgoing and the incoming query;
        // the incoming query adopts the ring and must agree with the
        // uninterrupted one from its first tick on
        let plan = StreamPlan::source("t")
            .stream(StreamKind::Heartbeat)
            .window(2);
        let table = TableHandle::new(int_schema("x"));
        let mut sources = SourceSet::new();
        sources.add_table("t", table.clone());
        let mut old = ContinuousQuery::compile(&plan, &mut sources).unwrap();
        let reg = example_registry();

        table.insert(tuple![1]);
        old.tick_with(&reg, &NoopMetrics); // window {[1]}
        table.insert(tuple![2]);
        old.tick_with(&reg, &NoopMetrics); // window {[1], [1,2]}

        let mut sources2 = SourceSet::new();
        sources2.add_table("t", table.clone());
        let mut new = ContinuousQuery::compile(&plan, &mut sources2).unwrap();
        new.seek(Instant(2));
        new.adopt_state_from(&old, &[(0, 0)], &[]);

        // bootstrap tick: the adopted window emits its full post-update
        // content as insertions for the cold downstream
        let r_new = new.tick_with(&reg, &NoopMetrics);
        let r_old = old.tick_with(&reg, &NoopMetrics);
        assert!(r_new.delta.deletes.is_empty());
        assert_eq!(
            r_new.delta.inserts.sorted_occurrences(),
            vec![tuple![1], tuple![1], tuple![2], tuple![2]],
        );
        assert_eq!(new.current_relation(), old.current_relation());
        assert!(r_old.delta.deletes.is_empty() || !r_old.delta.inserts.is_empty());

        // steady state: byte-identical deltas from here on
        table.insert(tuple![3]);
        let r_old = old.tick_with(&reg, &NoopMetrics);
        let r_new = new.tick_with(&reg, &NoopMetrics);
        assert_eq!(
            r_old.delta.inserts.sorted_occurrences(),
            r_new.delta.inserts.sorted_occurrences()
        );
        assert_eq!(
            r_old.delta.deletes.sorted_occurrences(),
            r_new.delta.deletes.sorted_occurrences()
        );
        assert_eq!(new.current_relation(), old.current_relation());
    }

    #[test]
    fn unadopted_window_starts_cold_after_a_swap() {
        let plan = StreamPlan::source("t")
            .stream(StreamKind::Heartbeat)
            .window(2);
        let table = TableHandle::new(int_schema("x"));
        let mut sources = SourceSet::new();
        sources.add_table("t", table.clone());
        let mut old = ContinuousQuery::compile(&plan, &mut sources).unwrap();
        let reg = example_registry();
        table.insert(tuple![1]);
        old.tick_with(&reg, &NoopMetrics);

        let mut sources2 = SourceSet::new();
        sources2.add_table("t", table.clone());
        let mut new = ContinuousQuery::compile(&plan, &mut sources2).unwrap();
        new.seek(Instant(1));
        new.adopt_state_from(&old, &[], &[]); // nothing portable
        let r = new.tick_with(&reg, &NoopMetrics);
        // cold window: only this tick's heartbeat batch, not the old ring
        assert_eq!(r.delta.inserts.sorted_occurrences(), vec![tuple![1]]);
        assert_eq!(new.current_relation().unwrap().len(), 1);
        // the cold ring holds one batch where the adopted path would hold
        // two: new's *next* tick pops nothing, so no deletes surface yet
        let r2 = new.tick_with(&reg, &NoopMetrics);
        assert!(r2.delta.deletes.is_empty(), "ring not yet full");
    }

    #[test]
    fn adopted_invoke_cache_skips_reinvocation_and_actions() {
        let contacts = TableHandle::new(serena_core::schema::examples::contacts_schema());
        let plan = StreamPlan::source("c")
            .assign_const("text", "hi")
            .invoke("sendMessage", "messenger");
        let mut sources = SourceSet::new();
        sources.add_table("c", contacts.clone());
        let mut old = ContinuousQuery::compile(&plan, &mut sources).unwrap();
        let reg = example_registry();

        contacts.insert(tuple![
            "Alice",
            "alice@example.org",
            serena_core::value::Value::service("email")
        ]);
        let r = old.tick_with(&reg, &NoopMetrics);
        assert_eq!(r.actions.len(), 1, "first insertion invokes the BP");

        let mut sources2 = SourceSet::new();
        sources2.add_table("c", contacts.clone());
        let mut new = ContinuousQuery::compile(&plan, &mut sources2).unwrap();
        new.seek(Instant(1));
        new.adopt_state_from(&old, &[], &[(0, 0)]);

        // the cold table re-inserts Alice; the adopted cache serves the
        // hit — no action recorded, no service call made
        let r = new.tick_with(&reg, &NoopMetrics);
        assert!(r.actions.is_empty(), "adopted cache must not re-invoke");
        assert!(r.errors.is_empty());
        assert_eq!(new.current_relation(), old.current_relation());

        // a *new* contact still invokes normally
        contacts.insert(tuple![
            "Bob",
            "bob@example.org",
            serena_core::value::Value::service("jabber")
        ]);
        let r = new.tick_with(&reg, &NoopMetrics);
        assert_eq!(r.actions.len(), 1);

        // and a deletion retracts exactly the cached extension
        contacts.delete(tuple![
            "Alice",
            "alice@example.org",
            serena_core::value::Value::service("email")
        ]);
        let r = new.tick_with(&reg, &NoopMetrics);
        assert_eq!(r.delta.deletes.len(), 1);
    }

    #[test]
    fn warm_flag_round_trips_through_a_snapshot() {
        // a checkpoint can land between a hot-swap and the adopted ring's
        // bootstrap tick; the pending full emission must survive restore
        let plan = StreamPlan::source("t")
            .stream(StreamKind::Heartbeat)
            .window(2);
        let table = TableHandle::new(int_schema("x"));
        let mut sources = SourceSet::new();
        sources.add_table("t", table.clone());
        let mut old = ContinuousQuery::compile(&plan, &mut sources).unwrap();
        let reg = example_registry();
        table.insert(tuple![1]);
        old.tick_with(&reg, &NoopMetrics);
        old.tick_with(&reg, &NoopMetrics);

        let mut sources2 = SourceSet::new();
        sources2.add_table("t", table.clone());
        let mut swapped = ContinuousQuery::compile(&plan, &mut sources2).unwrap();
        swapped.seek(Instant(2));
        swapped.adopt_state_from(&old, &[(0, 0)], &[]);

        // checkpoint *before* the bootstrap tick, restore into a fresh
        // compile, and compare the bootstrap emission byte for byte
        let mut w = Writer::new();
        swapped.write_snapshot(&mut w);
        let bytes = w.into_bytes();
        let mut sources3 = SourceSet::new();
        sources3.add_table("t", table.clone());
        let mut restored = ContinuousQuery::compile(&plan, &mut sources3).unwrap();
        restored.read_snapshot(&mut Reader::new(&bytes)).unwrap();

        let r_swapped = swapped.tick_with(&reg, &NoopMetrics);
        let r_restored = restored.tick_with(&reg, &NoopMetrics);
        assert_eq!(
            r_swapped.delta.inserts.sorted_occurrences(),
            r_restored.delta.inserts.sorted_occurrences()
        );
        assert!(!r_restored.delta.inserts.is_empty(), "bootstrap preserved");
        assert_eq!(swapped.current_relation(), restored.current_relation());
    }
}
