//! # serena-ddl
//!
//! The textual front-ends of the PEMS prototype (§5.1): the **Serena DDL**
//! (`PROTOTYPE`, `SERVICE`, `EXTENDED RELATION` — the pseudo-DDL of
//! Tables 1–2 of the paper, made concrete) and the **Serena Algebra
//! Language** (a textual form of Serena algebra expressions, including the
//! continuous `WINDOW`/`STREAM` operators), plus data statements
//! (`INSERT`/`DELETE`/`DROP`) and query registration
//! (`REGISTER QUERY … AS …`, `EXECUTE …`).
//!
//! Pipeline: [`lexer`] → [`parser`] (name-based [`ast`]) → [`resolve`]
//! (core schemas and [`serena_stream::plan::StreamPlan`]s, given a
//! prototype catalog).
//!
//! ```
//! use serena_ddl::parser::parse_query;
//! use serena_ddl::resolve::{resolve_query, to_one_shot};
//!
//! let expr = parse_query(
//!     "INVOKE[sendMessage[messenger]](ASSIGN[text := 'Bonjour!'](SELECT[name <> 'Carla'](contacts)))",
//! ).unwrap();
//! let plan = to_one_shot(&resolve_query(&expr)).unwrap();
//! assert_eq!(plan, serena_core::plan::examples::q1());
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod resolve;
pub mod sql;

pub use ast::Statement;
pub use parser::{parse_program, parse_query, ParseError};
pub use resolve::{
    literal_value, resolve_formula, resolve_prototype, resolve_query, resolve_relation_schema,
    resolve_tuple, to_one_shot, DdlError, PrototypeCatalog,
};
