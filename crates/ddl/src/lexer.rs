//! Tokenizer for the Serena DDL and the Serena Algebra Language.
//!
//! Keywords are case-insensitive (the paper's pseudo-DDL is upper-case;
//! hand-typed statements usually are not). Identifiers are
//! `[A-Za-z_][A-Za-z0-9_]*`; string literals use single quotes with `''`
//! as the escape; numbers are integers or decimals. `--` starts a
//! line comment.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (original spelling preserved).
    Ident(String),
    /// String literal (unescaped contents).
    Str(String),
    /// Integer literal.
    Int(i64),
    /// Decimal literal.
    Real(f64),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `:=`
    Assign,
    /// `->`
    Arrow,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl Token {
    /// Case-insensitive keyword test for identifiers.
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::Int(i) => write!(f, "{i}"),
            Token::Real(r) => write!(f, "{r}"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::LBracket => write!(f, "["),
            Token::RBracket => write!(f, "]"),
            Token::Comma => write!(f, ","),
            Token::Semi => write!(f, ";"),
            Token::Colon => write!(f, ":"),
            Token::Assign => write!(f, ":="),
            Token::Arrow => write!(f, "->"),
            Token::Eq => write!(f, "="),
            Token::Ne => write!(f, "<>"),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::Ge => write!(f, ">="),
        }
    }
}

/// A token with its source position (1-based line/column).
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// Line number.
    pub line: usize,
    /// Column number.
    pub col: usize,
}

/// Lexical error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Description.
    pub message: String,
    /// Line number.
    pub line: usize,
    /// Column number.
    pub col: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "lex error at {}:{}: {}",
            self.line, self.col, self.message
        )
    }
}

impl std::error::Error for LexError {}

/// Tokenize `input`.
pub fn lex(input: &str) -> Result<Vec<Spanned>, LexError> {
    let mut out = Vec::new();
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0usize;
    let mut line = 1usize;
    let mut col = 1usize;

    let err = |message: &str, line: usize, col: usize| LexError {
        message: message.to_string(),
        line,
        col,
    };

    while i < chars.len() {
        let c = chars[i];
        let (tline, tcol) = (line, col);
        let mut push = |t: Token, n: usize, i: &mut usize, col: &mut usize| {
            out.push(Spanned {
                token: t,
                line: tline,
                col: tcol,
            });
            *i += n;
            *col += n;
        };
        match c {
            '\n' => {
                i += 1;
                line += 1;
                col = 1;
            }
            c if c.is_whitespace() => {
                i += 1;
                col += 1;
            }
            '-' if chars.get(i + 1) == Some(&'-') => {
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            '-' if chars.get(i + 1) == Some(&'>') => push(Token::Arrow, 2, &mut i, &mut col),
            '(' => push(Token::LParen, 1, &mut i, &mut col),
            ')' => push(Token::RParen, 1, &mut i, &mut col),
            '[' => push(Token::LBracket, 1, &mut i, &mut col),
            ']' => push(Token::RBracket, 1, &mut i, &mut col),
            ',' => push(Token::Comma, 1, &mut i, &mut col),
            ';' => push(Token::Semi, 1, &mut i, &mut col),
            ':' if chars.get(i + 1) == Some(&'=') => push(Token::Assign, 2, &mut i, &mut col),
            ':' => push(Token::Colon, 1, &mut i, &mut col),
            '=' => push(Token::Eq, 1, &mut i, &mut col),
            '!' if chars.get(i + 1) == Some(&'=') => push(Token::Ne, 2, &mut i, &mut col),
            '<' if chars.get(i + 1) == Some(&'>') => push(Token::Ne, 2, &mut i, &mut col),
            '<' if chars.get(i + 1) == Some(&'=') => push(Token::Le, 2, &mut i, &mut col),
            '<' => push(Token::Lt, 1, &mut i, &mut col),
            '>' if chars.get(i + 1) == Some(&'=') => push(Token::Ge, 2, &mut i, &mut col),
            '>' => push(Token::Gt, 1, &mut i, &mut col),
            '\'' => {
                let mut s = String::new();
                let mut j = i + 1;
                loop {
                    match chars.get(j) {
                        None => return Err(err("unterminated string literal", tline, tcol)),
                        Some('\'') if chars.get(j + 1) == Some(&'\'') => {
                            s.push('\'');
                            j += 2;
                        }
                        Some('\'') => {
                            j += 1;
                            break;
                        }
                        Some(&c) => {
                            s.push(c);
                            j += 1;
                        }
                    }
                }
                col += j - i;
                i = j;
                out.push(Spanned {
                    token: Token::Str(s),
                    line: tline,
                    col: tcol,
                });
            }
            c if c.is_ascii_digit() => {
                let mut j = i;
                let mut is_real = false;
                while j < chars.len()
                    && (chars[j].is_ascii_digit()
                        || (chars[j] == '.'
                            && !is_real
                            && chars.get(j + 1).is_some_and(|d| d.is_ascii_digit())))
                {
                    if chars[j] == '.' {
                        is_real = true;
                    }
                    j += 1;
                }
                let text: String = chars[i..j].iter().collect();
                let token = if is_real {
                    Token::Real(
                        text.parse()
                            .map_err(|_| err(&format!("bad number `{text}`"), tline, tcol))?,
                    )
                } else {
                    Token::Int(
                        text.parse()
                            .map_err(|_| err(&format!("bad number `{text}`"), tline, tcol))?,
                    )
                };
                col += j - i;
                i = j;
                out.push(Spanned {
                    token,
                    line: tline,
                    col: tcol,
                });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut j = i;
                while j < chars.len() && (chars[j].is_ascii_alphanumeric() || chars[j] == '_') {
                    j += 1;
                }
                let text: String = chars[i..j].iter().collect();
                col += j - i;
                i = j;
                out.push(Spanned {
                    token: Token::Ident(text),
                    line: tline,
                    col: tcol,
                });
            }
            other => return Err(err(&format!("unexpected character `{other}`"), tline, tcol)),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<Token> {
        lex(s).unwrap().into_iter().map(|t| t.token).collect()
    }

    #[test]
    fn lexes_prototype_ddl() {
        let ts = toks("PROTOTYPE sendMessage( address STRING ) : ( sent BOOLEAN ) ACTIVE;");
        assert_eq!(ts[0], Token::Ident("PROTOTYPE".into()));
        assert!(ts.contains(&Token::Colon));
        assert_eq!(*ts.last().unwrap(), Token::Semi);
    }

    #[test]
    fn lexes_operators_and_literals() {
        let ts = toks("x >= 3.5 AND name <> 'O''Brien' := -> [1]");
        assert!(ts.contains(&Token::Ge));
        assert!(ts.contains(&Token::Real(3.5)));
        assert!(ts.contains(&Token::Ne));
        assert!(ts.contains(&Token::Str("O'Brien".into())));
        assert!(ts.contains(&Token::Assign));
        assert!(ts.contains(&Token::Arrow));
        assert!(ts.contains(&Token::Int(1)));
    }

    #[test]
    fn comments_and_whitespace_skipped() {
        let ts = toks("a -- this is a comment\n b");
        assert_eq!(ts, vec![Token::Ident("a".into()), Token::Ident("b".into())]);
    }

    #[test]
    fn positions_tracked() {
        let ts = lex("a\n  b").unwrap();
        assert_eq!((ts[0].line, ts[0].col), (1, 1));
        assert_eq!((ts[1].line, ts[1].col), (2, 3));
    }

    #[test]
    fn error_on_unterminated_string() {
        assert!(lex("'oops").is_err());
    }

    #[test]
    fn error_on_unexpected_char() {
        let e = lex("a § b").unwrap_err();
        assert!(e.message.contains('§'));
    }

    #[test]
    fn keyword_case_insensitive() {
        let ts = lex("select").unwrap();
        assert!(ts[0].token.is_kw("SELECT"));
        assert!(!ts[0].token.is_kw("PROJECT"));
    }

    #[test]
    fn integer_then_range_like_dot_handling() {
        // `1.` without digits after the dot: the dot is not consumed
        assert!(lex("1.").is_err()); // '.' is an unexpected character
        assert_eq!(toks("1.5"), vec![Token::Real(1.5)]);
    }
}
