//! Resolution: name-based AST → core schema objects and executable plans.
//!
//! `EXTENDED RELATION` statements reference prototypes by name, so
//! resolution needs a [`PrototypeCatalog`] (the environment's declared
//! prototypes). Query expressions resolve without context into
//! [`StreamPlan`]s — schema validation happens at plan-compilation time,
//! as for programmatically-built plans.

use std::sync::Arc;

use serena_core::attr::AttrName;
use serena_core::error::{PlanError, SchemaError};
use serena_core::formula::{CmpOp, Expr, Formula};
use serena_core::ops::{AggFun, AggSpec, AssignSource};
use serena_core::plan::Plan;
use serena_core::prototype::{Prototype, RelationSchema};
use serena_core::schema::{Attribute, SchemaRef, XSchema};
use serena_core::tuple::Tuple;
use serena_core::value::{DataType, Value};
use serena_stream::plan::{StreamKind, StreamPlan};

use crate::ast::*;
use crate::parser::ParseError;

/// Errors across the DDL pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum DdlError {
    /// Lexing/parsing failed.
    Parse(ParseError),
    /// Schema construction failed.
    Schema(SchemaError),
    /// Plan validation failed.
    Plan(PlanError),
    /// `EXTENDED RELATION` references an undeclared prototype.
    UnknownPrototype(String),
    /// The restated input/output list of a binding declaration contradicts
    /// the prototype's schemas.
    BindingMismatch {
        /// The prototype.
        prototype: String,
        /// What disagreed.
        detail: String,
    },
    /// A literal tuple does not fit the target schema.
    Value(String),
}

impl std::fmt::Display for DdlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DdlError::Parse(e) => write!(f, "{e}"),
            DdlError::Schema(e) => write!(f, "{e}"),
            DdlError::Plan(e) => write!(f, "{e}"),
            DdlError::UnknownPrototype(n) => write!(f, "unknown prototype `{n}`"),
            DdlError::BindingMismatch { prototype, detail } => {
                write!(f, "binding pattern for `{prototype}`: {detail}")
            }
            DdlError::Value(d) => write!(f, "{d}"),
        }
    }
}

impl std::error::Error for DdlError {}

impl From<ParseError> for DdlError {
    fn from(e: ParseError) -> Self {
        DdlError::Parse(e)
    }
}

impl From<SchemaError> for DdlError {
    fn from(e: SchemaError) -> Self {
        DdlError::Schema(e)
    }
}

impl From<PlanError> for DdlError {
    fn from(e: PlanError) -> Self {
        DdlError::Plan(e)
    }
}

/// Where `EXTENDED RELATION` resolution finds its prototypes.
pub trait PrototypeCatalog {
    /// The declared prototype named `name`.
    fn lookup_prototype(&self, name: &str) -> Option<Arc<Prototype>>;
}

impl PrototypeCatalog for serena_core::env::Environment {
    fn lookup_prototype(&self, name: &str) -> Option<Arc<Prototype>> {
        self.prototype(name).cloned()
    }
}

impl PrototypeCatalog for std::collections::BTreeMap<String, Arc<Prototype>> {
    fn lookup_prototype(&self, name: &str) -> Option<Arc<Prototype>> {
        self.get(name).cloned()
    }
}

/// Resolve a `PROTOTYPE` statement into a core prototype.
pub fn resolve_prototype(
    name: &str,
    input: &[(String, DataType)],
    output: &[(String, DataType)],
    active: bool,
) -> Result<Arc<Prototype>, DdlError> {
    let mk = |xs: &[(String, DataType)]| {
        RelationSchema::new(xs.iter().map(|(a, t)| (AttrName::new(a), *t)))
    };
    Ok(Prototype::new(name, mk(input)?, mk(output)?, active)?)
}

/// Resolve an `EXTENDED RELATION` statement into its schema.
pub fn resolve_relation_schema(
    attrs: &[AttrDecl],
    bindings: &[BindingDecl],
    catalog: &dyn PrototypeCatalog,
) -> Result<SchemaRef, DdlError> {
    let attributes: Vec<Attribute> = attrs
        .iter()
        .map(|a| {
            if a.virtual_ {
                Attribute::virt(a.name.as_str(), a.ty)
            } else {
                Attribute::real(a.name.as_str(), a.ty)
            }
        })
        .collect();
    let mut bps = Vec::with_capacity(bindings.len());
    for b in bindings {
        let proto = catalog
            .lookup_prototype(&b.prototype)
            .ok_or_else(|| DdlError::UnknownPrototype(b.prototype.clone()))?;
        // the restated lists, when present, must match the prototype
        let check = |given: &[String], actual: &RelationSchema, side: &str| {
            if given.is_empty() {
                return Ok(());
            }
            let actual_names: Vec<&str> = actual.names().map(|a| a.as_str()).collect();
            let given_names: Vec<&str> = given.iter().map(|s| s.as_str()).collect();
            if actual_names != given_names {
                return Err(DdlError::BindingMismatch {
                    prototype: b.prototype.clone(),
                    detail: format!(
                        "{side} attributes restated as {given_names:?} but the prototype declares {actual_names:?}"
                    ),
                });
            }
            Ok(())
        };
        check(&b.input, proto.input(), "input")?;
        check(&b.output, proto.output(), "output")?;
        bps.push(serena_core::binding::BindingPattern::new(
            proto,
            b.service_attr.as_str(),
        ));
    }
    Ok(XSchema::from_attrs(attributes, bps)?)
}

/// Convert a literal to a value.
pub fn literal_value(lit: &Literal) -> Value {
    match lit {
        Literal::Str(s) => Value::str(s),
        Literal::Int(i) => Value::Int(*i),
        Literal::Real(r) => Value::Real(*r),
        Literal::Bool(b) => Value::Bool(*b),
    }
}

/// Build a tuple over `schema` from a literal list, coercing strings into
/// SERVICE attributes and checking arity/types.
pub fn resolve_tuple(lits: &[Literal], schema: &XSchema) -> Result<Tuple, DdlError> {
    let real: Vec<&Attribute> = schema.attrs().iter().filter(|a| a.is_real()).collect();
    if lits.len() != real.len() {
        return Err(DdlError::Value(format!(
            "expected {} values (one per real attribute), got {}",
            real.len(),
            lits.len()
        )));
    }
    let mut out = Vec::with_capacity(lits.len());
    for (lit, attr) in lits.iter().zip(&real) {
        let v = literal_value(lit);
        let v = match (&v, attr.ty) {
            (Value::Str(s), DataType::Service) => Value::service(&**s),
            _ => v,
        };
        if !v.conforms_to(attr.ty) {
            return Err(DdlError::Value(format!(
                "attribute `{}`: expected {}, got {} ({v})",
                attr.name,
                attr.ty,
                v.data_type()
            )));
        }
        out.push(v);
    }
    Ok(Tuple::new(out))
}

/// Resolve a formula AST into a core formula.
pub fn resolve_formula(ast: &FormulaAst) -> Formula {
    let term = |t: &TermAst| match t {
        TermAst::Attr(a) => Expr::Attr(AttrName::new(a)),
        TermAst::Lit(l) => Expr::Const(literal_value(l)),
    };
    match ast {
        FormulaAst::True => Formula::True,
        FormulaAst::False => Formula::False,
        FormulaAst::Contains(attr, needle) => {
            Formula::contains_const(attr.as_str(), needle.clone())
        }
        FormulaAst::Cmp(l, op, r) => {
            let op = match op {
                CmpOpAst::Eq => CmpOp::Eq,
                CmpOpAst::Ne => CmpOp::Ne,
                CmpOpAst::Lt => CmpOp::Lt,
                CmpOpAst::Le => CmpOp::Le,
                CmpOpAst::Gt => CmpOp::Gt,
                CmpOpAst::Ge => CmpOp::Ge,
            };
            Formula::Cmp(term(l), op, term(r))
        }
        FormulaAst::And(a, b) => resolve_formula(a).and(resolve_formula(b)),
        FormulaAst::Or(a, b) => resolve_formula(a).or(resolve_formula(b)),
        FormulaAst::Not(a) => resolve_formula(a).not(),
    }
}

/// Resolve an algebra expression into a continuous plan.
pub fn resolve_query(expr: &QueryExpr) -> StreamPlan {
    match expr {
        QueryExpr::Source(n) => StreamPlan::source(n.clone()),
        QueryExpr::Select(e, f) => resolve_query(e).select(resolve_formula(f)),
        QueryExpr::Project(e, attrs) => resolve_query(e).project(attrs.iter().map(AttrName::new)),
        QueryExpr::Rename(e, from, to) => resolve_query(e).rename(from.as_str(), to.as_str()),
        QueryExpr::Join(a, b) => resolve_query(a).join(resolve_query(b)),
        QueryExpr::Union(a, b) => resolve_query(a).union(resolve_query(b)),
        QueryExpr::Intersect(a, b) => resolve_query(a).intersect(resolve_query(b)),
        QueryExpr::Difference(a, b) => resolve_query(a).difference(resolve_query(b)),
        QueryExpr::Assign(e, attr, src) => {
            let plan = resolve_query(e);
            match src {
                AssignAst::Attr(b) => plan.assign_attr(attr.as_str(), b.as_str()),
                AssignAst::Lit(l) => StreamPlan::Assign(
                    Box::new(plan),
                    AttrName::new(attr),
                    AssignSource::Const(literal_value(l)),
                ),
            }
        }
        QueryExpr::Invoke(e, proto, sa) => resolve_query(e).invoke(proto.clone(), sa.as_str()),
        QueryExpr::Aggregate(e, group, aggs) => {
            let specs: Vec<AggSpec> = aggs
                .iter()
                .map(|a| {
                    let fun = match a.fun {
                        AggFunAst::Count => AggFun::Count,
                        AggFunAst::Sum => AggFun::Sum,
                        AggFunAst::Avg => AggFun::Avg,
                        AggFunAst::Min => AggFun::Min,
                        AggFunAst::Max => AggFun::Max,
                    };
                    let spec = AggSpec::new(fun, a.attr.as_str());
                    match &a.as_name {
                        Some(n) => spec.named(n.as_str()),
                        None => spec,
                    }
                })
                .collect();
            resolve_query(e).aggregate(group.iter().map(AttrName::new), specs)
        }
        QueryExpr::Window(e, n) => resolve_query(e).window(*n),
        QueryExpr::Sample(e, proto, sa, n) => {
            resolve_query(e).sample_invoke(proto.clone(), sa.as_str(), *n)
        }
        QueryExpr::Stream(e, kind) => resolve_query(e).stream(match kind {
            StreamKindAst::Insertion => StreamKind::Insertion,
            StreamKindAst::Deletion => StreamKind::Deletion,
            StreamKindAst::Heartbeat => StreamKind::Heartbeat,
        }),
    }
}

/// Lower a continuous plan to a one-shot [`Plan`] when it contains no
/// window/streaming operators — `EXECUTE` uses this for one-shot queries
/// over finite XD-Relations ("one-shot queries like Q1 and Q2 are still
/// possible over finite XD-Relations", §4.2).
pub fn to_one_shot(plan: &StreamPlan) -> Option<Plan> {
    Some(match plan {
        StreamPlan::Source(n) => Plan::relation(n.clone()),
        StreamPlan::Union(a, b) => to_one_shot(a)?.union(to_one_shot(b)?),
        StreamPlan::Intersect(a, b) => to_one_shot(a)?.intersect(to_one_shot(b)?),
        StreamPlan::Difference(a, b) => to_one_shot(a)?.difference(to_one_shot(b)?),
        StreamPlan::Project(p, attrs) => to_one_shot(p)?.project(attrs.iter().cloned()),
        StreamPlan::Select(p, f) => to_one_shot(p)?.select(f.clone()),
        StreamPlan::Rename(p, a, b) => to_one_shot(p)?.rename(a.clone(), b.clone()),
        StreamPlan::Join(a, b) => to_one_shot(a)?.join(to_one_shot(b)?),
        StreamPlan::Assign(p, a, s) => {
            Plan::Assign(Box::new(to_one_shot(p)?), a.clone(), s.clone())
        }
        StreamPlan::Invoke(p, proto, sa) => to_one_shot(p)?.invoke(proto.clone(), sa.clone()),
        StreamPlan::Aggregate(p, g, a) => to_one_shot(p)?.aggregate(g.iter().cloned(), a.clone()),
        StreamPlan::Window(..) | StreamPlan::Stream(..) | StreamPlan::SampleInvoke(..) => {
            return None
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_program, parse_query};
    use serena_core::env::examples::example_environment;

    #[test]
    fn table_2_round_trips_to_example_schema() {
        let env = example_environment();
        let program = "
            EXTENDED RELATION contacts (
              name STRING, address STRING, text STRING VIRTUAL,
              messenger SERVICE, sent BOOLEAN VIRTUAL
            ) USING BINDING PATTERNS (
              sendMessage[messenger] ( address, text ) : ( sent )
            );
        ";
        let stmts = parse_program(program).unwrap();
        let Statement::ExtendedRelation {
            attrs, bindings, ..
        } = &stmts[0]
        else {
            panic!()
        };
        let schema = resolve_relation_schema(attrs, bindings, &env).unwrap();
        assert!(schema.compatible_with(&serena_core::schema::examples::contacts_schema()));
    }

    #[test]
    fn binding_restatement_checked() {
        let env = example_environment();
        let program = "
            EXTENDED RELATION broken (
              address STRING, text STRING VIRTUAL,
              messenger SERVICE, sent BOOLEAN VIRTUAL
            ) USING BINDING PATTERNS (
              sendMessage[messenger] ( text, address ) : ( sent )
            );
        ";
        let stmts = parse_program(program).unwrap();
        let Statement::ExtendedRelation {
            attrs, bindings, ..
        } = &stmts[0]
        else {
            panic!()
        };
        let err = resolve_relation_schema(attrs, bindings, &env).unwrap_err();
        assert!(matches!(err, DdlError::BindingMismatch { .. }));
    }

    #[test]
    fn unknown_prototype_reported() {
        let env = example_environment();
        let program = "
            EXTENDED RELATION x ( s SERVICE, v REAL VIRTUAL )
            USING BINDING PATTERNS ( mystery[s] );
        ";
        let stmts = parse_program(program).unwrap();
        let Statement::ExtendedRelation {
            attrs, bindings, ..
        } = &stmts[0]
        else {
            panic!()
        };
        assert_eq!(
            resolve_relation_schema(attrs, bindings, &env).unwrap_err(),
            DdlError::UnknownPrototype("mystery".into())
        );
    }

    #[test]
    fn tuples_coerce_service_refs() {
        let schema = serena_core::schema::examples::contacts_schema();
        let t = resolve_tuple(
            &[
                Literal::Str("Nicolas".into()),
                Literal::Str("n@e.fr".into()),
                Literal::Str("email".into()),
            ],
            &schema,
        )
        .unwrap();
        assert_eq!(t[2], Value::service("email"));
        // arity mismatch
        assert!(resolve_tuple(&[Literal::Int(1)], &schema).is_err());
        // type mismatch
        assert!(resolve_tuple(
            &[
                Literal::Int(1),
                Literal::Str("n@e.fr".into()),
                Literal::Str("email".into()),
            ],
            &schema,
        )
        .is_err());
    }

    #[test]
    fn q1_text_round_trips_to_plan_and_evaluates() {
        use serena_core::exec::ExecContext;
        use serena_core::service::fixtures::example_registry;
        use serena_core::time::Instant;
        let env = example_environment();
        let expr = parse_query(
            "INVOKE[sendMessage[messenger]](ASSIGN[text := 'Bonjour!'](SELECT[name <> 'Carla'](contacts)))",
        )
        .unwrap();
        let plan = to_one_shot(&resolve_query(&expr)).unwrap();
        assert_eq!(plan, serena_core::plan::examples::q1());
        let out = ExecContext::new(&env, &example_registry(), Instant::ZERO)
            .execute(&plan)
            .unwrap();
        assert_eq!(out.actions.len(), 2);
    }

    #[test]
    fn continuous_expression_has_no_one_shot_form() {
        let expr = parse_query("SELECT[temperature > 35.5](WINDOW[1](temperatures))").unwrap();
        let plan = resolve_query(&expr);
        assert!(to_one_shot(&plan).is_none());
    }

    #[test]
    fn formula_resolution_full_surface() {
        let expr =
            parse_query("SELECT[NOT (a = 1 AND b <> 'x') OR c >= 2.5 AND d = TRUE](t)").unwrap();
        let QueryExpr::Select(_, f) = expr else {
            panic!()
        };
        let formula = resolve_formula(&f);
        let rendered = formula.to_string();
        assert!(rendered.contains("¬"));
        assert!(rendered.contains("∨"));
        assert!(rendered.contains("∧"));
        assert!(rendered.contains("2.5"));
    }

    #[test]
    fn aggregate_resolution_defaults_names() {
        let expr = parse_query("AGGREGATE[location; avg(temperature)](readings)").unwrap();
        let plan = resolve_query(&expr);
        let StreamPlan::Aggregate(_, group, aggs) = plan else {
            panic!()
        };
        assert_eq!(group, vec![AttrName::new("location")]);
        assert_eq!(aggs[0].as_name.as_str(), "avg_temperature");
    }

    #[test]
    fn prototype_resolution_enforces_core_constraints() {
        // overlapping input/output rejected by the core constructor
        let err = resolve_prototype(
            "echo",
            &[("x".into(), DataType::Int)],
            &[("x".into(), DataType::Int)],
            false,
        )
        .unwrap_err();
        assert!(matches!(err, DdlError::Schema(_)));
    }
}
