//! Abstract syntax for the Serena DDL and the Serena Algebra Language.
//!
//! The parser produces these name-based trees; [`crate::resolve`] turns
//! them into core schema objects and executable plans against a prototype
//! catalog.

use serena_core::value::DataType;

/// A literal constant in DDL/queries.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// `'text'`
    Str(String),
    /// `42`
    Int(i64),
    /// `3.5`
    Real(f64),
    /// `TRUE` / `FALSE`
    Bool(bool),
}

/// One attribute declaration inside `EXTENDED RELATION`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttrDecl {
    /// Attribute name.
    pub name: String,
    /// Declared type.
    pub ty: DataType,
    /// `VIRTUAL` marker.
    pub virtual_: bool,
}

/// One binding-pattern declaration:
/// `sendMessage[messenger] ( address, text ) : ( sent )`.
/// The input/output lists restate the prototype's schemas (as in Table 2)
/// and are validated against it at resolution time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BindingDecl {
    /// Prototype name.
    pub prototype: String,
    /// Service-reference attribute.
    pub service_attr: String,
    /// Restated input attribute names (may be empty = unchecked).
    pub input: Vec<String>,
    /// Restated output attribute names (may be empty = unchecked).
    pub output: Vec<String>,
}

/// A parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `PROTOTYPE name( in... ) : ( out... ) [ACTIVE];`
    Prototype {
        /// Prototype name.
        name: String,
        /// Input parameters.
        input: Vec<(String, DataType)>,
        /// Output parameters.
        output: Vec<(String, DataType)>,
        /// `ACTIVE` tag.
        active: bool,
    },
    /// `SERVICE ref IMPLEMENTS p1, p2;` — a static service declaration
    /// (Table 1); the PEMS binds it to an implementation at registration.
    Service {
        /// Service reference.
        name: String,
        /// Implemented prototype names.
        prototypes: Vec<String>,
    },
    /// `EXTENDED RELATION name ( attrs ) [USING BINDING PATTERNS ( ... )]
    /// [STREAM];` — `STREAM` marks an infinite XD-Relation (extension: the
    /// paper's DDL example shows only finite relations).
    ExtendedRelation {
        /// Relation name.
        name: String,
        /// Attribute declarations.
        attrs: Vec<AttrDecl>,
        /// Binding-pattern declarations.
        bindings: Vec<BindingDecl>,
        /// Infinite XD-Relation marker.
        stream: bool,
    },
    /// `INSERT INTO name VALUES (…), (…);`
    Insert {
        /// Target relation.
        relation: String,
        /// Tuples of literals.
        tuples: Vec<Vec<Literal>>,
    },
    /// `DELETE FROM name VALUES (…);`
    Delete {
        /// Target relation.
        relation: String,
        /// Tuples of literals.
        tuples: Vec<Vec<Literal>>,
    },
    /// `DROP RELATION name;`
    DropRelation {
        /// Relation to drop.
        name: String,
    },
    /// `REGISTER QUERY name AS <expr>;` — continuous registration (§5.1).
    RegisterQuery {
        /// Query name.
        name: String,
        /// The algebra expression.
        expr: QueryExpr,
    },
    /// `UNREGISTER QUERY name;` — stop and remove a continuous query.
    UnregisterQuery {
        /// Query name.
        name: String,
    },
    /// `EXECUTE <expr>;` — one-shot evaluation.
    Execute {
        /// The algebra expression.
        expr: QueryExpr,
    },
}

/// Comparison operators in formulas.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOpAst {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// A term in a comparison: attribute or literal.
#[derive(Debug, Clone, PartialEq)]
pub enum TermAst {
    /// Attribute reference.
    Attr(String),
    /// Constant.
    Lit(Literal),
}

/// A selection formula.
#[derive(Debug, Clone, PartialEq)]
pub enum FormulaAst {
    /// `TRUE`
    True,
    /// `FALSE`
    False,
    /// `term op term`
    Cmp(TermAst, CmpOpAst, TermAst),
    /// `attr CONTAINS 'needle'` (extension, see
    /// [`serena_core::formula::Formula::Contains`]).
    Contains(String, String),
    /// `a AND b`
    And(Box<FormulaAst>, Box<FormulaAst>),
    /// `a OR b`
    Or(Box<FormulaAst>, Box<FormulaAst>),
    /// `NOT a`
    Not(Box<FormulaAst>),
}

/// Assignment source in `ASSIGN [attr := …]`.
#[derive(Debug, Clone, PartialEq)]
pub enum AssignAst {
    /// Copy from another attribute.
    Attr(String),
    /// Constant.
    Lit(Literal),
}

/// Aggregate function names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunAst {
    /// `COUNT(attr)`
    Count,
    /// `SUM(attr)`
    Sum,
    /// `AVG(attr)`
    Avg,
    /// `MIN(attr)`
    Min,
    /// `MAX(attr)`
    Max,
}

/// One aggregate column: `avg(temperature) AS mean`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AggAst {
    /// Function.
    pub fun: AggFunAst,
    /// Aggregated attribute.
    pub attr: String,
    /// Output name (defaulted by the resolver when absent).
    pub as_name: Option<String>,
}

/// Streaming operator kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamKindAst {
    /// `insertion`
    Insertion,
    /// `deletion`
    Deletion,
    /// `heartbeat`
    Heartbeat,
}

/// An algebra-language expression.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryExpr {
    /// Named XD-Relation.
    Source(String),
    /// `SELECT [F] (e)`
    Select(Box<QueryExpr>, FormulaAst),
    /// `PROJECT [a, b] (e)`
    Project(Box<QueryExpr>, Vec<String>),
    /// `RENAME [a -> b] (e)`
    Rename(Box<QueryExpr>, String, String),
    /// `JOIN (e1, e2)`
    Join(Box<QueryExpr>, Box<QueryExpr>),
    /// `UNION (e1, e2)`
    Union(Box<QueryExpr>, Box<QueryExpr>),
    /// `INTERSECT (e1, e2)`
    Intersect(Box<QueryExpr>, Box<QueryExpr>),
    /// `DIFFERENCE (e1, e2)`
    Difference(Box<QueryExpr>, Box<QueryExpr>),
    /// `ASSIGN [a := src] (e)`
    Assign(Box<QueryExpr>, String, AssignAst),
    /// `INVOKE [proto[service]] (e)`
    Invoke(Box<QueryExpr>, String, String),
    /// `AGGREGATE [g1, g2 ; aggs] (e)`
    Aggregate(Box<QueryExpr>, Vec<String>, Vec<AggAst>),
    /// `WINDOW [n] (e)`
    Window(Box<QueryExpr>, u64),
    /// `STREAM [kind] (e)`
    Stream(Box<QueryExpr>, StreamKindAst),
    /// `SAMPLE [proto[service], n] (e)` — streaming binding pattern
    /// (extension, §7 future work).
    Sample(Box<QueryExpr>, String, String, u64),
}
