//! Serena SQL — the declarative surface the paper names but does not
//! present ("the definition of a SQL-like language based on the Serena
//! algebra, namely the Serena SQL, is also not tackled in this paper",
//! §1.1). This module is a concretization faithful to the algebra:
//!
//! ```text
//! SELECT name, temperature
//! FROM   sensors
//! USING  getTemperature[sensor]
//! WHERE  location = 'office' AND temperature > 28.0;
//!
//! SELECT location, avg(temperature) AS mean_temp
//! FROM   temperatures WINDOW 60
//! GROUP BY location;
//!
//! SELECT photo FROM temperatures WINDOW 1, cameras
//! USING checkPhoto[camera], takePhoto[camera]
//! WHERE temperature < 12.0 AND quality >= 5
//! EMIT INSERTIONS;
//! ```
//!
//! ## Lowering semantics
//!
//! * `FROM a, b WINDOW n, c` — each item is an XD-Relation; `WINDOW n`
//!   wraps a stream; items are combined left-to-right with natural joins.
//! * `WITH a := v, …` — α assignments, in order.
//! * `USING p[s], …` — β invocations, in order.
//! * `WHERE F` — `F` is split into conjuncts. A conjunct that references
//!   **no output attribute of any USING prototype** filters *before* the
//!   invocations (SQL's WHERE filters rows before output expressions are
//!   computed — this gives `Q1`, not `Q1'`, for active prototypes); the
//!   remaining conjuncts filter after. This placement is part of the
//!   language definition, not an equivalence rewrite.
//! * `GROUP BY g` + aggregate select items — γ (extension operator).
//! * plain select items — π (omitted for `SELECT *`).
//! * `EMIT INSERTIONS|DELETIONS|HEARTBEAT` — a trailing `S[kind]`,
//!   producing a stream result (continuous queries only).
//!
//! Lowering needs a [`PrototypeCatalog`] to know each USING prototype's
//! output schema (for the WHERE split and for documentation-grade errors).

use serena_core::attr::AttrName;
use serena_core::formula::Formula;
use serena_core::ops::{AggFun, AggSpec, AssignSource};
use serena_stream::plan::{StreamKind, StreamPlan};

use crate::ast::{AggFunAst, AssignAst, FormulaAst, Literal, StreamKindAst};
use crate::lexer::{lex, Token};
use crate::parser::ParseError;
use crate::resolve::{literal_value, resolve_formula, DdlError, PrototypeCatalog};

/// One item of the `SELECT` list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SelectItem {
    /// A plain attribute.
    Attr(String),
    /// `fun(attr) [AS name]`.
    Agg {
        /// Aggregate function.
        fun: AggFunAst,
        /// Aggregated attribute.
        attr: String,
        /// Optional output name.
        as_name: Option<String>,
    },
}

/// One `FROM` item: an XD-Relation, optionally windowed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FromItem {
    /// Relation/stream name.
    pub relation: String,
    /// `WINDOW n`, for stream sources.
    pub window: Option<u64>,
}

/// A parsed Serena SQL `SELECT`.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectAst {
    /// `SELECT` list; empty = `*`.
    pub items: Vec<SelectItem>,
    /// `FROM` items (natural-joined left-to-right).
    pub from: Vec<FromItem>,
    /// `WITH attr := value` assignments.
    pub with: Vec<(String, AssignAst)>,
    /// `USING proto[service]` invocations.
    pub using: Vec<(String, String)>,
    /// `WHERE` formula.
    pub where_: Option<FormulaAst>,
    /// `GROUP BY` attributes.
    pub group_by: Vec<String>,
    /// `EMIT` streaming kind.
    pub emit: Option<StreamKindAst>,
}

/// Parse one Serena SQL `SELECT` statement (trailing `;` optional).
pub fn parse_select(input: &str) -> Result<SelectAst, ParseError> {
    let tokens = lex(input).map_err(|e| ParseError {
        message: e.message,
        line: e.line,
        col: e.col,
    })?;
    let mut p = SqlParser {
        inner: crate::parser::raw_parser(tokens),
    };
    let ast = p.select()?;
    if p.inner.peek_token() == Some(&Token::Semi) {
        p.inner.bump_token();
    }
    if !p.inner.at_end_token() {
        return Err(p.inner.error_here("trailing input after SELECT statement"));
    }
    Ok(ast)
}

struct SqlParser {
    inner: crate::parser::RawParser,
}

impl SqlParser {
    fn select(&mut self) -> Result<SelectAst, ParseError> {
        let p = &mut self.inner;
        p.expect_kw("SELECT")?;
        // select list; an empty list (SELECT FROM …) means `*`
        let mut items = Vec::new();
        if matches!(p.peek_token(), Some(t) if !t.is_kw("FROM")) {
            loop {
                items.push(Self::select_item(p)?);
                if p.peek_token() == Some(&Token::Comma) {
                    p.bump_token();
                } else {
                    break;
                }
            }
        }
        p.expect_kw("FROM")?;
        let mut from = vec![Self::from_item(p)?];
        while p.peek_token() == Some(&Token::Comma) {
            p.bump_token();
            from.push(Self::from_item(p)?);
        }
        let mut with = Vec::new();
        if p.accept_kw("WITH") {
            loop {
                let attr = p.expect_ident()?;
                p.expect_token(&Token::Assign)?;
                let src = match p.peek_token() {
                    Some(Token::Ident(s))
                        if !s.eq_ignore_ascii_case("true") && !s.eq_ignore_ascii_case("false") =>
                    {
                        AssignAst::Attr(p.expect_ident()?)
                    }
                    _ => AssignAst::Lit(p.expect_literal()?),
                };
                with.push((attr, src));
                if p.peek_token() == Some(&Token::Comma) {
                    p.bump_token();
                } else {
                    break;
                }
            }
        }
        let mut using = Vec::new();
        if p.accept_kw("USING") {
            loop {
                let proto = p.expect_ident()?;
                p.expect_token(&Token::LBracket)?;
                let service = p.expect_ident()?;
                p.expect_token(&Token::RBracket)?;
                using.push((proto, service));
                if p.peek_token() == Some(&Token::Comma) {
                    p.bump_token();
                } else {
                    break;
                }
            }
        }
        let where_ = if p.accept_kw("WHERE") {
            Some(p.parse_formula()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if p.accept_kw("GROUP") {
            p.expect_kw("BY")?;
            loop {
                group_by.push(p.expect_ident()?);
                if p.peek_token() == Some(&Token::Comma) {
                    p.bump_token();
                } else {
                    break;
                }
            }
        }
        let emit = if p.accept_kw("EMIT") {
            let kind = p.expect_ident()?;
            Some(match kind.to_ascii_uppercase().as_str() {
                "INSERTIONS" | "INSERTION" => StreamKindAst::Insertion,
                "DELETIONS" | "DELETION" => StreamKindAst::Deletion,
                "HEARTBEAT" => StreamKindAst::Heartbeat,
                other => return Err(p.error_here(&format!("unknown EMIT kind `{other}`"))),
            })
        } else {
            None
        };
        Ok(SelectAst {
            items,
            from,
            with,
            using,
            where_,
            group_by,
            emit,
        })
    }

    fn select_item(p: &mut crate::parser::RawParser) -> Result<SelectItem, ParseError> {
        let name = p.expect_ident()?;
        let fun = match name.to_ascii_lowercase().as_str() {
            "count" => Some(AggFunAst::Count),
            "sum" => Some(AggFunAst::Sum),
            "avg" => Some(AggFunAst::Avg),
            "min" => Some(AggFunAst::Min),
            "max" => Some(AggFunAst::Max),
            _ => None,
        };
        if let Some(fun) = fun {
            if p.peek_token() == Some(&Token::LParen) {
                p.bump_token();
                let attr = p.expect_ident()?;
                p.expect_token(&Token::RParen)?;
                let as_name = if p.accept_kw("AS") {
                    Some(p.expect_ident()?)
                } else {
                    None
                };
                return Ok(SelectItem::Agg { fun, attr, as_name });
            }
        }
        Ok(SelectItem::Attr(name))
    }

    fn from_item(p: &mut crate::parser::RawParser) -> Result<FromItem, ParseError> {
        let relation = p.expect_ident()?;
        let window = if p.accept_kw("WINDOW") {
            match p.bump_token() {
                Some(Token::Int(i)) if i > 0 => Some(i as u64),
                _ => return Err(p.error_here("expected positive window period")),
            }
        } else {
            None
        };
        Ok(FromItem { relation, window })
    }
}

/// Lower a parsed `SELECT` onto the algebra (a [`StreamPlan`]; use
/// [`crate::resolve::to_one_shot`] afterwards for one-shot execution).
pub fn lower_select(
    ast: &SelectAst,
    catalog: &dyn PrototypeCatalog,
) -> Result<StreamPlan, DdlError> {
    // FROM: natural joins left-to-right
    let mut iter = ast.from.iter();
    let first = iter
        .next()
        .ok_or_else(|| DdlError::Value("FROM list is empty".into()))?;
    let mut plan = lower_from(first);
    for item in iter {
        plan = plan.join(lower_from(item));
    }

    // WHERE split: a conjunct filters as early as its attributes allow —
    // before the WITH assignments unless it references an assigned
    // attribute, before the USING invocations unless it references one of
    // their outputs.
    let mut output_attrs: Vec<String> = Vec::new();
    for (proto_name, _) in &ast.using {
        let proto = catalog
            .lookup_prototype(proto_name)
            .ok_or_else(|| DdlError::UnknownPrototype(proto_name.clone()))?;
        output_attrs.extend(proto.output().names().map(|a| a.to_string()));
    }
    let with_targets: Vec<&str> = ast.with.iter().map(|(a, _)| a.as_str()).collect();
    let mut before_with = Vec::new();
    let mut before_using = Vec::new();
    let mut post = Vec::new();
    if let Some(f) = &ast.where_ {
        for conjunct in split_conjuncts(resolve_formula(f)) {
            let attrs = conjunct.attrs();
            let uses_output = attrs
                .iter()
                .any(|a| output_attrs.iter().any(|o| o == a.as_str()));
            let uses_with = attrs.iter().any(|a| with_targets.contains(&a.as_str()));
            if uses_output {
                post.push(conjunct);
            } else if uses_with {
                before_using.push(conjunct);
            } else {
                before_with.push(conjunct);
            }
        }
    }
    for f in before_with {
        plan = plan.select(f);
    }

    // WITH: α in order
    for (attr, src) in &ast.with {
        plan = match src {
            AssignAst::Attr(b) => plan.assign_attr(attr.as_str(), b.as_str()),
            AssignAst::Lit(l) => StreamPlan::Assign(
                Box::new(plan),
                AttrName::new(attr),
                AssignSource::Const(literal_value(l)),
            ),
        };
    }
    for f in before_using {
        plan = plan.select(f);
    }

    // USING: β in order, with post-filters interleaved as soon as their
    // attributes are realized (simple rule: all post filters go after the
    // full chain; the optimizer can sink them further for passive BPs).
    for (proto, service) in &ast.using {
        plan = plan.invoke(proto.clone(), service.as_str());
    }
    for f in post {
        plan = plan.select(f);
    }

    // GROUP BY / aggregates / projection
    let aggs: Vec<&SelectItem> = ast
        .items
        .iter()
        .filter(|i| matches!(i, SelectItem::Agg { .. }))
        .collect();
    if !aggs.is_empty() || !ast.group_by.is_empty() {
        let specs: Vec<AggSpec> = aggs
            .iter()
            .map(|i| {
                let SelectItem::Agg { fun, attr, as_name } = i else {
                    unreachable!()
                };
                let fun = match fun {
                    AggFunAst::Count => AggFun::Count,
                    AggFunAst::Sum => AggFun::Sum,
                    AggFunAst::Avg => AggFun::Avg,
                    AggFunAst::Min => AggFun::Min,
                    AggFunAst::Max => AggFun::Max,
                };
                let spec = AggSpec::new(fun, attr.as_str());
                match as_name {
                    Some(n) => spec.named(n.as_str()),
                    None => spec,
                }
            })
            .collect();
        if specs.is_empty() {
            return Err(DdlError::Value(
                "GROUP BY requires at least one aggregate select item".into(),
            ));
        }
        // plain select items must be group-by attributes
        for item in &ast.items {
            if let SelectItem::Attr(a) = item {
                if !ast.group_by.contains(a) {
                    return Err(DdlError::Value(format!(
                        "select item `{a}` must appear in GROUP BY"
                    )));
                }
            }
        }
        plan = plan.aggregate(ast.group_by.iter().map(AttrName::new), specs);
    } else if !ast.items.is_empty() {
        let attrs: Vec<AttrName> = ast
            .items
            .iter()
            .map(|i| {
                let SelectItem::Attr(a) = i else {
                    unreachable!()
                };
                AttrName::new(a)
            })
            .collect();
        plan = StreamPlan::Project(Box::new(plan), attrs);
    }

    if let Some(kind) = ast.emit {
        plan = plan.stream(match kind {
            StreamKindAst::Insertion => StreamKind::Insertion,
            StreamKindAst::Deletion => StreamKind::Deletion,
            StreamKindAst::Heartbeat => StreamKind::Heartbeat,
        });
    }
    Ok(plan)
}

fn lower_from(item: &FromItem) -> StreamPlan {
    let mut plan = StreamPlan::source(item.relation.clone());
    if let Some(n) = item.window {
        plan = plan.window(n);
    }
    plan
}

fn split_conjuncts(f: Formula) -> Vec<Formula> {
    match f {
        Formula::And(a, b) => {
            let mut out = split_conjuncts(*a);
            out.extend(split_conjuncts(*b));
            out
        }
        other => vec![other],
    }
}

/// Parse + lower in one step.
pub fn compile_select(input: &str, catalog: &dyn PrototypeCatalog) -> Result<StreamPlan, DdlError> {
    let ast = parse_select(input)?;
    lower_select(&ast, catalog)
}

// re-export used by parse_select's literal handling
#[allow(unused_imports)]
use Literal as _LiteralUsed;

#[cfg(test)]
mod tests {
    use super::*;
    use serena_core::env::examples::example_environment;
    use serena_core::plan::examples as plan_examples;
    use serena_ddl_test_support::*;

    /// Local helper namespace so tests read cleanly.
    mod serena_ddl_test_support {
        pub use crate::resolve::to_one_shot;
    }

    #[test]
    fn q1_as_sql() {
        // WHERE references no sendMessage output → filters BEFORE the
        // invocation: exactly Q1, not Q1'.
        let env = example_environment();
        let plan = compile_select(
            "SELECT name, address, text, messenger, sent
             FROM contacts
             WITH text := 'Bonjour!'
             USING sendMessage[messenger]
             WHERE name <> 'Carla';",
            &env,
        )
        .unwrap();
        let one_shot = to_one_shot(&plan).unwrap();
        // π over Q1 (the projection lists the full schema, harmless)
        let expected =
            plan_examples::q1().project(["name", "address", "text", "messenger", "sent"]);
        assert_eq!(one_shot, expected);
    }

    #[test]
    fn q2_as_sql_splits_where() {
        let env = example_environment();
        let plan = compile_select(
            "SELECT photo
             FROM cameras
             USING checkPhoto[camera], takePhoto[camera]
             WHERE area = 'office' AND quality >= 5;",
            &env,
        )
        .unwrap();
        let rendered = to_one_shot(&plan).unwrap().to_algebra();
        // area conjunct before checkPhoto; quality conjunct after the chain
        assert!(
            rendered.contains("σ area = 'office' (cameras)"),
            "pre-filter missing: {rendered}"
        );
        assert!(
            rendered.starts_with("π photo (σ quality >= 5"),
            "post-filter missing: {rendered}"
        );
    }

    #[test]
    fn sql_evaluates_equal_to_algebra_q2() {
        use serena_core::equiv::check_over_instants;
        use serena_core::service::fixtures::example_registry;
        use serena_core::time::Instant;
        let env = example_environment();
        let sql = to_one_shot(
            &compile_select(
                "SELECT photo FROM cameras
                 USING checkPhoto[camera], takePhoto[camera]
                 WHERE area = 'office' AND quality >= 5;",
                &env,
            )
            .unwrap(),
        )
        .unwrap();
        // note: Q2 invokes takePhoto before filtering quality? No — Q2
        // filters quality before takePhoto; the SQL form filters after.
        // They are equivalent (passive prototypes, same results).
        let report = check_over_instants(
            &sql,
            &plan_examples::q2(),
            &env,
            &example_registry(),
            (0..6).map(Instant),
        )
        .unwrap();
        assert!(report.equivalent());
    }

    #[test]
    fn continuous_sql_with_window_group_by_emit() {
        let ast = parse_select(
            "SELECT location, avg(temperature) AS mean_temp
             FROM temperatures WINDOW 60
             GROUP BY location
             EMIT INSERTIONS",
        )
        .unwrap();
        assert_eq!(ast.from[0].window, Some(60));
        assert_eq!(ast.group_by, vec!["location"]);
        assert_eq!(ast.emit, Some(StreamKindAst::Insertion));
        let env = example_environment();
        let plan = lower_select(&ast, &env).unwrap();
        let rendered = plan.to_algebra();
        assert!(rendered.starts_with("S[insertion] (γ"));
        assert!(rendered.contains("W[60] (temperatures)"));
    }

    #[test]
    fn select_star_keeps_schema() {
        let env = example_environment();
        let plan = compile_select("SELECT FROM contacts WHERE name <> 'Carla'", &env);
        // empty select list = '*': no projection node
        let rendered = plan.unwrap().to_algebra();
        assert_eq!(rendered, "σ name <> 'Carla' (contacts)");
    }

    #[test]
    fn from_join_is_natural() {
        let env = example_environment();
        let plan = compile_select("SELECT sensor, location FROM sensors, cameras", &env).unwrap();
        assert!(plan.to_algebra().contains("⋈"));
    }

    #[test]
    fn errors_are_informative() {
        let env = example_environment();
        // unknown prototype in USING
        let err =
            compile_select("SELECT FROM contacts USING teleport[messenger]", &env).unwrap_err();
        assert!(matches!(err, DdlError::UnknownPrototype(p) if p == "teleport"));
        // non-grouped select item with aggregates
        let err = compile_select(
            "SELECT location, avg(temperature) FROM sensors GROUP BY sensor",
            &env,
        )
        .unwrap_err();
        assert!(matches!(err, DdlError::Value(_)));
        // trailing garbage
        assert!(parse_select("SELECT FROM a b c").is_err());
        // missing FROM
        assert!(parse_select("SELECT name WHERE x = 1").is_err());
    }

    #[test]
    fn where_split_respects_active_semantics() {
        // For active USING prototypes, output-free WHERE conjuncts filter
        // first → the action set excludes filtered rows (Q1 semantics).
        use serena_core::exec::ExecContext;
        use serena_core::service::fixtures::example_registry;
        use serena_core::time::Instant;
        let env = example_environment();
        let plan = to_one_shot(
            &compile_select(
                "SELECT sent FROM contacts
                 WITH text := 'Bonjour!'
                 USING sendMessage[messenger]
                 WHERE name <> 'Carla'",
                &env,
            )
            .unwrap(),
        )
        .unwrap();
        let out = ExecContext::new(&env, &example_registry(), Instant::ZERO)
            .execute(&plan)
            .unwrap();
        assert_eq!(out.actions.len(), 2, "Carla must not be messaged");
    }
}
