//! Recursive-descent parser for the Serena DDL and algebra language.
//!
//! Grammar summary (keywords case-insensitive):
//!
//! ```text
//! program    := statement* ;
//! statement  := prototype | service | xrelation | insert | delete | drop
//!             | register | execute ;
//! prototype  := PROTOTYPE name '(' params? ')' ':' '(' params ')' ACTIVE? ';'
//! service    := SERVICE name IMPLEMENTS name (',' name)* ';'
//! xrelation  := EXTENDED RELATION name '(' attr (',' attr)* ')'
//!               (USING BINDING PATTERNS '(' binding (',' binding)* ')')?
//!               STREAM? ';'
//! binding    := name '[' name ']' ('(' names? ')' (':' '(' names? ')')?)?
//! insert     := INSERT INTO name VALUES tuple (',' tuple)* ';'
//! delete     := DELETE FROM name VALUES tuple (',' tuple)* ';'
//! drop       := DROP RELATION name ';'
//! register   := REGISTER QUERY name AS expr ';'
//! execute    := EXECUTE expr ';'
//! expr       := SELECT '[' formula ']' '(' expr ')'
//!             | PROJECT '[' names ']' '(' expr ')'
//!             | RENAME '[' name '->' name ']' '(' expr ')'
//!             | JOIN/UNION/INTERSECT/DIFFERENCE '(' expr ',' expr ')'
//!             | ASSIGN '[' name ':=' (literal | name) ']' '(' expr ')'
//!             | INVOKE '[' name '[' name ']' ']' '(' expr ')'
//!             | AGGREGATE '[' names? ';' agg (',' agg)* ']' '(' expr ')'
//!             | WINDOW '[' int ']' '(' expr ')'
//!             | STREAM '[' kind ']' '(' expr ')'
//!             | '(' expr ')' | name
//! formula    := or ; or := and (OR and)* ; and := not (AND not)* ;
//! not        := NOT not | TRUE | FALSE | '(' formula ')' | term cmp term
//! ```

use serena_core::value::DataType;

use crate::ast::*;
use crate::lexer::{lex, Spanned, Token};

/// Parse error with position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Description.
    pub message: String,
    /// Line (0 = end of input).
    pub line: usize,
    /// Column.
    pub col: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line == 0 {
            write!(f, "parse error at end of input: {}", self.message)
        } else {
            write!(
                f,
                "parse error at {}:{}: {}",
                self.line, self.col, self.message
            )
        }
    }
}

impl std::error::Error for ParseError {}

/// Parse a whole program (a `;`-separated statement list).
pub fn parse_program(input: &str) -> Result<Vec<Statement>, ParseError> {
    let tokens = lex(input).map_err(|e| ParseError {
        message: e.message,
        line: e.line,
        col: e.col,
    })?;
    let mut p = Parser { tokens, pos: 0 };
    let mut out = Vec::new();
    while !p.at_end() {
        out.push(p.statement()?);
    }
    Ok(out)
}

/// Parse a single algebra expression (no trailing `;` required).
pub fn parse_query(input: &str) -> Result<QueryExpr, ParseError> {
    let tokens = lex(input).map_err(|e| ParseError {
        message: e.message,
        line: e.line,
        col: e.col,
    })?;
    let mut p = Parser { tokens, pos: 0 };
    let expr = p.expr()?;
    if !p.at_end() {
        return Err(p.err("trailing input after expression"));
    }
    Ok(expr)
}

pub(crate) struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
}

/// Crate-internal parser handle reused by the Serena SQL front-end
/// ([`crate::sql`]), exposing the shared token/formula machinery.
pub(crate) type RawParser = Parser;

/// Build a [`RawParser`] over pre-lexed tokens.
pub(crate) fn raw_parser(tokens: Vec<Spanned>) -> RawParser {
    Parser { tokens, pos: 0 }
}

impl Parser {
    pub(crate) fn peek_token(&self) -> Option<&Token> {
        self.peek()
    }

    pub(crate) fn bump_token(&mut self) -> Option<Token> {
        self.bump()
    }

    pub(crate) fn at_end_token(&self) -> bool {
        self.at_end()
    }

    pub(crate) fn error_here(&self, message: &str) -> ParseError {
        self.err(message)
    }

    pub(crate) fn expect_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        self.eat_kw(kw)
    }

    pub(crate) fn accept_kw(&mut self, kw: &str) -> bool {
        self.try_kw(kw)
    }

    pub(crate) fn expect_ident(&mut self) -> Result<String, ParseError> {
        self.ident()
    }

    pub(crate) fn expect_token(&mut self, t: &Token) -> Result<(), ParseError> {
        self.eat(t)
    }

    pub(crate) fn expect_literal(&mut self) -> Result<Literal, ParseError> {
        self.literal()
    }

    pub(crate) fn parse_formula(&mut self) -> Result<FormulaAst, ParseError> {
        self.formula()
    }
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|t| &t.token)
    }

    fn err(&self, message: &str) -> ParseError {
        match self.tokens.get(self.pos) {
            Some(t) => ParseError {
                message: format!("{message} (found `{}`)", t.token),
                line: t.line,
                col: t.col,
            },
            None => ParseError {
                message: message.to_string(),
                line: 0,
                col: 0,
            },
        }
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|t| t.token.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Token) -> Result<(), ParseError> {
        if self.peek() == Some(t) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{t}`")))
        }
    }

    fn eat_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.peek().is_some_and(|t| t.is_kw(kw)) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected keyword `{kw}`")))
        }
    }

    fn try_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_some_and(|t| t.is_kw(kw)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek() {
            Some(Token::Ident(s)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            _ => Err(self.err("expected identifier")),
        }
    }

    fn data_type(&mut self) -> Result<DataType, ParseError> {
        let name = self.ident()?;
        match name.to_ascii_uppercase().as_str() {
            "STRING" => Ok(DataType::Str),
            "BOOLEAN" => Ok(DataType::Bool),
            "INTEGER" => Ok(DataType::Int),
            "REAL" => Ok(DataType::Real),
            "BLOB" => Ok(DataType::Blob),
            "SERVICE" => Ok(DataType::Service),
            other => Err(ParseError {
                message: format!("unknown data type `{other}`"),
                line: self
                    .tokens
                    .get(self.pos.saturating_sub(1))
                    .map_or(0, |t| t.line),
                col: self
                    .tokens
                    .get(self.pos.saturating_sub(1))
                    .map_or(0, |t| t.col),
            }),
        }
    }

    fn literal(&mut self) -> Result<Literal, ParseError> {
        match self.peek().cloned() {
            Some(Token::Str(s)) => {
                self.pos += 1;
                Ok(Literal::Str(s))
            }
            Some(Token::Int(i)) => {
                self.pos += 1;
                Ok(Literal::Int(i))
            }
            Some(Token::Real(r)) => {
                self.pos += 1;
                Ok(Literal::Real(r))
            }
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case("true") => {
                self.pos += 1;
                Ok(Literal::Bool(true))
            }
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case("false") => {
                self.pos += 1;
                Ok(Literal::Bool(false))
            }
            _ => Err(self.err("expected literal")),
        }
    }

    // ---------------------------------------------------------------
    // statements
    // ---------------------------------------------------------------

    fn statement(&mut self) -> Result<Statement, ParseError> {
        match self.peek() {
            Some(t) if t.is_kw("PROTOTYPE") => self.prototype(),
            Some(t) if t.is_kw("SERVICE") => self.service(),
            Some(t) if t.is_kw("EXTENDED") => self.xrelation(),
            Some(t) if t.is_kw("INSERT") => self.insert(),
            Some(t) if t.is_kw("DELETE") => self.delete(),
            Some(t) if t.is_kw("DROP") => self.drop_relation(),
            Some(t) if t.is_kw("REGISTER") => self.register(),
            Some(t) if t.is_kw("UNREGISTER") => self.unregister(),
            Some(t) if t.is_kw("EXECUTE") => self.execute(),
            _ => Err(self.err("expected a statement")),
        }
    }

    fn params(&mut self) -> Result<Vec<(String, DataType)>, ParseError> {
        self.eat(&Token::LParen)?;
        let mut out = Vec::new();
        if self.peek() != Some(&Token::RParen) {
            loop {
                let name = self.ident()?;
                let ty = self.data_type()?;
                out.push((name, ty));
                if !matches!(self.peek(), Some(Token::Comma)) {
                    break;
                }
                self.pos += 1;
            }
        }
        self.eat(&Token::RParen)?;
        Ok(out)
    }

    fn prototype(&mut self) -> Result<Statement, ParseError> {
        self.eat_kw("PROTOTYPE")?;
        let name = self.ident()?;
        let input = self.params()?;
        self.eat(&Token::Colon)?;
        let output = self.params()?;
        let active = self.try_kw("ACTIVE");
        self.eat(&Token::Semi)?;
        Ok(Statement::Prototype {
            name,
            input,
            output,
            active,
        })
    }

    fn service(&mut self) -> Result<Statement, ParseError> {
        self.eat_kw("SERVICE")?;
        let name = self.ident()?;
        self.eat_kw("IMPLEMENTS")?;
        let mut prototypes = vec![self.ident()?];
        while matches!(self.peek(), Some(Token::Comma)) {
            self.pos += 1;
            prototypes.push(self.ident()?);
        }
        self.eat(&Token::Semi)?;
        Ok(Statement::Service { name, prototypes })
    }

    fn xrelation(&mut self) -> Result<Statement, ParseError> {
        self.eat_kw("EXTENDED")?;
        self.eat_kw("RELATION")?;
        let name = self.ident()?;
        self.eat(&Token::LParen)?;
        let mut attrs = Vec::new();
        loop {
            let aname = self.ident()?;
            let ty = self.data_type()?;
            let virtual_ = self.try_kw("VIRTUAL");
            attrs.push(AttrDecl {
                name: aname,
                ty,
                virtual_,
            });
            if !matches!(self.peek(), Some(Token::Comma)) {
                break;
            }
            self.pos += 1;
        }
        self.eat(&Token::RParen)?;
        let mut bindings = Vec::new();
        if self.try_kw("USING") {
            self.eat_kw("BINDING")?;
            self.eat_kw("PATTERNS")?;
            self.eat(&Token::LParen)?;
            loop {
                bindings.push(self.binding()?);
                if !matches!(self.peek(), Some(Token::Comma)) {
                    break;
                }
                self.pos += 1;
            }
            self.eat(&Token::RParen)?;
        }
        let stream = self.try_kw("STREAM");
        self.eat(&Token::Semi)?;
        Ok(Statement::ExtendedRelation {
            name,
            attrs,
            bindings,
            stream,
        })
    }

    fn name_list_parens(&mut self) -> Result<Vec<String>, ParseError> {
        self.eat(&Token::LParen)?;
        let mut out = Vec::new();
        if self.peek() != Some(&Token::RParen) {
            loop {
                out.push(self.ident()?);
                if !matches!(self.peek(), Some(Token::Comma)) {
                    break;
                }
                self.pos += 1;
            }
        }
        self.eat(&Token::RParen)?;
        Ok(out)
    }

    fn binding(&mut self) -> Result<BindingDecl, ParseError> {
        let prototype = self.ident()?;
        self.eat(&Token::LBracket)?;
        let service_attr = self.ident()?;
        self.eat(&Token::RBracket)?;
        let mut input = Vec::new();
        let mut output = Vec::new();
        if self.peek() == Some(&Token::LParen) {
            input = self.name_list_parens()?;
            if self.peek() == Some(&Token::Colon) {
                self.pos += 1;
                output = self.name_list_parens()?;
            }
        }
        Ok(BindingDecl {
            prototype,
            service_attr,
            input,
            output,
        })
    }

    fn tuple(&mut self) -> Result<Vec<Literal>, ParseError> {
        self.eat(&Token::LParen)?;
        let mut out = Vec::new();
        if self.peek() != Some(&Token::RParen) {
            loop {
                out.push(self.literal()?);
                if !matches!(self.peek(), Some(Token::Comma)) {
                    break;
                }
                self.pos += 1;
            }
        }
        self.eat(&Token::RParen)?;
        Ok(out)
    }

    fn tuples(&mut self) -> Result<Vec<Vec<Literal>>, ParseError> {
        let mut out = vec![self.tuple()?];
        while matches!(self.peek(), Some(Token::Comma)) {
            self.pos += 1;
            out.push(self.tuple()?);
        }
        Ok(out)
    }

    fn insert(&mut self) -> Result<Statement, ParseError> {
        self.eat_kw("INSERT")?;
        self.eat_kw("INTO")?;
        let relation = self.ident()?;
        self.eat_kw("VALUES")?;
        let tuples = self.tuples()?;
        self.eat(&Token::Semi)?;
        Ok(Statement::Insert { relation, tuples })
    }

    fn delete(&mut self) -> Result<Statement, ParseError> {
        self.eat_kw("DELETE")?;
        self.eat_kw("FROM")?;
        let relation = self.ident()?;
        self.eat_kw("VALUES")?;
        let tuples = self.tuples()?;
        self.eat(&Token::Semi)?;
        Ok(Statement::Delete { relation, tuples })
    }

    fn drop_relation(&mut self) -> Result<Statement, ParseError> {
        self.eat_kw("DROP")?;
        self.eat_kw("RELATION")?;
        let name = self.ident()?;
        self.eat(&Token::Semi)?;
        Ok(Statement::DropRelation { name })
    }

    fn register(&mut self) -> Result<Statement, ParseError> {
        self.eat_kw("REGISTER")?;
        self.eat_kw("QUERY")?;
        let name = self.ident()?;
        self.eat_kw("AS")?;
        let expr = self.expr()?;
        self.eat(&Token::Semi)?;
        Ok(Statement::RegisterQuery { name, expr })
    }

    fn unregister(&mut self) -> Result<Statement, ParseError> {
        self.eat_kw("UNREGISTER")?;
        self.eat_kw("QUERY")?;
        let name = self.ident()?;
        self.eat(&Token::Semi)?;
        Ok(Statement::UnregisterQuery { name })
    }

    fn execute(&mut self) -> Result<Statement, ParseError> {
        self.eat_kw("EXECUTE")?;
        let expr = self.expr()?;
        self.eat(&Token::Semi)?;
        Ok(Statement::Execute { expr })
    }

    // ---------------------------------------------------------------
    // algebra expressions
    // ---------------------------------------------------------------

    fn expr(&mut self) -> Result<QueryExpr, ParseError> {
        let kw = match self.peek() {
            Some(Token::Ident(s)) => s.to_ascii_uppercase(),
            Some(Token::LParen) => {
                self.pos += 1;
                let e = self.expr()?;
                self.eat(&Token::RParen)?;
                return Ok(e);
            }
            _ => return Err(self.err("expected an algebra expression")),
        };
        match kw.as_str() {
            "SELECT" => {
                self.pos += 1;
                self.eat(&Token::LBracket)?;
                let f = self.formula()?;
                self.eat(&Token::RBracket)?;
                let e = self.parens_expr()?;
                Ok(QueryExpr::Select(Box::new(e), f))
            }
            "PROJECT" => {
                self.pos += 1;
                self.eat(&Token::LBracket)?;
                let mut attrs = vec![self.ident()?];
                while matches!(self.peek(), Some(Token::Comma)) {
                    self.pos += 1;
                    attrs.push(self.ident()?);
                }
                self.eat(&Token::RBracket)?;
                let e = self.parens_expr()?;
                Ok(QueryExpr::Project(Box::new(e), attrs))
            }
            "RENAME" => {
                self.pos += 1;
                self.eat(&Token::LBracket)?;
                let from = self.ident()?;
                self.eat(&Token::Arrow)?;
                let to = self.ident()?;
                self.eat(&Token::RBracket)?;
                let e = self.parens_expr()?;
                Ok(QueryExpr::Rename(Box::new(e), from, to))
            }
            "JOIN" | "UNION" | "INTERSECT" | "DIFFERENCE" => {
                self.pos += 1;
                self.eat(&Token::LParen)?;
                let a = self.expr()?;
                self.eat(&Token::Comma)?;
                let b = self.expr()?;
                self.eat(&Token::RParen)?;
                Ok(match kw.as_str() {
                    "JOIN" => QueryExpr::Join(Box::new(a), Box::new(b)),
                    "UNION" => QueryExpr::Union(Box::new(a), Box::new(b)),
                    "INTERSECT" => QueryExpr::Intersect(Box::new(a), Box::new(b)),
                    _ => QueryExpr::Difference(Box::new(a), Box::new(b)),
                })
            }
            "ASSIGN" => {
                self.pos += 1;
                self.eat(&Token::LBracket)?;
                let attr = self.ident()?;
                self.eat(&Token::Assign)?;
                let src = match self.peek() {
                    Some(Token::Ident(s))
                        if !s.eq_ignore_ascii_case("true") && !s.eq_ignore_ascii_case("false") =>
                    {
                        AssignAst::Attr(self.ident()?)
                    }
                    _ => AssignAst::Lit(self.literal()?),
                };
                self.eat(&Token::RBracket)?;
                let e = self.parens_expr()?;
                Ok(QueryExpr::Assign(Box::new(e), attr, src))
            }
            "INVOKE" => {
                self.pos += 1;
                self.eat(&Token::LBracket)?;
                let proto = self.ident()?;
                self.eat(&Token::LBracket)?;
                let service_attr = self.ident()?;
                self.eat(&Token::RBracket)?;
                self.eat(&Token::RBracket)?;
                let e = self.parens_expr()?;
                Ok(QueryExpr::Invoke(Box::new(e), proto, service_attr))
            }
            "AGGREGATE" => {
                self.pos += 1;
                self.eat(&Token::LBracket)?;
                let mut group = Vec::new();
                while matches!(self.peek(), Some(Token::Ident(_))) {
                    // lookahead: an agg function is followed by '('
                    if self.tokens.get(self.pos + 1).map(|t| &t.token) == Some(&Token::LParen) {
                        break;
                    }
                    group.push(self.ident()?);
                    if matches!(self.peek(), Some(Token::Comma)) {
                        self.pos += 1;
                    }
                }
                if self.peek() == Some(&Token::Semi) {
                    self.pos += 1;
                }
                let mut aggs = vec![self.agg()?];
                while matches!(self.peek(), Some(Token::Comma)) {
                    self.pos += 1;
                    aggs.push(self.agg()?);
                }
                self.eat(&Token::RBracket)?;
                let e = self.parens_expr()?;
                Ok(QueryExpr::Aggregate(Box::new(e), group, aggs))
            }
            "SAMPLE" => {
                self.pos += 1;
                self.eat(&Token::LBracket)?;
                let proto = self.ident()?;
                self.eat(&Token::LBracket)?;
                let service_attr = self.ident()?;
                self.eat(&Token::RBracket)?;
                self.eat(&Token::Comma)?;
                let n = match self.bump() {
                    Some(Token::Int(i)) if i > 0 => i as u64,
                    _ => return Err(self.err("expected positive sampling period")),
                };
                self.eat(&Token::RBracket)?;
                let e = self.parens_expr()?;
                Ok(QueryExpr::Sample(Box::new(e), proto, service_attr, n))
            }
            "WINDOW" => {
                self.pos += 1;
                self.eat(&Token::LBracket)?;
                let n = match self.bump() {
                    Some(Token::Int(i)) if i > 0 => i as u64,
                    _ => return Err(self.err("expected positive window period")),
                };
                self.eat(&Token::RBracket)?;
                let e = self.parens_expr()?;
                Ok(QueryExpr::Window(Box::new(e), n))
            }
            "STREAM" => {
                self.pos += 1;
                self.eat(&Token::LBracket)?;
                let kind = self.ident()?;
                let kind = match kind.to_ascii_lowercase().as_str() {
                    "insertion" => StreamKindAst::Insertion,
                    "deletion" => StreamKindAst::Deletion,
                    "heartbeat" => StreamKindAst::Heartbeat,
                    other => {
                        return Err(ParseError {
                            message: format!("unknown streaming kind `{other}`"),
                            line: 0,
                            col: 0,
                        })
                    }
                };
                self.eat(&Token::RBracket)?;
                let e = self.parens_expr()?;
                Ok(QueryExpr::Stream(Box::new(e), kind))
            }
            _ => {
                // plain source name
                let name = self.ident()?;
                Ok(QueryExpr::Source(name))
            }
        }
    }

    fn parens_expr(&mut self) -> Result<QueryExpr, ParseError> {
        self.eat(&Token::LParen)?;
        let e = self.expr()?;
        self.eat(&Token::RParen)?;
        Ok(e)
    }

    fn agg(&mut self) -> Result<AggAst, ParseError> {
        let fun = self.ident()?;
        let fun = match fun.to_ascii_lowercase().as_str() {
            "count" => AggFunAst::Count,
            "sum" => AggFunAst::Sum,
            "avg" => AggFunAst::Avg,
            "min" => AggFunAst::Min,
            "max" => AggFunAst::Max,
            other => {
                return Err(self.err(&format!("unknown aggregate function `{other}`")));
            }
        };
        self.eat(&Token::LParen)?;
        let attr = self.ident()?;
        self.eat(&Token::RParen)?;
        let as_name = if self.try_kw("AS") {
            Some(self.ident()?)
        } else {
            None
        };
        Ok(AggAst { fun, attr, as_name })
    }

    // ---------------------------------------------------------------
    // formulas
    // ---------------------------------------------------------------

    fn formula(&mut self) -> Result<FormulaAst, ParseError> {
        self.or_formula()
    }

    fn or_formula(&mut self) -> Result<FormulaAst, ParseError> {
        let mut left = self.and_formula()?;
        while self.try_kw("OR") {
            let right = self.and_formula()?;
            left = FormulaAst::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn and_formula(&mut self) -> Result<FormulaAst, ParseError> {
        let mut left = self.not_formula()?;
        while self.try_kw("AND") {
            let right = self.not_formula()?;
            left = FormulaAst::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn not_formula(&mut self) -> Result<FormulaAst, ParseError> {
        if self.try_kw("NOT") {
            return Ok(FormulaAst::Not(Box::new(self.not_formula()?)));
        }
        if self.try_kw("TRUE") {
            return Ok(FormulaAst::True);
        }
        if self.try_kw("FALSE") {
            return Ok(FormulaAst::False);
        }
        if self.peek() == Some(&Token::LParen) {
            self.pos += 1;
            let f = self.formula()?;
            self.eat(&Token::RParen)?;
            return Ok(f);
        }
        let left = self.term()?;
        if self.try_kw("CONTAINS") {
            let TermAst::Attr(attr) = left else {
                return Err(self.err("CONTAINS requires an attribute on the left"));
            };
            let needle = match self.bump() {
                Some(Token::Str(s)) => s,
                _ => return Err(self.err("CONTAINS requires a string literal")),
            };
            return Ok(FormulaAst::Contains(attr, needle));
        }
        let op = match self.bump() {
            Some(Token::Eq) => CmpOpAst::Eq,
            Some(Token::Ne) => CmpOpAst::Ne,
            Some(Token::Lt) => CmpOpAst::Lt,
            Some(Token::Le) => CmpOpAst::Le,
            Some(Token::Gt) => CmpOpAst::Gt,
            Some(Token::Ge) => CmpOpAst::Ge,
            _ => {
                self.pos = self.pos.saturating_sub(1);
                return Err(self.err("expected comparison operator"));
            }
        };
        let right = self.term()?;
        Ok(FormulaAst::Cmp(left, op, right))
    }

    fn term(&mut self) -> Result<TermAst, ParseError> {
        match self.peek() {
            Some(Token::Ident(s))
                if !s.eq_ignore_ascii_case("true") && !s.eq_ignore_ascii_case("false") =>
            {
                Ok(TermAst::Attr(self.ident()?))
            }
            _ => Ok(TermAst::Lit(self.literal()?)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_table_1_prototypes() {
        let program = "
            PROTOTYPE sendMessage( address STRING, text STRING ) : ( sent BOOLEAN ) ACTIVE;
            PROTOTYPE checkPhoto( area STRING ) : ( quality INTEGER, delay REAL );
            PROTOTYPE takePhoto( area STRING, quality INTEGER ) : ( photo BLOB );
            PROTOTYPE getTemperature( ) : ( temperature REAL );
        ";
        let stmts = parse_program(program).unwrap();
        assert_eq!(stmts.len(), 4);
        match &stmts[0] {
            Statement::Prototype {
                name,
                input,
                output,
                active,
            } => {
                assert_eq!(name, "sendMessage");
                assert_eq!(input.len(), 2);
                assert_eq!(output, &vec![("sent".to_string(), DataType::Bool)]);
                assert!(active);
            }
            other => panic!("unexpected: {other:?}"),
        }
        match &stmts[3] {
            Statement::Prototype { input, active, .. } => {
                assert!(input.is_empty());
                assert!(!active);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn parses_table_1_services() {
        let stmts = parse_program("SERVICE camera01 IMPLEMENTS checkPhoto, takePhoto;").unwrap();
        assert_eq!(
            stmts[0],
            Statement::Service {
                name: "camera01".into(),
                prototypes: vec!["checkPhoto".into(), "takePhoto".into()],
            }
        );
    }

    #[test]
    fn parses_table_2_extended_relation() {
        let program = "
            EXTENDED RELATION contacts (
              name STRING,
              address STRING,
              text STRING VIRTUAL,
              messenger SERVICE,
              sent BOOLEAN VIRTUAL
            )
            USING BINDING PATTERNS (
              sendMessage[messenger] ( address, text ) : ( sent )
            );
        ";
        let stmts = parse_program(program).unwrap();
        match &stmts[0] {
            Statement::ExtendedRelation {
                name,
                attrs,
                bindings,
                stream,
            } => {
                assert_eq!(name, "contacts");
                assert_eq!(attrs.len(), 5);
                assert!(attrs[2].virtual_);
                assert!(!attrs[3].virtual_);
                assert_eq!(bindings.len(), 1);
                assert_eq!(bindings[0].prototype, "sendMessage");
                assert_eq!(bindings[0].service_attr, "messenger");
                assert_eq!(bindings[0].input, vec!["address", "text"]);
                assert_eq!(bindings[0].output, vec!["sent"]);
                assert!(!stream);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn parses_stream_relation() {
        let stmts = parse_program(
            "EXTENDED RELATION temperatures ( location STRING, temperature REAL ) STREAM;",
        )
        .unwrap();
        assert!(matches!(
            &stmts[0],
            Statement::ExtendedRelation { stream: true, .. }
        ));
    }

    #[test]
    fn parses_insert_delete_drop() {
        let program = "
            INSERT INTO contacts VALUES ('Nicolas', 'n@e.fr', 'email'), ('Carla', 'c@e.fr', 'email');
            DELETE FROM contacts VALUES ('Carla', 'c@e.fr', 'email');
            DROP RELATION contacts;
        ";
        let stmts = parse_program(program).unwrap();
        assert!(matches!(&stmts[0], Statement::Insert { tuples, .. } if tuples.len() == 2));
        assert!(matches!(&stmts[1], Statement::Delete { tuples, .. } if tuples.len() == 1));
        assert!(matches!(&stmts[2], Statement::DropRelation { name } if name == "contacts"));
    }

    #[test]
    fn parses_q1_expression() {
        let q = parse_query(
            "INVOKE[sendMessage[messenger]](ASSIGN[text := 'Bonjour!'](SELECT[name <> 'Carla'](contacts)))",
        )
        .unwrap();
        match q {
            QueryExpr::Invoke(inner, proto, sa) => {
                assert_eq!(proto, "sendMessage");
                assert_eq!(sa, "messenger");
                assert!(matches!(*inner, QueryExpr::Assign(..)));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn parses_continuous_q4_expression() {
        let q = parse_query(
            "STREAM[insertion](PROJECT[photo](INVOKE[takePhoto[camera]](INVOKE[checkPhoto[camera]](JOIN(PROJECT[area](RENAME[location -> area](SELECT[temperature < 12.0](WINDOW[1](temperatures)))), cameras)))))",
        )
        .unwrap();
        assert!(matches!(q, QueryExpr::Stream(_, StreamKindAst::Insertion)));
    }

    #[test]
    fn parses_sample_invoke() {
        let q = parse_query("WINDOW[3](SAMPLE[getTemperature[sensor], 2](sensors))").unwrap();
        let QueryExpr::Window(inner, 3) = q else {
            panic!("expected window")
        };
        assert_eq!(
            *inner,
            QueryExpr::Sample(
                Box::new(QueryExpr::Source("sensors".into())),
                "getTemperature".into(),
                "sensor".into(),
                2
            )
        );
        assert!(parse_query("SAMPLE[getTemperature[sensor], 0](sensors)").is_err());
    }

    #[test]
    fn parses_register_and_execute() {
        let stmts = parse_program(
            "REGISTER QUERY alert AS SELECT[temperature > 35.5](WINDOW[1](temperatures));
             EXECUTE PROJECT[name](contacts);",
        )
        .unwrap();
        assert!(matches!(&stmts[0], Statement::RegisterQuery { name, .. } if name == "alert"));
        assert!(matches!(&stmts[1], Statement::Execute { .. }));
    }

    #[test]
    fn parses_aggregate_with_and_without_group() {
        let q = parse_query("AGGREGATE[location; avg(temperature) AS mean](readings)").unwrap();
        match q {
            QueryExpr::Aggregate(_, group, aggs) => {
                assert_eq!(group, vec!["location"]);
                assert_eq!(aggs.len(), 1);
                assert_eq!(aggs[0].as_name.as_deref(), Some("mean"));
            }
            other => panic!("unexpected: {other:?}"),
        }
        let q = parse_query("AGGREGATE[count(name)](contacts)").unwrap();
        assert!(matches!(q, QueryExpr::Aggregate(_, g, _) if g.is_empty()));
    }

    #[test]
    fn parses_formula_precedence() {
        let q = parse_query("SELECT[a = 1 OR b = 2 AND NOT c = 3](t)").unwrap();
        let QueryExpr::Select(_, f) = q else { panic!() };
        // OR binds loosest: Or(a=1, And(b=2, Not(c=3)))
        match f {
            FormulaAst::Or(l, r) => {
                assert!(matches!(*l, FormulaAst::Cmp(..)));
                assert!(matches!(*r, FormulaAst::And(..)));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn parses_boolean_literals_in_formula() {
        let q = parse_query("SELECT[sent = TRUE](t)").unwrap();
        let QueryExpr::Select(_, FormulaAst::Cmp(_, _, TermAst::Lit(Literal::Bool(true)))) = q
        else {
            panic!("expected boolean literal comparison");
        };
    }

    #[test]
    fn error_reporting_has_position() {
        let err = parse_program("PROTOTYPE ;").unwrap_err();
        assert!(err.message.contains("identifier"));
        assert_eq!(err.line, 1);
        let err = parse_query("SELECT[").unwrap_err();
        assert!(err.line == 0 || err.message.contains("expected"));
    }

    #[test]
    fn rejects_trailing_garbage_in_query() {
        assert!(parse_query("contacts extra").is_err());
    }

    #[test]
    fn parenthesized_expression() {
        let q = parse_query("(contacts)").unwrap();
        assert_eq!(q, QueryExpr::Source("contacts".into()));
    }
}
