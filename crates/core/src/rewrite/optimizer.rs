//! Heuristic logical optimizer (§3.3 applied).
//!
//! A fixpoint pipeline over the rules of [`super::rules`]:
//!
//! 1. **normalize** — split conjunctive selections, drop trivial ones;
//! 2. **pushdown** — drive every selection as far toward the leaves as the
//!    Table 5 preconditions allow: past assignments, past *passive*
//!    invocations, into joins, set operators and renamings. Because remote
//!    invocations dominate cost, filtering before invoking is the dominant
//!    win (cf. `Q2` vs `Q2'`);
//! 3. **cleanup** — merge re-adjacent selections and absorb stacked
//!    projections.
//!
//! Invocations of *active* binding patterns are never crossed (the rules
//! refuse), so optimization provably preserves action sets: the optimizer
//! output is Definition 9-equivalent to its input.

use crate::plan::{Plan, SchemaCatalog};

use super::rules::{
    apply_everywhere, AssignIntoJoin, DropTrueSelect, InvokeIntoJoin, MergeProjects, MergeSelects,
    ProjectPastAssign, ProjectPastInvoke, RewriteRule, SelectIntoJoin, SelectIntoSetOp,
    SelectPastAssign, SelectPastInvoke, SelectPastProject, SelectPastRename, SelectPastSelect,
    SplitConjunctiveSelect,
};

/// What the optimizer did to a plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OptimizerReport {
    /// The optimized plan.
    pub plan: Plan,
    /// `(rule name, number of applications)` in application order.
    pub applied: Vec<(&'static str, usize)>,
    /// Number of fixpoint iterations of the pushdown phase.
    pub iterations: usize,
}

impl OptimizerReport {
    /// Total number of rule applications.
    pub fn total_applications(&self) -> usize {
        self.applied.iter().map(|(_, n)| n).sum()
    }
}

const MAX_ITERATIONS: usize = 32;

/// Optimize `plan` against `catalog`. Always returns a plan
/// Definition 9-equivalent to the input (rules preserve result relations
/// and action sets by construction).
pub fn optimize(plan: &Plan, catalog: &dyn SchemaCatalog) -> OptimizerReport {
    let mut applied: Vec<(&'static str, usize)> = Vec::new();
    let mut current = plan.clone();

    let run = |plan: &Plan, rule: &dyn RewriteRule, applied: &mut Vec<(&'static str, usize)>| {
        let (next, n) = apply_everywhere(plan, rule, catalog);
        if n > 0 {
            applied.push((rule.name(), n));
        }
        next
    };

    // Phase 1: normalize.
    current = run(&current, &SplitConjunctiveSelect, &mut applied);
    current = run(&current, &DropTrueSelect, &mut applied);

    // Phase 2: pushdown to fixpoint.
    let pushdown: [&dyn RewriteRule; 10] = [
        &SelectPastSelect,
        &SelectPastProject,
        &SelectPastAssign,
        &SelectPastInvoke,
        &SelectIntoJoin,
        &SelectIntoSetOp,
        &SelectPastRename,
        &ProjectPastAssign,
        &ProjectPastInvoke,
        &SplitConjunctiveSelect,
    ];
    let mut iterations = 0;
    loop {
        iterations += 1;
        let before = current.clone();
        for rule in pushdown {
            current = run(&current, rule, &mut applied);
        }
        if current == before || iterations >= MAX_ITERATIONS {
            break;
        }
    }

    // Phase 3: realization-operator placement across joins (reduce the
    // tuple count seen by α/β when one join side is irrelevant).
    for rule in [&AssignIntoJoin as &dyn RewriteRule, &InvokeIntoJoin] {
        current = run(&current, rule, &mut applied);
    }

    // Phase 4: cleanup.
    current = run(&current, &MergeSelects, &mut applied);
    current = run(&current, &MergeProjects, &mut applied);

    OptimizerReport {
        plan: current,
        applied,
        iterations,
    }
}

/// Convenience: optimize and return only the plan.
pub fn optimize_plan(plan: &Plan, catalog: &dyn SchemaCatalog) -> Plan {
    optimize(plan, catalog).plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::examples::example_environment;
    use crate::equiv::check_over_instants;
    use crate::eval::CountingInvoker;
    use crate::exec::ExecContext;
    use crate::formula::Formula;
    use crate::plan::examples::{q1, q1_prime, q2, q2_prime};
    use crate::service::fixtures::example_registry;
    use crate::time::Instant;

    #[test]
    fn optimizer_turns_q2_prime_into_q2_shape() {
        let env = example_environment();
        let report = optimize(&q2_prime(), &env);
        assert!(report.total_applications() > 0);
        // invocation counts now match the hand-written Q2
        let reg = example_registry();
        let c_opt = CountingInvoker::new(&reg);
        ExecContext::new(&env, &c_opt, Instant::ZERO)
            .execute(&report.plan)
            .unwrap();
        let c_q2 = CountingInvoker::new(&reg);
        ExecContext::new(&env, &c_q2, Instant::ZERO)
            .execute(&q2())
            .unwrap();
        assert_eq!(c_opt.snapshot(), c_q2.snapshot());
    }

    #[test]
    fn optimizer_preserves_equivalence() {
        let env = example_environment();
        let reg = example_registry();
        for plan in [q1(), q1_prime(), q2(), q2_prime()] {
            let optimized = optimize(&plan, &env).plan;
            let report =
                check_over_instants(&plan, &optimized, &env, &reg, (0..5).map(Instant)).unwrap();
            assert!(report.equivalent(), "{plan}  vs  {optimized}: {report:?}");
        }
    }

    #[test]
    fn optimizer_never_crosses_active_invocations() {
        let env = example_environment();
        // Q1' has σ above an active β — it must stay above.
        let report = optimize(&q1_prime(), &env);
        let reg = example_registry();
        let ctx = ExecContext::new(&env, &reg, Instant::ZERO);
        let before = ctx.execute(&q1_prime()).unwrap();
        let after = ctx.execute(&report.plan).unwrap();
        assert_eq!(before.actions, after.actions);
        assert_eq!(before.actions.len(), 3); // Carla still messaged
    }

    #[test]
    fn optimizer_is_idempotent() {
        let env = example_environment();
        let once = optimize(&q2_prime(), &env).plan;
        let twice = optimize(&once, &env).plan;
        assert_eq!(once, twice);
    }

    #[test]
    fn pushdown_through_join_and_rename() {
        let env = example_environment();
        let plan = Plan::relation("sensors")
            .join(Plan::relation("contacts").project(["name", "address"]))
            .rename("location", "place")
            .select(Formula::eq_const("place", "office").and(Formula::ne_const("name", "Carla")));
        let report = optimize(&plan, &env);
        assert!(report.total_applications() >= 3);
        let reg = example_registry();
        let r = check_over_instants(&plan, &report.plan, &env, &reg, (0..3).map(Instant)).unwrap();
        assert!(r.equivalent());
        // the σ on place should now sit directly on sensors (below ⋈, ρ)
        let rendered = report.plan.to_algebra();
        assert!(
            rendered.contains("σ location = 'office' (sensors)"),
            "unexpected plan: {rendered}"
        );
    }

    #[test]
    fn report_lists_applied_rules() {
        let env = example_environment();
        let report = optimize(&q2_prime(), &env);
        let names: Vec<&str> = report.applied.iter().map(|(n, _)| *n).collect();
        assert!(names.contains(&"split-conjunctive-select"));
        assert!(names.contains(&"select-past-invoke"));
    }
}
