//! A simple cost model for service-oriented queries.
//!
//! The paper defers "a formal definition of cost models dedicated to
//! pervasive environments" to future work (§7); this module provides the
//! minimal model needed to rank rewritten plans: estimated output
//! cardinality per operator plus a per-invocation charge that dwarfs
//! per-tuple CPU work (remote service calls are orders of magnitude more
//! expensive than local predicates).

use std::collections::BTreeMap;

use crate::error::PlanError;
use crate::plan::{Plan, SchemaCatalog};

/// Tunable cost parameters.
#[derive(Debug, Clone, Copy)]
pub struct CostParams {
    /// Default selectivity of a selection predicate.
    pub selectivity: f64,
    /// Join matching factor: |r1 ⋈ r2| ≈ factor · |r1| · |r2| when a join
    /// predicate exists.
    pub join_factor: f64,
    /// Cost charged per service invocation (relative to 1.0 per processed
    /// tuple).
    pub invocation_cost: f64,
    /// Average number of output tuples per invocation.
    pub invocation_fanout: f64,
    /// Cardinality assumed for relations absent from the statistics map.
    pub default_cardinality: f64,
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams {
            selectivity: 0.5,
            join_factor: 0.1,
            invocation_cost: 1000.0,
            invocation_fanout: 1.0,
            default_cardinality: 100.0,
        }
    }
}

/// Estimated cost of a plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostEstimate {
    /// Estimated output cardinality.
    pub rows: f64,
    /// Estimated total number of service invocations.
    pub invocations: f64,
    /// Scalar cost: processed tuples + invocation charges.
    pub cost: f64,
}

/// Estimate `plan`'s cost given base-relation cardinalities.
pub fn estimate(
    plan: &Plan,
    catalog: &dyn SchemaCatalog,
    cardinalities: &BTreeMap<String, usize>,
    params: &CostParams,
) -> Result<CostEstimate, PlanError> {
    match plan {
        Plan::Relation(name) => {
            // validate existence
            plan.schema(catalog)?;
            let rows = cardinalities
                .get(name)
                .map(|&n| n as f64)
                .unwrap_or(params.default_cardinality);
            Ok(CostEstimate {
                rows,
                invocations: 0.0,
                cost: rows,
            })
        }
        Plan::Union(a, b) => {
            let (ea, eb) = (
                estimate(a, catalog, cardinalities, params)?,
                estimate(b, catalog, cardinalities, params)?,
            );
            let rows = ea.rows + eb.rows;
            Ok(combine2(ea, eb, rows))
        }
        Plan::Intersect(a, b) => {
            let (ea, eb) = (
                estimate(a, catalog, cardinalities, params)?,
                estimate(b, catalog, cardinalities, params)?,
            );
            let rows = ea.rows.min(eb.rows) * params.selectivity;
            Ok(combine2(ea, eb, rows))
        }
        Plan::Difference(a, b) => {
            let (ea, eb) = (
                estimate(a, catalog, cardinalities, params)?,
                estimate(b, catalog, cardinalities, params)?,
            );
            let rows = ea.rows * params.selectivity;
            Ok(combine2(ea, eb, rows))
        }
        Plan::Project(p, _) | Plan::Rename(p, _, _) | Plan::Assign(p, _, _) => {
            let e = estimate(p, catalog, cardinalities, params)?;
            Ok(CostEstimate {
                rows: e.rows,
                invocations: e.invocations,
                cost: e.cost + e.rows,
            })
        }
        Plan::Select(p, _) => {
            let e = estimate(p, catalog, cardinalities, params)?;
            let rows = e.rows * params.selectivity;
            Ok(CostEstimate {
                rows,
                invocations: e.invocations,
                cost: e.cost + e.rows,
            })
        }
        Plan::Join(a, b) => {
            let (ea, eb) = (
                estimate(a, catalog, cardinalities, params)?,
                estimate(b, catalog, cardinalities, params)?,
            );
            // does the join have a predicate? (common both-real attributes)
            let sa = a.schema(catalog)?;
            let sb = b.schema(catalog)?;
            let has_predicate = sa
                .attrs()
                .iter()
                .any(|x| x.is_real() && sb.is_real(x.name.as_str()));
            let rows = if has_predicate {
                (ea.rows * eb.rows * params.join_factor).max(ea.rows.min(eb.rows))
            } else {
                ea.rows * eb.rows
            };
            Ok(combine2(ea, eb, rows))
        }
        Plan::Invoke(p, _, _) => {
            let e = estimate(p, catalog, cardinalities, params)?;
            // one invocation per input tuple
            let invocations = e.invocations + e.rows;
            let rows = e.rows * params.invocation_fanout;
            Ok(CostEstimate {
                rows,
                invocations,
                cost: e.cost + e.rows * params.invocation_cost,
            })
        }
        Plan::Aggregate(p, group, _) => {
            let e = estimate(p, catalog, cardinalities, params)?;
            let rows = if group.is_empty() {
                1.0
            } else {
                (e.rows * params.selectivity).max(1.0)
            };
            Ok(CostEstimate {
                rows,
                invocations: e.invocations,
                cost: e.cost + e.rows,
            })
        }
    }
}

fn combine2(a: CostEstimate, b: CostEstimate, rows: f64) -> CostEstimate {
    CostEstimate {
        rows,
        invocations: a.invocations + b.invocations,
        cost: a.cost + b.cost + rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::examples::example_environment;
    use crate::plan::examples::{q2, q2_prime};

    fn cards() -> BTreeMap<String, usize> {
        [
            ("cameras".to_string(), 3usize),
            ("contacts".to_string(), 3),
            ("sensors".to_string(), 4),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn pushed_down_plan_costs_less() {
        let env = example_environment();
        let params = CostParams::default();
        let e_opt = estimate(&q2(), &env, &cards(), &params).unwrap();
        let e_naive = estimate(&q2_prime(), &env, &cards(), &params).unwrap();
        assert!(
            e_opt.cost < e_naive.cost,
            "Q2 ({}) should be cheaper than Q2' ({})",
            e_opt.cost,
            e_naive.cost
        );
        assert!(e_opt.invocations < e_naive.invocations);
    }

    #[test]
    fn invocation_dominates_cost() {
        let env = example_environment();
        let params = CostParams::default();
        let scan = Plan::relation("cameras");
        let inv = Plan::relation("cameras").invoke("checkPhoto", "camera");
        let e_scan = estimate(&scan, &env, &cards(), &params).unwrap();
        let e_inv = estimate(&inv, &env, &cards(), &params).unwrap();
        assert!(e_inv.cost > e_scan.cost * 100.0);
        assert_eq!(e_inv.invocations, 3.0);
    }

    #[test]
    fn default_cardinality_for_unknown_relations() {
        let env = example_environment();
        let params = CostParams::default();
        let e = estimate(&Plan::relation("cameras"), &env, &BTreeMap::new(), &params).unwrap();
        assert_eq!(e.rows, params.default_cardinality);
    }

    #[test]
    fn cartesian_join_estimates_product() {
        let env = example_environment();
        let params = CostParams::default();
        // sensors ⋈ π_{name,address}(contacts): no common attrs → product
        let p =
            Plan::relation("sensors").join(Plan::relation("contacts").project(["name", "address"]));
        let e = estimate(&p, &env, &cards(), &params).unwrap();
        assert_eq!(e.rows, 12.0);
    }
}
