//! A simple cost model for service-oriented queries.
//!
//! The paper defers "a formal definition of cost models dedicated to
//! pervasive environments" to future work (§7); this module provides the
//! minimal model needed to rank rewritten plans: estimated output
//! cardinality per operator plus a per-invocation charge that dwarfs
//! per-tuple CPU work (remote service calls are orders of magnitude more
//! expensive than local predicates).

use std::collections::BTreeMap;

use crate::error::PlanError;
use crate::plan::{Plan, SchemaCatalog};

/// Tunable cost parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostParams {
    /// Default selectivity of a selection predicate.
    pub selectivity: f64,
    /// Join matching factor: |r1 ⋈ r2| ≈ factor · |r1| · |r2| when a join
    /// predicate exists.
    pub join_factor: f64,
    /// Cost charged per service invocation (relative to 1.0 per processed
    /// tuple).
    pub invocation_cost: f64,
    /// Average number of output tuples per invocation.
    pub invocation_fanout: f64,
    /// Cardinality assumed for relations absent from the statistics map.
    pub default_cardinality: f64,
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams {
            selectivity: 0.5,
            join_factor: 0.1,
            invocation_cost: 1000.0,
            invocation_fanout: 1.0,
            default_cardinality: 100.0,
        }
    }
}

/// Estimated cost of a plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostEstimate {
    /// Estimated output cardinality.
    pub rows: f64,
    /// Estimated total number of service invocations.
    pub invocations: f64,
    /// Scalar cost: processed tuples + invocation charges.
    pub cost: f64,
}

/// The per-operator inputs an estimate walk consumes. The static model
/// ([`CostParams`] + a cardinality map) and the telemetry-fed model
/// ([`MeasuredCosts`]) both speak this vocabulary; the walk itself is
/// shared.
pub trait CostInputs {
    /// Structural parameters (selectivities, join factor, defaults).
    fn params(&self) -> &CostParams;

    /// Cardinality of the named base relation, if known.
    fn cardinality(&self, name: &str) -> Option<f64>;

    /// Cost charged per invocation of `prototype` (relative to 1.0 per
    /// processed tuple).
    fn invocation_cost(&self, prototype: &str) -> f64;

    /// Expected output tuples per invocation of `prototype`.
    fn invocation_fanout(&self, prototype: &str) -> f64;
}

/// Adapter giving the classic static model the [`CostInputs`] vocabulary.
struct StaticInputs<'a> {
    params: &'a CostParams,
    cardinalities: &'a BTreeMap<String, usize>,
}

impl CostInputs for StaticInputs<'_> {
    fn params(&self) -> &CostParams {
        self.params
    }

    fn cardinality(&self, name: &str) -> Option<f64> {
        self.cardinalities.get(name).map(|&n| n as f64)
    }

    fn invocation_cost(&self, _prototype: &str) -> f64 {
        self.params.invocation_cost
    }

    fn invocation_fanout(&self, _prototype: &str) -> f64 {
        self.params.invocation_fanout
    }
}

/// Estimate `plan`'s cost given base-relation cardinalities.
pub fn estimate(
    plan: &Plan,
    catalog: &dyn SchemaCatalog,
    cardinalities: &BTreeMap<String, usize>,
    params: &CostParams,
) -> Result<CostEstimate, PlanError> {
    estimate_with(
        plan,
        catalog,
        &StaticInputs {
            params,
            cardinalities,
        },
    )
}

/// Estimate `plan`'s cost against an arbitrary [`CostInputs`] provider —
/// the entry point used by [`MeasuredCosts::estimate`].
pub fn estimate_with(
    plan: &Plan,
    catalog: &dyn SchemaCatalog,
    inputs: &dyn CostInputs,
) -> Result<CostEstimate, PlanError> {
    let params = *inputs.params();
    match plan {
        Plan::Relation(name) => {
            // validate existence
            plan.schema(catalog)?;
            let rows = inputs
                .cardinality(name)
                .unwrap_or(params.default_cardinality);
            Ok(CostEstimate {
                rows,
                invocations: 0.0,
                cost: rows,
            })
        }
        Plan::Union(a, b) => {
            let (ea, eb) = (
                estimate_with(a, catalog, inputs)?,
                estimate_with(b, catalog, inputs)?,
            );
            let rows = ea.rows + eb.rows;
            Ok(combine2(ea, eb, rows))
        }
        Plan::Intersect(a, b) => {
            let (ea, eb) = (
                estimate_with(a, catalog, inputs)?,
                estimate_with(b, catalog, inputs)?,
            );
            let rows = ea.rows.min(eb.rows) * params.selectivity;
            Ok(combine2(ea, eb, rows))
        }
        Plan::Difference(a, b) => {
            let (ea, eb) = (
                estimate_with(a, catalog, inputs)?,
                estimate_with(b, catalog, inputs)?,
            );
            let rows = ea.rows * params.selectivity;
            Ok(combine2(ea, eb, rows))
        }
        Plan::Project(p, _) | Plan::Rename(p, _, _) | Plan::Assign(p, _, _) => {
            let e = estimate_with(p, catalog, inputs)?;
            Ok(CostEstimate {
                rows: e.rows,
                invocations: e.invocations,
                cost: e.cost + e.rows,
            })
        }
        Plan::Select(p, _) => {
            let e = estimate_with(p, catalog, inputs)?;
            let rows = e.rows * params.selectivity;
            Ok(CostEstimate {
                rows,
                invocations: e.invocations,
                cost: e.cost + e.rows,
            })
        }
        Plan::Join(a, b) => {
            let (ea, eb) = (
                estimate_with(a, catalog, inputs)?,
                estimate_with(b, catalog, inputs)?,
            );
            // does the join have a predicate? (common both-real attributes)
            let sa = a.schema(catalog)?;
            let sb = b.schema(catalog)?;
            let has_predicate = sa
                .attrs()
                .iter()
                .any(|x| x.is_real() && sb.is_real(x.name.as_str()));
            let rows = if has_predicate {
                (ea.rows * eb.rows * params.join_factor).max(ea.rows.min(eb.rows))
            } else {
                ea.rows * eb.rows
            };
            Ok(combine2(ea, eb, rows))
        }
        Plan::Invoke(p, proto, _) => {
            let e = estimate_with(p, catalog, inputs)?;
            // one invocation per input tuple
            let invocations = e.invocations + e.rows;
            let rows = e.rows * inputs.invocation_fanout(proto);
            Ok(CostEstimate {
                rows,
                invocations,
                cost: e.cost + e.rows * inputs.invocation_cost(proto),
            })
        }
        Plan::Aggregate(p, group, _) => {
            let e = estimate_with(p, catalog, inputs)?;
            let rows = if group.is_empty() {
                1.0
            } else {
                (e.rows * params.selectivity).max(1.0)
            };
            Ok(CostEstimate {
                rows,
                invocations: e.invocations,
                cost: e.cost + e.rows,
            })
        }
    }
}

/// Per-prototype measured state, assembled from the telemetry subsystem:
/// latency quantiles from the instrumented invoker's histograms, failure
/// rate and breaker state from the health tracker / resilience layer,
/// β-cache hit rate from the metrics registry, and observed fanout from
/// executor statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServiceObservation {
    /// Median invocation latency (nanoseconds), if measured.
    pub p50_latency_ns: Option<u64>,
    /// Tail invocation latency (nanoseconds), if measured.
    pub p99_latency_ns: Option<u64>,
    /// Fraction of recent invocations that failed, in `[0, 1]`.
    pub failure_rate: f64,
    /// Whether any circuit breaker guarding the prototype's services is
    /// currently open or half-open.
    pub breaker_open: bool,
    /// Fraction of β lookups served from cache, in `[0, 1]`.
    pub cache_hit_rate: f64,
    /// Observed output tuples per invocation, if measured.
    pub fanout: Option<f64>,
}

/// Telemetry-fed cost provider (optimizer v2, ROADMAP item 4): ranks plans
/// by *measured* invocation cost instead of the flat
/// [`CostParams::invocation_cost`] guess.
///
/// The per-prototype invocation charge starts from the static baseline and
/// is then
/// - scaled by the measured p50 latency relative to a reference latency
///   (skipped in [deterministic](MeasuredCosts::deterministic) mode —
///   wall-clock inputs would make replans diverge between replays),
/// - inflated by the failure rate (failed calls are retried and their work
///   wasted), and by a large penalty while a breaker is open (calls are
///   rejected or degraded outright),
/// - discounted by the β-cache hit rate (a cached invocation costs no
///   service round-trip).
#[derive(Debug, Clone, PartialEq)]
pub struct MeasuredCosts {
    base: CostParams,
    /// Latency that corresponds to the baseline `invocation_cost` charge.
    reference_latency_ns: u64,
    /// Multiplier applied on top of a fully-failing service's cost.
    failure_penalty: f64,
    /// Multiplier applied while the service's breaker is open.
    breaker_penalty: f64,
    deterministic: bool,
    observations: BTreeMap<String, ServiceObservation>,
    cardinalities: BTreeMap<String, usize>,
}

impl Default for MeasuredCosts {
    fn default() -> Self {
        MeasuredCosts {
            base: CostParams::default(),
            reference_latency_ns: 1_000_000, // 1 ms ≙ the 1000.0 baseline
            failure_penalty: 4.0,
            breaker_penalty: 50.0,
            deterministic: false,
            observations: BTreeMap::new(),
            cardinalities: BTreeMap::new(),
        }
    }
}

impl MeasuredCosts {
    /// A provider with default structural parameters and no observations
    /// (behaves exactly like the static model until fed).
    pub fn new() -> Self {
        MeasuredCosts::default()
    }

    /// Replace the structural baseline parameters.
    pub fn with_params(mut self, params: CostParams) -> Self {
        self.base = params;
        self
    }

    /// Restrict the model to replay-stable inputs: latency histograms are
    /// ignored, leaving only logically-timed signals (failure rates,
    /// breaker states, cache hit rates, observed cardinalities). Two runs
    /// with the same fault schedule then rank candidates identically.
    pub fn deterministic(mut self, on: bool) -> Self {
        self.deterministic = on;
        self
    }

    /// Whether the model is restricted to replay-stable inputs.
    pub fn is_deterministic(&self) -> bool {
        self.deterministic
    }

    /// Record (or replace) the measured state of `prototype`.
    pub fn observe(&mut self, prototype: impl Into<String>, obs: ServiceObservation) {
        self.observations.insert(prototype.into(), obs);
    }

    /// Record the observed cardinality of base relation `name`.
    pub fn observe_cardinality(&mut self, name: impl Into<String>, rows: usize) {
        self.cardinalities.insert(name.into(), rows);
    }

    /// The measured state of `prototype`, if any was recorded.
    pub fn observation(&self, prototype: &str) -> Option<&ServiceObservation> {
        self.observations.get(prototype)
    }

    /// All recorded observations, keyed by prototype name.
    pub fn observations(&self) -> impl Iterator<Item = (&str, &ServiceObservation)> {
        self.observations.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Estimate `plan` under this model.
    pub fn estimate(
        &self,
        plan: &Plan,
        catalog: &dyn SchemaCatalog,
    ) -> Result<CostEstimate, PlanError> {
        estimate_with(plan, catalog, self)
    }
}

impl CostInputs for MeasuredCosts {
    fn params(&self) -> &CostParams {
        &self.base
    }

    fn cardinality(&self, name: &str) -> Option<f64> {
        self.cardinalities.get(name).map(|&n| n as f64)
    }

    fn invocation_cost(&self, prototype: &str) -> f64 {
        let Some(obs) = self.observations.get(prototype) else {
            return self.base.invocation_cost;
        };
        let mut cost = self.base.invocation_cost;
        if !self.deterministic {
            if let Some(p50) = obs.p50_latency_ns {
                let scale = p50 as f64 / self.reference_latency_ns as f64;
                cost *= scale.clamp(0.1, 100.0);
            }
        }
        cost *= 1.0 + obs.failure_rate.clamp(0.0, 1.0) * self.failure_penalty;
        if obs.breaker_open {
            cost *= self.breaker_penalty;
        }
        // a cache hit skips the service round-trip entirely; keep a floor
        // so invocations never become free
        cost * (1.0 - obs.cache_hit_rate.clamp(0.0, 0.95))
    }

    fn invocation_fanout(&self, prototype: &str) -> f64 {
        self.observations
            .get(prototype)
            .and_then(|o| o.fanout)
            .unwrap_or(self.base.invocation_fanout)
    }
}

fn combine2(a: CostEstimate, b: CostEstimate, rows: f64) -> CostEstimate {
    CostEstimate {
        rows,
        invocations: a.invocations + b.invocations,
        cost: a.cost + b.cost + rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::examples::example_environment;
    use crate::plan::examples::{q2, q2_prime};

    fn cards() -> BTreeMap<String, usize> {
        [
            ("cameras".to_string(), 3usize),
            ("contacts".to_string(), 3),
            ("sensors".to_string(), 4),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn pushed_down_plan_costs_less() {
        let env = example_environment();
        let params = CostParams::default();
        let e_opt = estimate(&q2(), &env, &cards(), &params).unwrap();
        let e_naive = estimate(&q2_prime(), &env, &cards(), &params).unwrap();
        assert!(
            e_opt.cost < e_naive.cost,
            "Q2 ({}) should be cheaper than Q2' ({})",
            e_opt.cost,
            e_naive.cost
        );
        assert!(e_opt.invocations < e_naive.invocations);
    }

    #[test]
    fn invocation_dominates_cost() {
        let env = example_environment();
        let params = CostParams::default();
        let scan = Plan::relation("cameras");
        let inv = Plan::relation("cameras").invoke("checkPhoto", "camera");
        let e_scan = estimate(&scan, &env, &cards(), &params).unwrap();
        let e_inv = estimate(&inv, &env, &cards(), &params).unwrap();
        assert!(e_inv.cost > e_scan.cost * 100.0);
        assert_eq!(e_inv.invocations, 3.0);
    }

    #[test]
    fn default_cardinality_for_unknown_relations() {
        let env = example_environment();
        let params = CostParams::default();
        let e = estimate(&Plan::relation("cameras"), &env, &BTreeMap::new(), &params).unwrap();
        assert_eq!(e.rows, params.default_cardinality);
    }

    #[test]
    fn measured_costs_match_static_until_fed() {
        let env = example_environment();
        let params = CostParams::default();
        let mut m = MeasuredCosts::new();
        for (name, n) in cards() {
            m.observe_cardinality(name, n);
        }
        let p = Plan::relation("cameras").invoke("checkPhoto", "camera");
        let e_static = estimate(&p, &env, &cards(), &params).unwrap();
        let e_measured = m.estimate(&p, &env).unwrap();
        assert_eq!(e_static, e_measured);
    }

    #[test]
    fn degraded_service_inflates_invocation_cost() {
        let env = example_environment();
        let mut m = MeasuredCosts::new();
        let p = Plan::relation("cameras").invoke("checkPhoto", "camera");
        let healthy = m.estimate(&p, &env).unwrap();
        m.observe(
            "checkPhoto",
            ServiceObservation {
                failure_rate: 0.5,
                ..ServiceObservation::default()
            },
        );
        let failing = m.estimate(&p, &env).unwrap();
        assert!(failing.cost > healthy.cost * 2.0);
        m.observe(
            "checkPhoto",
            ServiceObservation {
                breaker_open: true,
                ..ServiceObservation::default()
            },
        );
        let broken = m.estimate(&p, &env).unwrap();
        assert!(broken.cost > failing.cost * 5.0);
    }

    #[test]
    fn cache_hits_discount_invocation_cost() {
        let env = example_environment();
        let mut m = MeasuredCosts::new();
        let p = Plan::relation("cameras").invoke("checkPhoto", "camera");
        let cold = m.estimate(&p, &env).unwrap();
        m.observe(
            "checkPhoto",
            ServiceObservation {
                cache_hit_rate: 0.9,
                ..ServiceObservation::default()
            },
        );
        let warm = m.estimate(&p, &env).unwrap();
        assert!(warm.cost < cold.cost);
    }

    #[test]
    fn deterministic_mode_ignores_latency() {
        let env = example_environment();
        let p = Plan::relation("cameras").invoke("checkPhoto", "camera");
        let slow = ServiceObservation {
            p50_latency_ns: Some(50_000_000), // 50 ms vs 1 ms reference
            ..ServiceObservation::default()
        };
        let mut live = MeasuredCosts::new();
        live.observe("checkPhoto", slow.clone());
        let mut det = MeasuredCosts::new().deterministic(true);
        det.observe("checkPhoto", slow);
        let baseline = MeasuredCosts::new().estimate(&p, &env).unwrap();
        assert!(live.estimate(&p, &env).unwrap().cost > baseline.cost * 10.0);
        assert_eq!(det.estimate(&p, &env).unwrap(), baseline);
    }

    #[test]
    fn measured_costs_widen_the_pushdown_gap_under_degradation() {
        // Table 5's σ-pushdown (Q2 vs Q2') is worth strictly more when the
        // invoked service is degraded: the optimizer should prefer the
        // rewritten plan even harder once the breaker penalty kicks in.
        let env = example_environment();
        let mut healthy = MeasuredCosts::new();
        let mut degraded = MeasuredCosts::new();
        for m in [&mut healthy, &mut degraded] {
            for (name, n) in cards() {
                m.observe_cardinality(name, n);
            }
        }
        degraded.observe(
            "checkPhoto",
            ServiceObservation {
                failure_rate: 0.8,
                breaker_open: true,
                ..ServiceObservation::default()
            },
        );
        let gap = |m: &MeasuredCosts| {
            let opt = m.estimate(&q2(), &env).unwrap().cost;
            let naive = m.estimate(&q2_prime(), &env).unwrap().cost;
            naive - opt
        };
        assert!(gap(&degraded) > gap(&healthy));
    }

    #[test]
    fn cartesian_join_estimates_product() {
        let env = example_environment();
        let params = CostParams::default();
        // sensors ⋈ π_{name,address}(contacts): no common attrs → product
        let p =
            Plan::relation("sensors").join(Plan::relation("contacts").project(["name", "address"]));
        let e = estimate(&p, &env, &cards(), &params).unwrap();
        assert_eq!(e.rows, 12.0);
    }
}
