//! The rewrite rules of Table 5 (and the classic relational rules the
//! paper keeps).
//!
//! Each rule is a root-level pattern: [`RewriteRule::try_apply`] fires only
//! when the *top* node of the given plan matches and all preconditions
//! hold; [`apply_everywhere`] walks a plan bottom-up applying a rule at
//! every node.
//!
//! Every application additionally re-derives the rewritten plan's schema
//! and requires it to be *compatible* with the original's (same attribute
//! set, types, real/virtual partition, binding patterns): the preconditions
//! are proved on paper, the schema check is the belt-and-braces safety net.
//!
//! Active binding patterns are the hard wall (§3.3): no rule moves a σ or
//! π past an invocation of an *active* binding pattern, because doing so
//! changes the action set (see `Q1` vs `Q1'` in Example 6).

use crate::error::PlanError;
use crate::formula::Formula;
use crate::plan::{Plan, SchemaCatalog};

/// A rewrite rule: a named, precondition-checked plan transformation.
pub trait RewriteRule: Sync {
    /// Rule name, for reports.
    fn name(&self) -> &'static str;

    /// Apply at the root of `plan` if the pattern matches and the
    /// preconditions hold; `None` otherwise.
    fn try_apply(&self, plan: &Plan, catalog: &dyn SchemaCatalog) -> Option<Plan>;
}

/// Verify the rewritten plan is schema-compatible with the original —
/// returns `Some(rewritten)` only when both validate and agree.
fn checked(original: &Plan, rewritten: Plan, catalog: &dyn SchemaCatalog) -> Option<Plan> {
    let before = original.schema(catalog).ok()?;
    let after = rewritten.schema(catalog).ok()?;
    if before.compatible_with(&after) {
        Some(rewritten)
    } else {
        None
    }
}

/// Is `plan`'s top node an invocation of a *passive* binding pattern?
fn invoke_is_passive(
    child: &Plan,
    proto: &str,
    service_attr: &str,
    catalog: &dyn SchemaCatalog,
) -> Result<bool, PlanError> {
    let s = child.schema(catalog)?;
    let (_, bp) = crate::ops::invoke_schema(&s, proto, service_attr)?;
    Ok(!bp.is_active())
}

// ---------------------------------------------------------------------
// Table 5, assignment row: α vs σ / π / ⋈
// ---------------------------------------------------------------------

/// `σ_F(α_{A:=s}(r)) ⇒ α_{A:=s}(σ_F(r))` if `A ∉ F` (Table 5, selection
/// column of the assignment row).
pub struct SelectPastAssign;

impl RewriteRule for SelectPastAssign {
    fn name(&self) -> &'static str {
        "select-past-assign"
    }

    fn try_apply(&self, plan: &Plan, catalog: &dyn SchemaCatalog) -> Option<Plan> {
        let Plan::Select(inner, f) = plan else {
            return None;
        };
        let Plan::Assign(r, attr, src) = inner.as_ref() else {
            return None;
        };
        if f.references(attr.as_str()) {
            return None;
        }
        let rewritten = Plan::Assign(
            Box::new(Plan::Select(r.clone(), f.clone())),
            attr.clone(),
            src.clone(),
        );
        checked(plan, rewritten, catalog)
    }
}

/// `π_L(α_{A:=s}(r)) ⇒ α_{A:=s}(π_L(r))` if `A ∈ L` (and `B ∈ L` for an
/// attribute source) — Table 5, projection column of the assignment row.
pub struct ProjectPastAssign;

impl RewriteRule for ProjectPastAssign {
    fn name(&self) -> &'static str {
        "project-past-assign"
    }

    fn try_apply(&self, plan: &Plan, catalog: &dyn SchemaCatalog) -> Option<Plan> {
        let Plan::Project(inner, attrs) = plan else {
            return None;
        };
        let Plan::Assign(r, attr, src) = inner.as_ref() else {
            return None;
        };
        if !attrs.contains(attr) {
            return None;
        }
        if let crate::ops::AssignSource::Attr(b) = src {
            if !attrs.contains(b) {
                return None;
            }
        }
        let rewritten = Plan::Assign(
            Box::new(Plan::Project(r.clone(), attrs.clone())),
            attr.clone(),
            src.clone(),
        );
        checked(plan, rewritten, catalog)
    }
}

/// `α_{A:=s}(r1 ⋈ r2) ⇒ α_{A:=s}(r1) ⋈ r2` if `A` (and source `B`) belong
/// to `schema(R1)` and `A ∉ realSchema(R2)` — Table 5, join column of the
/// assignment row.
pub struct AssignIntoJoin;

impl RewriteRule for AssignIntoJoin {
    fn name(&self) -> &'static str {
        "assign-into-join"
    }

    fn try_apply(&self, plan: &Plan, catalog: &dyn SchemaCatalog) -> Option<Plan> {
        let Plan::Assign(inner, attr, src) = plan else {
            return None;
        };
        let Plan::Join(r1, r2) = inner.as_ref() else {
            return None;
        };
        let s1 = r1.schema(catalog).ok()?;
        let s2 = r2.schema(catalog).ok()?;
        // try each operand (the rule is symmetric in the join).
        for (this, other, this_plan, other_plan, left) in
            [(&s1, &s2, r1, r2, true), (&s2, &s1, r2, r1, false)]
        {
            if !this.is_virtual(attr.as_str()) || other.is_real(attr.as_str()) {
                continue;
            }
            if let crate::ops::AssignSource::Attr(b) = src {
                if !this.is_real(b.as_str()) {
                    continue;
                }
            }
            let assigned = Box::new(Plan::Assign(this_plan.clone(), attr.clone(), src.clone()));
            let rewritten = if left {
                Plan::Join(assigned, other_plan.clone())
            } else {
                Plan::Join(other_plan.clone(), assigned)
            };
            if let Some(ok) = checked(plan, rewritten, catalog) {
                return Some(ok);
            }
        }
        None
    }
}

// ---------------------------------------------------------------------
// Table 5, invocation row: β vs σ / π / ⋈ — passive binding patterns only
// ---------------------------------------------------------------------

/// `σ_F(β_bp(r)) ⇒ β_bp(σ_F(r))` if `bp` is **passive** and `F` references
/// none of `Output_ψ` — Table 5, selection column of the invocation row.
/// This is the key optimization: filtering before invoking reduces the
/// number of service calls.
pub struct SelectPastInvoke;

impl RewriteRule for SelectPastInvoke {
    fn name(&self) -> &'static str {
        "select-past-invoke"
    }

    fn try_apply(&self, plan: &Plan, catalog: &dyn SchemaCatalog) -> Option<Plan> {
        let Plan::Select(inner, f) = plan else {
            return None;
        };
        let Plan::Invoke(r, proto, sa) = inner.as_ref() else {
            return None;
        };
        if !invoke_is_passive(r, proto, sa.as_str(), catalog).ok()? {
            return None;
        }
        let s = r.schema(catalog).ok()?;
        let bp = s.find_bp_exact(proto, sa.as_str())?;
        if bp
            .prototype()
            .output()
            .names()
            .any(|o| f.references(o.as_str()))
        {
            return None;
        }
        let rewritten = Plan::Invoke(
            Box::new(Plan::Select(r.clone(), f.clone())),
            proto.clone(),
            sa.clone(),
        );
        checked(plan, rewritten, catalog)
    }
}

/// `π_L(β_bp(r)) ⇒ β_bp(π_L(r))` if `bp` is **passive** and `L` retains the
/// service attribute, every `Input_ψ` attribute and every `Output_ψ`
/// attribute — Table 5, projection column of the invocation row.
pub struct ProjectPastInvoke;

impl RewriteRule for ProjectPastInvoke {
    fn name(&self) -> &'static str {
        "project-past-invoke"
    }

    fn try_apply(&self, plan: &Plan, catalog: &dyn SchemaCatalog) -> Option<Plan> {
        let Plan::Project(inner, attrs) = plan else {
            return None;
        };
        let Plan::Invoke(r, proto, sa) = inner.as_ref() else {
            return None;
        };
        if !invoke_is_passive(r, proto, sa.as_str(), catalog).ok()? {
            return None;
        }
        let s = r.schema(catalog).ok()?;
        let bp = s.find_bp_exact(proto, sa.as_str())?;
        let has = |name: &str| attrs.iter().any(|a| a.as_str() == name);
        if !has(bp.service_attr().as_str()) {
            return None;
        }
        if !bp.prototype().input().names().all(|a| has(a.as_str())) {
            return None;
        }
        if !bp.prototype().output().names().all(|a| has(a.as_str())) {
            return None;
        }
        let rewritten = Plan::Invoke(
            Box::new(Plan::Project(r.clone(), attrs.clone())),
            proto.clone(),
            sa.clone(),
        );
        checked(plan, rewritten, catalog)
    }
}

/// `β_bp(r1 ⋈ r2) ⇒ β_bp(r1) ⋈ r2` if `bp` is **passive**, belongs to
/// `BP(R1)` with all input attributes real in `R1`, and none of `Output_ψ`
/// appears in `schema(R2)` — Table 5, join column of the invocation row.
pub struct InvokeIntoJoin;

impl RewriteRule for InvokeIntoJoin {
    fn name(&self) -> &'static str {
        "invoke-into-join"
    }

    fn try_apply(&self, plan: &Plan, catalog: &dyn SchemaCatalog) -> Option<Plan> {
        let Plan::Invoke(inner, proto, sa) = plan else {
            return None;
        };
        let Plan::Join(r1, r2) = inner.as_ref() else {
            return None;
        };
        let s1 = r1.schema(catalog).ok()?;
        let s2 = r2.schema(catalog).ok()?;
        // try each operand (the rule is symmetric in the join).
        for (this, other, this_plan, other_plan, left) in
            [(&s1, &s2, r1, r2, true), (&s2, &s1, r2, r1, false)]
        {
            let Some(bp) = this.find_bp_exact(proto, sa.as_str()) else {
                continue;
            };
            if bp.is_active() {
                continue;
            }
            if !bp
                .prototype()
                .input()
                .names()
                .all(|a| this.is_real(a.as_str()))
            {
                continue;
            }
            if bp
                .prototype()
                .output()
                .names()
                .any(|o| other.contains(o.as_str()))
            {
                continue;
            }
            let invoked = Box::new(Plan::Invoke(this_plan.clone(), proto.clone(), sa.clone()));
            let rewritten = if left {
                Plan::Join(invoked, other_plan.clone())
            } else {
                Plan::Join(other_plan.clone(), invoked)
            };
            if let Some(ok) = checked(plan, rewritten, catalog) {
                return Some(ok);
            }
        }
        None
    }
}

// ---------------------------------------------------------------------
// Classic relational rules the paper keeps (§3.3: "Some well-known
// rewriting rules of the relational algebra are still pertinent")
// ---------------------------------------------------------------------

/// `σ_{F∧G}(r) ⇒ σ_F(σ_G(r))` — conjunction split, enabling independent
/// pushdown of each conjunct.
pub struct SplitConjunctiveSelect;

impl RewriteRule for SplitConjunctiveSelect {
    fn name(&self) -> &'static str {
        "split-conjunctive-select"
    }

    fn try_apply(&self, plan: &Plan, catalog: &dyn SchemaCatalog) -> Option<Plan> {
        let Plan::Select(inner, Formula::And(f, g)) = plan else {
            return None;
        };
        let rewritten = Plan::Select(
            Box::new(Plan::Select(inner.clone(), (**g).clone())),
            (**f).clone(),
        );
        checked(plan, rewritten, catalog)
    }
}

/// `σ_F(σ_G(r)) ⇒ σ_{F∧G}(r)` — merge adjacent selections (cleanup pass).
pub struct MergeSelects;

impl RewriteRule for MergeSelects {
    fn name(&self) -> &'static str {
        "merge-selects"
    }

    fn try_apply(&self, plan: &Plan, catalog: &dyn SchemaCatalog) -> Option<Plan> {
        let Plan::Select(inner, f) = plan else {
            return None;
        };
        let Plan::Select(r, g) = inner.as_ref() else {
            return None;
        };
        let rewritten = Plan::Select(r.clone(), f.clone().and(g.clone()));
        checked(plan, rewritten, catalog)
    }
}

/// `σ_F(r1 ⋈ r2) ⇒ σ_F(r1) ⋈ r2` (resp. right) when `F` only references
/// real attributes of one operand.
pub struct SelectIntoJoin;

impl RewriteRule for SelectIntoJoin {
    fn name(&self) -> &'static str {
        "select-into-join"
    }

    fn try_apply(&self, plan: &Plan, catalog: &dyn SchemaCatalog) -> Option<Plan> {
        let Plan::Select(inner, f) = plan else {
            return None;
        };
        let Plan::Join(r1, r2) = inner.as_ref() else {
            return None;
        };
        let s1 = r1.schema(catalog).ok()?;
        let s2 = r2.schema(catalog).ok()?;
        let attrs = f.attrs();
        if attrs.iter().all(|a| s1.is_real(a.as_str())) {
            let rewritten = Plan::Join(Box::new(Plan::Select(r1.clone(), f.clone())), r2.clone());
            return checked(plan, rewritten, catalog);
        }
        if attrs.iter().all(|a| s2.is_real(a.as_str())) {
            let rewritten = Plan::Join(r1.clone(), Box::new(Plan::Select(r2.clone(), f.clone())));
            return checked(plan, rewritten, catalog);
        }
        None
    }
}

/// `σ_F(r1 ∪ r2) ⇒ σ_F(r1) ∪ σ_F(r2)` (and likewise for ∩ and −).
pub struct SelectIntoSetOp;

impl RewriteRule for SelectIntoSetOp {
    fn name(&self) -> &'static str {
        "select-into-set-op"
    }

    fn try_apply(&self, plan: &Plan, catalog: &dyn SchemaCatalog) -> Option<Plan> {
        let Plan::Select(inner, f) = plan else {
            return None;
        };
        let push = |a: &Plan, b: &Plan, mk: fn(Box<Plan>, Box<Plan>) -> Plan| {
            mk(
                Box::new(Plan::Select(Box::new(a.clone()), f.clone())),
                Box::new(Plan::Select(Box::new(b.clone()), f.clone())),
            )
        };
        let rewritten = match inner.as_ref() {
            Plan::Union(a, b) => push(a, b, Plan::Union),
            Plan::Intersect(a, b) => push(a, b, Plan::Intersect),
            Plan::Difference(a, b) => push(a, b, Plan::Difference),
            _ => return None,
        };
        checked(plan, rewritten, catalog)
    }
}

/// `σ_F(ρ_{A→B}(r)) ⇒ ρ_{A→B}(σ_{F[B↦A]}(r))`.
pub struct SelectPastRename;

impl RewriteRule for SelectPastRename {
    fn name(&self) -> &'static str {
        "select-past-rename"
    }

    fn try_apply(&self, plan: &Plan, catalog: &dyn SchemaCatalog) -> Option<Plan> {
        let Plan::Select(inner, f) = plan else {
            return None;
        };
        let Plan::Rename(r, from, to) = inner.as_ref() else {
            return None;
        };
        let pushed = f.rename_attr(to.as_str(), from);
        let rewritten = Plan::Rename(
            Box::new(Plan::Select(r.clone(), pushed)),
            from.clone(),
            to.clone(),
        );
        checked(plan, rewritten, catalog)
    }
}

/// Whether `σ_F` could be pushed one step below `node` (the one-step
/// pushability oracle used by [`SelectPastSelect`]). Looks through chains
/// of selections.
fn can_push_below(f: &Formula, node: &Plan, catalog: &dyn SchemaCatalog) -> bool {
    match node {
        Plan::Select(inner, _) => can_push_below(f, inner, catalog),
        Plan::Assign(_, attr, _) => !f.references(attr.as_str()),
        Plan::Invoke(child, proto, sa) => {
            let Ok(true) = invoke_is_passive(child, proto, sa.as_str(), catalog) else {
                return false;
            };
            let Ok(s) = child.schema(catalog) else {
                return false;
            };
            let Some(bp) = s.find_bp_exact(proto, sa.as_str()) else {
                return false;
            };
            let crosses = !bp
                .prototype()
                .output()
                .names()
                .any(|o| f.references(o.as_str()));
            crosses
        }
        Plan::Join(a, b) => {
            let (Ok(sa), Ok(sb)) = (a.schema(catalog), b.schema(catalog)) else {
                return false;
            };
            let attrs = f.attrs();
            attrs.iter().all(|x| sa.is_real(x.as_str()))
                || attrs.iter().all(|x| sb.is_real(x.as_str()))
        }
        Plan::Union(..) | Plan::Intersect(..) | Plan::Difference(..) => true,
        Plan::Rename(..) | Plan::Project(..) => true,
        Plan::Relation(_) | Plan::Aggregate(..) => false,
    }
}

/// `σ_F(σ_G(x)) ⇒ σ_G(σ_F(x))` when `F` can descend below `x` but `G`
/// cannot — a pushable conjunct hops over a stuck one. The asymmetric
/// condition guarantees termination (re-swapping would need the opposite
/// pushability).
pub struct SelectPastSelect;

impl RewriteRule for SelectPastSelect {
    fn name(&self) -> &'static str {
        "select-past-select"
    }

    fn try_apply(&self, plan: &Plan, catalog: &dyn SchemaCatalog) -> Option<Plan> {
        let Plan::Select(inner, f) = plan else {
            return None;
        };
        let Plan::Select(x, g) = inner.as_ref() else {
            return None;
        };
        if !can_push_below(f, x, catalog) || can_push_below(g, x, catalog) {
            return None;
        }
        let rewritten = Plan::Select(Box::new(Plan::Select(x.clone(), f.clone())), g.clone());
        checked(plan, rewritten, catalog)
    }
}

/// `σ_F(π_L(r)) ⇒ π_L(σ_F(r))` — always valid: every attribute of `F` is a
/// real attribute of `π_L(r)`, hence of `r`.
pub struct SelectPastProject;

impl RewriteRule for SelectPastProject {
    fn name(&self) -> &'static str {
        "select-past-project"
    }

    fn try_apply(&self, plan: &Plan, catalog: &dyn SchemaCatalog) -> Option<Plan> {
        let Plan::Select(inner, f) = plan else {
            return None;
        };
        let Plan::Project(r, attrs) = inner.as_ref() else {
            return None;
        };
        let rewritten = Plan::Project(Box::new(Plan::Select(r.clone(), f.clone())), attrs.clone());
        checked(plan, rewritten, catalog)
    }
}

/// `σ_true(r) ⇒ r` — trivial-selection elimination.
pub struct DropTrueSelect;

impl RewriteRule for DropTrueSelect {
    fn name(&self) -> &'static str {
        "drop-true-select"
    }

    fn try_apply(&self, plan: &Plan, catalog: &dyn SchemaCatalog) -> Option<Plan> {
        let Plan::Select(inner, Formula::True) = plan else {
            return None;
        };
        checked(plan, (**inner).clone(), catalog)
    }
}

/// `π_L1(π_L2(r)) ⇒ π_L1(r)` — projection absorption (valid because π_L1
/// over π_L2 requires `L1 ⊆ L2`).
pub struct MergeProjects;

impl RewriteRule for MergeProjects {
    fn name(&self) -> &'static str {
        "merge-projects"
    }

    fn try_apply(&self, plan: &Plan, catalog: &dyn SchemaCatalog) -> Option<Plan> {
        let Plan::Project(inner, l1) = plan else {
            return None;
        };
        let Plan::Project(r, _) = inner.as_ref() else {
            return None;
        };
        let rewritten = Plan::Project(r.clone(), l1.clone());
        checked(plan, rewritten, catalog)
    }
}

/// All rules, in the order the optimizer's pushdown phase tries them.
pub fn all_rules() -> Vec<Box<dyn RewriteRule>> {
    vec![
        Box::new(SplitConjunctiveSelect),
        Box::new(DropTrueSelect),
        Box::new(SelectPastSelect),
        Box::new(SelectPastProject),
        Box::new(SelectPastAssign),
        Box::new(SelectPastInvoke),
        Box::new(SelectIntoJoin),
        Box::new(SelectIntoSetOp),
        Box::new(SelectPastRename),
        Box::new(ProjectPastAssign),
        Box::new(ProjectPastInvoke),
        Box::new(AssignIntoJoin),
        Box::new(InvokeIntoJoin),
        Box::new(MergeProjects),
    ]
}

/// Apply `rule` at every node (bottom-up), returning the rewritten plan and
/// the number of applications.
pub fn apply_everywhere(
    plan: &Plan,
    rule: &dyn RewriteRule,
    catalog: &dyn SchemaCatalog,
) -> (Plan, usize) {
    let mut count = 0usize;
    let out = plan.transform_up(&mut |node| match rule.try_apply(&node, catalog) {
        Some(next) => {
            count += 1;
            next
        }
        None => node,
    });
    (out, count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::examples::example_environment;
    use crate::equiv::check_over_instants;
    use crate::plan::examples::{q1, q2, q2_prime};
    use crate::service::fixtures::example_registry;
    use crate::time::Instant;

    fn assert_equiv(p: &Plan, q: &Plan) {
        let env = example_environment();
        let reg = example_registry();
        let report = check_over_instants(p, q, &env, &reg, (0..5).map(Instant)).unwrap();
        assert!(report.equivalent(), "{p} should ≡ {q}: {report:?}");
    }

    #[test]
    fn select_past_assign_fires_and_preserves_equivalence() {
        let env = example_environment();
        // σ_{name≠'Carla'} above α_{text:=...}
        let p = Plan::relation("contacts")
            .assign_const("text", "Bonjour!")
            .select(crate::formula::Formula::ne_const("name", "Carla"));
        let rewritten = SelectPastAssign.try_apply(&p, &env).unwrap();
        assert!(matches!(rewritten, Plan::Assign(..)));
        assert_equiv(&p, &rewritten);
    }

    #[test]
    fn select_past_assign_blocked_when_formula_uses_target() {
        let env = example_environment();
        let p = Plan::relation("contacts")
            .assign_const("text", "Bonjour!")
            .select(crate::formula::Formula::eq_const("text", "Bonjour!"));
        assert!(SelectPastAssign.try_apply(&p, &env).is_none());
    }

    #[test]
    fn select_past_invoke_rewrites_q2_prime_toward_q2() {
        let env = example_environment();
        // σ_{area∧quality}(β_checkPhoto(cameras)): split, hop the pushable
        // area conjunct over the stuck quality conjunct, then cross the
        // passive β.
        let p = q2_prime();
        let (split, n) = apply_everywhere(&p, &SplitConjunctiveSelect, &env);
        assert_eq!(n, 1);
        let (swapped, n) = apply_everywhere(&split, &SelectPastSelect, &env);
        assert_eq!(n, 1, "area conjunct should hop over quality: {split}");
        let (pushed, n) = apply_everywhere(&swapped, &SelectPastInvoke, &env);
        assert!(n >= 1, "expected select to cross checkPhoto: {swapped}");
        assert_equiv(&p, &pushed);
    }

    #[test]
    fn select_past_select_requires_asymmetry() {
        let env = example_environment();
        // both conjuncts stuck (reference checkPhoto outputs) → no swap
        let p = Plan::relation("cameras")
            .invoke("checkPhoto", "camera")
            .select(crate::formula::Formula::ge_const("quality", 5))
            .select(crate::formula::Formula::lt_const("delay", 1.0));
        assert!(SelectPastSelect.try_apply(&p, &env).is_none());
        // both pushable → no swap either (order is irrelevant, avoid churn)
        let p = Plan::relation("cameras")
            .invoke("checkPhoto", "camera")
            .select(crate::formula::Formula::eq_const("area", "office"))
            .select(crate::formula::Formula::eq_const("camera", "camera01"));
        assert!(SelectPastSelect.try_apply(&p, &env).is_none());
    }

    #[test]
    fn select_past_project_fires() {
        let env = example_environment();
        let p = Plan::relation("contacts")
            .project(["name", "address"])
            .select(crate::formula::Formula::ne_const("name", "Carla"));
        let rewritten = SelectPastProject.try_apply(&p, &env).unwrap();
        assert!(matches!(rewritten, Plan::Project(..)));
        assert_equiv(&p, &rewritten);
    }

    #[test]
    fn select_never_crosses_active_invoke() {
        let env = example_environment();
        // σ_{name≠'Carla'}(β_sendMessage(α_text(contacts))) — Q1'
        let p = crate::plan::examples::q1_prime();
        let (rewritten, n) = apply_everywhere(&p, &SelectPastInvoke, &env);
        assert_eq!(n, 0);
        assert_eq!(rewritten, p);
    }

    #[test]
    fn select_past_invoke_blocked_on_output_reference() {
        let env = example_environment();
        // σ_{quality≥5} references checkPhoto's output → must not cross
        let p = Plan::relation("cameras")
            .invoke("checkPhoto", "camera")
            .select(crate::formula::Formula::ge_const("quality", 5));
        assert!(SelectPastInvoke.try_apply(&p, &env).is_none());
    }

    #[test]
    fn project_past_invoke_requires_bp_attrs() {
        let env = example_environment();
        let p = Plan::relation("cameras")
            .invoke("checkPhoto", "camera")
            .project(["camera", "area", "quality", "delay"]);
        let rewritten = ProjectPastInvoke.try_apply(&p, &env);
        // photo (takePhoto's output) is dropped by the projection; the BP
        // attrs of checkPhoto are all retained → rule fires.
        let rewritten = rewritten.expect("rule should fire");
        assert_equiv(&p, &rewritten);

        // dropping `delay` (an output of checkPhoto) blocks the rule
        let p = Plan::relation("cameras")
            .invoke("checkPhoto", "camera")
            .project(["camera", "area", "quality"]);
        assert!(ProjectPastInvoke.try_apply(&p, &env).is_none());
    }

    #[test]
    fn invoke_into_join_fires_for_passive_bp() {
        let env = example_environment();
        // β_getTemperature(sensors ⋈ contactsProj) — contacts projected to
        // an unrelated attribute set to avoid attr collisions.
        let p = Plan::relation("sensors")
            .join(Plan::relation("contacts").project(["name", "address"]))
            .invoke("getTemperature", "sensor");
        let rewritten = InvokeIntoJoin.try_apply(&p, &env).expect("fires");
        assert!(matches!(rewritten, Plan::Join(..)));
        assert_equiv(&p, &rewritten);
    }

    #[test]
    fn assign_into_join_fires() {
        let env = example_environment();
        let p = Plan::relation("contacts")
            .join(Plan::relation("sensors").project(["sensor", "location"]))
            .assign_const("text", "hi");
        let rewritten = AssignIntoJoin.try_apply(&p, &env).expect("fires");
        assert!(matches!(rewritten, Plan::Join(..)));
        assert_equiv(&p, &rewritten);
    }

    #[test]
    fn assign_and_invoke_into_join_fire_on_right_operand() {
        let env = example_environment();
        // contacts is the RIGHT join operand here: the symmetric halves of
        // the rules must still sink α/β into it.
        let p = Plan::relation("sensors")
            .project(["sensor", "location"])
            .join(Plan::relation("contacts"))
            .assign_const("text", "hi");
        let rewritten = AssignIntoJoin.try_apply(&p, &env).expect("fires on right");
        let Plan::Join(_, r) = &rewritten else {
            panic!("expected join on top")
        };
        assert!(matches!(**r, Plan::Assign(..)));
        assert_equiv(&p, &rewritten);

        let p = Plan::relation("contacts")
            .project(["name", "address"])
            .join(Plan::relation("sensors"))
            .invoke("getTemperature", "sensor");
        let rewritten = InvokeIntoJoin.try_apply(&p, &env).expect("fires on right");
        let Plan::Join(_, r) = &rewritten else {
            panic!("expected join on top")
        };
        assert!(matches!(**r, Plan::Invoke(..)));
        assert_equiv(&p, &rewritten);
    }

    #[test]
    fn classic_rules_fire_and_preserve() {
        let env = example_environment();
        let f = crate::formula::Formula::eq_const("messenger", "email");
        let g = crate::formula::Formula::ne_const("name", "Carla");

        // split / merge round trip
        let p = Plan::relation("contacts").select(f.clone().and(g.clone()));
        let split = SplitConjunctiveSelect.try_apply(&p, &env).unwrap();
        assert_equiv(&p, &split);
        let merged = MergeSelects.try_apply(&split, &env).unwrap();
        assert_equiv(&p, &merged);

        // σ into ∪
        let u = Plan::relation("contacts")
            .union(Plan::relation("contacts"))
            .select(f.clone());
        let pushed = SelectIntoSetOp.try_apply(&u, &env).unwrap();
        assert_equiv(&u, &pushed);

        // σ past ρ
        let p = Plan::relation("contacts")
            .rename("name", "who")
            .select(crate::formula::Formula::ne_const("who", "Carla"));
        let pushed = SelectPastRename.try_apply(&p, &env).unwrap();
        assert_equiv(&p, &pushed);

        // drop σ_true
        let p = Plan::relation("contacts").select(crate::formula::Formula::True);
        assert_eq!(
            DropTrueSelect.try_apply(&p, &env).unwrap(),
            Plan::relation("contacts")
        );

        // π absorption
        let p = Plan::relation("contacts")
            .project(["name", "address"])
            .project(["name"]);
        let merged = MergeProjects.try_apply(&p, &env).unwrap();
        assert_equiv(&p, &merged);
    }

    #[test]
    fn select_into_join_left_and_right() {
        let env = example_environment();
        let join =
            Plan::relation("sensors").join(Plan::relation("contacts").project(["name", "address"]));
        // left-side predicate
        let p = join
            .clone()
            .select(crate::formula::Formula::eq_const("location", "office"));
        let rewritten = SelectIntoJoin.try_apply(&p, &env).unwrap();
        assert_equiv(&p, &rewritten);
        // right-side predicate
        let p = join.select(crate::formula::Formula::ne_const("name", "Carla"));
        let rewritten = SelectIntoJoin.try_apply(&p, &env).unwrap();
        assert_equiv(&p, &rewritten);
    }

    #[test]
    fn q1_admits_no_rule_that_changes_its_action_set() {
        let env = example_environment();
        let reg = example_registry();
        let ctx = crate::exec::ExecContext::new(&env, &reg, Instant::ZERO);
        let before = ctx.execute(&q1()).unwrap();
        for rule in all_rules() {
            let (rewritten, _) = apply_everywhere(&q1(), rule.as_ref(), &env);
            let after = ctx.execute(&rewritten).unwrap();
            assert_eq!(
                before.actions,
                after.actions,
                "rule {} changed Q1's action set",
                rule.name()
            );
            assert_eq!(before.relation, after.relation);
        }
    }

    #[test]
    fn q2_pushdown_pipeline_reduces_invocations() {
        let env = example_environment();
        let reg = example_registry();
        // rewrite Q2' step by step toward Q2 and verify invocation savings
        let mut plan = q2_prime();
        for rule in all_rules() {
            let (next, _) = apply_everywhere(&plan, rule.as_ref(), &env);
            plan = next;
        }
        let c1 = crate::eval::CountingInvoker::new(&reg);
        crate::exec::ExecContext::new(&env, &c1, Instant::ZERO)
            .execute(&q2_prime())
            .unwrap();
        let c2 = crate::eval::CountingInvoker::new(&reg);
        crate::exec::ExecContext::new(&env, &c2, Instant::ZERO)
            .execute(&plan)
            .unwrap();
        assert!(
            c2.count_of("checkPhoto") < c1.count_of("checkPhoto"),
            "rewritten plan {plan} should invoke checkPhoto less"
        );
        assert_equiv(&q2_prime(), &plan);
        // and matches the hand-optimized Q2's invocation count
        let c3 = crate::eval::CountingInvoker::new(&reg);
        crate::exec::ExecContext::new(&env, &c3, Instant::ZERO)
            .execute(&q2())
            .unwrap();
        assert_eq!(c2.count_of("checkPhoto"), c3.count_of("checkPhoto"));
    }
}
