//! Query rewriting (§3.3, Table 5).
//!
//! Equivalence-preserving transformations over [`Plan`]s:
//!
//! * [`rules`] — the individual rewrite rules: the Table 5 rules commuting
//!   realization operators (α, β) with π, σ and ⋈, plus the "well-known
//!   rewriting rules of the relational algebra" the paper declares still
//!   pertinent. Every rule checks its preconditions (e.g. `A ∉ F`) *and*
//!   re-derives the output schema as a safety net;
//! * [`optimizer`] — a heuristic fixpoint pipeline that pushes selections
//!   toward the leaves and below *passive* invocation operators,
//!   minimising service invocations. Active binding patterns are never
//!   moved: "active binding patterns limit the possibility of rewriting";
//! * [`cost`] — a simple cardinality/invocation cost model (the paper
//!   defers cost models to future work; this extension makes the optimizer
//!   benchmarks quantitative), plus the telemetry-fed [`MeasuredCosts`]
//!   provider that ranks plans by *measured* per-service invocation cost
//!   (optimizer v2).

pub mod cost;
pub mod optimizer;
pub mod rules;

pub use cost::{
    estimate, estimate_with, CostEstimate, CostInputs, CostParams, MeasuredCosts,
    ServiceObservation,
};
pub use optimizer::{optimize, OptimizerReport};
pub use rules::{all_rules, apply_everywhere, RewriteRule};

#[allow(unused_imports)]
use crate::plan::Plan;
