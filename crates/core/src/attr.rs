//! Attribute names (the countable set `A` of the paper, §2.3.1).
//!
//! Attribute names are cheap-to-clone interned strings: operators copy
//! schemas around aggressively (every node of a plan owns its output schema),
//! so `AttrName` is a reference-counted `Arc<str>` with value semantics.

use std::borrow::Borrow;
use std::fmt;
use std::sync::Arc;

/// An attribute name from the attribute domain `A`.
///
/// Equality, ordering and hashing are by string value, so two independently
/// constructed `AttrName::new("temperature")` compare equal.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AttrName(Arc<str>);

impl AttrName {
    /// Create an attribute name.
    pub fn new(name: impl AsRef<str>) -> Self {
        AttrName(Arc::from(name.as_ref()))
    }

    /// View as `&str`.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Debug for AttrName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.as_str())
    }
}

impl fmt::Display for AttrName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for AttrName {
    fn from(s: &str) -> Self {
        AttrName::new(s)
    }
}

impl From<String> for AttrName {
    fn from(s: String) -> Self {
        AttrName(Arc::from(s))
    }
}

impl From<&AttrName> for AttrName {
    fn from(a: &AttrName) -> Self {
        a.clone()
    }
}

impl Borrow<str> for AttrName {
    fn borrow(&self) -> &str {
        self.as_str()
    }
}

impl AsRef<str> for AttrName {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

impl PartialEq<str> for AttrName {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for AttrName {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

/// Convenience constructor, `attr("temperature")`.
pub fn attr(name: impl AsRef<str>) -> AttrName {
    AttrName::new(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn value_equality_and_hash() {
        let a = AttrName::new("temperature");
        let b = attr("temperature");
        assert_eq!(a, b);
        let mut s = HashSet::new();
        s.insert(a);
        assert!(s.contains("temperature"));
        assert!(s.contains(&b));
    }

    #[test]
    fn ordering_is_lexicographic() {
        let mut v = vec![attr("b"), attr("a"), attr("c")];
        v.sort();
        assert_eq!(v, vec![attr("a"), attr("b"), attr("c")]);
    }

    #[test]
    fn cheap_clone_shares_storage() {
        let a = attr("x");
        let b = a.clone();
        assert!(std::ptr::eq(a.as_str(), b.as_str()));
    }

    #[test]
    fn display_and_debug() {
        let a = attr("loc");
        assert_eq!(a.to_string(), "loc");
        assert_eq!(format!("{a:?}"), "\"loc\"");
    }

    #[test]
    fn comparisons_with_str() {
        let a = attr("sent");
        assert_eq!(a, "sent");
        assert_ne!(a, "text");
    }
}
