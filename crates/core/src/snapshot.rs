//! A versioned binary snapshot codec for checkpoint/recovery.
//!
//! The workspace builds without registry access, so the checkpoint format
//! cannot lean on serde; this module provides the hand-rolled equivalent: a
//! little-endian, length-prefixed binary encoding with a magic/version
//! header, enough to persist every stateful piece of a running PEMS —
//! multisets of [`Tuple`]s, β caches, window rings, breaker states, health
//! windows and the logical clock.
//!
//! Determinism matters more than compactness here: the crash-injection
//! differential suite compares a restored run byte-for-byte against an
//! uninterrupted one, so encoders iterate collections in a canonical
//! (sorted) order wherever the in-memory container is unordered.
//!
//! The format is versioned as a whole: [`write_header`] stamps
//! `MAGIC ++ VERSION` and [`read_header`] rejects anything it does not
//! understand with a typed [`SnapshotError`] — never a panic.

use std::fmt;

use crate::tuple::Tuple;
use crate::value::{Bytes, ServiceRef, Value};

/// File magic identifying a Serena snapshot (8 bytes).
pub const MAGIC: [u8; 8] = *b"SERENSNP";

/// Current snapshot format version. Bumped on any incompatible change;
/// [`read_header`] refuses other versions. v2: window nodes carry the
/// hot-swap bootstrap (`warm`) flag; v1 snapshots are not readable.
pub const VERSION: u32 = 2;

/// Errors raised while encoding or (mostly) decoding a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The input ended before the value being decoded was complete.
    Truncated,
    /// The input does not start with [`MAGIC`] — not a snapshot at all.
    BadMagic,
    /// The snapshot was written by an incompatible format version.
    UnsupportedVersion(u32),
    /// Structurally invalid data (unknown tag, non-UTF-8 string, …).
    Corrupt(String),
    /// The snapshot is well-formed but does not fit what it is being
    /// restored into (wrong query name, node-tree shape, schema, …).
    Mismatch(String),
    /// An I/O error while reading or writing the snapshot file.
    Io(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::BadMagic => write!(f, "not a Serena snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot version {v} (supported: {VERSION})")
            }
            SnapshotError::Corrupt(d) => write!(f, "corrupt snapshot: {d}"),
            SnapshotError::Mismatch(d) => write!(f, "snapshot does not match runtime: {d}"),
            SnapshotError::Io(d) => write!(f, "snapshot i/o error: {d}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e.to_string())
    }
}

/// Append-only encoder over a byte buffer.
///
/// ```
/// use serena_core::snapshot::{Reader, Writer};
/// let mut w = Writer::new();
/// w.u64(42).str("hello");
/// let bytes = w.into_bytes();
/// let mut r = Reader::new(&bytes);
/// assert_eq!(r.u64().unwrap(), 42);
/// assert_eq!(r.str().unwrap(), "hello");
/// ```
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// An empty writer with `capacity` bytes preallocated — avoids the
    /// doubling-and-copy growth pattern when the caller knows roughly how
    /// large the snapshot will be (e.g. from the previous checkpoint).
    pub fn with_capacity(capacity: usize) -> Self {
        Writer {
            buf: Vec::with_capacity(capacity),
        }
    }

    /// The encoded bytes so far.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True iff nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Write one raw byte.
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Write a bool as one byte (0/1).
    pub fn bool(&mut self, v: bool) -> &mut Self {
        self.u8(v as u8)
    }

    /// Write a `u32` little-endian.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Write a `u64` little-endian.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Write an `i64` little-endian.
    pub fn i64(&mut self, v: i64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Write an `f64` by IEEE-754 bit pattern (exact round-trip, NaN-safe).
    pub fn f64(&mut self, v: f64) -> &mut Self {
        self.u64(v.to_bits())
    }

    /// Write a `usize` as `u64`.
    pub fn usize(&mut self, v: usize) -> &mut Self {
        self.u64(v as u64)
    }

    /// Write a length-prefixed byte slice.
    pub fn bytes(&mut self, v: &[u8]) -> &mut Self {
        self.usize(v.len());
        self.buf.extend_from_slice(v);
        self
    }

    /// Write a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) -> &mut Self {
        self.bytes(v.as_bytes())
    }

    /// Write one [`Value`] (type tag + payload).
    pub fn value(&mut self, v: &Value) -> &mut Self {
        match v {
            Value::Bool(b) => self.u8(0).bool(*b),
            Value::Int(i) => self.u8(1).i64(*i),
            Value::Real(r) => self.u8(2).f64(*r),
            Value::Str(s) => self.u8(3).str(s),
            Value::Blob(b) => self.u8(4).bytes(b.as_slice()),
            Value::Service(s) => self.u8(5).str(s.as_str()),
        }
    }

    /// Write one [`Tuple`] (arity + values).
    pub fn tuple(&mut self, t: &Tuple) -> &mut Self {
        self.usize(t.arity());
        for v in t.values() {
            self.value(v);
        }
        self
    }
}

/// Cursor-style decoder over a byte slice; every accessor returns a typed
/// [`SnapshotError`] instead of panicking on malformed input.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes remaining past the cursor.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True iff the cursor consumed the whole input.
    pub fn is_at_end(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.remaining() < n {
            return Err(SnapshotError::Truncated);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Read one raw byte.
    pub fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    /// Read a bool (rejecting anything but 0/1).
    pub fn bool(&mut self) -> Result<bool, SnapshotError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(SnapshotError::Corrupt(format!("bad bool byte {b}"))),
        }
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapshotError> {
        let b = self.take(4)?;
        let mut a = [0u8; 4];
        a.copy_from_slice(b);
        Ok(u32::from_le_bytes(a))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapshotError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    /// Read a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, SnapshotError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(i64::from_le_bytes(a))
    }

    /// Read an `f64` from its bit pattern.
    pub fn f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read a `usize` (written as `u64`), bounds-checked against the
    /// remaining input so corrupt lengths fail fast instead of allocating.
    pub fn usize(&mut self) -> Result<usize, SnapshotError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| SnapshotError::Corrupt(format!("length {v} overflows")))
    }

    /// Read a length-prefixed byte slice.
    pub fn bytes(&mut self) -> Result<&'a [u8], SnapshotError> {
        let n = self.usize()?;
        if n > self.remaining() {
            return Err(SnapshotError::Truncated);
        }
        self.take(n)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, SnapshotError> {
        std::str::from_utf8(self.bytes()?)
            .map_err(|e| SnapshotError::Corrupt(format!("non-UTF-8 string: {e}")))
    }

    /// Read one [`Value`].
    pub fn value(&mut self) -> Result<Value, SnapshotError> {
        match self.u8()? {
            0 => Ok(Value::Bool(self.bool()?)),
            1 => Ok(Value::Int(self.i64()?)),
            2 => Ok(Value::Real(self.f64()?)),
            3 => Ok(Value::str(self.str()?)),
            4 => Ok(Value::Blob(Bytes::copy_from_slice(self.bytes()?))),
            5 => Ok(Value::Service(ServiceRef::new(self.str()?))),
            t => Err(SnapshotError::Corrupt(format!("unknown value tag {t}"))),
        }
    }

    /// Read one [`Tuple`].
    pub fn tuple(&mut self) -> Result<Tuple, SnapshotError> {
        let arity = self.usize()?;
        let mut values = Vec::with_capacity(arity.min(self.remaining()));
        for _ in 0..arity {
            values.push(self.value()?);
        }
        Ok(Tuple::new(values))
    }
}

/// Stamp the snapshot header (`MAGIC ++ VERSION`) onto `w`.
pub fn write_header(w: &mut Writer) {
    w.buf.extend_from_slice(&MAGIC);
    w.u32(VERSION);
}

/// Consume and validate the snapshot header, returning the format version
/// actually read (currently always [`VERSION`]).
pub fn read_header(r: &mut Reader<'_>) -> Result<u32, SnapshotError> {
    let magic = r.take(MAGIC.len())?;
    if magic != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = r.u32()?;
    if version != VERSION {
        return Err(SnapshotError::UnsupportedVersion(version));
    }
    Ok(version)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        let mut w = Writer::new();
        w.u8(7)
            .bool(true)
            .u32(12345)
            .u64(u64::MAX)
            .i64(-42)
            .f64(f64::NAN)
            .usize(9)
            .str("héllo")
            .bytes(&[1, 2, 3]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert!(r.bool().unwrap());
        assert_eq!(r.u32().unwrap(), 12345);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.i64().unwrap(), -42);
        assert!(r.f64().unwrap().is_nan());
        assert_eq!(r.usize().unwrap(), 9);
        assert_eq!(r.str().unwrap(), "héllo");
        assert_eq!(r.bytes().unwrap(), &[1, 2, 3]);
        assert!(r.is_at_end());
    }

    #[test]
    fn values_and_tuples_round_trip() {
        let tuple = Tuple::new(vec![
            Value::Bool(false),
            Value::Int(-7),
            Value::Real(28.5),
            Value::str("office"),
            Value::blob(vec![0u8, 255]),
            Value::service("sensor01"),
        ]);
        let mut w = Writer::new();
        w.tuple(&tuple);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.tuple().unwrap(), tuple);
        assert!(r.is_at_end());
    }

    #[test]
    fn header_round_trip_and_rejection() {
        let mut w = Writer::new();
        write_header(&mut w);
        w.u64(1);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(read_header(&mut r).unwrap(), VERSION);
        assert_eq!(r.u64().unwrap(), 1);

        // bad magic
        let mut r = Reader::new(b"NOTASNAPxxxx");
        assert_eq!(read_header(&mut r), Err(SnapshotError::BadMagic));

        // future version
        let mut w = Writer::new();
        w.buf.extend_from_slice(&MAGIC);
        w.u32(VERSION + 1);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(
            read_header(&mut r),
            Err(SnapshotError::UnsupportedVersion(VERSION + 1))
        );
    }

    #[test]
    fn malformed_input_is_typed_errors_not_panics() {
        // truncated
        assert_eq!(Reader::new(&[1, 2]).u64(), Err(SnapshotError::Truncated));
        // unknown value tag
        assert!(matches!(
            Reader::new(&[99]).value(),
            Err(SnapshotError::Corrupt(_))
        ));
        // corrupt length claims more than remains
        let mut w = Writer::new();
        w.usize(1_000_000);
        let bytes = w.into_bytes();
        assert_eq!(Reader::new(&bytes).bytes(), Err(SnapshotError::Truncated));
        // bad bool byte
        assert!(matches!(
            Reader::new(&[2]).bool(),
            Err(SnapshotError::Corrupt(_))
        ));
        // non-UTF-8 string
        let mut w = Writer::new();
        w.bytes(&[0xff, 0xfe]);
        let bytes = w.into_bytes();
        assert!(matches!(
            Reader::new(&bytes).str(),
            Err(SnapshotError::Corrupt(_))
        ));
    }

    #[test]
    fn display_covers_variants() {
        for e in [
            SnapshotError::Truncated,
            SnapshotError::BadMagic,
            SnapshotError::UnsupportedVersion(9),
            SnapshotError::Corrupt("x".into()),
            SnapshotError::Mismatch("y".into()),
            SnapshotError::Io("z".into()),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
