//! Relational pervasive environments (§2.3.2, Definition 5/6 region).
//!
//! A relational pervasive environment is a set of named X-Relations,
//! "similarly to the notion of database representing a set of relations",
//! together with the declared prototypes. The paper keeps the Universal
//! Relation Schema Assumption (URSA): if an attribute appears in several
//! relation schemas it denotes the same data — we enforce the checkable
//! fragment (same name ⇒ same declared type).

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::error::SchemaError;
use crate::prototype::Prototype;
use crate::schema::SchemaRef;
use crate::value::DataType;
use crate::xrelation::XRelation;

/// A relational pervasive environment: named X-Relations + declared
/// prototypes.
#[derive(Default, Clone)]
pub struct Environment {
    relations: BTreeMap<String, XRelation>,
    prototypes: BTreeMap<String, Arc<Prototype>>,
    /// URSA ledger: attribute name → type first seen with.
    attr_types: BTreeMap<String, DataType>,
}

impl Environment {
    /// Empty environment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare a prototype. Binding patterns inside relation schemas may
    /// reference prototypes without prior declaration (they carry their own
    /// `Arc<Prototype>`), but a declared catalog is what the DDL layer and
    /// discovery queries enumerate.
    pub fn declare_prototype(&mut self, p: Arc<Prototype>) -> Result<(), SchemaError> {
        if self.prototypes.contains_key(p.name()) {
            return Err(SchemaError::DuplicatePrototype(p.name().to_string()));
        }
        // URSA also covers prototype parameters.
        for (name, ty) in p.input().attrs().chain(p.output().attrs()) {
            self.check_ursa(name.as_str(), *ty)?;
        }
        for (name, ty) in p.input().attrs().chain(p.output().attrs()) {
            self.attr_types.insert(name.to_string(), *ty);
        }
        self.prototypes.insert(p.name().to_string(), p);
        Ok(())
    }

    /// Look up a declared prototype.
    pub fn prototype(&self, name: &str) -> Option<&Arc<Prototype>> {
        self.prototypes.get(name)
    }

    /// All declared prototypes (sorted by name).
    pub fn prototypes(&self) -> impl Iterator<Item = &Arc<Prototype>> {
        self.prototypes.values()
    }

    fn check_ursa(&self, attr: &str, ty: DataType) -> Result<(), SchemaError> {
        if let Some(prev) = self.attr_types.get(attr) {
            if *prev != ty {
                return Err(SchemaError::UrsaViolation {
                    attr: crate::attr::AttrName::new(attr),
                    first: *prev,
                    second: ty,
                });
            }
        }
        Ok(())
    }

    /// Define a named X-Relation. Enforces name uniqueness and URSA.
    pub fn define_relation(
        &mut self,
        name: impl Into<String>,
        relation: XRelation,
    ) -> Result<(), SchemaError> {
        let name = name.into();
        if self.relations.contains_key(&name) {
            return Err(SchemaError::DuplicateRelation(name));
        }
        for a in relation.schema().attrs() {
            self.check_ursa(a.name.as_str(), a.ty)?;
        }
        for a in relation.schema().attrs() {
            self.attr_types.insert(a.name.to_string(), a.ty);
        }
        self.relations.insert(name, relation);
        Ok(())
    }

    /// Define an empty relation over `schema`.
    pub fn define_empty(
        &mut self,
        name: impl Into<String>,
        schema: SchemaRef,
    ) -> Result<(), SchemaError> {
        self.define_relation(name, XRelation::empty(schema))
    }

    /// Replace the *contents* of an existing relation (schema must stay
    /// compatible). Used by discovery queries and the table manager.
    pub fn replace_relation(&mut self, name: &str, relation: XRelation) -> Result<(), SchemaError> {
        match self.relations.get_mut(name) {
            None => Err(SchemaError::DuplicateRelation(format!(
                "{name} (not defined)"
            ))),
            Some(slot) => {
                *slot = relation;
                Ok(())
            }
        }
    }

    /// Remove a relation. Returns it if present.
    pub fn drop_relation(&mut self, name: &str) -> Option<XRelation> {
        self.relations.remove(name)
    }

    /// Look up a relation.
    pub fn relation(&self, name: &str) -> Option<&XRelation> {
        self.relations.get(name)
    }

    /// Mutable access to a relation (insert/delete tuples).
    pub fn relation_mut(&mut self, name: &str) -> Option<&mut XRelation> {
        self.relations.get_mut(name)
    }

    /// Iterate `(name, relation)` sorted by name.
    pub fn relations(&self) -> impl Iterator<Item = (&str, &XRelation)> {
        self.relations.iter().map(|(n, r)| (n.as_str(), r))
    }

    /// Number of relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// True iff no relations are defined.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }
}

impl std::fmt::Debug for Environment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Environment({} relations: {:?}; {} prototypes: {:?})",
            self.relations.len(),
            self.relations.keys().collect::<Vec<_>>(),
            self.prototypes.len(),
            self.prototypes.keys().collect::<Vec<_>>()
        )
    }
}

/// The full running-example environment (Tables 1–2 + §1.2 sensor table).
pub mod examples {
    use super::*;
    use crate::prototype::examples as protos;
    use crate::xrelation::examples as rels;

    /// Environment with the 4 prototypes of Table 1 and the three example
    /// X-Relations (`contacts`, `cameras`, `sensors`).
    pub fn example_environment() -> Environment {
        let fixture = "example environment is statically valid";
        let mut env = Environment::new();
        env.declare_prototype(protos::send_message())
            .expect(fixture);
        env.declare_prototype(protos::check_photo()).expect(fixture);
        env.declare_prototype(protos::take_photo()).expect(fixture);
        env.declare_prototype(protos::get_temperature())
            .expect(fixture);
        env.define_relation("contacts", rels::contacts())
            .expect(fixture);
        env.define_relation("cameras", rels::cameras())
            .expect(fixture);
        env.define_relation("sensors", rels::sensors())
            .expect(fixture);
        env
    }
}

#[cfg(test)]
mod tests {
    use super::examples::example_environment;
    use super::*;
    use crate::prototype::examples as protos;
    use crate::schema::XSchema;
    use crate::tuple;

    #[test]
    fn example_environment_is_complete() {
        let env = example_environment();
        assert_eq!(env.len(), 3);
        assert_eq!(env.prototypes().count(), 4);
        assert!(env.relation("contacts").is_some());
        assert!(env.prototype("sendMessage").is_some());
        assert!(env.prototype("nope").is_none());
    }

    #[test]
    fn duplicate_relation_rejected() {
        let mut env = example_environment();
        let err = env
            .define_relation("contacts", crate::xrelation::examples::contacts())
            .unwrap_err();
        assert!(matches!(err, SchemaError::DuplicateRelation(_)));
    }

    #[test]
    fn duplicate_prototype_rejected() {
        let mut env = example_environment();
        let err = env.declare_prototype(protos::send_message()).unwrap_err();
        assert!(matches!(err, SchemaError::DuplicatePrototype(_)));
    }

    #[test]
    fn ursa_violation_detected() {
        let mut env = example_environment();
        // `temperature` is REAL everywhere; try to define it as INTEGER.
        let bad = XSchema::builder()
            .real("temperature", crate::value::DataType::Int)
            .build()
            .unwrap();
        let err = env
            .define_relation("bad", XRelation::empty(bad))
            .unwrap_err();
        assert!(matches!(err, SchemaError::UrsaViolation { .. }));
    }

    #[test]
    fn ursa_allows_consistent_reuse() {
        let mut env = example_environment();
        // `area` STRING appears in cameras; reusing it as STRING is fine.
        let ok = XSchema::builder()
            .real("area", crate::value::DataType::Str)
            .real("manager", crate::value::DataType::Str)
            .build()
            .unwrap();
        env.define_relation("surveillance", XRelation::empty(ok))
            .unwrap();
    }

    #[test]
    fn mutation_and_replacement() {
        let mut env = example_environment();
        env.relation_mut("contacts")
            .unwrap()
            .insert(tuple!["Ada", "ada@lovelace.org", "email"]);
        assert_eq!(env.relation("contacts").unwrap().len(), 4);

        let empty = XRelation::empty(env.relation("contacts").unwrap().schema_ref());
        env.replace_relation("contacts", empty).unwrap();
        assert_eq!(env.relation("contacts").unwrap().len(), 0);
        assert!(env
            .replace_relation(
                "ghost",
                XRelation::empty(crate::schema::examples::contacts_schema(),)
            )
            .is_err());

        assert!(env.drop_relation("contacts").is_some());
        assert!(env.relation("contacts").is_none());
    }
}
