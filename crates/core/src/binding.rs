//! Binding patterns (§2.2, Definition 2).
//!
//! A binding pattern `bp = (prototype_bp, service_bp)` ties a prototype to a
//! real *service-reference attribute* of an extended relation schema: it is
//! "the relationship between service references, virtual attributes and
//! prototypes" — the declarative recipe for obtaining values of virtual
//! attributes at query-execution time.
//!
//! Validity against the owning schema (`service_bp ∈ realSchema(R)`,
//! `schema(Input) ⊆ schema(R)`, `schema(Output) ⊆ virtualSchema(R)`) is
//! enforced by [`crate::schema::XSchemaBuilder`]; re-validation after an
//! operator (Table 3's BP survival rules) lives on
//! [`crate::schema::XSchema`].

use std::fmt;
use std::sync::Arc;

use crate::attr::AttrName;
use crate::prototype::Prototype;

/// A binding pattern associated with an extended relation schema.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BindingPattern {
    prototype: Arc<Prototype>,
    service_attr: AttrName,
}

impl BindingPattern {
    /// Build a binding pattern. Schema-level validity is checked when the
    /// pattern is attached to a schema.
    pub fn new(prototype: Arc<Prototype>, service_attr: impl Into<AttrName>) -> Self {
        BindingPattern {
            prototype,
            service_attr: service_attr.into(),
        }
    }

    /// `prototype_bp`.
    pub fn prototype(&self) -> &Arc<Prototype> {
        &self.prototype
    }

    /// `service_bp` — the real attribute holding the service reference.
    pub fn service_attr(&self) -> &AttrName {
        &self.service_attr
    }

    /// `active(bp) = active(prototype_bp)` (Definition 2).
    pub fn is_active(&self) -> bool {
        self.prototype.is_active()
    }

    /// A copy of this pattern with its service attribute renamed, used by
    /// the renaming operator (Table 3(c)).
    pub fn with_service_attr(&self, service_attr: AttrName) -> Self {
        BindingPattern {
            prototype: self.prototype.clone(),
            service_attr,
        }
    }

    /// Identity key used for display and lookup: `prototype[service_attr]`,
    /// matching the paper's notation, e.g. `sendMessage[messenger]`.
    pub fn key(&self) -> String {
        format!("{}[{}]", self.prototype.name(), self.service_attr)
    }

    /// Render as the pseudo-DDL of Table 2, e.g.
    /// `sendMessage[messenger] ( address, text ) : ( sent )`.
    pub fn to_ddl(&self) -> String {
        let names = |s: &crate::prototype::RelationSchema| {
            s.names()
                .map(|a| a.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        };
        format!(
            "{}[{}] ( {} ) : ( {} )",
            self.prototype.name(),
            self.service_attr,
            names(self.prototype.input()),
            names(self.prototype.output()),
        )
    }
}

impl fmt::Debug for BindingPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.key())
    }
}

impl fmt::Display for BindingPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.key())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prototype::examples;

    #[test]
    fn key_matches_paper_notation() {
        let bp = BindingPattern::new(examples::send_message(), "messenger");
        assert_eq!(bp.key(), "sendMessage[messenger]");
        assert!(bp.is_active());
    }

    #[test]
    fn ddl_matches_table_2() {
        let bp = BindingPattern::new(examples::send_message(), "messenger");
        assert_eq!(
            bp.to_ddl(),
            "sendMessage[messenger] ( address, text ) : ( sent )"
        );
        let bp = BindingPattern::new(examples::check_photo(), "camera");
        assert_eq!(
            bp.to_ddl(),
            "checkPhoto[camera] ( area ) : ( quality, delay )"
        );
    }

    #[test]
    fn rename_service_attr() {
        let bp = BindingPattern::new(examples::take_photo(), "camera");
        let bp2 = bp.with_service_attr(AttrName::new("device"));
        assert_eq!(bp2.key(), "takePhoto[device]");
        assert_eq!(bp2.prototype().name(), "takePhoto");
        // original untouched
        assert_eq!(bp.key(), "takePhoto[camera]");
    }

    #[test]
    fn equality_is_structural() {
        let a = BindingPattern::new(examples::check_photo(), "camera");
        let b = BindingPattern::new(examples::check_photo(), "camera");
        let c = BindingPattern::new(examples::check_photo(), "webcam");
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
