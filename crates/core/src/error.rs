//! Error types for the Serena core.
//!
//! All errors are typed enums; the crate has no panicking public API apart
//! from index-out-of-bounds style programming errors that are documented on
//! the respective functions.

use std::fmt;

use crate::attr::AttrName;
use crate::value::DataType;

/// Errors arising while constructing schemas, prototypes, binding patterns or
/// environments (the *static* side of the model, §2.3 of the paper).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaError {
    /// An attribute name appears twice in a schema; `attr_R` must be
    /// injective (Definition 2).
    DuplicateAttribute(AttrName),
    /// A prototype's output schema is empty, violating
    /// `schema(Output_psi) != {}` (§2.3.1).
    EmptyPrototypeOutput {
        /// The prototype involved.
        prototype: String,
    },
    /// A prototype's input and output schemas overlap, violating
    /// `schema(Input) ∩ schema(Output) = ∅` (§2.3.1).
    PrototypeInputOutputOverlap {
        /// The prototype involved.
        prototype: String,
        /// The offending attribute.
        attr: AttrName,
    },
    /// A binding pattern's service-reference attribute is not a *real*
    /// attribute of the relation schema (Definition 2).
    ServiceAttrNotReal {
        /// The prototype involved.
        prototype: String,
        /// The offending attribute.
        attr: AttrName,
    },
    /// A binding pattern's prototype input attribute is missing from the
    /// relation schema (`schema(Input) ⊆ schema(R)`).
    InputAttrMissing {
        /// The prototype involved.
        prototype: String,
        /// The offending attribute.
        attr: AttrName,
    },
    /// A binding pattern's prototype output attribute is not a *virtual*
    /// attribute of the relation schema (`schema(Output) ⊆ virtualSchema(R)`).
    OutputAttrNotVirtual {
        /// The prototype involved.
        prototype: String,
        /// The offending attribute.
        attr: AttrName,
    },
    /// Attribute type disagreement between a prototype parameter and the
    /// relation attribute with the same name.
    TypeMismatch {
        /// The offending attribute.
        attr: AttrName,
        /// The type required here.
        expected: DataType,
        /// The type actually present.
        found: DataType,
    },
    /// Under the Universal Relation Schema Assumption, the same attribute
    /// name must denote the same type in every relation of the environment.
    UrsaViolation {
        /// The offending attribute.
        attr: AttrName,
        /// Type seen first for this attribute.
        first: DataType,
        /// Conflicting type seen later.
        second: DataType,
    },
    /// Attribute not present in the schema at all.
    UnknownAttribute(AttrName),
    /// A relation with this name is already defined in the environment.
    DuplicateRelation(String),
    /// A prototype with this name is already declared.
    DuplicatePrototype(String),
    /// Referenced prototype is not declared in the environment.
    UnknownPrototype(String),
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::DuplicateAttribute(a) => {
                write!(f, "duplicate attribute `{a}` in schema (attr_R must be injective)")
            }
            SchemaError::EmptyPrototypeOutput { prototype } => {
                write!(f, "prototype `{prototype}` has an empty output schema")
            }
            SchemaError::PrototypeInputOutputOverlap { prototype, attr } => write!(
                f,
                "prototype `{prototype}`: attribute `{attr}` appears in both input and output schemas"
            ),
            SchemaError::ServiceAttrNotReal { prototype, attr } => write!(
                f,
                "binding pattern for `{prototype}`: service attribute `{attr}` is not a real attribute"
            ),
            SchemaError::InputAttrMissing { prototype, attr } => write!(
                f,
                "binding pattern for `{prototype}`: input attribute `{attr}` is not in the relation schema"
            ),
            SchemaError::OutputAttrNotVirtual { prototype, attr } => write!(
                f,
                "binding pattern for `{prototype}`: output attribute `{attr}` is not a virtual attribute"
            ),
            SchemaError::TypeMismatch { attr, expected, found } => write!(
                f,
                "attribute `{attr}`: expected type {expected}, found {found}"
            ),
            SchemaError::UrsaViolation { attr, first, second } => write!(
                f,
                "URSA violation: attribute `{attr}` has type {first} in one relation and {second} in another"
            ),
            SchemaError::UnknownAttribute(a) => write!(f, "unknown attribute `{a}`"),
            SchemaError::DuplicateRelation(n) => write!(f, "relation `{n}` already defined"),
            SchemaError::DuplicatePrototype(n) => write!(f, "prototype `{n}` already declared"),
            SchemaError::UnknownPrototype(n) => write!(f, "unknown prototype `{n}`"),
        }
    }
}

impl std::error::Error for SchemaError {}

/// Errors arising while *building or validating* an algebra expression
/// (the static checks of Table 3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// Underlying schema construction failed.
    Schema(SchemaError),
    /// Set operators require both operands to share the same extended schema
    /// (§3.1.1).
    SetOperandSchemaMismatch {
        /// Left operand schema (debug rendering).
        left: String,
        /// Right operand schema (debug rendering).
        right: String,
    },
    /// Selection formulas may reference only real attributes (Table 3(b)).
    SelectionOnVirtual(AttrName),
    /// Projection target attribute not in the operand schema.
    ProjectionUnknownAttribute(AttrName),
    /// Renaming target already exists in the schema (`B ∉ schema(R)`).
    RenameTargetExists(AttrName),
    /// Renaming source missing from the schema.
    RenameSourceMissing(AttrName),
    /// Assignment applies only to virtual attributes (Table 3(e)).
    AssignTargetNotVirtual(AttrName),
    /// Assignment source must be a real attribute.
    AssignSourceNotReal(AttrName),
    /// Assignment of a constant whose type disagrees with the attribute.
    AssignTypeMismatch {
        /// The offending attribute.
        attr: AttrName,
        /// The type required here.
        expected: DataType,
        /// The type actually present.
        found: DataType,
    },
    /// Invocation requires the binding pattern to belong to the operand's
    /// schema (Table 3(f)).
    UnknownBindingPattern {
        /// The prototype involved.
        prototype: String,
    },
    /// Invocation requires all prototype input attributes to be real
    /// (`schema(Input) ⊆ realSchema(R)`, Table 3(f)).
    InvokeInputNotReal {
        /// The prototype involved.
        prototype: String,
        /// The offending attribute.
        attr: AttrName,
    },
    /// Relation name not found in the environment.
    UnknownRelation(String),
    /// A formula compares attributes/constants of incompatible types.
    FormulaTypeMismatch {
        /// Where the mismatch occurred.
        context: String,
        /// Left-hand type.
        left: DataType,
        /// Right-hand type.
        right: DataType,
    },
    /// Window/streaming operators applied where the finite/infinite status
    /// does not match (continuous extension, §4.2).
    StreamStatusMismatch {
        /// The operator that failed.
        operator: &'static str,
        /// Human-readable detail.
        detail: String,
    },
    /// Aggregation (extension operator) misuse.
    Aggregate(String),
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::Schema(e) => write!(f, "schema error: {e}"),
            PlanError::SetOperandSchemaMismatch { left, right } => write!(
                f,
                "set operator operands have different extended schemas: {left} vs {right}"
            ),
            PlanError::SelectionOnVirtual(a) => write!(
                f,
                "selection formula references virtual attribute `{a}` (only real attributes have values)"
            ),
            PlanError::ProjectionUnknownAttribute(a) => {
                write!(f, "projection references unknown attribute `{a}`")
            }
            PlanError::RenameTargetExists(a) => {
                write!(f, "rename target `{a}` already present in schema")
            }
            PlanError::RenameSourceMissing(a) => {
                write!(f, "rename source `{a}` not present in schema")
            }
            PlanError::AssignTargetNotVirtual(a) => {
                write!(f, "assignment target `{a}` is not a virtual attribute")
            }
            PlanError::AssignSourceNotReal(a) => {
                write!(f, "assignment source `{a}` is not a real attribute")
            }
            PlanError::AssignTypeMismatch { attr, expected, found } => write!(
                f,
                "assignment to `{attr}`: expected {expected}, found {found}"
            ),
            PlanError::UnknownBindingPattern { prototype } => write!(
                f,
                "no binding pattern for prototype `{prototype}` on this relation"
            ),
            PlanError::InvokeInputNotReal { prototype, attr } => write!(
                f,
                "invocation of `{prototype}`: input attribute `{attr}` is still virtual (realize it first)"
            ),
            PlanError::UnknownRelation(n) => write!(f, "unknown relation `{n}`"),
            PlanError::FormulaTypeMismatch { context, left, right } => {
                write!(f, "type mismatch in {context}: {left} vs {right}")
            }
            PlanError::StreamStatusMismatch { operator, detail } => {
                write!(f, "{operator}: {detail}")
            }
            PlanError::Aggregate(d) => write!(f, "aggregate: {d}"),
        }
    }
}

impl std::error::Error for PlanError {}

impl From<SchemaError> for PlanError {
    fn from(e: SchemaError) -> Self {
        PlanError::Schema(e)
    }
}

/// Errors arising at *query evaluation* time (the dynamic side: Definition 1
/// invocation functions, missing services, runtime type failures).
#[derive(Debug, Clone, PartialEq)]
pub enum EvalError {
    /// Static validation failed before execution.
    Plan(PlanError),
    /// The service reference does not name a registered service.
    UnknownService {
        /// The unresolved service reference.
        reference: String,
    },
    /// The referenced service does not implement the requested prototype.
    PrototypeNotImplemented {
        /// The service reference involved.
        service: String,
        /// The prototype involved.
        prototype: String,
    },
    /// The service implementation failed (simulated network error, device
    /// fault, …). Carries a human-readable reason.
    InvocationFailed {
        /// The service reference involved.
        service: String,
        /// The prototype involved.
        prototype: String,
        /// The failure reason reported by the service.
        reason: String,
    },
    /// A service returned tuples that do not match the prototype output
    /// schema.
    MalformedInvocationResult {
        /// The service reference involved.
        service: String,
        /// The prototype involved.
        prototype: String,
        /// Human-readable detail.
        detail: String,
    },
    /// The resilience layer rejected the call without invoking anything:
    /// the service's circuit breaker is open after repeated failures.
    CircuitOpen {
        /// The service reference involved.
        service: String,
    },
    /// The invocation exceeded the per-call deadline configured in the
    /// resilience layer (the call's result, if any, was discarded).
    DeadlineExceeded {
        /// The service reference involved.
        service: String,
        /// The prototype involved.
        prototype: String,
    },
    /// The service implementation panicked during the invocation. The
    /// panic was contained (`catch_unwind`) instead of aborting the
    /// process; the payload, when it was a string, is carried as `reason`.
    Panicked {
        /// The service reference involved.
        service: String,
        /// The prototype involved.
        prototype: String,
        /// The panic payload, if it was a string (`"<non-string panic>"`
        /// otherwise).
        reason: String,
    },
    /// The service lives on a remote node that could not be reached: the
    /// transport failed before (or while) relaying the invocation, so the
    /// service itself never reported an outcome. Distinct from
    /// [`EvalError::InvocationFailed`] — the *node*, not the service, is at
    /// fault — and transient for the resilience layer (retry/breaker) just
    /// like a local invocation failure.
    RemoteUnavailable {
        /// The service reference involved.
        service: String,
        /// The prototype involved.
        prototype: String,
        /// The remote node (peer id or address) that was unreachable.
        node: String,
        /// Transport-level failure detail.
        reason: String,
    },
    /// A tuple's arity or value types disagree with the relation schema.
    TupleSchemaMismatch {
        /// The relation involved.
        relation: String,
        /// Human-readable detail.
        detail: String,
    },
    /// Arithmetic/comparison failure at runtime (e.g. comparing BLOBs).
    Value(String),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Plan(e) => write!(f, "plan error: {e}"),
            EvalError::UnknownService { reference } => {
                write!(f, "no registered service with reference `{reference}`")
            }
            EvalError::PrototypeNotImplemented { service, prototype } => write!(
                f,
                "service `{service}` does not implement prototype `{prototype}`"
            ),
            EvalError::InvocationFailed {
                service,
                prototype,
                reason,
            } => write!(
                f,
                "invocation of `{prototype}` on `{service}` failed: {reason}"
            ),
            EvalError::MalformedInvocationResult {
                service,
                prototype,
                detail,
            } => write!(
                f,
                "service `{service}` returned malformed result for `{prototype}`: {detail}"
            ),
            EvalError::CircuitOpen { service } => {
                write!(f, "circuit breaker open for service `{service}`")
            }
            EvalError::DeadlineExceeded { service, prototype } => write!(
                f,
                "invocation of `{prototype}` on `{service}` exceeded its deadline"
            ),
            EvalError::Panicked {
                service,
                prototype,
                reason,
            } => write!(
                f,
                "invocation of `{prototype}` on `{service}` panicked: {reason}"
            ),
            EvalError::RemoteUnavailable {
                service,
                prototype,
                node,
                reason,
            } => write!(
                f,
                "invocation of `{prototype}` on `{service}` failed: remote node `{node}` unreachable: {reason}"
            ),
            EvalError::TupleSchemaMismatch { relation, detail } => {
                write!(f, "tuple does not match schema of `{relation}`: {detail}")
            }
            EvalError::Value(d) => write!(f, "value error: {d}"),
        }
    }
}

impl std::error::Error for EvalError {}

impl From<PlanError> for EvalError {
    fn from(e: PlanError) -> Self {
        EvalError::Plan(e)
    }
}

impl From<SchemaError> for EvalError {
    fn from(e: SchemaError) -> Self {
        EvalError::Plan(PlanError::Schema(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::AttrName;

    #[test]
    fn display_schema_error() {
        let e = SchemaError::DuplicateAttribute(AttrName::new("temp"));
        assert!(e.to_string().contains("temp"));
        let e = SchemaError::UrsaViolation {
            attr: AttrName::new("x"),
            first: DataType::Int,
            second: DataType::Str,
        };
        assert!(e.to_string().contains("URSA"));
    }

    #[test]
    fn error_conversions_chain() {
        let s = SchemaError::DuplicateRelation("r".into());
        let p: PlanError = s.clone().into();
        let ev: EvalError = p.clone().into();
        assert_eq!(ev, EvalError::Plan(PlanError::Schema(s)));
    }

    #[test]
    fn display_plan_and_eval_errors() {
        let p = PlanError::SelectionOnVirtual(AttrName::new("photo"));
        assert!(p.to_string().contains("photo"));
        let e = EvalError::UnknownService {
            reference: "cam9".into(),
        };
        assert!(e.to_string().contains("cam9"));
    }
}
