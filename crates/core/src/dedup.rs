//! Cross-query β invocation dedup (multi-query common-subexpression
//! sharing for the service layer).
//!
//! The dominant pervasive-environment traffic shape is *many queries
//! watching the same sensors* (§5.1): at every instant, several registered
//! continuous queries issue the **same** `invoke_ψ(s, t)` call. Services
//! are deterministic at a given instant (§3.2, [`Service`] contract), and
//! the continuous executor invokes only for δ-batch tuples (§4.2's
//! delta-only discipline) — so two invocations with identical
//! `(prototype, service, input, instant)` are guaranteed to return the
//! same relation, and performing the upstream call once is semantically
//! invisible.
//!
//! [`DedupInvoker`] exploits this: placed **outermost** in the PEMS
//! [`InvokerStack`](crate::service::InvokerStack) (above resilience, so
//! retries of a genuinely failing call still re-invoke), it keeps a
//! per-instant table keyed on `(prototype, service, input)`. The first
//! caller of a key performs the real call; concurrent callers of the same
//! key block on an in-flight latch and receive a clone of the result;
//! later callers within the same instant are served from the completed
//! entry. Advancing to a new instant clears the table — the memo never
//! outlives the instant whose determinism justifies it.
//!
//! Every coalesced call is counted per logical caller in
//! `serena_beta_dedup_total{service=…}` (when a registry is attached) and
//! in [`DedupState::hits`]; physical upstream calls remain individually
//! observed by the instrumented layer below.
//!
//! [`Service`]: crate::service::Service

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar};

use crate::sync::Mutex;

use crate::error::EvalError;
use crate::prototype::Prototype;
use crate::service::{Invoker, InvokerLayer};
use crate::telemetry::{FlightRecorder, MetricsRegistry};
use crate::time::Instant;
use crate::tuple::Tuple;
use crate::value::ServiceRef;

/// The identity of one β invocation within an instant.
#[derive(Clone, PartialEq, Eq, Hash)]
struct DedupKey {
    prototype: String,
    service: ServiceRef,
    input: Tuple,
}

type CallResult = Result<Vec<Tuple>, EvalError>;

/// A latch one in-flight upstream call publishes its result through;
/// concurrent callers of the same key wait here instead of re-invoking.
struct Latch {
    slot: Mutex<Option<CallResult>>,
    ready: Condvar,
}

impl Latch {
    fn new() -> Arc<Self> {
        Arc::new(Latch {
            slot: Mutex::new(None),
            ready: Condvar::new(),
        })
    }

    fn publish(&self, result: CallResult) {
        *self.slot.lock() = Some(result);
        self.ready.notify_all();
    }

    fn wait(&self) -> CallResult {
        let mut guard = self.slot.lock();
        loop {
            if let Some(result) = guard.as_ref() {
                return result.clone();
            }
            guard = self.ready.wait(guard).unwrap_or_else(|e| e.into_inner());
        }
    }
}

enum Entry {
    /// The first caller is performing the upstream call; wait on the latch.
    InFlight(Arc<Latch>),
    /// The upstream call completed with this result.
    Done(CallResult),
}

struct Table {
    /// Instant the entries belong to; a call at any other instant clears
    /// the table first (per-instant scoping, no external hook needed).
    at: Option<Instant>,
    entries: HashMap<DedupKey, Entry>,
}

/// Shared dedup memo + counters, surviving rebuilt invoker stacks (one per
/// PEMS runtime, like `ResilienceState`). Cheap to share: one mutex around
/// the per-instant table, atomics for the counters.
#[derive(Default)]
pub struct DedupState {
    table: Mutex<Option<Table>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl DedupState {
    /// Empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Coalesced calls served without an upstream invocation (cumulative).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Upstream calls actually performed through the dedup layer
    /// (cumulative).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

/// What the table lookup decided a caller must do.
enum Claim {
    /// Serve this already-completed result.
    Serve(CallResult),
    /// Wait on this latch for the in-flight caller's result.
    Wait(Arc<Latch>),
    /// Perform the upstream call and publish through this latch.
    Call(Arc<Latch>),
}

impl DedupState {
    fn claim(&self, key: &DedupKey, at: Instant) -> Claim {
        let mut guard = self.table.lock();
        let table = guard.get_or_insert_with(|| Table {
            at: None,
            entries: HashMap::new(),
        });
        if table.at != Some(at) {
            table.entries.clear();
            table.at = Some(at);
        }
        match table.entries.get(key) {
            Some(Entry::Done(result)) => Claim::Serve(result.clone()),
            Some(Entry::InFlight(latch)) => Claim::Wait(Arc::clone(latch)),
            None => {
                let latch = Latch::new();
                table
                    .entries
                    .insert(key.clone(), Entry::InFlight(Arc::clone(&latch)));
                Claim::Call(latch)
            }
        }
    }

    fn complete(&self, key: &DedupKey, at: Instant, result: CallResult) {
        let mut guard = self.table.lock();
        if let Some(table) = guard.as_mut() {
            // Only memoize if the table still belongs to this instant — a
            // concurrent call at a newer instant may have cleared it.
            if table.at == Some(at) {
                table.entries.insert(key.clone(), Entry::Done(result));
            }
        }
    }
}

/// The dedup decorator: coalesces identical invocations issued within one
/// instant into a single upstream call. See the module docs for placement
/// and the soundness argument.
pub struct DedupInvoker<I> {
    inner: I,
    state: Arc<DedupState>,
    registry: Option<Arc<MetricsRegistry>>,
    tracer: Option<Arc<FlightRecorder>>,
}

impl<I: Invoker> DedupInvoker<I> {
    /// Wrap `inner`, memoizing through `state`.
    pub fn new(inner: I, state: Arc<DedupState>) -> Self {
        DedupInvoker {
            inner,
            state,
            registry: None,
            tracer: None,
        }
    }

    /// Count coalesced calls in `registry` as
    /// `serena_beta_dedup_total{service=…}` — one increment per logical
    /// caller whose call was served without an upstream invocation.
    pub fn registry(mut self, registry: Arc<MetricsRegistry>) -> Self {
        self.registry = Some(registry);
        self
    }

    /// Record one `beta` span per logical call into `tracer`, annotated
    /// with how the memo resolved it (`dedup` = `hit`/`wait`/`call`).
    pub fn tracer(mut self, tracer: Arc<FlightRecorder>) -> Self {
        self.tracer = Some(tracer);
        self
    }

    fn count_dedup(&self, service: &ServiceRef) {
        self.state.hits.fetch_add(1, Ordering::Relaxed);
        if let Some(registry) = &self.registry {
            registry
                .counter("serena_beta_dedup_total", &[("service", service.as_str())])
                .inc();
        }
    }
}

impl<I: Invoker> Invoker for DedupInvoker<I> {
    fn invoke(
        &self,
        prototype: &Prototype,
        service_ref: &ServiceRef,
        input: &Tuple,
        at: Instant,
    ) -> Result<Vec<Tuple>, EvalError> {
        let key = DedupKey {
            prototype: prototype.name().to_string(),
            service: service_ref.clone(),
            input: input.clone(),
        };
        let mut span = self.tracer.as_deref().and_then(|t| t.start("beta", at));
        if let Some(s) = span.as_mut() {
            s.attr_str("service", service_ref.as_str());
            s.attr_str("prototype", prototype.name());
        }
        let (result, how) = match self.state.claim(&key, at) {
            Claim::Serve(result) => {
                self.count_dedup(service_ref);
                (result, "hit")
            }
            Claim::Wait(latch) => {
                let result = latch.wait();
                self.count_dedup(service_ref);
                (result, "wait")
            }
            Claim::Call(latch) => {
                let result = {
                    // layers below (resilience, per-attempt
                    // instrumentation) nest under this logical β span
                    let _in_span = span.as_ref().map(|s| s.enter());
                    self.inner.invoke(prototype, service_ref, input, at)
                };
                self.state.misses.fetch_add(1, Ordering::Relaxed);
                self.state.complete(&key, at, result.clone());
                latch.publish(result.clone());
                (result, "call")
            }
        };
        if let Some(s) = span.as_mut() {
            s.attr_str("dedup", how);
            s.attr_u64("ok", result.is_ok() as u64);
        }
        result
    }

    fn providers_of(&self, prototype: &str) -> Vec<ServiceRef> {
        self.inner.providers_of(prototype)
    }
}

/// The [`InvokerLayer`] form of [`DedupInvoker`]. Add it **last** (making
/// it the outermost decorator) so resilience retries underneath it still
/// reach the service, while logical callers above share one result per
/// `(prototype, service, input, instant)`. A disabled layer is an exact
/// pass-through.
pub struct DedupLayer {
    state: Arc<DedupState>,
    registry: Option<Arc<MetricsRegistry>>,
    tracer: Option<Arc<FlightRecorder>>,
    enabled: bool,
}

impl DedupLayer {
    /// A layer memoizing through `state` (enabled).
    pub fn new(state: Arc<DedupState>) -> Self {
        DedupLayer {
            state,
            registry: None,
            tracer: None,
            enabled: true,
        }
    }

    /// Count coalesced calls in `registry` (see
    /// [`DedupInvoker::registry`]).
    pub fn registry(mut self, registry: Arc<MetricsRegistry>) -> Self {
        self.registry = Some(registry);
        self
    }

    /// Record `beta` spans into `tracer` (see [`DedupInvoker::tracer`]).
    pub fn tracer(mut self, tracer: Arc<FlightRecorder>) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// Enable or disable the layer; a disabled layer adds no decorator at
    /// all, leaving the stack byte-for-byte as it was.
    pub fn enabled(mut self, enabled: bool) -> Self {
        self.enabled = enabled;
        self
    }
}

impl<'a> InvokerLayer<'a> for DedupLayer {
    fn wrap(self, inner: Box<dyn Invoker + 'a>) -> Box<dyn Invoker + 'a> {
        if !self.enabled {
            return inner;
        }
        let mut invoker = DedupInvoker::new(inner, self.state);
        if let Some(registry) = self.registry {
            invoker = invoker.registry(registry);
        }
        if let Some(tracer) = self.tracer {
            invoker = invoker.tracer(tracer);
        }
        Box::new(invoker)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prototype::examples as protos;
    use crate::service::fixtures::example_registry;
    use crate::service::{FnService, InvokerStack, StaticRegistry};
    use crate::value::Value;

    /// A registry whose sensor counts every physical invocation.
    fn counting_registry() -> (StaticRegistry, Arc<AtomicU64>) {
        let calls = Arc::new(AtomicU64::new(0));
        let seen = Arc::clone(&calls);
        let reg = StaticRegistry::new();
        reg.register(
            "sensor01",
            Arc::new(FnService::new(
                vec![protos::get_temperature()],
                move |_p, input, at| {
                    seen.fetch_add(1, Ordering::SeqCst);
                    let salt = input.arity() as u64;
                    Ok(vec![Tuple::new(vec![Value::Real(
                        (at.ticks() + salt) as f64,
                    )])])
                },
            )),
        );
        (reg, calls)
    }

    fn stack<'a>(state: &Arc<DedupState>, reg: &'a StaticRegistry) -> Box<dyn Invoker + 'a> {
        InvokerStack::new(reg)
            .layer(DedupLayer::new(Arc::clone(state)))
            .into_inner()
    }

    #[test]
    fn identical_calls_within_an_instant_coalesce() {
        let (reg, calls) = counting_registry();
        let state = Arc::new(DedupState::new());
        let inv = stack(&state, &reg);
        let call = |at| {
            inv.invoke(
                &protos::get_temperature(),
                &ServiceRef::new("sensor01"),
                &Tuple::empty(),
                at,
            )
            .unwrap()
        };
        let a = call(Instant(3));
        let b = call(Instant(3));
        let c = call(Instant(3));
        assert_eq!(a, b);
        assert_eq!(b, c);
        assert_eq!(calls.load(Ordering::SeqCst), 1, "one upstream call");
        assert_eq!((state.hits(), state.misses()), (2, 1));
    }

    #[test]
    fn a_new_instant_clears_the_memo() {
        let (reg, calls) = counting_registry();
        let state = Arc::new(DedupState::new());
        let inv = stack(&state, &reg);
        for at in [Instant(0), Instant(0), Instant(1), Instant(1)] {
            inv.invoke(
                &protos::get_temperature(),
                &ServiceRef::new("sensor01"),
                &Tuple::empty(),
                at,
            )
            .unwrap();
        }
        assert_eq!(calls.load(Ordering::SeqCst), 2, "one call per instant");
        // regressing to an old instant is also a fresh table (defensive:
        // PEMS never does this, but the memo must not serve stale results)
        inv.invoke(
            &protos::get_temperature(),
            &ServiceRef::new("sensor01"),
            &Tuple::empty(),
            Instant(0),
        )
        .unwrap();
        assert_eq!(calls.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn distinct_inputs_do_not_coalesce() {
        let (reg, calls) = counting_registry();
        let state = Arc::new(DedupState::new());
        let inv = stack(&state, &reg);
        let proto = protos::get_temperature();
        let sref = ServiceRef::new("sensor01");
        let a = inv
            .invoke(&proto, &sref, &Tuple::new(vec![Value::Int(1)]), Instant(0))
            .unwrap();
        let b = inv
            .invoke(&proto, &sref, &Tuple::new(vec![Value::Int(2)]), Instant(0))
            .unwrap();
        // different inputs both reached the service (salt differs per arity
        // only, so equal outputs are fine — the call count is the contract)
        let _ = (a, b);
        assert_eq!(calls.load(Ordering::SeqCst), 2);
        assert_eq!(state.hits(), 0);
    }

    #[test]
    fn errors_are_shared_like_results() {
        let reg = StaticRegistry::new();
        let calls = Arc::new(AtomicU64::new(0));
        let seen = Arc::clone(&calls);
        reg.register(
            "flaky",
            Arc::new(FnService::new(
                vec![protos::get_temperature()],
                move |_p, _in, _at| {
                    seen.fetch_add(1, Ordering::SeqCst);
                    Err("device unreachable".to_string())
                },
            )),
        );
        let state = Arc::new(DedupState::new());
        let inv = stack(&state, &reg);
        let call = || {
            inv.invoke(
                &protos::get_temperature(),
                &ServiceRef::new("flaky"),
                &Tuple::empty(),
                Instant(5),
            )
            .unwrap_err()
        };
        let a = call();
        let b = call();
        assert_eq!(a, b, "second caller sees the identical error");
        assert_eq!(calls.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn concurrent_callers_share_one_inflight_call() {
        let calls = Arc::new(AtomicU64::new(0));
        let seen = Arc::clone(&calls);
        let reg = StaticRegistry::new();
        reg.register(
            "slow",
            Arc::new(FnService::new(
                vec![protos::get_temperature()],
                move |_p, _in, at| {
                    seen.fetch_add(1, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(20));
                    Ok(vec![Tuple::new(vec![Value::Real(at.ticks() as f64)])])
                },
            )),
        );
        let state = Arc::new(DedupState::new());
        let inv = stack(&state, &reg);
        let results: Vec<Vec<Tuple>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let inv = &inv;
                    scope.spawn(move || {
                        inv.invoke(
                            &protos::get_temperature(),
                            &ServiceRef::new("slow"),
                            &Tuple::empty(),
                            Instant(9),
                        )
                        .unwrap()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("caller thread"))
                .collect()
        });
        assert!(results.windows(2).all(|w| w[0] == w[1]));
        assert_eq!(calls.load(Ordering::SeqCst), 1, "calls coalesced");
        assert_eq!(state.hits() + state.misses(), 8);
        assert_eq!(state.misses(), 1);
    }

    #[test]
    fn disabled_layer_is_a_pass_through() {
        let (reg, calls) = counting_registry();
        let state = Arc::new(DedupState::new());
        let inv = InvokerStack::new(&reg)
            .layer(DedupLayer::new(Arc::clone(&state)).enabled(false))
            .into_inner();
        for _ in 0..3 {
            inv.invoke(
                &protos::get_temperature(),
                &ServiceRef::new("sensor01"),
                &Tuple::empty(),
                Instant(1),
            )
            .unwrap();
        }
        assert_eq!(calls.load(Ordering::SeqCst), 3);
        assert_eq!((state.hits(), state.misses()), (0, 0));
    }

    #[test]
    fn dedup_counter_lands_in_the_registry() {
        let (reg, _calls) = counting_registry();
        let state = Arc::new(DedupState::new());
        let metrics = Arc::new(MetricsRegistry::new());
        let inv = InvokerStack::new(&reg)
            .layer(DedupLayer::new(Arc::clone(&state)).registry(Arc::clone(&metrics)))
            .into_inner();
        for _ in 0..4 {
            inv.invoke(
                &protos::get_temperature(),
                &ServiceRef::new("sensor01"),
                &Tuple::empty(),
                Instant(2),
            )
            .unwrap();
        }
        assert_eq!(
            metrics.counter_value("serena_beta_dedup_total", &[("service", "sensor01")]),
            Some(3)
        );
        let text = metrics.render_prometheus();
        assert!(text.contains("# TYPE serena_beta_dedup_total counter"));
    }

    #[test]
    fn providers_pass_through() {
        let reg = example_registry();
        let state = Arc::new(DedupState::new());
        let inv = stack(&state, &reg);
        assert_eq!(inv.providers_of("getTemperature").len(), 4);
    }
}
