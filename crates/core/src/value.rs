//! Constants (the countable set `D` of the paper, §2.3.1) and their types.
//!
//! The paper's pseudo-DDL (Tables 1 and 2) uses the types `STRING`,
//! `BOOLEAN`, `INTEGER`, `REAL`, `BLOB` and `SERVICE`. Service references
//! are "classical data values identifying services" (§2.2); we give them a
//! dedicated [`DataType::Service`] so DDL can declare them, but a service
//! reference value is just a [`Value::Str`]-like identifier wrapped in
//! [`ServiceRef`].
//!
//! `Value` implements total `Eq`/`Ord`/`Hash` (REAL values compare via IEEE
//! `total_cmp` and hash by bit pattern) so tuples can live in hash sets and
//! be joined/deduplicated — X-Relations are *sets* of tuples (Definition 3).

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// An immutable, cheaply clonable binary payload (BLOB values).
///
/// A thin wrapper over `Arc<[u8]>` providing the slice of the bytes via
/// [`Deref`](std::ops::Deref) — enough for the paper's photo payloads
/// without an external dependency.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// Copy a slice of bytes into a new payload.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Arc::from(data))
    }

    /// The payload as a byte slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.0
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::from(v))
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Self {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes({} bytes)", self.0.len())
    }
}

/// A reference identifying a service (`id(ω) ∈ D`, §2.3.1).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ServiceRef(Arc<str>);

impl ServiceRef {
    /// Create a service reference from its identifier.
    pub fn new(id: impl AsRef<str>) -> Self {
        ServiceRef(Arc::from(id.as_ref()))
    }

    /// The identifier string.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Debug for ServiceRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ServiceRef({})", self.as_str())
    }
}

impl fmt::Display for ServiceRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&ServiceRef> for ServiceRef {
    fn from(r: &ServiceRef) -> Self {
        r.clone()
    }
}

impl From<&str> for ServiceRef {
    fn from(s: &str) -> Self {
        ServiceRef::new(s)
    }
}

impl From<String> for ServiceRef {
    fn from(s: String) -> Self {
        ServiceRef(Arc::from(s))
    }
}

/// Data types of attribute values, mirroring the paper's pseudo-DDL.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DataType {
    /// `BOOLEAN`
    Bool,
    /// `INTEGER` (64-bit signed)
    Int,
    /// `REAL` (IEEE-754 double)
    Real,
    /// `STRING`
    Str,
    /// `BLOB` (binary payloads, e.g. photos)
    Blob,
    /// `SERVICE` — a service reference attribute
    Service,
}

impl DataType {
    /// DDL keyword for this type.
    pub fn ddl_name(&self) -> &'static str {
        match self {
            DataType::Bool => "BOOLEAN",
            DataType::Int => "INTEGER",
            DataType::Real => "REAL",
            DataType::Str => "STRING",
            DataType::Blob => "BLOB",
            DataType::Service => "SERVICE",
        }
    }

    /// Whether values of this type admit ordering comparisons (`<`, `<=`…).
    /// BLOBs are equality-only in selection formulas.
    pub fn is_ordered(&self) -> bool {
        !matches!(self, DataType::Blob)
    }

    /// Whether this type may carry a service reference for a binding
    /// pattern. The paper allows any "classical data value" (integers or
    /// strings, §2.2) as a service reference.
    pub fn can_reference_service(&self) -> bool {
        matches!(self, DataType::Service | DataType::Str | DataType::Int)
    }

    /// The neutral filler value of this type, used by
    /// [`DegradePolicy::NullFill`](crate::ops::DegradePolicy) when a failed
    /// β invocation is degraded into a placeholder output. The domain `D`
    /// has no NULL (the paper's `*` marks absent coordinates, not a null
    /// value), so degradation substitutes each type's zero value.
    pub fn default_value(&self) -> Value {
        match self {
            DataType::Bool => Value::Bool(false),
            DataType::Int => Value::Int(0),
            DataType::Real => Value::Real(0.0),
            DataType::Str => Value::str(""),
            DataType::Blob => Value::blob(Vec::new()),
            DataType::Service => Value::service(""),
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.ddl_name())
    }
}

/// A constant from the domain `D`.
///
/// There is no NULL: the paper's `*` marks the *absence of a coordinate* for
/// virtual attributes (tuples simply do not store them), not a null value.
#[derive(Clone)]
pub enum Value {
    /// Boolean constant.
    Bool(bool),
    /// Integer constant.
    Int(i64),
    /// Real constant.
    Real(f64),
    /// String constant (cheaply clonable).
    Str(Arc<str>),
    /// Binary payload.
    Blob(Bytes),
    /// Service reference.
    Service(ServiceRef),
}

impl Value {
    /// Build a string value.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Build a service-reference value.
    pub fn service(s: impl AsRef<str>) -> Self {
        Value::Service(ServiceRef::new(s))
    }

    /// Build a blob value.
    pub fn blob(b: impl Into<Bytes>) -> Self {
        Value::Blob(b.into())
    }

    /// The runtime type of this value.
    pub fn data_type(&self) -> DataType {
        match self {
            Value::Bool(_) => DataType::Bool,
            Value::Int(_) => DataType::Int,
            Value::Real(_) => DataType::Real,
            Value::Str(_) => DataType::Str,
            Value::Blob(_) => DataType::Blob,
            Value::Service(_) => DataType::Service,
        }
    }

    /// Whether this value is accepted for an attribute declared with `ty`.
    ///
    /// Exactly one coercion exists: a `Str` or `Int` value may populate a
    /// `SERVICE` attribute and vice versa a `Service` value may populate a
    /// `STRING` attribute — service references are classical data values
    /// (§2.2).
    pub fn conforms_to(&self, ty: DataType) -> bool {
        let own = self.data_type();
        own == ty
            || (ty == DataType::Service && own.can_reference_service())
            || (own == DataType::Service && ty == DataType::Str)
    }

    /// Interpret this value as a service reference, if its type allows it.
    pub fn as_service_ref(&self) -> Option<ServiceRef> {
        match self {
            Value::Service(r) => Some(r.clone()),
            Value::Str(s) => Some(ServiceRef::new(&**s)),
            Value::Int(i) => Some(ServiceRef::new(i.to_string())),
            _ => None,
        }
    }

    /// Boolean accessor.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Integer accessor.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Real accessor (integers widen to real).
    pub fn as_real(&self) -> Option<f64> {
        match self {
            Value::Real(r) => Some(*r),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// String accessor.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            Value::Service(r) => Some(r.as_str()),
            _ => None,
        }
    }

    /// Blob accessor.
    pub fn as_blob(&self) -> Option<&Bytes> {
        match self {
            Value::Blob(b) => Some(b),
            _ => None,
        }
    }

    /// Compare two values for selection formulas. Values of different types
    /// are comparable only through the Int↔Real widening and the
    /// Service↔Str identification; all other cross-type comparisons yield
    /// `None` (a formula type error surfaced earlier at validation time).
    pub fn partial_cmp_typed(&self, other: &Value) -> Option<Ordering> {
        use Value::*;
        match (self, other) {
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            (Int(a), Int(b)) => Some(a.cmp(b)),
            (Real(a), Real(b)) => Some(a.total_cmp(b)),
            (Int(a), Real(b)) => Some((*a as f64).total_cmp(b)),
            (Real(a), Int(b)) => Some(a.total_cmp(&(*b as f64))),
            (Str(a), Str(b)) => Some(a.cmp(b)),
            (Service(a), Service(b)) => Some(a.cmp(b)),
            (Str(a), Service(b)) => Some((**a).cmp(b.as_str())),
            (Service(a), Str(b)) => Some(a.as_str().cmp(&**b)),
            (Blob(a), Blob(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// Total order across all values: first by a type rank, then by value.
    /// This is the *storage* order used for canonical tuple ordering and
    /// hashing; the *query* comparison semantics live in
    /// [`Value::partial_cmp_typed`].
    fn cmp(&self, other: &Self) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Bool(_) => 0,
                Value::Int(_) => 1,
                Value::Real(_) => 2,
                Value::Str(_) => 3,
                Value::Blob(_) => 4,
                Value::Service(_) => 5,
            }
        }
        use Value::*;
        match (self, other) {
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Real(a), Real(b)) => a.total_cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            (Blob(a), Blob(b)) => a.cmp(b),
            (Service(a), Service(b)) => a.cmp(b),
            _ => rank(self).cmp(&rank(other)),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Bool(b) => {
                state.write_u8(0);
                b.hash(state);
            }
            Value::Int(i) => {
                state.write_u8(1);
                i.hash(state);
            }
            Value::Real(r) => {
                state.write_u8(2);
                r.to_bits().hash(state);
            }
            Value::Str(s) => {
                state.write_u8(3);
                s.hash(state);
            }
            Value::Blob(b) => {
                state.write_u8(4);
                b.hash(state);
            }
            Value::Service(s) => {
                state.write_u8(5);
                s.hash(state);
            }
        }
    }
}

impl Value {
    /// Shared Display/Debug body: values print like the paper's tables
    /// (`email`, `28.5`, `true`, blob as `<blob N bytes>`).
    fn fmt_value(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Real(r) => {
                if r.fract() == 0.0 && r.is_finite() && r.abs() < 1e15 {
                    write!(f, "{r:.1}")
                } else {
                    write!(f, "{r}")
                }
            }
            Value::Str(s) => write!(f, "{s}"),
            Value::Blob(b) => write!(f, "<blob {} bytes>", b.len()),
            Value::Service(s) => write!(f, "{s}"),
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_value(f)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_value(f)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}
impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i as i64)
    }
}
impl From<f64> for Value {
    fn from(r: f64) -> Self {
        Value::Real(r)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(Arc::from(s))
    }
}
impl From<ServiceRef> for Value {
    fn from(s: ServiceRef) -> Self {
        Value::Service(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn typed_comparison_widens_int_to_real() {
        assert_eq!(
            Value::Int(3).partial_cmp_typed(&Value::Real(3.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Real(2.5).partial_cmp_typed(&Value::Int(3)),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn typed_comparison_rejects_mixed_types() {
        assert_eq!(Value::Bool(true).partial_cmp_typed(&Value::Int(1)), None);
        assert_eq!(
            Value::blob(vec![1u8]).partial_cmp_typed(&Value::str("x")),
            None
        );
    }

    #[test]
    fn service_and_string_interchange() {
        let s = Value::service("email");
        assert_eq!(s.as_str(), Some("email"));
        assert!(s.conforms_to(DataType::Str));
        assert!(Value::str("email").conforms_to(DataType::Service));
        assert!(Value::Int(7).conforms_to(DataType::Service));
        assert!(!Value::Bool(true).conforms_to(DataType::Service));
        assert_eq!(
            Value::str("email").partial_cmp_typed(&Value::service("email")),
            Some(Ordering::Equal)
        );
    }

    #[test]
    fn total_order_is_consistent_for_reals() {
        let nan = Value::Real(f64::NAN);
        assert_eq!(nan.cmp(&nan), Ordering::Equal);
        assert_eq!(nan, nan.clone());
        let mut set = HashSet::new();
        set.insert(nan.clone());
        assert!(set.contains(&nan));
    }

    #[test]
    fn hash_eq_coherence() {
        use std::hash::{DefaultHasher, Hash, Hasher};
        fn h(v: &Value) -> u64 {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        }
        assert_eq!(h(&Value::Int(5)), h(&Value::Int(5)));
        assert_eq!(h(&Value::Real(1.5)), h(&Value::Real(1.5)));
        assert_eq!(h(&Value::str("a")), h(&Value::str("a")));
    }

    #[test]
    fn display_matches_paper_tables() {
        assert_eq!(Value::str("email").to_string(), "email");
        assert_eq!(Value::Real(28.0).to_string(), "28.0");
        assert_eq!(Value::Bool(true).to_string(), "true");
        assert_eq!(Value::blob(vec![0u8; 3]).to_string(), "<blob 3 bytes>");
    }

    #[test]
    fn as_real_widens() {
        assert_eq!(Value::Int(2).as_real(), Some(2.0));
        assert_eq!(Value::str("x").as_real(), None);
    }

    #[test]
    fn as_service_ref_variants() {
        assert_eq!(Value::Int(42).as_service_ref(), Some(ServiceRef::new("42")));
        assert_eq!(Value::Bool(false).as_service_ref(), None);
    }

    #[test]
    fn data_type_properties() {
        assert!(DataType::Real.is_ordered());
        assert!(!DataType::Blob.is_ordered());
        assert!(DataType::Service.can_reference_service());
        assert!(!DataType::Real.can_reference_service());
        assert_eq!(DataType::Blob.ddl_name(), "BLOB");
    }
}
