//! Per-operator execution metrics — the observability layer.
//!
//! Every operator application (one-shot evaluation in [`crate::exec`], or a
//! per-tick node evaluation in the continuous executor) produces one
//! [`OpObservation`] and reports it to a [`MetricsSink`]. The default sink
//! is [`NoopMetrics`] (zero overhead beyond a virtual call); [`ExecStats`]
//! is the concrete collector aggregating observations per plan node —
//! tuples in/out, service invocations, β-cache hits/misses, survived
//! failures and wall-clock self-time.
//!
//! Plan nodes are identified by [`NodeId`]: the node's **pre-order index**
//! in its plan tree (root = 0, then children left to right). Both the
//! one-shot evaluator and the continuous executor number nodes the same
//! way, so `EXPLAIN ANALYZE`-style renderings can re-traverse the plan and
//! line observations up with operators.

use std::collections::BTreeMap;
use std::time::Duration;

use crate::sync::Mutex;

/// Identifier of a plan node: its pre-order index in the plan tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// The operator kind an observation refers to (Table 3, plus the
/// continuous-layer operators of §4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OpKind {
    /// Leaf scan of a named X-Relation (or continuous table source).
    Relation,
    /// Leaf poll of an infinite stream source.
    Source,
    /// `∪`
    Union,
    /// `∩`
    Intersect,
    /// `−`
    Difference,
    /// `π`
    Project,
    /// `σ`
    Select,
    /// `ρ`
    Rename,
    /// `⋈`
    Join,
    /// `α`
    Assign,
    /// `β`
    Invoke,
    /// `γ` (extension)
    Aggregate,
    /// `W[p]` (continuous)
    Window,
    /// `S[kind]` (continuous)
    StreamOf,
    /// `βˢ` periodic sampling invocation (continuous extension)
    SampleInvoke,
}

impl OpKind {
    /// Number of operator kinds.
    pub const COUNT: usize = 15;

    /// All operator kinds, in declaration order; `ALL[k.index()] == k`.
    pub const ALL: [OpKind; OpKind::COUNT] = [
        OpKind::Relation,
        OpKind::Source,
        OpKind::Union,
        OpKind::Intersect,
        OpKind::Difference,
        OpKind::Project,
        OpKind::Select,
        OpKind::Rename,
        OpKind::Join,
        OpKind::Assign,
        OpKind::Invoke,
        OpKind::Aggregate,
        OpKind::Window,
        OpKind::StreamOf,
        OpKind::SampleInvoke,
    ];

    /// Dense index of this kind within [`OpKind::ALL`] — lets per-operator
    /// telemetry use a flat array instead of a map.
    pub fn index(self) -> usize {
        self as usize
    }

    /// The kind of a one-shot plan node.
    pub fn of_plan(plan: &crate::plan::Plan) -> OpKind {
        use crate::plan::Plan;
        match plan {
            Plan::Relation(_) => OpKind::Relation,
            Plan::Union(..) => OpKind::Union,
            Plan::Intersect(..) => OpKind::Intersect,
            Plan::Difference(..) => OpKind::Difference,
            Plan::Project(..) => OpKind::Project,
            Plan::Select(..) => OpKind::Select,
            Plan::Rename(..) => OpKind::Rename,
            Plan::Join(..) => OpKind::Join,
            Plan::Assign(..) => OpKind::Assign,
            Plan::Invoke(..) => OpKind::Invoke,
            Plan::Aggregate(..) => OpKind::Aggregate,
        }
    }

    /// The operator's algebra symbol (empty for leaves).
    pub fn symbol(&self) -> &'static str {
        match self {
            OpKind::Relation | OpKind::Source => "",
            OpKind::Union => "∪",
            OpKind::Intersect => "∩",
            OpKind::Difference => "−",
            OpKind::Project => "π",
            OpKind::Select => "σ",
            OpKind::Rename => "ρ",
            OpKind::Join => "⋈",
            OpKind::Assign => "α",
            OpKind::Invoke => "β",
            OpKind::Aggregate => "γ",
            OpKind::Window => "W",
            OpKind::StreamOf => "S",
            OpKind::SampleInvoke => "βˢ",
        }
    }
}

impl std::fmt::Display for OpKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self:?}")
    }
}

/// What one operator application did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpObservation {
    /// Which plan node (pre-order index).
    pub node: NodeId,
    /// Which operator.
    pub op: OpKind,
    /// Tuples consumed from child operators (delta occurrences, for the
    /// continuous executor).
    pub tuples_in: u64,
    /// Tuples produced (delta occurrences, for the continuous executor).
    pub tuples_out: u64,
    /// Service invocations actually performed (β/βˢ only).
    pub invocations: u64,
    /// β-cache hits: re-inserted tuples served from the invocation cache.
    pub cache_hits: u64,
    /// β-cache misses: newly seen tuples requiring a live invocation.
    pub cache_misses: u64,
    /// Invocation failures (survived in continuous mode, fatal one-shot).
    pub failures: u64,
    /// Tuples degraded under a non-failing
    /// [`DegradePolicy`](crate::ops::DegradePolicy): dropped or null-filled
    /// instead of failing the query (β/βˢ only).
    pub degraded: u64,
    /// Invocations whose service implementation panicked; the panic was
    /// contained and surfaced as
    /// [`EvalError::Panicked`](crate::error::EvalError) (β/βˢ only).
    pub panics: u64,
    /// Invocations that failed because the remote node hosting the service
    /// proxy was unreachable
    /// ([`EvalError::RemoteUnavailable`](crate::error::EvalError), β/βˢ
    /// only).
    pub remote_unavailable: u64,
    /// Wall-clock self-time of the operator application (children
    /// excluded).
    pub elapsed: Duration,
}

impl OpObservation {
    /// A zeroed observation for `node`/`op`.
    pub fn new(node: NodeId, op: OpKind) -> Self {
        OpObservation {
            node,
            op,
            tuples_in: 0,
            tuples_out: 0,
            invocations: 0,
            cache_hits: 0,
            cache_misses: 0,
            failures: 0,
            degraded: 0,
            panics: 0,
            remote_unavailable: 0,
            elapsed: Duration::ZERO,
        }
    }
}

/// Destination for operator observations.
///
/// Implementations must be cheap and non-blocking: sinks are called once
/// per operator per evaluation (one-shot) or per tick (continuous).
pub trait MetricsSink: Send + Sync {
    /// Report one operator application.
    fn record(&self, obs: &OpObservation);
}

/// The default sink: discards everything.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopMetrics;

impl MetricsSink for NoopMetrics {
    fn record(&self, _obs: &OpObservation) {}
}

/// A sink duplicating every observation to two other sinks.
pub struct Tee<'a>(pub &'a dyn MetricsSink, pub &'a dyn MetricsSink);

impl MetricsSink for Tee<'_> {
    fn record(&self, obs: &OpObservation) {
        self.0.record(obs);
        self.1.record(obs);
    }
}

/// Aggregated statistics of one plan node across applications.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeStats {
    /// The operator kind observed at this node.
    pub op: OpKind,
    /// Number of applications (1 for a one-shot evaluation; the tick count
    /// for a continuous node).
    pub applications: u64,
    /// Total tuples consumed.
    pub tuples_in: u64,
    /// Total tuples produced.
    pub tuples_out: u64,
    /// Total service invocations.
    pub invocations: u64,
    /// Total β-cache hits.
    pub cache_hits: u64,
    /// Total β-cache misses.
    pub cache_misses: u64,
    /// Total failures.
    pub failures: u64,
    /// Total degraded tuples (dropped or null-filled instead of failing).
    pub degraded: u64,
    /// Total contained service panics.
    pub panics: u64,
    /// Total failures due to an unreachable remote node.
    pub remote_unavailable: u64,
    /// Total wall-clock self-time.
    pub elapsed: Duration,
}

impl NodeStats {
    fn new(op: OpKind) -> Self {
        NodeStats {
            op,
            applications: 0,
            tuples_in: 0,
            tuples_out: 0,
            invocations: 0,
            cache_hits: 0,
            cache_misses: 0,
            failures: 0,
            degraded: 0,
            panics: 0,
            remote_unavailable: 0,
            elapsed: Duration::ZERO,
        }
    }

    fn absorb(&mut self, obs: &OpObservation) {
        self.applications += 1;
        self.tuples_in += obs.tuples_in;
        self.tuples_out += obs.tuples_out;
        self.invocations += obs.invocations;
        self.cache_hits += obs.cache_hits;
        self.cache_misses += obs.cache_misses;
        self.failures += obs.failures;
        self.degraded += obs.degraded;
        self.panics += obs.panics;
        self.remote_unavailable += obs.remote_unavailable;
        self.elapsed += obs.elapsed;
    }

    fn merge(&mut self, other: &NodeStats) {
        self.applications += other.applications;
        self.tuples_in += other.tuples_in;
        self.tuples_out += other.tuples_out;
        self.invocations += other.invocations;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.failures += other.failures;
        self.degraded += other.degraded;
        self.panics += other.panics;
        self.remote_unavailable += other.remote_unavailable;
        self.elapsed += other.elapsed;
    }

    /// One-line summary of this node's counters — the annotation
    /// `EXPLAIN ANALYZE` prints next to each operator. Invocation counters
    /// appear only for β nodes (or when invocations were observed);
    /// failures only when non-zero.
    pub fn summary(&self) -> String {
        let mut out = format!(
            "rows={} in={} time={:?}",
            self.tuples_out, self.tuples_in, self.elapsed
        );
        if self.op == OpKind::Invoke || self.op == OpKind::SampleInvoke || self.invocations > 0 {
            out.push_str(&format!(
                " invocations={} cache_hits={} cache_misses={}",
                self.invocations, self.cache_hits, self.cache_misses
            ));
        }
        if self.failures > 0 {
            out.push_str(&format!(" failures={}", self.failures));
        }
        if self.degraded > 0 {
            out.push_str(&format!(" degraded={}", self.degraded));
        }
        if self.panics > 0 {
            out.push_str(&format!(" panics={}", self.panics));
        }
        if self.remote_unavailable > 0 {
            out.push_str(&format!(" remote_unavailable={}", self.remote_unavailable));
        }
        out
    }
}

impl std::fmt::Display for NodeStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.summary())
    }
}

/// Thread-safe collector aggregating observations per node — the concrete
/// [`MetricsSink`] behind `EXPLAIN ANALYZE`, `TickReport::stats` and the
/// Query Processor's rolling per-query statistics.
#[derive(Debug, Default)]
pub struct ExecStats {
    nodes: Mutex<BTreeMap<NodeId, NodeStats>>,
}

impl ExecStats {
    /// Empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot of one node's aggregated stats.
    pub fn node(&self, id: NodeId) -> Option<NodeStats> {
        self.nodes.lock().get(&id).cloned()
    }

    /// Snapshot of all nodes, ordered by [`NodeId`].
    pub fn nodes(&self) -> BTreeMap<NodeId, NodeStats> {
        self.nodes.lock().clone()
    }

    /// True iff nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.lock().is_empty()
    }

    /// Drop all recorded data.
    pub fn clear(&self) {
        self.nodes.lock().clear();
    }

    /// Fold `other`'s per-node aggregates into this collector.
    pub fn merge_from(&self, other: &ExecStats) {
        let other_nodes = other.nodes();
        let mut mine = self.nodes.lock();
        for (id, stats) in other_nodes {
            match mine.get_mut(&id) {
                Some(existing) => existing.merge(&stats),
                None => {
                    mine.insert(id, stats);
                }
            }
        }
    }

    /// Total service invocations across all nodes.
    pub fn total_invocations(&self) -> u64 {
        self.nodes.lock().values().map(|s| s.invocations).sum()
    }

    /// Total β-cache hits across all nodes.
    pub fn total_cache_hits(&self) -> u64 {
        self.nodes.lock().values().map(|s| s.cache_hits).sum()
    }

    /// Total β-cache misses across all nodes.
    pub fn total_cache_misses(&self) -> u64 {
        self.nodes.lock().values().map(|s| s.cache_misses).sum()
    }

    /// Total failures across all nodes.
    pub fn total_failures(&self) -> u64 {
        self.nodes.lock().values().map(|s| s.failures).sum()
    }

    /// Total degraded tuples (dropped or null-filled) across all nodes.
    pub fn total_degraded(&self) -> u64 {
        self.nodes.lock().values().map(|s| s.degraded).sum()
    }

    /// Total contained service panics across all nodes.
    pub fn total_panics(&self) -> u64 {
        self.nodes.lock().values().map(|s| s.panics).sum()
    }

    /// Total remote-unreachable failures across all nodes.
    pub fn total_remote_unavailable(&self) -> u64 {
        self.nodes
            .lock()
            .values()
            .map(|s| s.remote_unavailable)
            .sum()
    }

    /// The root node's total output tuples (node 0), if observed.
    pub fn root_tuples_out(&self) -> Option<u64> {
        self.nodes.lock().get(&NodeId(0)).map(|s| s.tuples_out)
    }

    /// Serialize every per-node aggregate into `w` — the checkpoint form of
    /// a query's rolling statistics. Self-time is persisted in nanoseconds
    /// (saturating at `u64::MAX`).
    pub fn encode(&self, w: &mut crate::snapshot::Writer) {
        let nodes = self.nodes.lock();
        w.usize(nodes.len());
        for (id, s) in nodes.iter() {
            w.usize(id.0);
            w.u8(s.op.index() as u8);
            w.u64(s.applications)
                .u64(s.tuples_in)
                .u64(s.tuples_out)
                .u64(s.invocations)
                .u64(s.cache_hits)
                .u64(s.cache_misses)
                .u64(s.failures)
                .u64(s.degraded)
                .u64(s.panics)
                .u64(s.remote_unavailable)
                .u64(u64::try_from(s.elapsed.as_nanos()).unwrap_or(u64::MAX));
        }
    }

    /// Rebuild a collector from [`Self::encode`]'s output.
    pub fn decode(
        r: &mut crate::snapshot::Reader<'_>,
    ) -> Result<ExecStats, crate::snapshot::SnapshotError> {
        use crate::snapshot::SnapshotError;
        let n = r.usize()?;
        let mut nodes = BTreeMap::new();
        for _ in 0..n {
            let id = NodeId(r.usize()?);
            let op_index = r.u8()? as usize;
            let op = *OpKind::ALL
                .get(op_index)
                .ok_or_else(|| SnapshotError::Corrupt(format!("unknown op index {op_index}")))?;
            let mut s = NodeStats::new(op);
            s.applications = r.u64()?;
            s.tuples_in = r.u64()?;
            s.tuples_out = r.u64()?;
            s.invocations = r.u64()?;
            s.cache_hits = r.u64()?;
            s.cache_misses = r.u64()?;
            s.failures = r.u64()?;
            s.degraded = r.u64()?;
            s.panics = r.u64()?;
            s.remote_unavailable = r.u64()?;
            s.elapsed = Duration::from_nanos(r.u64()?);
            nodes.insert(id, s);
        }
        Ok(ExecStats {
            nodes: Mutex::new(nodes),
        })
    }
}

impl std::fmt::Display for ExecStats {
    /// One-line roll-up across all nodes:
    /// `nodes=5 rows_out=2 invocations=3 cache_hits=1 cache_misses=2 failures=0`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let nodes = self.nodes.lock();
        let rows_out = nodes.get(&NodeId(0)).map(|s| s.tuples_out).unwrap_or(0);
        let (mut inv, mut hits, mut misses, mut failures) = (0u64, 0u64, 0u64, 0u64);
        for s in nodes.values() {
            inv += s.invocations;
            hits += s.cache_hits;
            misses += s.cache_misses;
            failures += s.failures;
        }
        write!(
            f,
            "nodes={} rows_out={rows_out} invocations={inv} cache_hits={hits} \
             cache_misses={misses} failures={failures}",
            nodes.len()
        )
    }
}

impl Clone for ExecStats {
    fn clone(&self) -> Self {
        ExecStats {
            nodes: Mutex::new(self.nodes.lock().clone()),
        }
    }
}

impl MetricsSink for ExecStats {
    fn record(&self, obs: &OpObservation) {
        self.nodes
            .lock()
            .entry(obs.node)
            .or_insert_with(|| NodeStats::new(obs.op))
            .absorb(obs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exec_stats_aggregates_observations() {
        let stats = ExecStats::new();
        let mut obs = OpObservation::new(NodeId(0), OpKind::Select);
        obs.tuples_in = 10;
        obs.tuples_out = 4;
        stats.record(&obs);
        stats.record(&obs);
        let node = stats.node(NodeId(0)).unwrap();
        assert_eq!(node.applications, 2);
        assert_eq!(node.tuples_in, 20);
        assert_eq!(node.tuples_out, 8);
        assert_eq!(node.op, OpKind::Select);
        assert_eq!(stats.root_tuples_out(), Some(8));
    }

    #[test]
    fn merge_from_folds_per_node() {
        let a = ExecStats::new();
        let b = ExecStats::new();
        let mut obs = OpObservation::new(NodeId(1), OpKind::Invoke);
        obs.invocations = 3;
        obs.cache_misses = 3;
        a.record(&obs);
        obs.invocations = 1;
        obs.cache_hits = 2;
        obs.cache_misses = 1;
        b.record(&obs);
        a.merge_from(&b);
        let node = a.node(NodeId(1)).unwrap();
        assert_eq!(node.applications, 2);
        assert_eq!(node.invocations, 4);
        assert_eq!(node.cache_hits, 2);
        assert_eq!(node.cache_misses, 4);
        assert_eq!(a.total_invocations(), 4);
    }

    #[test]
    fn tee_duplicates_and_noop_discards() {
        let a = ExecStats::new();
        let b = ExecStats::new();
        let tee = Tee(&a, &b);
        tee.record(&OpObservation::new(NodeId(0), OpKind::Join));
        assert_eq!(a.node(NodeId(0)).unwrap().applications, 1);
        assert_eq!(b.node(NodeId(0)).unwrap().applications, 1);
        NoopMetrics.record(&OpObservation::new(NodeId(0), OpKind::Join));
        assert!(!a.is_empty());
        a.clear();
        assert!(a.is_empty());
    }

    #[test]
    fn panics_counter_aggregates_and_shows_in_summary() {
        let stats = ExecStats::new();
        let mut obs = OpObservation::new(NodeId(0), OpKind::Invoke);
        obs.invocations = 2;
        obs.panics = 1;
        stats.record(&obs);
        stats.record(&obs);
        let node = stats.node(NodeId(0)).unwrap();
        assert_eq!(node.panics, 2);
        assert_eq!(stats.total_panics(), 2);
        assert!(node.summary().contains("panics=2"));
        // zero panics stay out of the summary
        let quiet = ExecStats::new();
        quiet.record(&OpObservation::new(NodeId(0), OpKind::Invoke));
        assert!(!quiet.node(NodeId(0)).unwrap().summary().contains("panics"));
    }

    #[test]
    fn exec_stats_snapshot_round_trip() {
        let stats = ExecStats::new();
        let mut obs = OpObservation::new(NodeId(0), OpKind::Invoke);
        obs.tuples_in = 5;
        obs.tuples_out = 5;
        obs.invocations = 4;
        obs.cache_hits = 1;
        obs.cache_misses = 3;
        obs.failures = 1;
        obs.degraded = 1;
        obs.panics = 1;
        obs.elapsed = Duration::from_micros(12);
        stats.record(&obs);
        stats.record(&OpObservation::new(NodeId(3), OpKind::Window));

        let mut w = crate::snapshot::Writer::new();
        stats.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = crate::snapshot::Reader::new(&bytes);
        let restored = ExecStats::decode(&mut r).unwrap();
        assert!(r.is_at_end());
        assert_eq!(restored.nodes(), stats.nodes());
    }
}
