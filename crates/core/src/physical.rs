//! The physical execution layer: [`PhysicalPlan`].
//!
//! A logical [`Plan`] describes *what* to compute; compiling it against a
//! [`SchemaCatalog`] produces a physical operator tree where everything the
//! interpreter used to re-derive on every evaluation is resolved **once**:
//! projection coordinate vectors, the β [`InvokeRecipe`] (input coordinates,
//! service coordinate, output-assembly recipe), join column pairings and
//! output slots, set-operator reorder maps, compiled selection formulas and
//! derived output schemas. Executing the compiled plan then only moves
//! tuples.
//!
//! Each physical node carries the **same pre-order [`NodeId`]** (root = 0,
//! children left to right) the interpreter assigned, so recorded
//! [`ExecStats`](crate::metrics::ExecStats) keep lining up with
//! [`explain_analyze_text`](crate::exec::explain_analyze_text) over the
//! logical plan — the NodeId stability contract.
//!
//! β invocation can additionally be fanned out across a bounded worker pool
//! ([`ExecOptions::invoke_parallelism`], default serial): the batch is
//! invoked on up to that many threads and reassembled in input-tuple order,
//! so the output [`XRelation`] and [`ActionSet`] are identical to serial
//! execution, as are the invocation/failure tallies.

use std::collections::HashMap;
use std::time::Instant as WallClock;

use crate::action::ActionSet;
use crate::attr::AttrName;
use crate::error::{EvalError, PlanError};
use crate::eval::EvalOutcome;
use crate::exec::ExecContext;
use crate::formula::CompiledFormula;
use crate::metrics::{NodeId, OpKind, OpObservation};
use crate::ops::{self, AggSpec, AssignSource, DegradePolicy, InvokeRecipe, InvokeTally};
use crate::plan::{Plan, SchemaCatalog};
use crate::schema::SchemaRef;
use crate::tuple::Tuple;
use crate::value::Value;
use crate::xrelation::XRelation;

/// Execution knobs, separate from the data-plane [`ExecContext`] fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecOptions {
    /// Maximum number of worker threads one β δ-batch is fanned across.
    /// `1` (the default) invokes serially — fully deterministic invocation
    /// order, no threads spawned.
    pub invoke_parallelism: usize,
    /// How β reacts when one tuple's invocation fails (default:
    /// [`DegradePolicy::FailQuery`], the historical fail-the-query
    /// behaviour).
    pub degrade: DegradePolicy,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            invoke_parallelism: 1,
            degrade: DegradePolicy::FailQuery,
        }
    }
}

impl ExecOptions {
    /// Serial execution (the default).
    pub fn serial() -> Self {
        ExecOptions::default()
    }

    /// Fan β invocations across up to `workers` threads (clamped to ≥ 1).
    pub fn parallel(workers: usize) -> Self {
        ExecOptions {
            invoke_parallelism: workers.max(1),
            ..ExecOptions::default()
        }
    }

    /// Replace the β degradation policy.
    pub fn with_degrade(mut self, degrade: DegradePolicy) -> Self {
        self.degrade = degrade;
        self
    }
}

/// A [`Plan`] compiled once against a [`SchemaCatalog`]: a tree of physical
/// operators with all per-call state pre-resolved, reusable across
/// arbitrarily many executions.
pub struct PhysicalPlan {
    root: PhysNode,
    node_count: usize,
}

impl PhysicalPlan {
    /// Validate `plan` against `catalog` and pre-resolve every operator.
    /// Fails with exactly the [`PlanError`] static validation
    /// ([`Plan::schema`]) would report.
    pub fn compile(plan: &Plan, catalog: &dyn SchemaCatalog) -> Result<PhysicalPlan, PlanError> {
        let mut next_id = 0usize;
        let root = PhysNode::compile(plan, catalog, &mut next_id)?;
        Ok(PhysicalPlan {
            root,
            node_count: next_id,
        })
    }

    /// The derived output schema.
    pub fn schema(&self) -> &SchemaRef {
        &self.root.schema
    }

    /// Number of physical nodes (= plan nodes; NodeIds are `0..node_count`).
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Execute against `ctx`, reporting one [`OpObservation`] per node to
    /// the context's metrics sink under the node's compile-time [`NodeId`].
    pub fn execute(&self, ctx: &ExecContext<'_>) -> Result<EvalOutcome, EvalError> {
        let mut actions = ActionSet::new();
        let relation = self.root.execute(ctx, &mut actions)?;
        Ok(EvalOutcome { relation, actions })
    }
}

/// One compiled operator: stable id, pre-derived output schema, resolved
/// physical state, children in plan order.
struct PhysNode {
    id: NodeId,
    kind: OpKind,
    schema: SchemaRef,
    op: PhysOp,
    children: Vec<PhysNode>,
}

/// Where one slot of a join output tuple comes from.
#[derive(Debug, Clone, Copy)]
enum JoinSlot {
    Left(usize),
    Right(usize),
}

/// Where one slot of an assign output tuple comes from.
#[derive(Debug, Clone, Copy)]
enum AssignSlot {
    Old(usize),
    New,
}

/// The resolved right-hand side of an assignment.
#[derive(Debug, Clone)]
enum AssignBinding {
    Coord(usize),
    Const(Value),
}

enum PhysOp {
    Scan {
        name: String,
    },
    /// `rhs_reorder` permutes right-operand tuples into the output
    /// coordinate order; `None` when the operands already agree.
    Union {
        rhs_reorder: Option<Vec<usize>>,
    },
    Intersect {
        rhs_reorder: Option<Vec<usize>>,
    },
    Difference {
        rhs_reorder: Option<Vec<usize>>,
    },
    Project {
        coords: Vec<usize>,
    },
    Select {
        formula: CompiledFormula,
    },
    /// Schema-only: tuples pass through untouched.
    Rename,
    Join {
        key_left: Vec<usize>,
        key_right: Vec<usize>,
        slots: Vec<JoinSlot>,
    },
    Assign {
        slots: Vec<AssignSlot>,
        binding: AssignBinding,
    },
    Invoke {
        recipe: InvokeRecipe,
    },
    Aggregate {
        group: Vec<AttrName>,
        aggs: Vec<AggSpec>,
    },
}

impl PhysNode {
    /// Pre-order compilation: this node takes the next id, then children
    /// left to right — the same numbering the instrumented interpreter
    /// assigned at runtime.
    fn compile(
        plan: &Plan,
        catalog: &dyn SchemaCatalog,
        next_id: &mut usize,
    ) -> Result<PhysNode, PlanError> {
        let id = NodeId(*next_id);
        *next_id += 1;
        let kind = OpKind::of_plan(plan);
        let mut children = Vec::with_capacity(plan.children().len());
        for c in plan.children() {
            children.push(PhysNode::compile(c, catalog, next_id)?);
        }

        let set_op_state =
            |children: &[PhysNode]| -> Result<(SchemaRef, Option<Vec<usize>>), PlanError> {
                let schema = ops::set_op_schema(&children[0].schema, &children[1].schema)?;
                let map = schema
                    .reorder_map(&children[1].schema)
                    .expect("checked compatible");
                let identity: Vec<usize> = (0..schema.real_arity()).collect();
                Ok((schema, if map == identity { None } else { Some(map) }))
            };

        let (schema, op) = match plan {
            Plan::Relation(name) => {
                let schema = catalog
                    .schema_of(name)
                    .ok_or_else(|| PlanError::UnknownRelation(name.clone()))?;
                (schema, PhysOp::Scan { name: name.clone() })
            }
            Plan::Union(..) => {
                let (schema, rhs_reorder) = set_op_state(&children)?;
                (schema, PhysOp::Union { rhs_reorder })
            }
            Plan::Intersect(..) => {
                let (schema, rhs_reorder) = set_op_state(&children)?;
                (schema, PhysOp::Intersect { rhs_reorder })
            }
            Plan::Difference(..) => {
                let (schema, rhs_reorder) = set_op_state(&children)?;
                (schema, PhysOp::Difference { rhs_reorder })
            }
            Plan::Project(_, attrs) => {
                let schema = ops::project_schema(&children[0].schema, attrs)?;
                let coords: Vec<usize> = schema
                    .attrs()
                    .iter()
                    .filter(|a| a.is_real())
                    .map(|a| {
                        children[0]
                            .schema
                            .coord_of(a.name.as_str())
                            .expect("real in input schema")
                    })
                    .collect();
                (schema, PhysOp::Project { coords })
            }
            Plan::Select(_, f) => {
                let schema = ops::select_schema(&children[0].schema, f)?;
                let formula = f.compile(&schema)?;
                (schema, PhysOp::Select { formula })
            }
            Plan::Rename(_, from, to) => {
                let schema = ops::rename_schema(&children[0].schema, from, to)?;
                (schema, PhysOp::Rename)
            }
            Plan::Join(..) => {
                let s1 = &children[0].schema;
                let s2 = &children[1].schema;
                let schema = ops::join_schema(s1, s2)?;
                // Join predicate: attributes real in BOTH operands.
                let key_attrs: Vec<&str> = s1
                    .attrs()
                    .iter()
                    .filter(|a| a.is_real() && s2.is_real(a.name.as_str()))
                    .map(|a| a.name.as_str())
                    .collect();
                let key_left: Vec<usize> = key_attrs
                    .iter()
                    .map(|a| s1.coord_of(a).expect("real in s1"))
                    .collect();
                let key_right: Vec<usize> = key_attrs
                    .iter()
                    .map(|a| s2.coord_of(a).expect("real in s2"))
                    .collect();
                // Output slots: pull from the left operand when real there.
                let slots: Vec<JoinSlot> = schema
                    .attrs()
                    .iter()
                    .filter(|a| a.is_real())
                    .map(|a| match s1.coord_of(a.name.as_str()) {
                        Some(c) => JoinSlot::Left(c),
                        None => JoinSlot::Right(s2.coord_of(a.name.as_str()).expect("real in s2")),
                    })
                    .collect();
                (
                    schema,
                    PhysOp::Join {
                        key_left,
                        key_right,
                        slots,
                    },
                )
            }
            Plan::Assign(_, attr, src) => {
                let in_schema = &children[0].schema;
                let schema = ops::assign_schema(in_schema, attr, src)?;
                let slots: Vec<AssignSlot> = schema
                    .attrs()
                    .iter()
                    .filter(|a| a.is_real())
                    .map(|a| {
                        if a.name == *attr {
                            AssignSlot::New
                        } else {
                            AssignSlot::Old(in_schema.coord_of(a.name.as_str()).expect("was real"))
                        }
                    })
                    .collect();
                let binding = match src {
                    AssignSource::Attr(b) => AssignBinding::Coord(
                        in_schema.coord_of(b.as_str()).expect("validated real"),
                    ),
                    AssignSource::Const(v) => AssignBinding::Const(v.clone()),
                };
                (schema, PhysOp::Assign { slots, binding })
            }
            Plan::Invoke(_, proto, service_attr) => {
                let recipe =
                    InvokeRecipe::prepare(&children[0].schema, proto, service_attr.as_str())?;
                (recipe.out_schema().clone(), PhysOp::Invoke { recipe })
            }
            Plan::Aggregate(_, group, aggs) => {
                let schema = ops::aggregate_schema(&children[0].schema, group, aggs)?;
                (
                    schema,
                    PhysOp::Aggregate {
                        group: group.clone(),
                        aggs: aggs.clone(),
                    },
                )
            }
        };
        Ok(PhysNode {
            id,
            kind,
            schema,
            op,
            children,
        })
    }

    /// Execute this node, recording one observation (children record their
    /// own first). Mirrors the interpreter's accounting: binary operators
    /// report combined child cardinality as `tuples_in`, `elapsed` is
    /// self-time, a failed application records before the error propagates.
    fn execute(
        &self,
        ctx: &ExecContext<'_>,
        actions: &mut ActionSet,
    ) -> Result<XRelation, EvalError> {
        let mut obs = OpObservation::new(self.id, self.kind);
        let result = self.apply(ctx, actions, &mut obs);
        match result {
            Ok(r) => {
                obs.tuples_out = r.len() as u64;
                ctx.metrics.record(&obs);
                Ok(r)
            }
            Err(e) => {
                // Invocation failures are already tallied; everything else
                // counts as one failed application of this operator.
                if obs.failures == 0 {
                    obs.failures = 1;
                }
                ctx.metrics.record(&obs);
                Err(e)
            }
        }
    }

    fn apply(
        &self,
        ctx: &ExecContext<'_>,
        actions: &mut ActionSet,
        obs: &mut OpObservation,
    ) -> Result<XRelation, EvalError> {
        match &self.op {
            PhysOp::Scan { name } => {
                let started = WallClock::now();
                let r = self.scan(ctx, name);
                obs.elapsed = started.elapsed();
                r
            }
            PhysOp::Union { rhs_reorder } => {
                let (ra, rb) = self.both(ctx, actions, obs)?;
                let started = WallClock::now();
                let mut out = ra;
                for t in reordered(&rb, rhs_reorder) {
                    out.insert(t);
                }
                obs.elapsed = started.elapsed();
                Ok(out)
            }
            PhysOp::Intersect { rhs_reorder } => {
                let (ra, rb) = self.both(ctx, actions, obs)?;
                let started = WallClock::now();
                let rhs: std::collections::HashSet<Tuple> = reordered(&rb, rhs_reorder).collect();
                let mut out = XRelation::empty(self.schema.clone());
                for t in ra.iter() {
                    if rhs.contains(t) {
                        out.insert(t.clone());
                    }
                }
                obs.elapsed = started.elapsed();
                Ok(out)
            }
            PhysOp::Difference { rhs_reorder } => {
                let (ra, rb) = self.both(ctx, actions, obs)?;
                let started = WallClock::now();
                let rhs: std::collections::HashSet<Tuple> = reordered(&rb, rhs_reorder).collect();
                let mut out = XRelation::empty(self.schema.clone());
                for t in ra.iter() {
                    if !rhs.contains(t) {
                        out.insert(t.clone());
                    }
                }
                obs.elapsed = started.elapsed();
                Ok(out)
            }
            PhysOp::Project { coords } => {
                let r = self.only(ctx, actions, obs)?;
                let started = WallClock::now();
                let mut out = XRelation::empty(self.schema.clone());
                for t in r.iter() {
                    out.insert(t.project_positions(coords));
                }
                obs.elapsed = started.elapsed();
                Ok(out)
            }
            PhysOp::Select { formula } => {
                let r = self.only(ctx, actions, obs)?;
                let started = WallClock::now();
                let run = || -> Result<XRelation, EvalError> {
                    let mut out = XRelation::empty(self.schema.clone());
                    for t in r.iter() {
                        if formula.matches(t)? {
                            out.insert(t.clone());
                        }
                    }
                    Ok(out)
                };
                let out = run();
                obs.elapsed = started.elapsed();
                out
            }
            PhysOp::Rename => {
                let r = self.only(ctx, actions, obs)?;
                let started = WallClock::now();
                let out = XRelation::from_tuples(self.schema.clone(), r.iter().cloned());
                obs.elapsed = started.elapsed();
                Ok(out)
            }
            PhysOp::Join {
                key_left,
                key_right,
                slots,
            } => {
                let (ra, rb) = self.both(ctx, actions, obs)?;
                let started = WallClock::now();
                let build = |t1: &Tuple, t2: &Tuple| -> Tuple {
                    slots
                        .iter()
                        .map(|s| match s {
                            JoinSlot::Left(c) => t1[*c].clone(),
                            JoinSlot::Right(c) => t2[*c].clone(),
                        })
                        .collect()
                };
                let mut out = XRelation::empty(self.schema.clone());
                if key_left.is_empty() {
                    for t1 in ra.iter() {
                        for t2 in rb.iter() {
                            out.insert(build(t1, t2));
                        }
                    }
                } else {
                    let mut table: HashMap<Vec<Value>, Vec<&Tuple>> = HashMap::new();
                    for t2 in rb.iter() {
                        let k: Vec<Value> = key_right.iter().map(|&c| t2[c].clone()).collect();
                        table.entry(k).or_default().push(t2);
                    }
                    for t1 in ra.iter() {
                        let k: Vec<Value> = key_left.iter().map(|&c| t1[c].clone()).collect();
                        if let Some(matches) = table.get(&k) {
                            for t2 in matches {
                                out.insert(build(t1, t2));
                            }
                        }
                    }
                }
                obs.elapsed = started.elapsed();
                Ok(out)
            }
            PhysOp::Assign { slots, binding } => {
                let r = self.only(ctx, actions, obs)?;
                let started = WallClock::now();
                let mut out = XRelation::empty(self.schema.clone());
                for t in r.iter() {
                    let v = match binding {
                        AssignBinding::Coord(c) => t[*c].clone(),
                        AssignBinding::Const(v) => v.clone(),
                    };
                    let new_t: Tuple = slots
                        .iter()
                        .map(|s| match s {
                            AssignSlot::Old(c) => t[*c].clone(),
                            AssignSlot::New => v.clone(),
                        })
                        .collect();
                    out.insert(new_t);
                }
                obs.elapsed = started.elapsed();
                Ok(out)
            }
            PhysOp::Invoke { recipe } => {
                let r = self.only(ctx, actions, obs)?;
                let mut tally = InvokeTally::default();
                let started = WallClock::now();
                let tuples: Vec<&Tuple> = r.iter().collect();
                let out = recipe
                    .invoke_batch_observed(
                        &tuples,
                        ctx.invoker,
                        ctx.at,
                        ctx.options.invoke_parallelism,
                        actions,
                        &mut tally,
                        ctx.options.degrade,
                    )
                    .map(|ts| XRelation::from_tuples(recipe.out_schema().clone(), ts));
                obs.elapsed = started.elapsed();
                obs.invocations = tally.invocations;
                obs.cache_misses = tally.invocations;
                obs.failures = tally.failures;
                obs.degraded = tally.degraded;
                obs.panics = tally.panics;
                out
            }
            PhysOp::Aggregate { group, aggs } => {
                let r = self.only(ctx, actions, obs)?;
                let started = WallClock::now();
                let out = ops::aggregate(&r, group, aggs);
                obs.elapsed = started.elapsed();
                out
            }
        }
    }

    /// Evaluate the single child and charge its cardinality to `tuples_in`.
    fn only(
        &self,
        ctx: &ExecContext<'_>,
        actions: &mut ActionSet,
        obs: &mut OpObservation,
    ) -> Result<XRelation, EvalError> {
        let r = self.children[0].execute(ctx, actions)?;
        obs.tuples_in = r.len() as u64;
        Ok(r)
    }

    /// Evaluate both children and charge their combined cardinality.
    fn both(
        &self,
        ctx: &ExecContext<'_>,
        actions: &mut ActionSet,
        obs: &mut OpObservation,
    ) -> Result<(XRelation, XRelation), EvalError> {
        let ra = self.children[0].execute(ctx, actions)?;
        let rb = self.children[1].execute(ctx, actions)?;
        obs.tuples_in = (ra.len() + rb.len()) as u64;
        Ok((ra, rb))
    }

    /// Look up the scanned relation, normalizing its tuples into the
    /// compile-time coordinate order if the stored schema instance was
    /// replaced by an equivalent one since compilation. An incompatible
    /// replacement is a runtime error: downstream coordinate maps would be
    /// meaningless.
    fn scan(&self, ctx: &ExecContext<'_>, name: &str) -> Result<XRelation, EvalError> {
        let r = ctx
            .env
            .relation(name)
            .ok_or_else(|| EvalError::Plan(PlanError::UnknownRelation(name.to_string())))?;
        if SchemaRef::ptr_eq(&r.schema_ref(), &self.schema) {
            return Ok(r.clone());
        }
        if !r.schema().compatible_with(&self.schema) {
            return Err(EvalError::Value(format!(
                "relation `{name}` schema changed since compilation"
            )));
        }
        let map = self
            .schema
            .reorder_map(r.schema())
            .expect("checked compatible");
        let identity: Vec<usize> = (0..self.schema.real_arity()).collect();
        if map == identity {
            Ok(XRelation::from_tuples(
                self.schema.clone(),
                r.iter().cloned(),
            ))
        } else {
            Ok(XRelation::from_tuples(
                self.schema.clone(),
                r.iter().map(|t| t.project_positions(&map)),
            ))
        }
    }
}

/// Iterate `r`'s tuples permuted by `map` (cloned as-is when `None`).
fn reordered<'r>(
    r: &'r XRelation,
    map: &'r Option<Vec<usize>>,
) -> impl Iterator<Item = Tuple> + 'r {
    r.iter().map(move |t| match map {
        None => t.clone(),
        Some(m) => t.project_positions(m),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::examples::example_environment;
    use crate::eval::CountingInvoker;
    use crate::metrics::ExecStats;
    use crate::plan::examples::{q1, q1_prime, q2, q2_prime};
    use crate::service::fixtures::example_registry;
    use crate::time::Instant;

    #[test]
    fn compiled_plan_matches_interpreter_outputs() {
        let env = example_environment();
        let reg = example_registry();
        for plan in [q1(), q1_prime(), q2(), q2_prime()] {
            let physical = PhysicalPlan::compile(&plan, &env).unwrap();
            for t in 0..4 {
                let ctx = ExecContext::new(&env, &reg, Instant(t));
                let a = physical.execute(&ctx).unwrap();
                let b = ctx.execute(&plan).unwrap();
                assert_eq!(a.relation, b.relation);
                assert_eq!(a.actions, b.actions);
            }
        }
    }

    #[test]
    fn compiled_schema_matches_static_validation() {
        let env = example_environment();
        for plan in [q1(), q2()] {
            let physical = PhysicalPlan::compile(&plan, &env).unwrap();
            assert_eq!(*physical.schema(), plan.schema(&env).unwrap());
        }
    }

    #[test]
    fn compile_rejects_what_validation_rejects() {
        let env = example_environment();
        let bad = Plan::relation("no_such_relation");
        assert!(matches!(
            PhysicalPlan::compile(&bad, &env),
            Err(PlanError::UnknownRelation(_))
        ));
    }

    #[test]
    fn node_ids_are_pre_order_and_stable_across_runs() {
        let env = example_environment();
        let reg = example_registry();
        let physical = PhysicalPlan::compile(&q1(), &env).unwrap();
        assert_eq!(physical.node_count(), 4);
        let stats = ExecStats::new();
        let ctx = ExecContext::with_metrics(&env, &reg, Instant(0), &stats);
        physical.execute(&ctx).unwrap();
        physical.execute(&ctx).unwrap();
        // q1 pre-order: 0=β 1=α 2=σ 3=Relation — two applications each.
        let nodes = stats.nodes();
        assert_eq!(nodes.len(), 4);
        assert_eq!(nodes[&NodeId(0)].op, OpKind::Invoke);
        assert_eq!(nodes[&NodeId(3)].op, OpKind::Relation);
        assert!(nodes.values().all(|n| n.applications == 2));
    }

    #[test]
    fn parallel_invoke_is_output_identical_and_counts_once_per_tuple() {
        let env = example_environment();
        let reg = example_registry();
        let plan = q2_prime(); // β before σ: invokes every camera
        let physical = PhysicalPlan::compile(&plan, &env).unwrap();
        let serial_counting = CountingInvoker::new(&reg);
        let serial = {
            let ctx = ExecContext::new(&env, &serial_counting, Instant(1));
            physical.execute(&ctx).unwrap()
        };
        for workers in [2, 4, 16] {
            let counting = CountingInvoker::new(&reg);
            let stats = ExecStats::new();
            let ctx = ExecContext::with_metrics(&env, &counting, Instant(1), &stats)
                .with_options(ExecOptions::parallel(workers));
            let out = physical.execute(&ctx).unwrap();
            assert_eq!(out.relation, serial.relation);
            assert_eq!(out.actions, serial.actions);
            assert_eq!(counting.snapshot(), serial_counting.snapshot());
            assert_eq!(stats.total_invocations(), serial_counting.total());
            assert_eq!(stats.total_failures(), 0);
        }
    }
}
