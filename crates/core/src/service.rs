//! Services and invocation functions (§2.3.1, Definition 1).
//!
//! A service `ω ∈ Ω` implements a finite set of prototypes and is named by a
//! service reference `id(ω) ∈ D`. A prototype invocation
//! `invoke_ψ(s, t) → r` maps a service reference plus an input tuple to a
//! *relation* (0, 1 or several tuples) over the prototype's output schema.
//!
//! The [`Invoker`] trait is the evaluator's view of the service layer; the
//! core ships a [`StaticRegistry`] sufficient for one-shot evaluation and
//! tests, while `serena-services` provides the full dynamic
//! discovery-driven registry.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::sync::RwLock;

use crate::error::EvalError;
use crate::prototype::Prototype;
use crate::time::Instant;
use crate::tuple::Tuple;
use crate::value::ServiceRef;

/// A service implementation: the dynamic half of a distributed
/// functionality (§2.1 decouples declaration/prototype from
/// implementation/service).
///
/// Implementations must be **deterministic at a given instant** (§3.2): two
/// invocations with the same `(prototype, input, at)` must return the same
/// relation. The equivalence harness and the rewrite property tests rely on
/// this.
pub trait Service: Send + Sync {
    /// `prototypes(ω)`: the prototypes this service implements.
    fn prototypes(&self) -> Vec<Arc<Prototype>>;

    /// `invoke_ψ(id(ω), t)` at logical instant `at`. The returned tuples
    /// must be over `Output_ψ`; the registry validates this.
    ///
    /// Errors are free-form strings (device fault, simulated network error);
    /// the registry wraps them into [`EvalError::InvocationFailed`].
    fn invoke(
        &self,
        prototype: &Prototype,
        input: &Tuple,
        at: Instant,
    ) -> Result<Vec<Tuple>, String>;

    /// [`Service::invoke`] with a *classified* failure channel
    /// ([`InvokeFault`]): proxies for remote services use it to distinguish
    /// an application error reported by the remote implementation (which
    /// registries wrap into [`EvalError::InvocationFailed`], exactly as for
    /// a local service) from a transport fault (the node was unreachable —
    /// surfaced as [`EvalError::RemoteUnavailable`]) and to relay an
    /// already-typed [`EvalError`] from the remote registry *verbatim*, so
    /// an invocation observes byte-identical errors whether the service is
    /// local or remote.
    ///
    /// The provided implementation wraps [`Service::invoke`], so ordinary
    /// (local) services need not care.
    fn invoke_classified(
        &self,
        prototype: &Prototype,
        input: &Tuple,
        at: Instant,
    ) -> Result<Vec<Tuple>, InvokeFault> {
        self.invoke(prototype, input, at)
            .map_err(InvokeFault::Application)
    }
}

/// A classified invocation failure, as reported by
/// [`Service::invoke_classified`]. Registries map each variant onto the
/// corresponding [`EvalError`]; see [`fault_to_eval_error`].
#[derive(Debug, Clone, PartialEq)]
pub enum InvokeFault {
    /// The service implementation itself failed (device fault, simulated
    /// network error, …) — the classic free-form-string channel of
    /// [`Service::invoke`]. Becomes [`EvalError::InvocationFailed`].
    Application(String),
    /// A remote registry already classified the failure; relay its typed
    /// error verbatim. This is what keeps error multisets byte-identical
    /// across local and remote deployments: without it a relayed
    /// `InvocationFailed` would be re-wrapped into a nested
    /// "invocation of … failed: invocation of … failed: …".
    Relayed(EvalError),
    /// The transport to the node hosting the service failed; the service
    /// never reported an outcome. Becomes [`EvalError::RemoteUnavailable`].
    Transport {
        /// The remote node (peer id or address) that was unreachable.
        node: String,
        /// Transport-level failure detail.
        reason: String,
    },
}

/// Map a classified fault onto the [`EvalError`] a registry reports for an
/// invocation of `prototype` on `service`. Shared by every registry so
/// local and proxied services surface identical errors.
pub fn fault_to_eval_error(
    fault: InvokeFault,
    service: &ServiceRef,
    prototype: &Prototype,
) -> EvalError {
    match fault {
        InvokeFault::Application(reason) => EvalError::InvocationFailed {
            service: service.to_string(),
            prototype: prototype.name().to_string(),
            reason,
        },
        InvokeFault::Relayed(e) => e,
        InvokeFault::Transport { node, reason } => EvalError::RemoteUnavailable {
            service: service.to_string(),
            prototype: prototype.name().to_string(),
            node,
            reason,
        },
    }
}

/// A service built from a closure, for tests and examples.
///
/// ```
/// use serena_core::service::FnService;
/// use serena_core::prototype::examples::get_temperature;
/// use serena_core::tuple::Tuple;
/// use serena_core::value::Value;
///
/// let svc = FnService::new(vec![get_temperature()], |_proto, _input, at| {
///     Ok(vec![Tuple::new(vec![Value::Real(20.0 + at.ticks() as f64)])])
/// });
/// ```
pub struct FnService<F> {
    prototypes: Vec<Arc<Prototype>>,
    f: F,
}

impl<F> FnService<F>
where
    F: Fn(&Prototype, &Tuple, Instant) -> Result<Vec<Tuple>, String> + Send + Sync,
{
    /// Wrap a closure as a service implementing `prototypes`.
    pub fn new(prototypes: Vec<Arc<Prototype>>, f: F) -> Self {
        FnService { prototypes, f }
    }
}

impl<F> Service for FnService<F>
where
    F: Fn(&Prototype, &Tuple, Instant) -> Result<Vec<Tuple>, String> + Send + Sync,
{
    fn prototypes(&self) -> Vec<Arc<Prototype>> {
        self.prototypes.clone()
    }

    fn invoke(
        &self,
        prototype: &Prototype,
        input: &Tuple,
        at: Instant,
    ) -> Result<Vec<Tuple>, String> {
        (self.f)(prototype, input, at)
    }
}

/// The evaluator's hook into the service layer: resolves a service
/// reference and performs `invoke_ψ` (Definition 1), with result-schema
/// validation.
pub trait Invoker: Send + Sync {
    /// Invoke `prototype` on the service referenced by `service_ref` with
    /// `input`, at logical instant `at`.
    fn invoke(
        &self,
        prototype: &Prototype,
        service_ref: &ServiceRef,
        input: &Tuple,
        at: Instant,
    ) -> Result<Vec<Tuple>, EvalError>;

    /// Service references of all currently registered services implementing
    /// `prototype` (used by service-discovery queries, §5.1).
    fn providers_of(&self, prototype: &str) -> Vec<ServiceRef>;
}

impl<I: Invoker + ?Sized> Invoker for &I {
    fn invoke(
        &self,
        prototype: &Prototype,
        service_ref: &ServiceRef,
        input: &Tuple,
        at: Instant,
    ) -> Result<Vec<Tuple>, EvalError> {
        (**self).invoke(prototype, service_ref, input, at)
    }

    fn providers_of(&self, prototype: &str) -> Vec<ServiceRef> {
        (**self).providers_of(prototype)
    }
}

impl<I: Invoker + ?Sized> Invoker for Box<I> {
    fn invoke(
        &self,
        prototype: &Prototype,
        service_ref: &ServiceRef,
        input: &Tuple,
        at: Instant,
    ) -> Result<Vec<Tuple>, EvalError> {
        (**self).invoke(prototype, service_ref, input, at)
    }

    fn providers_of(&self, prototype: &str) -> Vec<ServiceRef> {
        (**self).providers_of(prototype)
    }
}

impl<I: Invoker + ?Sized> Invoker for Arc<I> {
    fn invoke(
        &self,
        prototype: &Prototype,
        service_ref: &ServiceRef,
        input: &Tuple,
        at: Instant,
    ) -> Result<Vec<Tuple>, EvalError> {
        (**self).invoke(prototype, service_ref, input, at)
    }

    fn providers_of(&self, prototype: &str) -> Vec<ServiceRef> {
        (**self).providers_of(prototype)
    }
}

/// One middleware layer of an [`InvokerStack`]: consumes the invoker built
/// so far and returns the decorated one.
///
/// Any `FnOnce(Box<dyn Invoker + 'a>) -> Box<dyn Invoker + 'a>` closure is a
/// layer, so decorators expose a `layer(...)` constructor returning such a
/// closure instead of hand-nesting wrappers:
///
/// ```
/// use serena_core::service::{fixtures::example_registry, Invoker, InvokerStack};
/// use serena_core::telemetry::InstrumentedLayer;
///
/// let base = example_registry();
/// let stack = InvokerStack::new(&base).layer(InstrumentedLayer::new());
/// assert!(!stack.providers_of("getTemperature").is_empty());
/// ```
pub trait InvokerLayer<'a> {
    /// Wrap `inner`, returning the decorated invoker.
    fn wrap(self, inner: Box<dyn Invoker + 'a>) -> Box<dyn Invoker + 'a>;
}

impl<'a, F> InvokerLayer<'a> for F
where
    F: FnOnce(Box<dyn Invoker + 'a>) -> Box<dyn Invoker + 'a>,
{
    fn wrap(self, inner: Box<dyn Invoker + 'a>) -> Box<dyn Invoker + 'a> {
        self(inner)
    }
}

/// A composable middleware stack over an [`Invoker`]: a base invoker plus
/// zero or more [`InvokerLayer`]s applied bottom-up, so the **last** layer
/// added is the outermost decorator (the first to see each call).
///
/// The stack replaces ad-hoc hand-nesting of decorators (instrumentation,
/// simulated latency, resilience): each decorator contributes a layer and
/// callers assemble them uniformly with [`InvokerStack::layer`]. The stack
/// itself implements [`Invoker`], so it drops in anywhere an invoker is
/// expected.
pub struct InvokerStack<'a> {
    top: Box<dyn Invoker + 'a>,
}

impl<'a> InvokerStack<'a> {
    /// A stack holding just the base invoker.
    pub fn new(base: impl Invoker + 'a) -> Self {
        InvokerStack {
            top: Box::new(base),
        }
    }

    /// Add `layer` as the new outermost decorator.
    pub fn layer(self, layer: impl InvokerLayer<'a>) -> Self {
        InvokerStack {
            top: layer.wrap(self.top),
        }
    }

    /// Unwrap into the composed invoker.
    pub fn into_inner(self) -> Box<dyn Invoker + 'a> {
        self.top
    }
}

impl Invoker for InvokerStack<'_> {
    fn invoke(
        &self,
        prototype: &Prototype,
        service_ref: &ServiceRef,
        input: &Tuple,
        at: Instant,
    ) -> Result<Vec<Tuple>, EvalError> {
        self.top.invoke(prototype, service_ref, input, at)
    }

    fn providers_of(&self, prototype: &str) -> Vec<ServiceRef> {
        self.top.providers_of(prototype)
    }
}

/// Run one invocation with panic containment: a panicking service becomes
/// [`EvalError::Panicked`] instead of unwinding into (and aborting) the
/// execution engine. Used by the β batch executor and by
/// [`CatchPanicInvoker`]; string panic payloads are preserved as the
/// error's `reason`.
pub fn invoke_contained(
    invoker: &dyn Invoker,
    prototype: &Prototype,
    service_ref: &ServiceRef,
    input: &Tuple,
    at: Instant,
) -> Result<Vec<Tuple>, EvalError> {
    let call = std::panic::AssertUnwindSafe(|| invoker.invoke(prototype, service_ref, input, at));
    match std::panic::catch_unwind(call) {
        Ok(result) => result,
        Err(payload) => Err(EvalError::Panicked {
            service: service_ref.to_string(),
            prototype: prototype.name().to_string(),
            reason: panic_reason(payload.as_ref()),
        }),
    }
}

/// Extract a human-readable reason from a panic payload.
fn panic_reason(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        "<non-string panic>".to_string()
    }
}

/// An [`Invoker`] decorator containing panics: any panic raised by the
/// wrapped invoker (typically a buggy service implementation) is caught and
/// surfaced as [`EvalError::Panicked`]. Placed *innermost* in an
/// [`InvokerStack`] — directly over the registry — so outer layers
/// (instrumentation, health, resilience) observe the panic as an ordinary
/// invocation error.
pub struct CatchPanicInvoker<I> {
    inner: I,
}

impl<I: Invoker> CatchPanicInvoker<I> {
    /// Wrap `inner` with panic containment.
    pub fn new(inner: I) -> Self {
        CatchPanicInvoker { inner }
    }
}

impl<I: Invoker> Invoker for CatchPanicInvoker<I> {
    fn invoke(
        &self,
        prototype: &Prototype,
        service_ref: &ServiceRef,
        input: &Tuple,
        at: Instant,
    ) -> Result<Vec<Tuple>, EvalError> {
        invoke_contained(&self.inner, prototype, service_ref, input, at)
    }

    fn providers_of(&self, prototype: &str) -> Vec<ServiceRef> {
        self.inner.providers_of(prototype)
    }
}

/// The [`InvokerLayer`] form of [`CatchPanicInvoker`]. Add it *first* when
/// building a stack so it wraps the base registry and every outer layer
/// sees contained panics as errors.
#[derive(Default, Clone, Copy)]
pub struct CatchPanicLayer;

impl CatchPanicLayer {
    /// The layer (unit struct; exists for call-site symmetry).
    pub fn new() -> Self {
        CatchPanicLayer
    }
}

impl<'a> InvokerLayer<'a> for CatchPanicLayer {
    fn wrap(self, inner: Box<dyn Invoker + 'a>) -> Box<dyn Invoker + 'a> {
        Box::new(CatchPanicInvoker::new(inner))
    }
}

/// Validate an invocation result against `Output_ψ` — arity and value
/// types. Shared by every `Invoker` implementation.
pub fn validate_invocation_result(
    prototype: &Prototype,
    service: &ServiceRef,
    result: &[Tuple],
) -> Result<(), EvalError> {
    let out = prototype.output();
    for t in result {
        if t.arity() != out.arity() {
            return Err(EvalError::MalformedInvocationResult {
                service: service.to_string(),
                prototype: prototype.name().to_string(),
                detail: format!("arity {} != output schema arity {}", t.arity(), out.arity()),
            });
        }
        for (i, (name, ty)) in out.attrs().enumerate() {
            if !t[i].conforms_to(*ty) {
                return Err(EvalError::MalformedInvocationResult {
                    service: service.to_string(),
                    prototype: prototype.name().to_string(),
                    detail: format!(
                        "output attribute `{name}`: expected {ty}, got {}",
                        t[i].data_type()
                    ),
                });
            }
        }
    }
    Ok(())
}

/// A static in-memory service registry: the minimal [`Invoker`] for
/// one-shot query evaluation and tests. Dynamic discovery lives in
/// `serena-services`.
#[derive(Default)]
pub struct StaticRegistry {
    services: RwLock<HashMap<ServiceRef, Arc<dyn Service>>>,
}

impl StaticRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a service under `reference`. Replaces any previous service
    /// with the same reference.
    pub fn register(&self, reference: impl Into<ServiceRef>, service: Arc<dyn Service>) {
        self.services.write().insert(reference.into(), service);
    }

    /// Remove a service. Returns `true` if it was present.
    pub fn unregister(&self, reference: &ServiceRef) -> bool {
        self.services.write().remove(reference).is_some()
    }

    /// Number of registered services.
    pub fn len(&self) -> usize {
        self.services.read().len()
    }

    /// True iff no services are registered.
    pub fn is_empty(&self) -> bool {
        self.services.read().is_empty()
    }

    /// Whether `reference` is registered.
    pub fn contains(&self, reference: &ServiceRef) -> bool {
        self.services.read().contains_key(reference)
    }
}

impl Invoker for StaticRegistry {
    fn invoke(
        &self,
        prototype: &Prototype,
        service_ref: &ServiceRef,
        input: &Tuple,
        at: Instant,
    ) -> Result<Vec<Tuple>, EvalError> {
        let service = {
            let guard = self.services.read();
            guard.get(service_ref).cloned()
        }
        .ok_or_else(|| EvalError::UnknownService {
            reference: service_ref.to_string(),
        })?;
        if !service
            .prototypes()
            .iter()
            .any(|p| p.name() == prototype.name())
        {
            return Err(EvalError::PrototypeNotImplemented {
                service: service_ref.to_string(),
                prototype: prototype.name().to_string(),
            });
        }
        let result = service
            .invoke_classified(prototype, input, at)
            .map_err(|fault| fault_to_eval_error(fault, service_ref, prototype))?;
        validate_invocation_result(prototype, service_ref, &result)?;
        Ok(result)
    }

    fn providers_of(&self, prototype: &str) -> Vec<ServiceRef> {
        let guard = self.services.read();
        let mut refs: Vec<ServiceRef> = guard
            .iter()
            .filter(|(_, s)| s.prototypes().iter().any(|p| p.name() == prototype))
            .map(|(r, _)| r.clone())
            .collect();
        refs.sort();
        refs
    }
}

/// An [`Invoker`] that refuses every invocation — for evaluating purely
/// relational queries where reaching a β operator is a bug.
pub struct NoServices;

impl Invoker for NoServices {
    fn invoke(
        &self,
        prototype: &Prototype,
        service_ref: &ServiceRef,
        _input: &Tuple,
        _at: Instant,
    ) -> Result<Vec<Tuple>, EvalError> {
        Err(EvalError::UnknownService {
            reference: format!(
                "{service_ref} (NoServices invoker, prototype {})",
                prototype.name()
            ),
        })
    }

    fn providers_of(&self, _prototype: &str) -> Vec<ServiceRef> {
        Vec::new()
    }
}

impl fmt::Debug for StaticRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let guard = self.services.read();
        let mut refs: Vec<&ServiceRef> = guard.keys().collect();
        refs.sort();
        write!(f, "StaticRegistry{refs:?}")
    }
}

/// Test fixtures: deterministic simulated services for the paper's running
/// example, usable from any crate in the workspace.
pub mod fixtures {
    use super::*;
    use crate::prototype::examples as protos;
    use crate::value::Value;

    /// A deterministic temperature sensor: temperature is a pure function
    /// of (seed, instant): `base + (ticks * 7 + seed * 13) % 20`.
    pub fn temperature_sensor(seed: u64) -> Arc<dyn Service> {
        Arc::new(FnService::new(
            vec![protos::get_temperature()],
            move |_p, _in, at| {
                let t = 10.0 + ((at.ticks() * 7 + seed * 13) % 20) as f64;
                Ok(vec![Tuple::new(vec![Value::Real(t)])])
            },
        ))
    }

    /// A deterministic camera implementing `checkPhoto` and `takePhoto`.
    /// Quality is a function of (seed, area length, instant); photos are
    /// tiny synthetic blobs embedding the inputs.
    pub fn camera(seed: u64) -> Arc<dyn Service> {
        Arc::new(FnService::new(
            vec![protos::check_photo(), protos::take_photo()],
            move |p, input, at| match p.name() {
                "checkPhoto" => {
                    let area = input.get(0).and_then(|v| v.as_str()).unwrap_or("");
                    let q = ((seed + area.len() as u64 + at.ticks()) % 10) as i64;
                    let delay = 0.1 * ((seed % 5) as f64 + 1.0);
                    Ok(vec![Tuple::new(vec![Value::Int(q), Value::Real(delay)])])
                }
                "takePhoto" => {
                    let area = input.get(0).and_then(|v| v.as_str()).unwrap_or("");
                    let quality = input.get(1).and_then(|v| v.as_int()).unwrap_or(0);
                    let payload = format!("photo[{area}|q={quality}|s={seed}|t={}]", at.ticks());
                    Ok(vec![Tuple::new(vec![Value::blob(payload.into_bytes())])])
                }
                other => Err(format!("camera does not implement {other}")),
            },
        ))
    }

    /// A temperature sensor whose implementation panics on every call —
    /// the fixture for panic-containment tests. A well-behaved engine
    /// surfaces it as [`EvalError::Panicked`](crate::error::EvalError)
    /// instead of aborting.
    pub fn panicking_sensor() -> Arc<dyn Service> {
        Arc::new(FnService::new(
            vec![protos::get_temperature()],
            move |_p, _in, _at| -> Result<Vec<Tuple>, String> { panic!("sensor firmware bug") },
        ))
    }

    /// A messenger implementing `sendMessage`; always reports `sent=true`.
    /// Side effects (the outbox) are modeled in `serena-services`; at the
    /// algebra level the *action set* records the effect.
    pub fn messenger() -> Arc<dyn Service> {
        Arc::new(FnService::new(
            vec![protos::send_message()],
            |_p, _input, _at| Ok(vec![Tuple::new(vec![Value::Bool(true)])]),
        ))
    }

    /// Registry pre-loaded with the paper's 9 services (Table 1):
    /// email, jabber, camera01, camera02, webcam07, sensor01, sensor06,
    /// sensor07, sensor22.
    pub fn example_registry() -> StaticRegistry {
        let reg = StaticRegistry::new();
        reg.register("email", messenger());
        reg.register("jabber", messenger());
        reg.register("camera01", camera(1));
        reg.register("camera02", camera(2));
        reg.register("webcam07", camera(7));
        reg.register("sensor01", temperature_sensor(1));
        reg.register("sensor06", temperature_sensor(6));
        reg.register("sensor07", temperature_sensor(7));
        reg.register("sensor22", temperature_sensor(22));
        reg
    }
}

#[cfg(test)]
mod tests {
    use super::fixtures::*;
    use super::*;
    use crate::prototype::examples as protos;
    use crate::tuple;

    #[test]
    fn registry_resolves_and_invokes() {
        let reg = example_registry();
        let out = reg
            .invoke(
                &protos::get_temperature(),
                &ServiceRef::new("sensor01"),
                &Tuple::empty(),
                Instant(3),
            )
            .unwrap();
        assert_eq!(out.len(), 1);
        assert!(out[0][0].as_real().is_some());
    }

    #[test]
    fn determinism_at_an_instant() {
        let reg = example_registry();
        let call = |at| {
            reg.invoke(
                &protos::get_temperature(),
                &ServiceRef::new("sensor22"),
                &Tuple::empty(),
                at,
            )
            .unwrap()
        };
        assert_eq!(call(Instant(5)), call(Instant(5)));
        // ...but time-dependent across instants (the paper's motivation for
        // fixing the instant in Definition 9).
        assert_ne!(call(Instant(5)), call(Instant(6)));
    }

    #[test]
    fn unknown_service_and_missing_prototype() {
        let reg = example_registry();
        let err = reg
            .invoke(
                &protos::get_temperature(),
                &ServiceRef::new("nope"),
                &Tuple::empty(),
                Instant::ZERO,
            )
            .unwrap_err();
        assert!(matches!(err, EvalError::UnknownService { .. }));

        let err = reg
            .invoke(
                &protos::send_message(),
                &ServiceRef::new("sensor01"),
                &tuple!["a@b", "hi"],
                Instant::ZERO,
            )
            .unwrap_err();
        assert!(matches!(err, EvalError::PrototypeNotImplemented { .. }));
    }

    #[test]
    fn malformed_results_rejected() {
        let reg = StaticRegistry::new();
        reg.register(
            "bad",
            Arc::new(FnService::new(
                vec![protos::get_temperature()],
                |_, _, _| Ok(vec![tuple!["not a real"]]),
            )),
        );
        let err = reg
            .invoke(
                &protos::get_temperature(),
                &ServiceRef::new("bad"),
                &Tuple::empty(),
                Instant::ZERO,
            )
            .unwrap_err();
        assert!(matches!(err, EvalError::MalformedInvocationResult { .. }));
    }

    #[test]
    fn invocation_failure_wraps_reason() {
        let reg = StaticRegistry::new();
        reg.register(
            "flaky",
            Arc::new(FnService::new(
                vec![protos::get_temperature()],
                |_, _, _| Err("device unreachable".to_string()),
            )),
        );
        let err = reg
            .invoke(
                &protos::get_temperature(),
                &ServiceRef::new("flaky"),
                &Tuple::empty(),
                Instant::ZERO,
            )
            .unwrap_err();
        match err {
            EvalError::InvocationFailed { reason, .. } => {
                assert_eq!(reason, "device unreachable")
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn providers_of_lists_implementors_sorted() {
        let reg = example_registry();
        let sensors: Vec<String> = reg
            .providers_of("getTemperature")
            .into_iter()
            .map(|r| r.to_string())
            .collect();
        assert_eq!(
            sensors,
            vec!["sensor01", "sensor06", "sensor07", "sensor22"]
        );
        assert_eq!(reg.providers_of("checkPhoto").len(), 3);
        assert_eq!(reg.providers_of("noSuchProto").len(), 0);
    }

    #[test]
    fn unregister_removes() {
        let reg = example_registry();
        assert_eq!(reg.len(), 9);
        assert!(reg.unregister(&ServiceRef::new("email")));
        assert!(!reg.contains(&ServiceRef::new("email")));
        assert_eq!(reg.len(), 8);
    }

    #[test]
    fn no_services_invoker_always_fails() {
        let inv = NoServices;
        assert!(inv
            .invoke(
                &protos::get_temperature(),
                &ServiceRef::new("x"),
                &Tuple::empty(),
                Instant::ZERO
            )
            .is_err());
        assert!(inv.providers_of("getTemperature").is_empty());
    }

    #[test]
    fn invoker_stack_layers_apply_outermost_last() {
        use crate::sync::Mutex;
        // a layer that logs its tag on every call — order of tags shows
        // which decorator is outermost
        struct Tagger<'a> {
            inner: Box<dyn Invoker + 'a>,
            tag: &'static str,
            log: &'a Mutex<Vec<&'static str>>,
        }
        impl Invoker for Tagger<'_> {
            fn invoke(
                &self,
                prototype: &Prototype,
                service_ref: &ServiceRef,
                input: &Tuple,
                at: Instant,
            ) -> Result<Vec<Tuple>, EvalError> {
                self.log.lock().push(self.tag);
                self.inner.invoke(prototype, service_ref, input, at)
            }
            fn providers_of(&self, prototype: &str) -> Vec<ServiceRef> {
                self.inner.providers_of(prototype)
            }
        }
        let log = Mutex::new(Vec::new());
        let base = example_registry();
        let stack = InvokerStack::new(&base)
            .layer(|inner| {
                Box::new(Tagger {
                    inner,
                    tag: "inner",
                    log: &log,
                }) as Box<dyn Invoker + '_>
            })
            .layer(|inner| {
                Box::new(Tagger {
                    inner,
                    tag: "outer",
                    log: &log,
                }) as Box<dyn Invoker + '_>
            });
        let out = stack
            .invoke(
                &protos::get_temperature(),
                &ServiceRef::new("sensor01"),
                &Tuple::empty(),
                Instant(1),
            )
            .unwrap();
        assert_eq!(out.len(), 1);
        // last layer added sees the call first
        assert_eq!(*log.lock(), vec!["outer", "inner"]);
        assert_eq!(stack.providers_of("getTemperature").len(), 4);
    }

    #[test]
    fn invoker_blanket_impls_delegate() {
        use std::sync::Arc as StdArc;
        let base = example_registry();
        let call = |inv: &dyn Invoker| {
            inv.invoke(
                &protos::get_temperature(),
                &ServiceRef::new("sensor01"),
                &Tuple::empty(),
                Instant(2),
            )
            .unwrap()
        };
        let direct = call(&base);
        let by_ref: &StaticRegistry = &base;
        assert_eq!(call(&&by_ref), direct);
        let boxed: Box<dyn Invoker> = Box::new(example_registry());
        assert_eq!(call(&boxed), direct);
        let arced: StdArc<dyn Invoker> = StdArc::new(example_registry());
        assert_eq!(call(&arced), direct);
    }

    #[test]
    fn catch_panic_layer_contains_service_panics() {
        let reg = StaticRegistry::new();
        reg.register("boom", panicking_sensor());
        reg.register("sensor01", temperature_sensor(1));
        let stack = InvokerStack::new(&reg).layer(CatchPanicLayer::new());

        // silence the default panic hook's stderr backtrace for this test
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let err = stack
            .invoke(
                &protos::get_temperature(),
                &ServiceRef::new("boom"),
                &Tuple::empty(),
                Instant(1),
            )
            .unwrap_err();
        std::panic::set_hook(prev);

        match err {
            EvalError::Panicked {
                service,
                prototype,
                reason,
            } => {
                assert_eq!(service, "boom");
                assert_eq!(prototype, "getTemperature");
                assert_eq!(reason, "sensor firmware bug");
            }
            other => panic!("unexpected: {other:?}"),
        }
        // the invoker is still usable after the contained panic
        let out = stack
            .invoke(
                &protos::get_temperature(),
                &ServiceRef::new("sensor01"),
                &Tuple::empty(),
                Instant(1),
            )
            .unwrap();
        assert_eq!(out.len(), 1);
        // discovery passes through
        assert_eq!(stack.providers_of("getTemperature").len(), 2);
    }

    #[test]
    fn take_photo_embeds_inputs() {
        let reg = example_registry();
        let out = reg
            .invoke(
                &protos::take_photo(),
                &ServiceRef::new("camera01"),
                &tuple!["office", 5],
                Instant(2),
            )
            .unwrap();
        let blob = out[0][0].as_blob().unwrap();
        let text = std::str::from_utf8(blob).unwrap();
        assert!(text.contains("office"));
        assert!(text.contains("q=5"));
    }
}
