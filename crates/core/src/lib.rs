//! # serena-core
//!
//! From-scratch reproduction of the **Serena algebra** from Gripay, Laforest
//! & Petit, *A Simple (yet Powerful) Algebra for Pervasive Environments*
//! (EDBT 2010): a service-enabled relational algebra over *relational
//! pervasive environments* — databases extended with data streams and
//! active/passive services.
//!
//! The crate provides, bottom-up:
//!
//! * the data model of §2.3: constants ([`value`]), attributes ([`attr`]),
//!   tuples ([`tuple`](mod@tuple)), prototypes & services ([`prototype`], [`service`]),
//!   extended relation schemas with virtual attributes and binding patterns
//!   ([`schema`], [`binding`]), X-Relations ([`xrelation`]) and relational
//!   pervasive environments ([`env`](mod@env));
//! * the Serena algebra of §3: the operators of Table 3 ([`ops`]), logical
//!   plans with static validation ([`plan`]), evaluation with action-set
//!   collection ([`eval`], [`action`]);
//! * query equivalence per Definition 9 ([`equiv`]) and the rewrite rules
//!   of Table 5 with a heuristic optimizer ([`rewrite`]).
//!
//! The continuous extension over XD-Relations (§4) lives in the companion
//! crate `serena-stream`; dynamic service discovery (§5.1) in
//! `serena-services`; the PEMS runtime (Figure 1) in `serena-pems`.
//!
//! ## Quick start
//!
//! ```
//! use serena_core::prelude::*;
//! use serena_core::service::fixtures::example_registry;
//! use serena_core::xrelation::examples::contacts;
//!
//! // Q1 from Table 4: send "Bonjour!" to all contacts except Carla.
//! let q1 = Plan::relation("contacts")
//!     .select(Formula::ne_const("name", "Carla"))
//!     .assign_const("text", "Bonjour!")
//!     .invoke("sendMessage", "messenger");
//!
//! let mut env = Environment::new();
//! env.define_relation("contacts", contacts()).unwrap();
//!
//! let registry = example_registry();
//! let outcome = ExecContext::new(&env, &registry, Instant::ZERO)
//!     .execute(&q1)
//!     .unwrap();
//! assert_eq!(outcome.relation.len(), 2);      // Nicolas + Francois
//! assert_eq!(outcome.actions.len(), 2);       // two messages actually sent
//! ```

#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod action;
pub mod attr;
pub mod binding;
pub mod dedup;
pub mod env;
pub mod equiv;
pub mod error;
pub mod eval;
pub mod exec;
pub mod formula;
pub mod metrics;
pub mod ops;
pub mod physical;
pub mod plan;
pub mod prototype;
pub mod rewrite;
pub mod schema;
pub mod service;
pub mod snapshot;
pub mod sync;
pub mod telemetry;
pub mod time;
pub mod tuple;
pub mod value;
pub mod xrelation;

/// The most common imports, re-exported for downstream crates.
pub mod prelude {
    pub use crate::action::{Action, ActionSet};
    pub use crate::attr::{attr, AttrName};
    pub use crate::binding::BindingPattern;
    pub use crate::dedup::{DedupInvoker, DedupLayer, DedupState};
    pub use crate::env::Environment;
    pub use crate::error::{EvalError, PlanError, SchemaError};
    pub use crate::eval::EvalOutcome;
    pub use crate::exec::{explain_analyze_text, ExecContext};
    pub use crate::formula::{Expr, Formula};
    pub use crate::metrics::{
        ExecStats, MetricsSink, NodeId, NodeStats, NoopMetrics, OpKind, OpObservation,
    };
    pub use crate::ops::DegradePolicy;
    pub use crate::physical::{ExecOptions, PhysicalPlan};
    pub use crate::plan::Plan;
    pub use crate::prototype::{Prototype, RelationSchema};
    pub use crate::schema::{AttrKind, Attribute, SchemaRef, XSchema};
    pub use crate::service::{Invoker, InvokerLayer, InvokerStack, Service, StaticRegistry};
    pub use crate::telemetry::{
        beta_cache_hit_ratio, Counter, Gauge, Histogram, InstrumentedInvoker, InstrumentedLayer,
        InvocationObserver, JsonlTrace, MemoryTrace, MetricsRegistry, NoopTrace, RegistrySink,
        TraceEvent, TraceSink,
    };
    pub use crate::time::Instant;
    pub use crate::tuple::Tuple;
    pub use crate::value::{DataType, ServiceRef, Value};
    pub use crate::xrelation::XRelation;
}
